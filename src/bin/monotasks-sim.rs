//! `monotasks-sim`: run the paper's workloads on either architecture from
//! the command line, and answer what-if questions about the run.
//!
//! ```text
//! monotasks-sim sort --gib 50 --values 10 --machines 10 --engine both
//! monotasks-sim bdb --query 2c --machines 5 --engine mono
//! monotasks-sim wordcount --gib 20 --machines 5 --engine spark
//! monotasks-sim sort --gib 50 --machines 10 --predict-machines 20 --predict-ssd
//! ```
//!
//! Run via `cargo run --release --bin monotasks-sim -- <args>`.

use std::process::ExitCode;

use cluster::{ClusterSpec, DiskSpec, MachineSpec};
use dataflow::{BlockMap, JobSpec};
use monotasks_repro::perfmodel::{predict_job, profile_stages, Scenario};
use monotasks_repro::workloads::{bdb_job, sort_job, wordcount_job, BdbQuery, SortConfig};
use monotasks_repro::{monotasks_core, sparklike};

/// Parsed command-line request.
#[derive(Clone, Debug, PartialEq)]
struct Request {
    command: Command,
    machines: usize,
    disks: usize,
    ssd: bool,
    engine: Engine,
    slots: Option<usize>,
    write_through: bool,
    duplex: bool,
    predict_machines: Option<usize>,
    predict_ssd: bool,
    predict_disks: Option<usize>,
    predict_in_memory: bool,
}

#[derive(Clone, Debug, PartialEq)]
enum Command {
    Sort {
        gib: f64,
        values: usize,
        tasks: Option<usize>,
    },
    Bdb {
        query: BdbQuery,
    },
    Wordcount {
        gib: f64,
    },
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Engine {
    Mono,
    Spark,
    Both,
}

const USAGE: &str = "\
monotasks-sim — simulated MonoSpark vs Spark, from the SOSP'17 reproduction

USAGE:
  monotasks-sim sort      --gib <N> [--values <N>] [--tasks <N>] [common]
  monotasks-sim bdb       --query <1a..3c|4>                     [common]
  monotasks-sim wordcount --gib <N>                              [common]

COMMON OPTIONS:
  --machines <N>        worker machines            [default: 5]
  --disks <N>           disks per machine          [default: 2]
  --ssd                 SSDs instead of HDDs
  --engine <mono|spark|both>                       [default: both]
  --slots <N>           Spark tasks per machine    [default: cores]
  --write-through       Spark flushes writes to disk
  --duplex              full-duplex network fabric (mono)
  --predict-machines <N>  what-if: cluster size    (mono only)
  --predict-disks <N>     what-if: disks per machine
  --predict-ssd           what-if: swap disks for SSDs
  --predict-in-memory     what-if: input cached, deserialized
";

fn parse(args: &[String]) -> Result<Request, String> {
    let mut it = args.iter().peekable();
    let cmd_name = it.next().ok_or("missing command")?;
    let mut gib = 10.0;
    let mut values = 10usize;
    let mut tasks = None;
    let mut query = None;
    let mut req = Request {
        command: Command::Wordcount { gib },
        machines: 5,
        disks: 2,
        ssd: false,
        engine: Engine::Both,
        slots: None,
        write_through: false,
        duplex: false,
        predict_machines: None,
        predict_ssd: false,
        predict_disks: None,
        predict_in_memory: false,
    };
    let value_of = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                    flag: &str|
     -> Result<String, String> {
        it.next()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gib" => {
                gib = value_of(&mut it, "--gib")?
                    .parse()
                    .map_err(|e| format!("--gib: {e}"))?
            }
            "--values" => {
                values = value_of(&mut it, "--values")?
                    .parse()
                    .map_err(|e| format!("--values: {e}"))?
            }
            "--tasks" => {
                tasks = Some(
                    value_of(&mut it, "--tasks")?
                        .parse()
                        .map_err(|e| format!("--tasks: {e}"))?,
                )
            }
            "--query" => {
                let q = value_of(&mut it, "--query")?;
                query = Some(
                    BdbQuery::all()
                        .into_iter()
                        .find(|c| c.label() == q)
                        .ok_or_else(|| format!("unknown query {q:?}"))?,
                );
            }
            "--machines" => {
                req.machines = value_of(&mut it, "--machines")?
                    .parse()
                    .map_err(|e| format!("--machines: {e}"))?
            }
            "--disks" => {
                req.disks = value_of(&mut it, "--disks")?
                    .parse()
                    .map_err(|e| format!("--disks: {e}"))?
            }
            "--ssd" => req.ssd = true,
            "--engine" => {
                req.engine = match value_of(&mut it, "--engine")?.as_str() {
                    "mono" => Engine::Mono,
                    "spark" => Engine::Spark,
                    "both" => Engine::Both,
                    other => return Err(format!("unknown engine {other:?}")),
                }
            }
            "--slots" => {
                req.slots = Some(
                    value_of(&mut it, "--slots")?
                        .parse()
                        .map_err(|e| format!("--slots: {e}"))?,
                )
            }
            "--write-through" => req.write_through = true,
            "--duplex" => req.duplex = true,
            "--predict-machines" => {
                req.predict_machines = Some(
                    value_of(&mut it, "--predict-machines")?
                        .parse()
                        .map_err(|e| format!("--predict-machines: {e}"))?,
                )
            }
            "--predict-disks" => {
                req.predict_disks = Some(
                    value_of(&mut it, "--predict-disks")?
                        .parse()
                        .map_err(|e| format!("--predict-disks: {e}"))?,
                )
            }
            "--predict-ssd" => req.predict_ssd = true,
            "--predict-in-memory" => req.predict_in_memory = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    req.command = match cmd_name.as_str() {
        "sort" => Command::Sort { gib, values, tasks },
        "bdb" => Command::Bdb {
            query: query.ok_or("bdb needs --query")?,
        },
        "wordcount" => Command::Wordcount { gib },
        other => return Err(format!("unknown command {other:?}")),
    };
    if req.machines == 0 || req.disks == 0 {
        return Err("--machines and --disks must be positive".into());
    }
    Ok(req)
}

fn build_cluster(req: &Request) -> ClusterSpec {
    let mut machine = MachineSpec::m2_4xlarge();
    machine.disks = if req.ssd {
        vec![DiskSpec::ssd(); req.disks]
    } else {
        vec![DiskSpec::hdd(); req.disks]
    };
    ClusterSpec::new(req.machines, machine)
}

fn build_job(req: &Request) -> (JobSpec, BlockMap) {
    match &req.command {
        Command::Sort { gib, values, tasks } => {
            let mut cfg = SortConfig::new(*gib, *values, req.machines, req.disks);
            cfg.map_tasks = *tasks;
            cfg.reduce_tasks = *tasks;
            sort_job(&cfg)
        }
        Command::Bdb { query } => bdb_job(*query, req.machines, req.disks),
        Command::Wordcount { gib } => {
            wordcount_job(gib * 1024.0 * 1024.0 * 1024.0, req.machines, req.disks)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let req = match parse(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = build_cluster(&req);
    let (job, blocks) = build_job(&req);
    println!(
        "cluster: {} machines x {} cores, {} {} disk(s), {:.0} MiB/s NIC",
        cluster.machines,
        cluster.machine.cores,
        cluster.machine.disks.len(),
        if req.ssd { "SSD" } else { "HDD" },
        cluster.machine.nic / (1024.0 * 1024.0),
    );
    println!(
        "job: {} ({} stages, {} tasks)\n",
        job.name,
        job.stages.len(),
        job.total_tasks()
    );

    let mono_out = if matches!(req.engine, Engine::Mono | Engine::Both) {
        let cfg = monotasks_core::MonoConfig {
            full_duplex_network: req.duplex,
            ..monotasks_core::MonoConfig::default()
        };
        let out = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &cfg);
        println!("monotasks: {:>8.1} s", out.jobs[0].duration_secs());
        let profiles = profile_stages(&out.records, &out.jobs);
        let scen = Scenario::of_cluster(&cluster);
        for p in &profiles {
            let t = monotasks_repro::perfmodel::model::ideal_times(p, &scen);
            println!(
                "  stage {}: {:>7.1} s  bottleneck {:<7} [cpu {:.1} disk {:.1} net {:.1}]",
                p.stage.0,
                p.measured_secs,
                t.bottleneck().name(),
                t.cpu,
                t.disk,
                t.network
            );
        }
        Some(out)
    } else {
        None
    };

    if matches!(req.engine, Engine::Spark | Engine::Both) {
        let cfg = sparklike::SparkConfig {
            slots_per_machine: req.slots,
            write_through: req.write_through,
            ..sparklike::SparkConfig::default()
        };
        let out = sparklike::run(&cluster, &[(job.clone(), blocks)], &cfg);
        println!("spark-like: {:>7.1} s", out.jobs[0].duration_secs());
    }

    // What-if prediction from the monotasks run.
    let wants_prediction = req.predict_machines.is_some()
        || req.predict_disks.is_some()
        || req.predict_ssd
        || req.predict_in_memory;
    if wants_prediction {
        let Some(out) = &mono_out else {
            eprintln!("error: predictions need --engine mono or both");
            return ExitCode::FAILURE;
        };
        let profiles = profile_stages(&out.records, &out.jobs);
        let base = Scenario::of_cluster(&cluster);
        let mut target = base.clone();
        if let Some(m) = req.predict_machines {
            target.machines = m;
        }
        let n_disks = req.predict_disks.unwrap_or(target.machine.disks.len());
        target.machine.disks = if req.predict_ssd {
            vec![DiskSpec::ssd(); n_disks]
        } else if req.predict_disks.is_some() {
            vec![target.machine.disks[0]; n_disks]
        } else {
            target.machine.disks.clone()
        };
        target.input_deserialized_in_memory = req.predict_in_memory;
        let measured = out.jobs[0].duration_secs();
        let predicted = predict_job(&profiles, measured, &base, &target);
        println!(
            "\npredicted under the what-if configuration: {predicted:.1} s ({:+.0}%)",
            100.0 * (predicted - measured) / measured
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_a_full_sort_request() {
        let r = parse(&args(
            "sort --gib 50 --values 25 --machines 10 --disks 1 --ssd --engine mono --duplex",
        ))
        .unwrap();
        assert_eq!(
            r.command,
            Command::Sort {
                gib: 50.0,
                values: 25,
                tasks: None
            }
        );
        assert_eq!(r.machines, 10);
        assert_eq!(r.disks, 1);
        assert!(r.ssd && r.duplex);
        assert_eq!(r.engine, Engine::Mono);
    }

    #[test]
    fn parses_bdb_queries_by_label() {
        let r = parse(&args("bdb --query 3c")).unwrap();
        assert_eq!(
            r.command,
            Command::Bdb {
                query: BdbQuery::Q3c
            }
        );
        assert!(parse(&args("bdb --query 9z")).is_err());
        assert!(parse(&args("bdb")).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse(&args("sort --wat 3")).is_err());
        assert!(parse(&args("fly --gib 2")).is_err());
        assert!(parse(&args("sort --gib")).is_err());
        assert!(parse(&args("sort --machines 0")).is_err());
    }

    #[test]
    fn prediction_flags_parse() {
        let r = parse(&args(
            "sort --gib 10 --predict-machines 20 --predict-ssd --predict-in-memory",
        ))
        .unwrap();
        assert_eq!(r.predict_machines, Some(20));
        assert!(r.predict_ssd && r.predict_in_memory);
    }

    #[test]
    fn builds_runnable_jobs() {
        for cmd in ["sort --gib 2", "bdb --query 1a", "wordcount --gib 2"] {
            let r = parse(&args(cmd)).unwrap();
            let (job, blocks) = build_job(&r);
            assert!(job.validate().is_ok(), "{cmd}");
            assert!(blocks.blocks() > 0);
        }
    }
}
