//! Umbrella crate for the monotasks reproduction: re-exports the workspace
//! crates so examples and integration tests can use one dependency, and the
//! README's code snippets resolve.
//!
//! See the individual crates for the substance:
//! [`monotasks_core`] (the contribution), [`sparklike`] (the baseline),
//! [`perfmodel`] (the §6 model), [`mt_trace`] (Perfetto trace export),
//! [`workloads`], [`dataflow`], [`cluster`], and [`simcore`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cluster;
pub use dataflow;
pub use monotasks_core;
pub use monotasks_live;
pub use mt_trace;
pub use perfmodel;
pub use simcore;
pub use sparklike;
pub use workloads;
