//! Input block placement (the HDFS role).
//!
//! The paper uses HDFS only as a block store with locality: "HDFS breaks
//! files into blocks, and distributes the blocks over a cluster of machines"
//! (§3.2), and the job scheduler assigns a task to a machine holding its
//! block. This module models exactly that: a deterministic round-robin
//! placement of blocks over `(machine, disk)` pairs.

use serde::{Deserialize, Serialize};

use crate::types::BlockId;

/// Placement of every input block onto a `(machine, disk)` pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockMap {
    machines: usize,
    disks_per_machine: usize,
    locations: Vec<(usize, usize)>,
}

impl BlockMap {
    /// Places `blocks` blocks round-robin across machines, and round-robin
    /// across each machine's disks on successive visits.
    ///
    /// # Panics
    ///
    /// Panics if there are no machines or no disks.
    pub fn round_robin(blocks: usize, machines: usize, disks_per_machine: usize) -> BlockMap {
        assert!(machines > 0 && disks_per_machine > 0, "empty cluster");
        let locations = (0..blocks)
            .map(|b| {
                let machine = b % machines;
                let disk = (b / machines) % disks_per_machine;
                (machine, disk)
            })
            .collect();
        BlockMap {
            machines,
            disks_per_machine,
            locations,
        }
    }

    /// Number of blocks placed.
    pub fn blocks(&self) -> usize {
        self.locations.len()
    }

    /// Number of machines blocks are spread over.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of disks per machine blocks are spread over.
    pub fn disks_per_machine(&self) -> usize {
        self.disks_per_machine
    }

    /// The machine holding `block`.
    pub fn machine_of(&self, block: BlockId) -> usize {
        self.locations[block.0 as usize].0
    }

    /// The disk (on [`machine_of`](Self::machine_of)) holding `block`.
    pub fn disk_of(&self, block: BlockId) -> usize {
        self.locations[block.0 as usize].1
    }

    /// Number of blocks on `machine`.
    pub fn blocks_on(&self, machine: usize) -> usize {
        self.locations.iter().filter(|(m, _)| *m == machine).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_balanced() {
        let bm = BlockMap::round_robin(100, 4, 2);
        for m in 0..4 {
            assert_eq!(bm.blocks_on(m), 25);
        }
    }

    #[test]
    fn disks_alternate_per_machine() {
        let bm = BlockMap::round_robin(8, 2, 2);
        // Blocks on machine 0 are ids 0,2,4,6; disk = (b/machines) % disks,
        // so successive visits to the machine alternate disks: 0,1,0,1.
        let disks: Vec<usize> = (0..8)
            .filter(|b| bm.machine_of(BlockId(*b)) == 0)
            .map(|b| bm.disk_of(BlockId(b)))
            .collect();
        assert_eq!(disks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn uneven_block_counts_stay_near_balanced() {
        let bm = BlockMap::round_robin(10, 4, 1);
        let counts: Vec<usize> = (0..4).map(|m| bm.blocks_on(m)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|c| *c == 2 || *c == 3));
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn zero_machines_rejected() {
        BlockMap::round_robin(1, 0, 1);
    }
}
