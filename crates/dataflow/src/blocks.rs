//! Input block placement (the HDFS role).
//!
//! The paper uses HDFS only as a block store with locality: "HDFS breaks
//! files into blocks, and distributes the blocks over a cluster of machines"
//! (§3.2), and the job scheduler assigns a task to a machine holding its
//! block. This module models exactly that: a deterministic round-robin
//! placement of blocks over `(machine, disk)` pairs.

use serde::{Deserialize, Serialize};

use crate::types::BlockId;

/// Placement of every input block onto a `(machine, disk)` pair, plus
/// optional extra replicas per block (the HDFS replication factor).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockMap {
    machines: usize,
    disks_per_machine: usize,
    locations: Vec<(usize, usize)>,
    /// Extra `(machine, disk)` replicas per block, primary excluded. Empty
    /// (the `serde` default, so old serialized maps still load) means
    /// replication factor 1.
    #[serde(default)]
    replicas: Vec<Vec<(usize, usize)>>,
}

impl BlockMap {
    /// Places `blocks` blocks round-robin across machines, and round-robin
    /// across each machine's disks on successive visits.
    ///
    /// # Panics
    ///
    /// Panics if there are no machines or no disks.
    pub fn round_robin(blocks: usize, machines: usize, disks_per_machine: usize) -> BlockMap {
        assert!(machines > 0 && disks_per_machine > 0, "empty cluster");
        let locations = (0..blocks)
            .map(|b| {
                let machine = b % machines;
                let disk = (b / machines) % disks_per_machine;
                (machine, disk)
            })
            .collect();
        BlockMap {
            machines,
            disks_per_machine,
            locations,
            replicas: Vec::new(),
        }
    }

    /// Round-robin placement with an HDFS-style replication factor: replica
    /// `k` of block `b` lives on machine `(primary + k) % machines`, disk
    /// rotated the same way. Duplicate `(machine, disk)` pairs (small
    /// clusters) are dropped, so the effective factor is capped by the number
    /// of distinct sites. `replication == 1` is exactly [`Self::round_robin`].
    ///
    /// # Panics
    ///
    /// Panics if there are no machines, no disks, or `replication == 0`.
    pub fn round_robin_replicated(
        blocks: usize,
        machines: usize,
        disks_per_machine: usize,
        replication: usize,
    ) -> BlockMap {
        assert!(replication > 0, "replication factor must be >= 1");
        let mut bm = BlockMap::round_robin(blocks, machines, disks_per_machine);
        if replication == 1 {
            return bm;
        }
        bm.replicas = (0..blocks)
            .map(|b| {
                let primary = bm.locations[b];
                let mut extra = Vec::new();
                for k in 1..replication {
                    let site = (
                        (primary.0 + k) % machines,
                        (b / machines + k) % disks_per_machine,
                    );
                    if site != primary && !extra.contains(&site) {
                        extra.push(site);
                    }
                }
                extra
            })
            .collect();
        bm
    }

    /// Number of blocks placed.
    pub fn blocks(&self) -> usize {
        self.locations.len()
    }

    /// Number of machines blocks are spread over.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of disks per machine blocks are spread over.
    pub fn disks_per_machine(&self) -> usize {
        self.disks_per_machine
    }

    /// The machine holding `block`.
    pub fn machine_of(&self, block: BlockId) -> usize {
        self.locations[block.0 as usize].0
    }

    /// The disk (on [`machine_of`](Self::machine_of)) holding `block`.
    pub fn disk_of(&self, block: BlockId) -> usize {
        self.locations[block.0 as usize].1
    }

    /// Number of blocks on `machine`.
    pub fn blocks_on(&self, machine: usize) -> usize {
        self.locations.iter().filter(|(m, _)| *m == machine).count()
    }

    /// Extra `(machine, disk)` replicas of `block` beyond the primary; empty
    /// for unreplicated maps.
    pub fn extra_replicas(&self, block: BlockId) -> &[(usize, usize)] {
        self.replicas
            .get(block.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True when at least one block has an extra replica.
    pub fn is_replicated(&self) -> bool {
        self.replicas.iter().any(|r| !r.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_balanced() {
        let bm = BlockMap::round_robin(100, 4, 2);
        for m in 0..4 {
            assert_eq!(bm.blocks_on(m), 25);
        }
    }

    #[test]
    fn disks_alternate_per_machine() {
        let bm = BlockMap::round_robin(8, 2, 2);
        // Blocks on machine 0 are ids 0,2,4,6; disk = (b/machines) % disks,
        // so successive visits to the machine alternate disks: 0,1,0,1.
        let disks: Vec<usize> = (0..8)
            .filter(|b| bm.machine_of(BlockId(*b)) == 0)
            .map(|b| bm.disk_of(BlockId(b)))
            .collect();
        assert_eq!(disks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn uneven_block_counts_stay_near_balanced() {
        let bm = BlockMap::round_robin(10, 4, 1);
        let counts: Vec<usize> = (0..4).map(|m| bm.blocks_on(m)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|c| *c == 2 || *c == 3));
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn zero_machines_rejected() {
        BlockMap::round_robin(1, 0, 1);
    }

    #[test]
    fn replicated_placement_spreads_and_dedups() {
        let bm = BlockMap::round_robin_replicated(8, 4, 2, 2);
        assert!(bm.is_replicated());
        for b in 0..8u32 {
            let primary = (bm.machine_of(BlockId(b)), bm.disk_of(BlockId(b)));
            let extras = bm.extra_replicas(BlockId(b));
            assert_eq!(extras.len(), 1);
            assert_ne!(extras[0], primary);
            assert_ne!(extras[0].0, primary.0, "replica on a different machine");
        }
        // Factor 1 is the plain layout: no replica storage at all.
        let flat = BlockMap::round_robin_replicated(8, 4, 2, 1);
        assert!(!flat.is_replicated());
        assert!(flat.extra_replicas(BlockId(0)).is_empty());
        // One machine, two disks: replicas fall back to the other local disk.
        let local = BlockMap::round_robin_replicated(4, 1, 2, 2);
        for b in 0..4u32 {
            let primary = (local.machine_of(BlockId(b)), local.disk_of(BlockId(b)));
            for &site in local.extra_replicas(BlockId(b)) {
                assert_eq!(site.0, 0);
                assert_ne!(site, primary);
            }
        }
    }
}
