//! High-level job planner.
//!
//! [`JobBuilder`] mirrors the narrow/wide structure of a Spark program
//! (Fig 1): a chain of narrow operators forms a stage; every shuffle starts a
//! new one. The builder tracks the bytes and records flowing through the
//! chain, charges CPU via the [`CostModel`] (deserialization and
//! serialization separated from operator compute, as monotasks report them),
//! and divides stage totals evenly over tasks.

use crate::cost::CostModel;
use crate::stage::{CpuWork, InputSpec, JobSpec, OutputSpec, StageSpec, TaskSpec};
use crate::types::{BlockId, StageId};

/// In-memory deserialized data is about twice its serialized size (§6.4: the
/// 100 GB input "takes up approximately 200GB in memory").
pub const DESER_EXPANSION: f64 = 2.0;

#[derive(Clone, Debug)]
enum PendingInput {
    Disk { block_bytes: f64 },
    Memory { deserialized: bool },
    Shuffle,
}

#[derive(Clone, Debug)]
struct PendingStage {
    deps: Vec<StageId>,
    name: String,
    tasks: usize,
    input: PendingInput,
    /// Serialized bytes entering the stage (total across tasks).
    input_bytes: f64,
    /// Current serialized bytes flowing after applied operators.
    bytes: f64,
    /// Current records flowing.
    records: f64,
    /// Accumulated operator CPU-seconds (total across tasks).
    compute: f64,
    /// Deserialization CPU-seconds (total across tasks).
    deser: f64,
}

/// Builds a [`JobSpec`] from a chain of dataflow operators.
///
/// # Examples
///
/// ```
/// use dataflow::{CostModel, JobBuilder};
///
/// let gib = 1024.0 * 1024.0 * 1024.0;
/// let job = JobBuilder::new("sort", CostModel::spark_1_3())
///     .read_disk(10.0 * gib, 1e8, 0.125 * gib)
///     .map(1.0, 1.0, true) // sort-like map
///     .shuffle(64, false)
///     .map(1.0, 1.0, true)
///     .write_disk(1.0);
/// assert_eq!(job.stages.len(), 2);
/// assert!(job.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct JobBuilder {
    name: String,
    cost: CostModel,
    stages: Vec<StageSpec>,
    cur: Option<PendingStage>,
    next_block: u32,
}

impl JobBuilder {
    /// Starts a job plan using the given cost model.
    pub fn new(name: impl Into<String>, cost: CostModel) -> JobBuilder {
        JobBuilder {
            name: name.into(),
            cost,
            stages: Vec::new(),
            cur: None,
            next_block: 0,
        }
    }

    /// Reads a serialized on-disk input of `total_bytes` holding `records`,
    /// split into blocks of (at most) `block_bytes`. One task per block.
    pub fn read_disk(mut self, total_bytes: f64, records: f64, block_bytes: f64) -> JobBuilder {
        assert!(self.cur.is_none(), "read_* must start a stage");
        assert!(total_bytes > 0.0 && block_bytes > 0.0);
        let tasks = (total_bytes / block_bytes).ceil().max(1.0) as usize;
        self.cur = Some(PendingStage {
            deps: vec![],
            name: "map".into(),
            tasks,
            input: PendingInput::Disk {
                block_bytes: total_bytes / tasks as f64,
            },
            input_bytes: total_bytes,
            bytes: total_bytes,
            records,
            compute: 0.0,
            deser: self.cost.deser(total_bytes),
        });
        self
    }

    /// Reads a cached in-memory dataset of `total_bytes` *serialized* size
    /// holding `records`, split over `tasks` partitions. When `deserialized`,
    /// no deserialization CPU is charged but the cached partitions occupy
    /// [`DESER_EXPANSION`]× the bytes.
    pub fn read_memory(
        mut self,
        total_bytes: f64,
        records: f64,
        tasks: usize,
        deserialized: bool,
    ) -> JobBuilder {
        assert!(self.cur.is_none(), "read_* must start a stage");
        assert!(total_bytes > 0.0 && tasks > 0);
        self.cur = Some(PendingStage {
            deps: vec![],
            name: "map".into(),
            tasks,
            input: PendingInput::Memory { deserialized },
            input_bytes: total_bytes,
            bytes: total_bytes,
            records,
            compute: 0.0,
            deser: if deserialized {
                0.0
            } else {
                self.cost.deser(total_bytes)
            },
        });
        self
    }

    fn pending(&mut self) -> &mut PendingStage {
        self.cur.as_mut().expect("no open stage: call read_* first")
    }

    /// Applies a narrow operator: records scale by `rec_sel`, bytes by
    /// `byte_sel`; CPU is charged per input record (`sort_like` uses the
    /// comparison-heavy rate).
    pub fn map(mut self, rec_sel: f64, byte_sel: f64, sort_like: bool) -> JobBuilder {
        let cost = self.cost;
        let p = self.pending();
        p.compute += cost.compute(p.records, sort_like);
        p.records *= rec_sel;
        p.bytes *= byte_sel;
        self
    }

    /// Adds raw operator CPU-seconds (total across tasks) to the current
    /// stage — used for UDF-style operators (the benchmark's query 4 runs a
    /// Python script) and native compute (the ML workload's BLAS calls).
    pub fn add_compute(mut self, cpu_seconds: f64) -> JobBuilder {
        assert!(cpu_seconds >= 0.0);
        self.pending().compute += cpu_seconds;
        self
    }

    /// Closes the current stage as a shuffle write and opens the reduce stage
    /// with `tasks` tasks. When `in_memory`, shuffle data never touches disk.
    pub fn shuffle(mut self, tasks: usize, in_memory: bool) -> JobBuilder {
        assert!(tasks > 0);
        let (bytes, records) = {
            let p = self.pending();
            (p.bytes, p.records)
        };
        let dep = self.close_stage(OutputSpec::ShuffleWrite { bytes, in_memory });
        self.cur = Some(PendingStage {
            deps: vec![dep],
            name: "reduce".into(),
            tasks,
            input: PendingInput::Shuffle,
            input_bytes: bytes,
            bytes,
            records,
            compute: 0.0,
            deser: self.cost.deser(bytes),
        });
        self
    }

    /// Joins this chain with `other` through a shuffle into a single reduce
    /// stage of `tasks` tasks (the shape of the benchmark's join query).
    pub fn shuffle_join(
        mut self,
        mut other: JobBuilder,
        tasks: usize,
        in_memory: bool,
    ) -> JobBuilder {
        assert!(tasks > 0);
        let (a_bytes, a_records) = self.flowing();
        let left = self.close_stage(OutputSpec::ShuffleWrite {
            bytes: a_bytes,
            in_memory,
        });
        let (b_bytes, b_records) = other.flowing();
        let right_local = other.close_stage(OutputSpec::ShuffleWrite {
            bytes: b_bytes,
            in_memory,
        });
        // Absorb the other chain's stages, re-indexing stage and block ids.
        let stage_off = self.stages.len() as u32;
        let block_off = self.next_block;
        for mut s in std::mem::take(&mut other.stages) {
            s.id = StageId(s.id.0 + stage_off);
            for d in &mut s.deps {
                *d = StageId(d.0 + stage_off);
            }
            for t in &mut s.tasks {
                if let InputSpec::DiskBlock { block, .. } = &mut t.input {
                    *block = BlockId(block.0 + block_off);
                }
            }
            self.stages.push(s);
        }
        self.next_block += other.next_block;
        let right = StageId(right_local.0 + stage_off);
        self.cur = Some(PendingStage {
            deps: vec![left, right],
            name: "join".into(),
            tasks,
            input: PendingInput::Shuffle,
            input_bytes: a_bytes + b_bytes,
            bytes: a_bytes + b_bytes,
            records: a_records + b_records,
            compute: 0.0,
            deser: self.cost.deser(a_bytes + b_bytes),
        });
        self
    }

    /// Closes the job writing `byte_sel` of the flowing bytes to the DFS.
    pub fn write_disk(mut self, byte_sel: f64) -> JobSpec {
        let bytes = self.pending().bytes * byte_sel;
        self.pending().bytes = bytes;
        self.close_stage(OutputSpec::DiskWrite { bytes });
        self.into_job()
    }

    /// Closes the job caching the result in memory.
    pub fn write_memory(mut self) -> JobSpec {
        let bytes = self.pending().bytes;
        self.close_stage(OutputSpec::Memory { bytes });
        self.into_job()
    }

    /// Closes the job with no materialized output (driver-side result).
    pub fn collect(mut self) -> JobSpec {
        self.close_stage(OutputSpec::None);
        self.into_job()
    }

    /// Current flowing `(bytes, records)` — for tests and workload tuning.
    pub fn flowing(&self) -> (f64, f64) {
        let p = self.cur.as_ref().expect("no open stage");
        (p.bytes, p.records)
    }

    fn into_job(self) -> JobSpec {
        assert!(self.cur.is_none());
        JobSpec {
            name: self.name,
            stages: self.stages,
        }
    }

    /// Closes the pending stage with `output`, appends it, returns its id.
    fn close_stage(&mut self, output: OutputSpec) -> StageId {
        let cost = self.cost;
        let p = self.cur.take().expect("no open stage");
        let id = StageId(self.stages.len() as u32);
        let stage = Self::materialize(cost, p, output, id, &mut self.next_block);
        self.stages.push(stage);
        id
    }

    fn materialize(
        cost: CostModel,
        p: PendingStage,
        output: OutputSpec,
        id: StageId,
        next_block: &mut u32,
    ) -> StageSpec {
        let n = p.tasks as f64;
        let ser_total = match output {
            OutputSpec::None => 0.0,
            OutputSpec::Memory { .. } => 0.0,
            OutputSpec::ShuffleWrite { bytes, .. } | OutputSpec::DiskWrite { bytes } => {
                cost.ser(bytes)
            }
        };
        let cpu = CpuWork {
            deser: p.deser / n,
            compute: p.compute / n,
            ser: ser_total / n,
        };
        let per_task_output = match output {
            OutputSpec::None => OutputSpec::None,
            OutputSpec::ShuffleWrite { bytes, in_memory } => OutputSpec::ShuffleWrite {
                bytes: bytes / n,
                in_memory,
            },
            OutputSpec::DiskWrite { bytes } => OutputSpec::DiskWrite { bytes: bytes / n },
            OutputSpec::Memory { bytes } => OutputSpec::Memory { bytes: bytes / n },
        };
        let tasks = (0..p.tasks)
            .map(|_| {
                let input = match p.input {
                    PendingInput::Disk { block_bytes } => {
                        let b = BlockId(*next_block);
                        *next_block += 1;
                        InputSpec::DiskBlock {
                            block: b,
                            bytes: block_bytes,
                        }
                    }
                    PendingInput::Memory { deserialized } => InputSpec::Memory {
                        bytes: p.input_bytes / n * if deserialized { DESER_EXPANSION } else { 1.0 },
                    },
                    PendingInput::Shuffle => InputSpec::ShuffleFetch {
                        bytes: p.input_bytes / n,
                    },
                };
                TaskSpec {
                    input,
                    cpu,
                    output: per_task_output,
                }
            })
            .collect();
        StageSpec {
            id,
            deps: p.deps,
            name: p.name,
            tasks,
        }
    }

    /// Number of input blocks allocated so far (for building a
    /// [`crate::blocks::BlockMap`] covering the whole job).
    pub fn blocks_allocated(job: &JobSpec) -> usize {
        job.stages
            .iter()
            .flat_map(|s| &s.tasks)
            .filter(|t| matches!(t.input, InputSpec::DiskBlock { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn linear_job_shape() {
        let job = JobBuilder::new("sort", CostModel::spark_1_3())
            .read_disk(10.0 * GIB, 1e8, 0.125 * GIB)
            .map(1.0, 1.0, true)
            .shuffle(40, false)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        assert!(job.validate().is_ok());
        assert_eq!(job.stages.len(), 2);
        assert_eq!(job.stages[0].tasks.len(), 80);
        assert_eq!(job.stages[1].tasks.len(), 40);
        // Map tasks read disk blocks; reduce tasks fetch shuffle data.
        assert!(matches!(
            job.stages[0].tasks[0].input,
            InputSpec::DiskBlock { .. }
        ));
        assert!(matches!(
            job.stages[1].tasks[0].input,
            InputSpec::ShuffleFetch { .. }
        ));
    }

    #[test]
    fn bytes_conserved_through_shuffle() {
        let job = JobBuilder::new("j", CostModel::spark_1_3())
            .read_disk(8.0 * GIB, 1e8, 1.0 * GIB)
            .map(1.0, 0.5, false)
            .shuffle(16, false)
            .write_disk(1.0);
        let written = job.stages[0].total_shuffle_write();
        let fetched = job.stages[1].total_shuffle_fetch();
        assert!((written - 4.0 * GIB).abs() < 1.0);
        assert!((fetched - written).abs() < 1.0);
    }

    #[test]
    fn selectivity_reduces_output() {
        let job = JobBuilder::new("filter", CostModel::spark_1_3())
            .read_disk(4.0 * GIB, 1e7, 1.0 * GIB)
            .map(0.01, 0.01, false)
            .write_disk(1.0);
        let out: f64 = job.stages[0]
            .tasks
            .iter()
            .map(|t| t.output.disk_bytes())
            .sum();
        assert!((out - 0.04 * GIB).abs() < 1.0);
    }

    #[test]
    fn deserialized_memory_input_skips_deser_cpu() {
        let cached = JobBuilder::new("mem", CostModel::spark_1_3())
            .read_memory(4.0 * GIB, 1e7, 32, true)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        let on_disk = JobBuilder::new("disk", CostModel::spark_1_3())
            .read_disk(4.0 * GIB, 1e7, 0.125 * GIB)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        assert_eq!(cached.stages[0].tasks[0].cpu.deser, 0.0);
        assert!(on_disk.stages[0].tasks[0].cpu.deser > 0.0);
        // Cached partitions occupy the deserialization expansion.
        let mem_bytes = cached.stages[0].tasks[0].input.bytes();
        assert!((mem_bytes - DESER_EXPANSION * 4.0 * GIB / 32.0).abs() < 1.0);
    }

    #[test]
    fn join_produces_three_stages() {
        let left = JobBuilder::new("q3", CostModel::spark_1_3())
            .read_disk(4.0 * GIB, 1e7, 1.0 * GIB)
            .map(1.0, 0.5, false);
        let right = JobBuilder::new("q3b", CostModel::spark_1_3())
            .read_disk(2.0 * GIB, 5e6, 1.0 * GIB)
            .map(1.0, 1.0, false);
        let job = left
            .shuffle_join(right, 8, false)
            .map(1.0, 0.2, true)
            .write_disk(1.0);
        assert_eq!(job.stages.len(), 3, "{job:#?}");
        assert!(job.validate().is_ok(), "{:?}", job.validate());
        // Join fetches both sides.
        let fetched = job.stages[2].total_shuffle_fetch();
        assert!((fetched - (2.0 + 2.0) * GIB).abs() < 1.0);
        // Block ids are globally unique.
        let mut blocks: Vec<u32> = job
            .stages
            .iter()
            .flat_map(|s| &s.tasks)
            .filter_map(|t| match t.input {
                InputSpec::DiskBlock { block, .. } => Some(block.0),
                _ => None,
            })
            .collect();
        blocks.sort_unstable();
        let n = blocks.len();
        blocks.dedup();
        assert_eq!(blocks.len(), n, "duplicate block ids");
    }

    #[test]
    fn cpu_split_reported_per_component() {
        let job = JobBuilder::new("j", CostModel::spark_1_3())
            .read_disk(1.0 * GIB, 1e7, 0.5 * GIB)
            .map(1.0, 1.0, false)
            .write_disk(1.0);
        let cpu = job.stages[0].tasks[0].cpu;
        assert!(cpu.deser > 0.0 && cpu.compute > 0.0 && cpu.ser > 0.0);
        assert!((cpu.total() - (cpu.deser + cpu.compute + cpu.ser)).abs() < 1e-12);
    }
}
