//! Common run-report types produced by both executors.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

use crate::types::{JobId, StageId};

/// Control-plane cost of scheduling one stage's tasks, in *host* wall-clock
/// nanoseconds (the simulator's own overhead, not simulated time). Template
/// counters stay zero for engines without an execution-template layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageControlStats {
    /// Nanoseconds deriving control decisions (sender-share layout, monotask
    /// DAG expansion). Paid once per stage with execution templates; once per
    /// task without.
    pub template_build_nanos: u64,
    /// Nanoseconds stamping per-task state from the captured decision and
    /// enqueueing the resulting monotasks.
    pub instantiate_nanos: u64,
    /// Tasks instantiated from a valid cached template.
    pub template_hits: u64,
    /// Tasks that had to (re)build the stage template first.
    pub template_misses: u64,
    /// Rebuilds forced by placement changes (lost shuffle outputs).
    pub template_invalidations: u64,
    /// Task attempts started (the hit/miss denominator; includes retries).
    pub tasks_started: u64,
}

impl StageControlStats {
    /// Host seconds deriving control decisions.
    pub fn build_secs(&self) -> f64 {
        self.template_build_nanos as f64 / 1e9
    }

    /// Host seconds stamping tasks from captured decisions.
    pub fn instantiate_secs(&self) -> f64 {
        self.instantiate_nanos as f64 / 1e9
    }
}

/// Start/end of one executed stage.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StageReport {
    /// Which stage.
    pub stage: StageId,
    /// First activity of the stage.
    pub start: SimTime,
    /// Last activity of the stage.
    pub end: SimTime,
    /// Control-plane scheduling cost attributed to this stage.
    #[serde(default)]
    pub control: StageControlStats,
}

impl StageReport {
    /// Stage duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Recovery-overhead counters for one job: what fault handling cost beyond
/// the fault-free critical path. All zero on a fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Task attempts re-queued after a failure (crash abort or lost output).
    pub tasks_retried: u64,
    /// Speculative copies launched against stragglers.
    pub tasks_speculated: u64,
    /// Simulated seconds of thrown-away work: aborted in-flight attempts and
    /// losing speculative copies.
    pub wasted_work_seconds: f64,
    /// Simulated seconds re-running previously-completed tasks whose outputs
    /// a crash destroyed (lineage recomputation).
    pub recompute_seconds: f64,
    /// Monotask-level speculative copies launched, indexed by the straggling
    /// resource (`[cpu, disk, network]`). Always zero for slot-level engines.
    #[serde(default)]
    pub mono_copies: [u64; 3],
    /// Monotask-level copies that beat their original, same indexing.
    #[serde(default)]
    pub mono_copy_wins: [u64; 3],
    /// Requested I/O bytes of discarded work: every started-then-thrown-away
    /// attempt (crash abort or losing speculative copy) charges the full bytes
    /// of the I/O it had begun. Comparable across slot-level and
    /// monotask-level speculation — the waste metric BENCH_PR5 ranks on.
    #[serde(default)]
    pub wasted_bytes: f64,
    /// Fetch retry decisions taken after a stall timed out (each burns one
    /// entry of the bounded per-fetch retry budget).
    #[serde(default)]
    pub fetch_retries: u64,
    /// Simulated seconds spent in deterministic exponential backoff between
    /// fetch retries.
    #[serde(default)]
    pub fetch_backoff_seconds: f64,
    /// Simulated seconds fetches spent stalled at ~zero rate on a cut pair
    /// before being healed, retried, or re-planned.
    #[serde(default)]
    pub stalled_fetch_seconds: f64,
    /// Fetches whose source assignment recovery re-planned: moved to another
    /// receiver, pointed at a replica, or redirected by resubmitting the
    /// unreachable producer.
    #[serde(default)]
    pub fetches_replanned: u64,
}

/// Index into the per-resource arrays in [`RecoveryStats`].
pub const RES_CPU: usize = 0;
/// Index into the per-resource arrays in [`RecoveryStats`].
pub const RES_DISK: usize = 1;
/// Index into the per-resource arrays in [`RecoveryStats`].
pub const RES_NET: usize = 2;

impl RecoveryStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.tasks_retried += other.tasks_retried;
        self.tasks_speculated += other.tasks_speculated;
        self.wasted_work_seconds += other.wasted_work_seconds;
        self.recompute_seconds += other.recompute_seconds;
        for r in 0..3 {
            self.mono_copies[r] += other.mono_copies[r];
            self.mono_copy_wins[r] += other.mono_copy_wins[r];
        }
        self.wasted_bytes += other.wasted_bytes;
        self.fetch_retries += other.fetch_retries;
        self.fetch_backoff_seconds += other.fetch_backoff_seconds;
        self.stalled_fetch_seconds += other.stalled_fetch_seconds;
        self.fetches_replanned += other.fetches_replanned;
    }

    /// True when no recovery activity happened.
    pub fn is_zero(&self) -> bool {
        *self == RecoveryStats::default()
    }

    /// Monotask-level copies launched, all resources.
    pub fn mono_copies_total(&self) -> u64 {
        self.mono_copies.iter().sum()
    }

    /// Monotask-level copy wins, all resources.
    pub fn mono_copy_wins_total(&self) -> u64 {
        self.mono_copy_wins.iter().sum()
    }
}

/// Start/end of one executed job, with its stages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobReport {
    /// Which job.
    pub job: JobId,
    /// Job name from the spec.
    pub name: String,
    /// Submission time.
    pub start: SimTime,
    /// Completion time of the last stage.
    pub end: SimTime,
    /// Per-stage windows.
    pub stages: Vec<StageReport>,
    /// Fault-recovery overhead attributed to this job.
    #[serde(default)]
    pub recovery: RecoveryStats,
}

impl JobReport {
    /// Job duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }

    /// The window of one stage.
    pub fn stage(&self, id: StageId) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations() {
        let r = StageReport {
            stage: StageId(0),
            start: SimTime::from_secs(1),
            end: SimTime(3_500_000_000),
            control: StageControlStats::default(),
        };
        assert_eq!(r.duration().as_secs_f64(), 2.5);
        let j = JobReport {
            job: JobId(0),
            name: "j".into(),
            start: SimTime::ZERO,
            end: SimTime::from_secs(2),
            stages: vec![r],
            recovery: RecoveryStats::default(),
        };
        assert!(j.recovery.is_zero());
        assert_eq!(j.duration_secs(), 2.0);
        assert!(j.stage(StageId(0)).is_some());
        assert!(j.stage(StageId(1)).is_none());
    }
}
