//! Common run-report types produced by both executors.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

use crate::types::{JobId, StageId};

/// Start/end of one executed stage.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StageReport {
    /// Which stage.
    pub stage: StageId,
    /// First activity of the stage.
    pub start: SimTime,
    /// Last activity of the stage.
    pub end: SimTime,
}

impl StageReport {
    /// Stage duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Start/end of one executed job, with its stages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobReport {
    /// Which job.
    pub job: JobId,
    /// Job name from the spec.
    pub name: String,
    /// Submission time.
    pub start: SimTime,
    /// Completion time of the last stage.
    pub end: SimTime,
    /// Per-stage windows.
    pub stages: Vec<StageReport>,
}

impl JobReport {
    /// Job duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }

    /// The window of one stage.
    pub fn stage(&self, id: StageId) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations() {
        let r = StageReport {
            stage: StageId(0),
            start: SimTime::from_secs(1),
            end: SimTime(3_500_000_000),
        };
        assert_eq!(r.duration().as_secs_f64(), 2.5);
        let j = JobReport {
            job: JobId(0),
            name: "j".into(),
            start: SimTime::ZERO,
            end: SimTime::from_secs(2),
            stages: vec![r],
        };
        assert_eq!(j.duration_secs(), 2.0);
        assert!(j.stage(StageId(0)).is_some());
        assert!(j.stage(StageId(1)).is_none());
    }
}
