//! Identifier newtypes shared across the dataflow and executor crates.

use serde::{Deserialize, Serialize};

/// Identifies a job within one simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct JobId(pub u32);

/// Identifies a stage within one job (topological index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct StageId(pub u32);

/// Identifies a task (equivalently, its partition) within one stage.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// A partition index of a distributed dataset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

/// Identifies a block of an on-disk input file (HDFS-style).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct BlockId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_numerically() {
        assert!(StageId(1) < StageId(2));
        assert!(TaskId(0) < TaskId(10));
        assert_eq!(BlockId(3), BlockId(3));
    }
}
