//! Analytics dataflow layer: the jobs both executors run.
//!
//! This crate plays the role Spark's DAG layer plays in the paper (§2.1): it
//! turns a high-level description of a computation into **stages** of parallel
//! **tasks** with known input, CPU, and output demands. The same [`JobSpec`]
//! is handed to the baseline pipelined executor and to the monotasks executor,
//! mirroring how MonoSpark "runs exactly the same Scala code" as Spark (§4) —
//! only the resource orchestration differs.
//!
//! Two layers:
//!
//! * The **planned** layer ([`plan`], [`stage`], [`cost`], [`blocks`]) carries
//!   resource demands (bytes, records, CPU-seconds) derived from a cost model
//!   and drives the simulated executors.
//! * The **reference** layer ([`mod@reference`]) is a real, typed, in-memory
//!   dataset engine (map / flatMap / filter / reduceByKey / sortByKey / join)
//!   that actually computes answers. It exists to pin down the semantics the
//!   planned operators describe, and powers runnable examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod cost;
pub mod error;
pub mod plan;
pub mod reference;
pub mod report;
pub mod stage;
pub mod types;

pub use blocks::BlockMap;
pub use cost::CostModel;
pub use error::RunError;
pub use plan::JobBuilder;
pub use reference::LocalDataset;
pub use report::{
    JobReport, RecoveryStats, StageControlStats, StageReport, RES_CPU, RES_DISK, RES_NET,
};
pub use stage::{CpuWork, InputSpec, JobSpec, OutputSpec, StageSpec, TaskSpec};
pub use types::{BlockId, JobId, PartitionId, StageId, TaskId};
