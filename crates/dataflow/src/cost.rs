//! Operator cost model.
//!
//! The simulated executors need to know how many CPU-seconds a task spends
//! per byte and per record, with (de)serialization separated from the
//! operator's own computation. The separation matters: §6.3's what-if analysis
//! ("what if input were stored deserialized in memory?") subtracts exactly the
//! deserialization component, which MonoSpark can measure and Spark cannot.
//!
//! The defaults are calibrated to Spark-1.3-era JVM costs — the paper notes
//! that version "is known to have various CPU inefficiencies" — such that the
//! evaluation's resource balances hold: the tuned sort uses CPU and disk
//! roughly equally, the big data benchmark is mostly CPU-bound, and the ML
//! workload (which calls into native BLAS) is network-bound.

use serde::{Deserialize, Serialize};

/// CPU cost constants, all in seconds on one core.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Deserialization cost per input byte.
    pub deser_per_byte: f64,
    /// Serialization cost per output byte.
    pub ser_per_byte: f64,
    /// Baseline per-record overhead of any operator (iterator plumbing,
    /// object allocation, hashing).
    pub per_record: f64,
    /// Extra per-record cost of a sort/aggregation comparison-heavy operator.
    pub sort_per_record: f64,
    /// Decompression cost per *uncompressed* byte (the benchmark stores
    /// compressed sequence files).
    pub decompress_per_byte: f64,
}

impl CostModel {
    /// Spark-1.3-era JVM costs.
    ///
    /// ~70 MB/s per-core deserialization, ~100 MB/s serialization, ~300 ns
    /// per record of iterator/allocation overhead plus ~900 ns per record for
    /// sort-like operators, ~50 MB/s decompression — magnitudes consistent
    /// with published Spark 1.x profiling (the paper notes this version "is
    /// known to have various CPU inefficiencies"). With these constants the
    /// value-size sweep of §6.2 spans CPU-bound (small values) to disk-bound
    /// (large values), as in the paper.
    pub fn spark_1_3() -> CostModel {
        CostModel {
            deser_per_byte: 1.0 / (70.0 * 1024.0 * 1024.0),
            ser_per_byte: 1.0 / (100.0 * 1024.0 * 1024.0),
            per_record: 300e-9,
            sort_per_record: 900e-9,
            decompress_per_byte: 1.0 / (50.0 * 1024.0 * 1024.0),
        }
    }

    /// An optimized runtime (used for the ML workload, which "has been
    /// optimized to use the CPU efficiently" and calls into OpenBLAS):
    /// serialization is cheap flat arrays of doubles.
    pub fn optimized_native() -> CostModel {
        CostModel {
            deser_per_byte: 1.0 / (600.0 * 1024.0 * 1024.0),
            ser_per_byte: 1.0 / (600.0 * 1024.0 * 1024.0),
            per_record: 20e-9,
            sort_per_record: 60e-9,
            decompress_per_byte: 1.0 / (200.0 * 1024.0 * 1024.0),
        }
    }

    /// CPU-seconds to deserialize `bytes` of input.
    pub fn deser(&self, bytes: f64) -> f64 {
        self.deser_per_byte * bytes
    }

    /// CPU-seconds to serialize `bytes` of output.
    pub fn ser(&self, bytes: f64) -> f64 {
        self.ser_per_byte * bytes
    }

    /// CPU-seconds of operator work over `records` records, with
    /// `sort_like = true` for comparison-heavy operators.
    pub fn compute(&self, records: f64, sort_like: bool) -> f64 {
        let per = if sort_like {
            self.per_record + self.sort_per_record
        } else {
            self.per_record
        };
        per * records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_sane_magnitudes() {
        let c = CostModel::spark_1_3();
        // Deserializing 1 GiB takes 10–60 s on one core.
        let gib = 1024.0 * 1024.0 * 1024.0;
        let t = c.deser(gib);
        assert!(t > 5.0 && t < 60.0, "deser 1GiB = {t}s");
        // Serialization is cheaper than deserialization.
        assert!(c.ser(gib) < t);
    }

    #[test]
    fn sort_costs_more_than_scan() {
        let c = CostModel::spark_1_3();
        assert!(c.compute(1e6, true) > c.compute(1e6, false));
    }

    #[test]
    fn optimized_runtime_is_faster() {
        let s = CostModel::spark_1_3();
        let o = CostModel::optimized_native();
        assert!(o.deser(1e9) < s.deser(1e9));
        assert!(o.compute(1e6, false) < s.compute(1e6, false));
    }
}
