//! Structured run failures shared by both executors.
//!
//! The executors historically panicked on every abnormal condition (step
//! budget exhausted, deadlocked event loop, malformed config). With fault
//! injection those conditions become *reachable by legitimate inputs* — an
//! unrecoverable fault plan must produce a clean error a caller can handle,
//! not an `assert!` backtrace. The legacy panicking `run` entry points remain
//! as thin wrappers over the `Result`-returning ones.

use std::fmt;

use simcore::SimTime;

use crate::types::{JobId, StageId, TaskId};

/// Why a simulated run could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A config, cluster spec, or fault plan failed up-front validation.
    InvalidConfig(String),
    /// The main loop hit its step budget — a livelock guard, now a structured
    /// error instead of a panic so recovery loops cannot hang a run invisibly.
    StepBudgetExhausted {
        /// The budget that was exhausted.
        steps: u64,
    },
    /// Unfinished jobs remain but nothing can ever run again (e.g. every
    /// machine crashed).
    Unrecoverable {
        /// Simulated time at which progress became impossible.
        at: SimTime,
        /// Human-readable cause.
        reason: String,
    },
    /// One task failed more often than the retry budget allows.
    RetriesExhausted {
        /// Job the task belongs to.
        job: JobId,
        /// Stage the task belongs to.
        stage: StageId,
        /// The task that kept failing.
        task: TaskId,
        /// Attempts consumed (including the original).
        attempts: u32,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RunError::StepBudgetExhausted { steps } => {
                write!(
                    f,
                    "step budget exhausted after {steps} events; likely livelock"
                )
            }
            RunError::Unrecoverable { at, reason } => {
                write!(f, "run unrecoverable at {:.3}s: {reason}", at.as_secs_f64())
            }
            RunError::RetriesExhausted {
                job,
                stage,
                task,
                attempts,
            } => write!(
                f,
                "job {} stage {} task {} failed {attempts} attempts; retry budget exhausted",
                job.0, stage.0, task.0
            ),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let e = RunError::Unrecoverable {
            at: SimTime::from_secs(3),
            reason: "every machine crashed".into(),
        };
        assert!(e.to_string().contains("3.000s"));
        assert!(e.to_string().contains("every machine crashed"));
        let e = RunError::RetriesExhausted {
            job: JobId(1),
            stage: StageId(2),
            task: TaskId(3),
            attempts: 5,
        };
        assert!(e.to_string().contains("task 3"));
        assert!(RunError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(RunError::StepBudgetExhausted { steps: 7 }
            .to_string()
            .contains('7'));
    }
}
