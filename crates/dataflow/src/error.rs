//! Structured run failures shared by both executors.
//!
//! The executors historically panicked on every abnormal condition (step
//! budget exhausted, deadlocked event loop, malformed config). With fault
//! injection those conditions become *reachable by legitimate inputs* — an
//! unrecoverable fault plan must produce a clean error a caller can handle,
//! not an `assert!` backtrace. The legacy panicking `run` entry points remain
//! as thin wrappers over the `Result`-returning ones.

use std::fmt;

use simcore::SimTime;

use crate::types::{JobId, StageId, TaskId};

/// Why a simulated run could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A config, cluster spec, or fault plan failed up-front validation.
    InvalidConfig(String),
    /// The main loop hit its step budget — a livelock guard, now a structured
    /// error instead of a panic so recovery loops cannot hang a run invisibly.
    StepBudgetExhausted {
        /// The budget that was exhausted.
        steps: u64,
    },
    /// Unfinished jobs remain but nothing can ever run again (e.g. every
    /// machine crashed).
    Unrecoverable {
        /// Simulated time at which progress became impossible.
        at: SimTime,
        /// Human-readable cause.
        reason: String,
    },
    /// One task failed more often than the retry budget allows.
    RetriesExhausted {
        /// Job the task belongs to.
        job: JobId,
        /// Stage the task belongs to.
        stage: StageId,
        /// The task that kept failing.
        task: TaskId,
        /// Attempts consumed (including the original).
        attempts: u32,
    },
    /// A task needs data that no reachable machine can provide: the pair is
    /// partitioned, fetch retries are spent, and no replica is reachable to
    /// re-plan against. Fail-fast alternative to waiting out a partition
    /// that may never heal.
    Unreachable {
        /// Job the starved task belongs to.
        job: JobId,
        /// Stage the starved task belongs to.
        stage: StageId,
        /// The task whose data is unreachable.
        task: TaskId,
        /// Machine holding the unreachable data.
        machine: usize,
        /// Fetch retries spent before giving up.
        retries: u32,
    },
}

impl RunError {
    /// The shared "every machine has crashed" terminal error, so the two
    /// executors construct bit-identical messages.
    pub fn all_machines_crashed(at: SimTime) -> RunError {
        RunError::Unrecoverable {
            at,
            reason: "every machine has crashed".into(),
        }
    }

    /// The shared "nothing can run but jobs remain" terminal error.
    pub fn no_runnable_work(at: SimTime) -> RunError {
        RunError::Unrecoverable {
            at,
            reason: "no runnable work but jobs unfinished".into(),
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RunError::StepBudgetExhausted { steps } => {
                write!(
                    f,
                    "step budget exhausted after {steps} events; likely livelock"
                )
            }
            RunError::Unrecoverable { at, reason } => {
                write!(f, "run unrecoverable at {:.3}s: {reason}", at.as_secs_f64())
            }
            RunError::RetriesExhausted {
                job,
                stage,
                task,
                attempts,
            } => write!(
                f,
                "job {} stage {} task {} failed {attempts} attempts; retry budget exhausted",
                job.0, stage.0, task.0
            ),
            RunError::Unreachable {
                job,
                stage,
                task,
                machine,
                retries,
            } => write!(
                f,
                "job {} stage {} task {} cannot reach its data on machine {machine} \
                 after {retries} fetch retries and no replica is reachable",
                job.0, stage.0, task.0
            ),
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let e = RunError::Unrecoverable {
            at: SimTime::from_secs(3),
            reason: "every machine crashed".into(),
        };
        assert!(e.to_string().contains("3.000s"));
        assert!(e.to_string().contains("every machine crashed"));
        let e = RunError::RetriesExhausted {
            job: JobId(1),
            stage: StageId(2),
            task: TaskId(3),
            attempts: 5,
        };
        assert!(e.to_string().contains("task 3"));
        assert!(RunError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(RunError::StepBudgetExhausted { steps: 7 }
            .to_string()
            .contains('7'));
        let e = RunError::Unreachable {
            job: JobId(0),
            stage: StageId(1),
            task: TaskId(2),
            machine: 4,
            retries: 3,
        };
        assert!(e.to_string().contains("machine 4"));
        assert!(e.to_string().contains("3 fetch retries"));
    }

    #[test]
    fn shared_constructors_match_the_executors_historic_messages() {
        let at = SimTime::from_secs(1);
        assert!(RunError::all_machines_crashed(at)
            .to_string()
            .contains("every machine has crashed"));
        assert!(RunError::no_runnable_work(at)
            .to_string()
            .contains("no runnable work but jobs unfinished"));
    }
}
