//! A real, typed, in-memory dataset engine.
//!
//! [`LocalDataset`] implements the operator semantics that the planned layer
//! describes with costs: `map`, `flat_map`, `filter`, `reduce_by_key`,
//! `sort_by_key`, `join`, `count`. It executes partition-at-a-time in one
//! process, with hash partitioning at every shuffle boundary — the same
//! partitioning contract the distributed engines honour. Examples and tests
//! use it to compute *actual answers* (word counts, join results) next to the
//! simulated runs.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A partitioned in-memory dataset.
#[derive(Clone, Debug)]
pub struct LocalDataset<T> {
    parts: Vec<Vec<T>>,
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<T> LocalDataset<T> {
    /// Distributes `data` round-robin over `partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    pub fn from_vec(data: Vec<T>, partitions: usize) -> LocalDataset<T> {
        assert!(partitions > 0, "need at least one partition");
        let mut parts: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
        for (i, x) in data.into_iter().enumerate() {
            parts[i % partitions].push(x);
        }
        LocalDataset { parts }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total number of records.
    pub fn count(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Applies `f` to every record.
    pub fn map<U>(self, f: impl Fn(T) -> U) -> LocalDataset<U> {
        LocalDataset {
            parts: self
                .parts
                .into_iter()
                .map(|p| p.into_iter().map(&f).collect())
                .collect(),
        }
    }

    /// Applies `f` to every record and flattens the results.
    pub fn flat_map<U, I: IntoIterator<Item = U>>(self, f: impl Fn(T) -> I) -> LocalDataset<U> {
        LocalDataset {
            parts: self
                .parts
                .into_iter()
                .map(|p| p.into_iter().flat_map(&f).collect())
                .collect(),
        }
    }

    /// Keeps records satisfying `pred`.
    pub fn filter(self, pred: impl Fn(&T) -> bool) -> LocalDataset<T> {
        LocalDataset {
            parts: self
                .parts
                .into_iter()
                .map(|p| p.into_iter().filter(&pred).collect())
                .collect(),
        }
    }

    /// Gathers all records into one vector (partition order).
    pub fn collect(self) -> Vec<T> {
        self.parts.into_iter().flatten().collect()
    }
}

impl<K: Hash + Eq + Clone, V> LocalDataset<(K, V)> {
    /// Hash-partitions into `partitions` buckets by key — the shuffle.
    pub fn partition_by_key(self, partitions: usize) -> LocalDataset<(K, V)> {
        assert!(partitions > 0, "need at least one partition");
        let mut parts: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
        for (k, v) in self.parts.into_iter().flatten() {
            let p = (hash_of(&k) % partitions as u64) as usize;
            parts[p].push((k, v));
        }
        LocalDataset { parts }
    }

    /// Shuffles by key and combines values with `combine` — `reduceByKey`.
    pub fn reduce_by_key(
        self,
        partitions: usize,
        combine: impl Fn(V, V) -> V,
    ) -> LocalDataset<(K, V)> {
        let shuffled = self.partition_by_key(partitions);
        LocalDataset {
            parts: shuffled
                .parts
                .into_iter()
                .map(|p| {
                    let mut agg: HashMap<K, V> = HashMap::new();
                    for (k, v) in p {
                        match agg.remove(&k) {
                            Some(old) => {
                                let merged = combine(old, v);
                                agg.insert(k, merged);
                            }
                            None => {
                                agg.insert(k, v);
                            }
                        }
                    }
                    agg.into_iter().collect()
                })
                .collect(),
        }
    }

    /// Inner hash join with `other` on the key, shuffled to `partitions`.
    pub fn join<W: Clone>(
        self,
        other: LocalDataset<(K, W)>,
        partitions: usize,
    ) -> LocalDataset<(K, (V, W))>
    where
        V: Clone,
    {
        let left = self.partition_by_key(partitions);
        let right = other.partition_by_key(partitions);
        let parts = left
            .parts
            .into_iter()
            .zip(right.parts)
            .map(|(lp, rp)| {
                let mut table: HashMap<K, Vec<W>> = HashMap::new();
                for (k, w) in rp {
                    table.entry(k).or_default().push(w);
                }
                let mut out = Vec::new();
                for (k, v) in lp {
                    if let Some(ws) = table.get(&k) {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
                out
            })
            .collect();
        LocalDataset { parts }
    }
}

impl<T> LocalDataset<T> {
    /// Concatenates two datasets partition-wise (`union`); the result has
    /// `max(self.partitions, other.partitions)` partitions.
    pub fn union(self, other: LocalDataset<T>) -> LocalDataset<T> {
        let n = self.parts.len().max(other.parts.len());
        let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (i, p) in self.parts.into_iter().enumerate() {
            parts[i].extend(p);
        }
        for (i, p) in other.parts.into_iter().enumerate() {
            parts[i].extend(p);
        }
        LocalDataset { parts }
    }

    /// Takes up to `n` records in partition order (`take`).
    pub fn take(self, n: usize) -> Vec<T> {
        self.parts.into_iter().flatten().take(n).collect()
    }

    /// Deterministically samples roughly a `fraction` of records using a
    /// counter-based selection (`sample` without replacement; deterministic
    /// so simulated and reference runs agree).
    pub fn sample(self, fraction: f64) -> LocalDataset<T> {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let stride = if fraction <= 0.0 {
            usize::MAX
        } else {
            ((1.0 / fraction).round() as usize).max(1)
        };
        LocalDataset {
            parts: self
                .parts
                .into_iter()
                .map(|p| {
                    p.into_iter()
                        .enumerate()
                        .filter(|(i, _)| stride != usize::MAX && i % stride == 0)
                        .map(|(_, x)| x)
                        .collect()
                })
                .collect(),
        }
    }
}

impl<T: Hash + Eq + Clone> LocalDataset<T> {
    /// Removes duplicate records via a shuffle (`distinct`).
    pub fn distinct(self, partitions: usize) -> LocalDataset<T> {
        let tagged = self.map(|x| (x, ()));
        let deduped = tagged.reduce_by_key(partitions, |a, _b| a);
        deduped.map(|(x, ())| x)
    }
}

impl<K: Hash + Eq + Clone, V> LocalDataset<(K, V)> {
    /// Applies `f` to every value, keeping keys (`mapValues`).
    pub fn map_values<W>(self, f: impl Fn(V) -> W) -> LocalDataset<(K, W)> {
        self.map(move |(k, v)| (k, f(v)))
    }

    /// Shuffles by key and gathers each key's values (`groupByKey`).
    pub fn group_by_key(self, partitions: usize) -> LocalDataset<(K, Vec<V>)> {
        let shuffled = self.partition_by_key(partitions);
        LocalDataset {
            parts: shuffled
                .parts
                .into_iter()
                .map(|p| {
                    let mut groups: HashMap<K, Vec<V>> = HashMap::new();
                    for (k, v) in p {
                        groups.entry(k).or_default().push(v);
                    }
                    groups.into_iter().collect()
                })
                .collect(),
        }
    }

    /// Left outer hash join: every left record appears once per match, or
    /// once with `None` when the key has no right-side match.
    pub fn left_outer_join<W: Clone>(
        self,
        other: LocalDataset<(K, W)>,
        partitions: usize,
    ) -> LocalDataset<(K, (V, Option<W>))>
    where
        V: Clone,
    {
        let left = self.partition_by_key(partitions);
        let right = other.partition_by_key(partitions);
        let parts = left
            .parts
            .into_iter()
            .zip(right.parts)
            .map(|(lp, rp)| {
                let mut table: HashMap<K, Vec<W>> = HashMap::new();
                for (k, w) in rp {
                    table.entry(k).or_default().push(w);
                }
                let mut out = Vec::new();
                for (k, v) in lp {
                    match table.get(&k) {
                        Some(ws) => {
                            for w in ws {
                                out.push((k.clone(), (v.clone(), Some(w.clone()))));
                            }
                        }
                        None => out.push((k, (v, None))),
                    }
                }
                out
            })
            .collect();
        LocalDataset { parts }
    }
}

impl<K: Ord + Hash + Eq + Clone, V> LocalDataset<(K, V)> {
    /// Range-free sort: shuffles by key hash, sorts each partition by key —
    /// total order within partitions, the contract our sort workloads need.
    pub fn sort_within_partitions(self, partitions: usize) -> LocalDataset<(K, V)> {
        let mut shuffled = self.partition_by_key(partitions);
        for p in &mut shuffled.parts {
            p.sort_by(|a, b| a.0.cmp(&b.0));
        }
        shuffled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_end_to_end() {
        // The paper's running example (Fig 1): flatMap → map → reduceByKey.
        let lines = vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ];
        let counts: HashMap<String, u32> = LocalDataset::from_vec(lines, 2)
            .flat_map(|l| l.split(' ').map(str::to_string).collect::<Vec<_>>())
            .map(|w| (w, 1u32))
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .into_iter()
            .collect();
        assert_eq!(counts["the"], 3);
        assert_eq!(counts["quick"], 2);
        assert_eq!(counts["fox"], 1);
        assert_eq!(counts.len(), 6);
    }

    #[test]
    fn map_filter_count() {
        let d = LocalDataset::from_vec((0..100).collect(), 7);
        assert_eq!(d.partitions(), 7);
        let evens = d.map(|x| x * 2).filter(|x| x % 4 == 0);
        assert_eq!(evens.count(), 50);
    }

    #[test]
    fn partitioning_is_by_key_hash() {
        let d = LocalDataset::from_vec((0..1000).map(|i| (i % 10, i)).collect::<Vec<_>>(), 3);
        let p = d.partition_by_key(4);
        // Every instance of a key lands in the same partition.
        let parts: Vec<Vec<(i32, i32)>> = p.parts.clone();
        for part in &parts {
            for (k, _) in part {
                let home = (hash_of(k) % 4) as usize;
                assert!(parts[home].iter().any(|(k2, _)| k2 == k));
                assert!(parts
                    .iter()
                    .enumerate()
                    .all(|(i, pp)| i == home || !pp.iter().any(|(k2, _)| k2 == k)));
            }
        }
    }

    #[test]
    fn sort_within_partitions_orders_keys() {
        let data: Vec<(u64, u64)> = (0..500).rev().map(|i| (i, i * 2)).collect();
        let sorted = LocalDataset::from_vec(data, 5).sort_within_partitions(8);
        for p in &sorted.parts {
            assert!(p.windows(2).all(|w| w[0].0 <= w[1].0));
        }
        assert_eq!(sorted.count(), 500);
    }

    #[test]
    fn join_matches_keys() {
        let users = LocalDataset::from_vec(vec![(1, "ann"), (2, "bo"), (3, "cy")], 2);
        let visits = LocalDataset::from_vec(vec![(1, 10), (1, 20), (3, 30), (4, 40)], 2);
        let mut joined = users.join(visits, 4).collect();
        joined.sort();
        assert_eq!(
            joined,
            vec![(1, ("ann", 10)), (1, ("ann", 20)), (3, ("cy", 30))]
        );
    }

    #[test]
    fn union_concatenates_and_take_limits() {
        let a = LocalDataset::from_vec(vec![1, 2, 3], 2);
        let b = LocalDataset::from_vec(vec![4, 5], 3);
        let u = a.union(b);
        assert_eq!(u.partitions(), 3);
        assert_eq!(u.count(), 5);
        let mut all = u.clone().collect();
        all.sort();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
        assert_eq!(u.take(2).len(), 2);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let d = LocalDataset::from_vec(vec![1, 2, 2, 3, 3, 3, 4], 3);
        let mut out = d.distinct(2).collect();
        out.sort();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let d = LocalDataset::from_vec((0..1000).collect::<Vec<i32>>(), 4);
        let s1 = d.clone().sample(0.1).count();
        let s2 = d.clone().sample(0.1).count();
        assert_eq!(s1, s2, "sampling must be deterministic");
        assert!((80..=120).contains(&s1), "sampled {s1} of 1000 at 10%");
        assert_eq!(d.clone().sample(0.0).count(), 0);
        assert_eq!(d.sample(1.0).count(), 1000);
    }

    #[test]
    fn map_values_and_group_by_key() {
        let d = LocalDataset::from_vec(vec![("a", 1), ("b", 2), ("a", 3), ("b", 4), ("a", 5)], 2);
        let grouped = d.map_values(|v| v * 10).group_by_key(3);
        let mut out: Vec<(&str, Vec<i32>)> = grouped
            .collect()
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort();
                (k, vs)
            })
            .collect();
        out.sort();
        assert_eq!(out, vec![("a", vec![10, 30, 50]), ("b", vec![20, 40])]);
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left_rows() {
        let users = LocalDataset::from_vec(vec![(1, "ann"), (2, "bo")], 2);
        let visits = LocalDataset::from_vec(vec![(1, 10), (1, 20)], 2);
        let mut out = users.left_outer_join(visits, 4).collect();
        out.sort();
        assert_eq!(
            out,
            vec![
                (1, ("ann", Some(10))),
                (1, ("ann", Some(20))),
                (2, ("bo", None)),
            ]
        );
    }

    #[test]
    fn reduce_by_key_is_order_insensitive() {
        let a: Vec<(u8, u64)> = vec![(1, 1), (2, 2), (1, 3), (2, 4), (1, 5)];
        let mut b = a.clone();
        b.reverse();
        let run = |v: Vec<(u8, u64)>| {
            let mut out = LocalDataset::from_vec(v, 3)
                .reduce_by_key(2, |x, y| x + y)
                .collect();
            out.sort();
            out
        };
        assert_eq!(run(a), run(b));
    }
}
