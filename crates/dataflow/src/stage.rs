//! Executor-facing job description: stages of tasks with explicit resource
//! demands.
//!
//! A [`JobSpec`] is the contract between the planner and the two executors.
//! It says nothing about *how* resources are used — that is exactly the
//! difference between the baseline (fine-grained pipelining) and monotasks
//! (single-resource units) — only *what* must be read, computed, and written.

use serde::{Deserialize, Serialize};

use crate::types::{BlockId, StageId};

/// CPU work of one task, split the way a compute monotask reports it (§6.3):
/// deserialization, operator computation, serialization.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CpuWork {
    /// Seconds spent deserializing input.
    pub deser: f64,
    /// Seconds of operator computation.
    pub compute: f64,
    /// Seconds spent serializing output.
    pub ser: f64,
}

impl CpuWork {
    /// Total CPU-seconds.
    pub fn total(&self) -> f64 {
        self.deser + self.compute + self.ser
    }
}

/// Where a task's input comes from.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum InputSpec {
    /// No input (a generator task).
    None,
    /// A block of an on-disk file (HDFS-style); located via
    /// [`crate::blocks::BlockMap`].
    DiskBlock {
        /// Which block of the job's input file.
        block: BlockId,
        /// Serialized bytes to read from disk.
        bytes: f64,
    },
    /// A cached in-memory partition on the machine that hosts it.
    Memory {
        /// In-memory size in bytes.
        bytes: f64,
    },
    /// Shuffled output of every task of the dependency stages. The executor
    /// splits the fetch across upstream machines in proportion to the shuffle
    /// bytes each produced; the local share does not cross the network.
    ShuffleFetch {
        /// Total serialized bytes this task fetches.
        bytes: f64,
    },
}

impl InputSpec {
    /// Bytes of input, regardless of source.
    pub fn bytes(&self) -> f64 {
        match *self {
            InputSpec::None => 0.0,
            InputSpec::DiskBlock { bytes, .. }
            | InputSpec::Memory { bytes }
            | InputSpec::ShuffleFetch { bytes } => bytes,
        }
    }
}

/// Where a task's output goes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum OutputSpec {
    /// No materialized output (e.g. a count returned to the driver).
    None,
    /// Shuffle data for a later stage, written to a local disk — or kept in
    /// memory when `in_memory` (the ML workload "stores shuffle data
    /// in-memory", §5.2).
    ShuffleWrite {
        /// Serialized shuffle bytes produced by this task.
        bytes: f64,
        /// Skip the disk: keep shuffle data in memory.
        in_memory: bool,
    },
    /// Job output written to the distributed file system (a local disk).
    DiskWrite {
        /// Serialized bytes written.
        bytes: f64,
    },
    /// Output cached in memory.
    Memory {
        /// In-memory size in bytes.
        bytes: f64,
    },
}

impl OutputSpec {
    /// Bytes that must be written to a local disk (0 for in-memory sinks).
    pub fn disk_bytes(&self) -> f64 {
        match *self {
            OutputSpec::ShuffleWrite {
                bytes,
                in_memory: false,
            }
            | OutputSpec::DiskWrite { bytes } => bytes,
            _ => 0.0,
        }
    }

    /// Shuffle bytes produced (on disk or in memory).
    pub fn shuffle_bytes(&self) -> f64 {
        match *self {
            OutputSpec::ShuffleWrite { bytes, .. } => bytes,
            _ => 0.0,
        }
    }
}

/// One task: the unit the job scheduler assigns to a machine (a "multitask"
/// in monotasks terminology).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Input demand.
    pub input: InputSpec,
    /// CPU demand.
    pub cpu: CpuWork,
    /// Output demand.
    pub output: OutputSpec,
}

/// A stage: parallel tasks with the same shape, plus shuffle dependencies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageSpec {
    /// This stage's id (its index in [`JobSpec::stages`]).
    pub id: StageId,
    /// Stages whose shuffle output this stage fetches.
    pub deps: Vec<StageId>,
    /// Human-readable label ("map", "reduce", "join").
    pub name: String,
    /// The stage's tasks.
    pub tasks: Vec<TaskSpec>,
}

impl StageSpec {
    /// Total bytes this stage's tasks fetch via shuffle.
    pub fn total_shuffle_fetch(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| match t.input {
                InputSpec::ShuffleFetch { bytes } => bytes,
                _ => 0.0,
            })
            .sum()
    }

    /// Total shuffle bytes this stage's tasks produce.
    pub fn total_shuffle_write(&self) -> f64 {
        self.tasks.iter().map(|t| t.output.shuffle_bytes()).sum()
    }

    /// Total CPU-seconds across tasks.
    pub fn total_cpu(&self) -> f64 {
        self.tasks.iter().map(|t| t.cpu.total()).sum()
    }
}

/// A job: stages in topological order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable job name.
    pub name: String,
    /// Stages, topologically ordered (deps precede dependents).
    pub stages: Vec<StageSpec>,
}

impl JobSpec {
    /// Validates structural invariants, returning a description of the first
    /// violation. Executors call this before running.
    pub fn validate(&self) -> Result<(), String> {
        for (i, st) in self.stages.iter().enumerate() {
            if st.id != StageId(i as u32) {
                return Err(format!("stage {i} has id {:?}", st.id));
            }
            if st.tasks.is_empty() {
                return Err(format!("stage {i} has no tasks"));
            }
            let fetches = st
                .tasks
                .iter()
                .any(|t| matches!(t.input, InputSpec::ShuffleFetch { .. }));
            if fetches && st.deps.is_empty() {
                return Err(format!("stage {i} fetches shuffle data but has no deps"));
            }
            if !fetches && !st.deps.is_empty() {
                return Err(format!("stage {i} has deps but fetches no shuffle data"));
            }
            for d in &st.deps {
                if d.0 as usize >= i {
                    return Err(format!("stage {i} depends on later stage {:?}", d));
                }
                let dep = &self.stages[d.0 as usize];
                let writes = dep
                    .tasks
                    .iter()
                    .any(|t| matches!(t.output, OutputSpec::ShuffleWrite { .. }));
                if !writes {
                    return Err(format!(
                        "stage {i} depends on stage {:?} which writes no shuffle data",
                        d
                    ));
                }
            }
            if fetches {
                // Fetched bytes must equal the dependencies' shuffle output.
                let fetched: f64 = st.total_shuffle_fetch();
                let produced: f64 = st
                    .deps
                    .iter()
                    .map(|d| self.stages[d.0 as usize].total_shuffle_write())
                    .sum();
                let denom = produced.max(1.0);
                if ((fetched - produced) / denom).abs() > 1e-6 {
                    return Err(format!(
                        "stage {i} fetches {fetched} B but deps produced {produced} B"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total number of tasks across stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_task(read: f64, shuffle_out: f64) -> TaskSpec {
        TaskSpec {
            input: InputSpec::DiskBlock {
                block: BlockId(0),
                bytes: read,
            },
            cpu: CpuWork {
                deser: 1.0,
                compute: 2.0,
                ser: 0.5,
            },
            output: OutputSpec::ShuffleWrite {
                bytes: shuffle_out,
                in_memory: false,
            },
        }
    }

    fn reduce_task(fetch: f64, out: f64) -> TaskSpec {
        TaskSpec {
            input: InputSpec::ShuffleFetch { bytes: fetch },
            cpu: CpuWork::default(),
            output: OutputSpec::DiskWrite { bytes: out },
        }
    }

    fn two_stage_job() -> JobSpec {
        JobSpec {
            name: "t".into(),
            stages: vec![
                StageSpec {
                    id: StageId(0),
                    deps: vec![],
                    name: "map".into(),
                    tasks: vec![map_task(100.0, 50.0), map_task(100.0, 50.0)],
                },
                StageSpec {
                    id: StageId(1),
                    deps: vec![StageId(0)],
                    name: "reduce".into(),
                    tasks: vec![reduce_task(50.0, 10.0), reduce_task(50.0, 10.0)],
                },
            ],
        }
    }

    #[test]
    fn valid_job_passes() {
        assert_eq!(two_stage_job().validate(), Ok(()));
    }

    #[test]
    fn shuffle_byte_mismatch_detected() {
        let mut j = two_stage_job();
        j.stages[1].tasks[0] = reduce_task(10.0, 10.0);
        assert!(j.validate().unwrap_err().contains("fetches"));
    }

    #[test]
    fn dep_on_later_stage_detected() {
        let mut j = two_stage_job();
        j.stages[1].deps = vec![StageId(1)];
        assert!(j.validate().unwrap_err().contains("later stage"));
    }

    #[test]
    fn fetch_without_dep_detected() {
        let mut j = two_stage_job();
        j.stages[1].deps.clear();
        assert!(j.validate().unwrap_err().contains("no deps"));
    }

    #[test]
    fn aggregates() {
        let j = two_stage_job();
        assert_eq!(j.total_tasks(), 4);
        assert_eq!(j.stages[0].total_shuffle_write(), 100.0);
        assert_eq!(j.stages[1].total_shuffle_fetch(), 100.0);
        assert_eq!(j.stages[0].total_cpu(), 7.0);
    }

    #[test]
    fn output_byte_helpers() {
        let o = OutputSpec::ShuffleWrite {
            bytes: 5.0,
            in_memory: true,
        };
        assert_eq!(o.disk_bytes(), 0.0);
        assert_eq!(o.shuffle_bytes(), 5.0);
        assert_eq!(OutputSpec::DiskWrite { bytes: 7.0 }.disk_bytes(), 7.0);
    }
}
