//! Processor-sharing resources with capped per-job rates and
//! concurrency-dependent efficiency.
//!
//! One primitive covers the three hardware classes in the paper's clusters:
//!
//! * **CPU pool** — capacity = number of cores, per-job cap = 1 core,
//!   flat efficiency. `k` runnable jobs each progress at `min(1, cores/k)`.
//! * **HDD** — capacity = sequential throughput, no per-job cap, efficiency
//!   `1/(1 + s·(k−1))`: concurrent accesses trigger seeks and *reduce* the
//!   aggregate throughput, the effect §5.4 credits for MonoSpark's ~2× disk
//!   bandwidth win when its disk scheduler runs one monotask per disk.
//! * **SSD** — capacity = peak throughput, efficiency `min(k, d)/d`: flash
//!   needs `d` outstanding operations to reach peak (§3.3 found `d = 4`).
//!
//! The resource is a fluid model: between mutations every active job drains at
//! its current rate. Callers advance the fluid state to "now" before mutating
//! and ask for the next completion instant to schedule an event. Because rates
//! change whenever the job set changes, completion events are guarded by an
//! [`PsResource::epoch`] that invalidates stale ones.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Remaining work below this is considered complete (work units are bytes or
/// CPU-seconds, so 1e-6 is far below anything observable).
const WORK_EPSILON: f64 = 1e-6;

/// Identifies a unit of work inside one resource. Allocated by the caller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

/// The three resource classes of the monotasks architecture.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Processor cores.
    Cpu,
    /// A disk (HDD or SSD).
    Disk,
    /// A network interface.
    Network,
}

impl ResourceKind {
    /// Human-readable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Disk => "disk",
            ResourceKind::Network => "network",
        }
    }
}

/// How aggregate capacity responds to the number of concurrent jobs.
#[derive(Clone, Copy, Debug)]
pub enum EfficiencyCurve {
    /// Capacity independent of concurrency (CPU pools, NICs).
    Flat,
    /// HDD: interleaving streams costs seeks. Concurrent *sequential readers*
    /// degrade mildly (kernel readahead batches them); *writers mixed in*
    /// degrade aggregate throughput much faster (head travel between read
    /// and write regions). Aggregate throughput with `k_r` readers and `k_w`
    /// writers is `1/(1 + read_factor·(k_r−1)⁺ + write_factor·w)` of
    /// sequential, where `w = k_w` when readers are present and `k_w − 1`
    /// otherwise (a lone writer is sequential), floored at `floor` — the OS
    /// elevator never lets a disk degrade to zero.
    HddSeek {
        /// Throughput-loss factor per extra concurrent reader.
        read_factor: f64,
        /// Throughput-loss factor per interleaved writer.
        write_factor: f64,
        /// Minimum fraction of sequential throughput retained.
        floor: f64,
    },
    /// SSD: aggregate throughput is `min(k, depth)/depth` of peak — the device
    /// needs `depth` outstanding operations to saturate its internal channels.
    SsdQueueDepth {
        /// Outstanding operations needed to reach peak throughput.
        depth: u32,
    },
}

impl EfficiencyCurve {
    /// Efficiency multiplier with `k_r` concurrent readers and `k_w`
    /// concurrent writers (`k_r + k_w ≥ 1`).
    pub fn at_rw(&self, k_r: usize, k_w: usize) -> f64 {
        let k = k_r + k_w;
        debug_assert!(k >= 1);
        match *self {
            EfficiencyCurve::Flat => 1.0,
            EfficiencyCurve::HddSeek {
                read_factor,
                write_factor,
                floor,
            } => {
                let extra_readers = k_r.saturating_sub(1) as f64;
                let writers = if k_r > 0 {
                    k_w as f64
                } else {
                    k_w.saturating_sub(1) as f64
                };
                (1.0 / (1.0 + read_factor * extra_readers + write_factor * writers)).max(floor)
            }
            EfficiencyCurve::SsdQueueDepth { depth } => {
                (k.min(depth as usize) as f64) / depth as f64
            }
        }
    }

    /// Efficiency multiplier with `k ≥ 1` concurrent *readers* (the common
    /// standalone-resource case).
    pub fn at(&self, k: usize) -> f64 {
        self.at_rw(k, 0)
    }
}

/// A fluid processor-sharing resource. See the module docs for the model.
#[derive(Debug)]
pub struct PsResource {
    kind: ResourceKind,
    capacity: f64,
    per_job_cap: Option<f64>,
    efficiency: EfficiencyCurve,
    jobs: BTreeMap<JobId, f64>,
    last_advance: SimTime,
    epoch: u64,
    /// Integral of delivered rate over time, for throughput accounting.
    delivered: f64,
}

impl PsResource {
    /// Creates a resource delivering `capacity` work units per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(
        kind: ResourceKind,
        capacity: f64,
        per_job_cap: Option<f64>,
        efficiency: EfficiencyCurve,
    ) -> PsResource {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive: {capacity}"
        );
        PsResource {
            kind,
            capacity,
            per_job_cap,
            efficiency,
            jobs: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            epoch: 0,
            delivered: 0.0,
        }
    }

    /// A CPU pool with `cores` cores; one job saturates at most one core.
    pub fn cpu_pool(cores: u32) -> PsResource {
        PsResource::new(
            ResourceKind::Cpu,
            cores as f64,
            Some(1.0),
            EfficiencyCurve::Flat,
        )
    }

    /// This resource's kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Nominal capacity in work units per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Monotonically increasing counter bumped on every job-set mutation.
    /// Completion events tagged with an older epoch are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of jobs currently in service.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total work delivered so far (updated on [`advance`](Self::advance)).
    pub fn total_delivered(&self) -> f64 {
        self.delivered
    }

    /// Current per-job rate in work units per second (0 if idle).
    pub fn per_job_rate(&self) -> f64 {
        let k = self.jobs.len();
        if k == 0 {
            return 0.0;
        }
        let total = self.capacity * self.efficiency.at(k);
        let share = total / k as f64;
        match self.per_job_cap {
            Some(cap) => share.min(cap),
            None => share,
        }
    }

    /// Fraction of the device that is busy right now, in the sense an OS
    /// utilization monitor would report: for CPU pools this is
    /// `min(k, cores)/cores`; for disks and NICs it is 1 while any job is in
    /// service.
    pub fn busy_fraction(&self) -> f64 {
        let k = self.jobs.len();
        if k == 0 {
            return 0.0;
        }
        match self.kind {
            ResourceKind::Cpu => (k as f64).min(self.capacity) / self.capacity,
            ResourceKind::Disk | ResourceKind::Network => 1.0,
        }
    }

    /// Drains fluid work for the interval since the last advance.
    ///
    /// Must be called with a non-decreasing `now`; it is idempotent for equal
    /// times. All mutating operations call it internally.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt == 0.0 || self.jobs.is_empty() {
            return;
        }
        let rate = self.per_job_rate();
        let drained_per_job = rate * dt;
        for remaining in self.jobs.values_mut() {
            let drain = drained_per_job.min(*remaining);
            *remaining -= drain;
            self.delivered += drain;
        }
    }

    /// Adds a job with `work` units outstanding; returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already in service or `work` is not positive/finite.
    pub fn insert(&mut self, now: SimTime, id: JobId, work: f64) -> u64 {
        assert!(
            work.is_finite() && work > 0.0,
            "job work must be positive: {work}"
        );
        self.advance(now);
        let prev = self.jobs.insert(id, work);
        assert!(prev.is_none(), "job {id:?} inserted twice");
        self.epoch += 1;
        self.epoch
    }

    /// Removes a job regardless of remaining work; returns the work left, or
    /// `None` if the job was not present. Bumps the epoch when present.
    pub fn remove(&mut self, now: SimTime, id: JobId) -> Option<f64> {
        self.advance(now);
        let removed = self.jobs.remove(&id);
        if removed.is_some() {
            self.epoch += 1;
        }
        removed
    }

    /// Removes and returns every job whose remaining work has reached zero.
    /// Bumps the epoch if any completed.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        let done: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, w)| **w <= WORK_EPSILON)
            .map(|(id, _)| *id)
            .collect();
        for id in &done {
            self.jobs.remove(id);
        }
        if !done.is_empty() {
            self.epoch += 1;
        }
        done
    }

    /// Instant at which the next job will complete if the job set does not
    /// change, or `None` when idle.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        debug_assert_eq!(
            self.last_advance, now,
            "next_completion requires an up-to-date resource"
        );
        let min_remaining = self.jobs.values().cloned().fold(f64::INFINITY, f64::min);
        if !min_remaining.is_finite() {
            return None;
        }
        if min_remaining <= WORK_EPSILON {
            return Some(now);
        }
        let rate = self.per_job_rate();
        debug_assert!(rate > 0.0);
        let dt = SimDuration::from_secs_f64(min_remaining / rate);
        Some(now + dt.max(SimDuration::NANO))
    }

    /// Remaining work for `id`, if in service.
    pub fn remaining(&self, id: JobId) -> Option<f64> {
        self.jobs.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs_f64: f64) -> SimTime {
        SimTime(SimDuration::from_secs_f64(secs_f64).0)
    }

    #[test]
    fn single_job_runs_at_capacity() {
        let mut r = PsResource::new(ResourceKind::Disk, 100.0, None, EfficiencyCurve::Flat);
        r.insert(SimTime::ZERO, JobId(1), 200.0);
        let done = r.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(done, t(2.0));
        r.advance(done);
        assert_eq!(r.take_completed(done), vec![JobId(1)]);
    }

    #[test]
    fn cpu_pool_caps_each_job_at_one_core() {
        let mut r = PsResource::cpu_pool(4);
        // 2 jobs on 4 cores: each runs at one core, not two.
        r.insert(SimTime::ZERO, JobId(1), 1.0);
        r.insert(SimTime::ZERO, JobId(2), 1.0);
        assert_eq!(r.per_job_rate(), 1.0);
        assert_eq!(r.busy_fraction(), 0.5);
        // 8 jobs on 4 cores: each runs at half a core.
        for i in 3..9 {
            r.insert(SimTime::ZERO, JobId(i), 1.0);
        }
        assert_eq!(r.per_job_rate(), 0.5);
        assert_eq!(r.busy_fraction(), 1.0);
    }

    #[test]
    fn hdd_contention_reduces_aggregate_throughput() {
        let curve = EfficiencyCurve::HddSeek {
            read_factor: 0.7,
            write_factor: 0.7,
            floor: 0.3,
        };
        let mut r = PsResource::new(ResourceKind::Disk, 100.0, None, curve);
        r.insert(SimTime::ZERO, JobId(1), 100.0);
        r.insert(SimTime::ZERO, JobId(2), 100.0);
        // k=2: total throughput 100/(1.7) ≈ 58.8, per job ≈ 29.4.
        let rate = r.per_job_rate();
        assert!((rate - 100.0 / 1.7 / 2.0).abs() < 1e-9);
        // Two interleaved 100-unit reads take longer than sequential 200.
        let done = r.next_completion(SimTime::ZERO).unwrap();
        assert!(done > t(2.0));
    }

    #[test]
    fn ssd_needs_queue_depth_to_reach_peak() {
        let curve = EfficiencyCurve::SsdQueueDepth { depth: 4 };
        assert_eq!(curve.at(1), 0.25);
        assert_eq!(curve.at(4), 1.0);
        assert_eq!(curve.at(16), 1.0);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut r = PsResource::new(ResourceKind::Disk, 10.0, None, EfficiencyCurve::Flat);
        r.insert(SimTime::ZERO, JobId(1), 100.0);
        r.advance(t(1.0));
        let rem = r.remaining(JobId(1)).unwrap();
        r.advance(t(1.0));
        assert_eq!(r.remaining(JobId(1)).unwrap(), rem);
        assert!((rem - 90.0).abs() < 1e-9);
    }

    #[test]
    fn rates_rebalance_when_jobs_leave() {
        let mut r = PsResource::cpu_pool(1);
        r.insert(SimTime::ZERO, JobId(1), 1.0);
        r.insert(SimTime::ZERO, JobId(2), 1.0);
        // Each runs at 0.5 cores; after 1s each has 0.5 left.
        r.advance(t(1.0));
        assert!((r.remaining(JobId(1)).unwrap() - 0.5).abs() < 1e-9);
        // Remove job 2; job 1 now runs at full speed and finishes at t=1.5.
        r.remove(t(1.0), JobId(2));
        let done = r.next_completion(t(1.0)).unwrap();
        assert_eq!(done, t(1.5));
    }

    #[test]
    fn epoch_bumps_on_mutation_only() {
        let mut r = PsResource::cpu_pool(1);
        let e0 = r.epoch();
        r.advance(t(1.0));
        assert_eq!(r.epoch(), e0);
        r.insert(t(1.0), JobId(1), 1.0);
        assert_eq!(r.epoch(), e0 + 1);
        r.remove(t(1.0), JobId(1));
        assert_eq!(r.epoch(), e0 + 2);
        assert_eq!(r.remove(t(1.0), JobId(1)), None);
        assert_eq!(r.epoch(), e0 + 2);
    }

    #[test]
    fn delivered_work_is_conserved() {
        let mut r = PsResource::new(
            ResourceKind::Disk,
            50.0,
            None,
            EfficiencyCurve::HddSeek {
                read_factor: 0.7,
                write_factor: 0.7,
                floor: 0.3,
            },
        );
        r.insert(SimTime::ZERO, JobId(1), 70.0);
        r.insert(SimTime::ZERO, JobId(2), 30.0);
        let mut now = SimTime::ZERO;
        let mut completed = 0;
        while completed < 2 {
            now = r.next_completion(now).unwrap();
            r.advance(now);
            completed += r.take_completed(now).len();
        }
        assert!((r.total_delivered() - 100.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut r = PsResource::cpu_pool(1);
        r.insert(SimTime::ZERO, JobId(1), 1.0);
        r.insert(SimTime::ZERO, JobId(1), 1.0);
    }
}
