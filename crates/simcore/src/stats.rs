//! Wall-clock observability for the simulator's own control plane.
//!
//! The paper's thesis is performance *clarity*; this module applies it to the
//! simulator itself: how many events fired, how many allocator recomputations
//! they triggered, and where the host wall-clock time went — split by phase
//! (rate filling, lazy-drain materialization, completion collection, and the
//! executor's own control loop). `scale_sweep` (in `mt-bench`) uses these
//! counters to attribute the control plane's cost as clusters grow.

/// Counters describing one simulation run's control-plane cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulation events handled (driver-loop iterations).
    pub events: u64,
    /// Allocator reallocations (progressive-filling recomputations).
    pub reallocs: u64,
    /// Wall-clock nanoseconds spent inside allocator recomputations.
    pub alloc_nanos: u64,
    /// Wall-clock nanoseconds inside *per-machine* allocator recomputations
    /// (`cluster::fluid`): executors re-attribute machine-local allocation
    /// here so `alloc_nanos` isolates the cluster-wide fabric.
    pub machine_alloc_nanos: u64,
    /// Wall-clock nanoseconds materializing lazy per-flow/stream drain
    /// outside of recomputations.
    pub drain_nanos: u64,
    /// Wall-clock nanoseconds collecting completed flows/streams (excluding
    /// the reallocation a completion wave triggers, counted above).
    pub completion_nanos: u64,
    /// Wall-clock nanoseconds in the executor's own control loop: total
    /// driver wall time minus everything the allocators account for *and*
    /// minus the template-build / instantiate buckets below.
    pub control_nanos: u64,
    /// Wall-clock nanoseconds deriving control-plane decisions (sender-share
    /// layout + monotask DAG expansion). With execution templates on, this is
    /// paid once per stage plus once per invalidation; with templates off,
    /// once per task — which is exactly the collapse `scale_sweep` measures.
    pub template_build_nanos: u64,
    /// Wall-clock nanoseconds stamping per-task state from captured
    /// decisions and enqueueing the resulting monotasks.
    pub instantiate_nanos: u64,
    /// Task launches that instantiated from a valid cached template.
    pub template_hits: u64,
    /// Task launches that had to (re)build their stage's template first.
    pub template_misses: u64,
    /// Template rebuilds forced by placement changes (shuffle outputs lost to
    /// a crash, lineage recomputation).
    pub template_invalidations: u64,
    /// Task attempts re-queued after a failure (crash abort or lost shuffle
    /// output). Simulated-recovery counter, not wall clock.
    pub tasks_retried: u64,
    /// Speculative task copies launched (sparklike straggler mitigation).
    pub tasks_speculated: u64,
    /// Simulated nanoseconds of task work thrown away: aborted in-flight
    /// attempts and losing speculative copies.
    pub wasted_work_nanos: u64,
    /// Simulated nanoseconds re-executing previously-completed tasks whose
    /// outputs were lost to a crash (lineage recomputation).
    pub recompute_nanos: u64,
    /// Monotask-level speculative copies launched (single-resource re-dispatch
    /// against a straggling monotask; zero for slot-level engines).
    pub mono_copies: u64,
    /// Monotask-level copies that beat their original.
    pub mono_copy_wins: u64,
    /// Requested I/O bytes of discarded work (rounded): aborted in-flight
    /// attempts and losing speculative copies charge the full bytes of every
    /// I/O they had started.
    pub wasted_bytes: u64,
    /// Fetch retry decisions taken after a partition stalled a fetch past
    /// its timeout. Simulated-recovery counter, not wall clock.
    pub fetch_retries: u64,
    /// Simulated nanoseconds fetches spent stalled at ~zero rate on a cut
    /// fabric pair before heal, retry, or re-planning.
    pub stalled_fetch_nanos: u64,
    /// Simulated nanoseconds of deterministic exponential backoff between
    /// fetch retries.
    pub fetch_backoff_nanos: u64,
    /// Fetches whose source assignment partition recovery re-planned.
    pub fetches_replanned: u64,
    /// Epoch-boundary exchanges executed by the hierarchical fabric: instants
    /// at which at least one rack shard published cross-shard effects.
    pub shard_epochs: u64,
    /// Completion events published through a shard outbox and merged in
    /// `(time, shard, seq)` order at an epoch boundary.
    pub cross_shard_events: u64,
    /// Hierarchical commit waves fanned out to scoped worker threads (waves
    /// below the dirty-rack threshold run serially and are not counted).
    pub parallel_commits: u64,
}

impl SimStats {
    /// All-zero counters.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &SimStats) {
        self.events += other.events;
        self.reallocs += other.reallocs;
        self.alloc_nanos += other.alloc_nanos;
        self.machine_alloc_nanos += other.machine_alloc_nanos;
        self.drain_nanos += other.drain_nanos;
        self.completion_nanos += other.completion_nanos;
        self.control_nanos += other.control_nanos;
        self.template_build_nanos += other.template_build_nanos;
        self.instantiate_nanos += other.instantiate_nanos;
        self.template_hits += other.template_hits;
        self.template_misses += other.template_misses;
        self.template_invalidations += other.template_invalidations;
        self.tasks_retried += other.tasks_retried;
        self.tasks_speculated += other.tasks_speculated;
        self.wasted_work_nanos += other.wasted_work_nanos;
        self.recompute_nanos += other.recompute_nanos;
        self.mono_copies += other.mono_copies;
        self.mono_copy_wins += other.mono_copy_wins;
        self.wasted_bytes += other.wasted_bytes;
        self.fetch_retries += other.fetch_retries;
        self.stalled_fetch_nanos += other.stalled_fetch_nanos;
        self.fetch_backoff_nanos += other.fetch_backoff_nanos;
        self.fetches_replanned += other.fetches_replanned;
        self.shard_epochs += other.shard_epochs;
        self.cross_shard_events += other.cross_shard_events;
        self.parallel_commits += other.parallel_commits;
    }

    /// Wall-clock nanoseconds the allocators account for across all phases.
    pub fn allocator_nanos(&self) -> u64 {
        self.alloc_nanos + self.machine_alloc_nanos + self.drain_nanos + self.completion_nanos
    }

    /// Moves allocation time into the per-machine bucket. Executors apply
    /// this to each `cluster::fluid` allocator's stats before merging, so
    /// per-phase attribution separates machine-local allocation from the
    /// fabric's.
    pub fn as_machine_alloc(mut self) -> SimStats {
        self.machine_alloc_nanos += self.alloc_nanos;
        self.alloc_nanos = 0;
        self
    }

    /// Wall-clock seconds spent in allocator recomputations.
    pub fn alloc_secs(&self) -> f64 {
        self.alloc_nanos as f64 / 1e9
    }

    /// Wall-clock seconds inside per-machine allocator recomputations.
    pub fn machine_alloc_secs(&self) -> f64 {
        self.machine_alloc_nanos as f64 / 1e9
    }

    /// Wall-clock seconds materializing lazy drain.
    pub fn drain_secs(&self) -> f64 {
        self.drain_nanos as f64 / 1e9
    }

    /// Wall-clock seconds collecting completions.
    pub fn completion_secs(&self) -> f64 {
        self.completion_nanos as f64 / 1e9
    }

    /// Wall-clock seconds in the executor control loop.
    pub fn control_secs(&self) -> f64 {
        self.control_nanos as f64 / 1e9
    }

    /// Wall-clock seconds deriving control-plane decisions.
    pub fn template_build_secs(&self) -> f64 {
        self.template_build_nanos as f64 / 1e9
    }

    /// Wall-clock seconds stamping tasks from captured decisions.
    pub fn instantiate_secs(&self) -> f64 {
        self.instantiate_nanos as f64 / 1e9
    }

    /// Simulated seconds of wasted (aborted or losing-copy) task work.
    pub fn wasted_work_secs(&self) -> f64 {
        self.wasted_work_nanos as f64 / 1e9
    }

    /// Simulated seconds of lineage recomputation.
    pub fn recompute_secs(&self) -> f64 {
        self.recompute_nanos as f64 / 1e9
    }
}

/// Lower-middle median of a duration population: for even-length inputs the
/// lower of the two central values — the convention Spark's speculation
/// estimator uses, shared by both executors so slot-level and monotask-level
/// speculation react to the same straggler signal. Returns `0.0` on an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is NaN (durations are always finite).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    v[(v.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            events: 1,
            reallocs: 2,
            alloc_nanos: 3,
            machine_alloc_nanos: 11,
            drain_nanos: 4,
            completion_nanos: 5,
            control_nanos: 6,
            template_build_nanos: 15,
            instantiate_nanos: 16,
            template_hits: 17,
            template_misses: 18,
            template_invalidations: 19,
            tasks_retried: 7,
            tasks_speculated: 8,
            wasted_work_nanos: 9,
            recompute_nanos: 10,
            mono_copies: 12,
            mono_copy_wins: 13,
            wasted_bytes: 14,
            fetch_retries: 20,
            stalled_fetch_nanos: 21,
            fetch_backoff_nanos: 22,
            fetches_replanned: 23,
            shard_epochs: 24,
            cross_shard_events: 25,
            parallel_commits: 26,
        };
        a.merge(&SimStats {
            events: 10,
            reallocs: 20,
            alloc_nanos: 30,
            machine_alloc_nanos: 110,
            drain_nanos: 40,
            completion_nanos: 50,
            control_nanos: 60,
            template_build_nanos: 150,
            instantiate_nanos: 160,
            template_hits: 170,
            template_misses: 180,
            template_invalidations: 190,
            tasks_retried: 70,
            tasks_speculated: 80,
            wasted_work_nanos: 90,
            recompute_nanos: 100,
            mono_copies: 120,
            mono_copy_wins: 130,
            wasted_bytes: 140,
            fetch_retries: 200,
            stalled_fetch_nanos: 210,
            fetch_backoff_nanos: 220,
            fetches_replanned: 230,
            shard_epochs: 240,
            cross_shard_events: 250,
            parallel_commits: 260,
        });
        assert_eq!(
            a,
            SimStats {
                events: 11,
                reallocs: 22,
                alloc_nanos: 33,
                machine_alloc_nanos: 121,
                drain_nanos: 44,
                completion_nanos: 55,
                control_nanos: 66,
                template_build_nanos: 165,
                instantiate_nanos: 176,
                template_hits: 187,
                template_misses: 198,
                template_invalidations: 209,
                tasks_retried: 77,
                tasks_speculated: 88,
                wasted_work_nanos: 99,
                recompute_nanos: 110,
                mono_copies: 132,
                mono_copy_wins: 143,
                wasted_bytes: 154,
                fetch_retries: 220,
                stalled_fetch_nanos: 231,
                fetch_backoff_nanos: 242,
                fetches_replanned: 253,
                shard_epochs: 264,
                cross_shard_events: 275,
                parallel_commits: 286,
            }
        );
        assert!((a.alloc_secs() - 33e-9).abs() < 1e-18);
        assert_eq!(a.allocator_nanos(), 33 + 121 + 44 + 55);
        assert!((a.template_build_secs() - 165e-9).abs() < 1e-18);
        assert!((a.instantiate_secs() - 176e-9).abs() < 1e-18);
    }

    #[test]
    fn median_uses_the_lower_middle_convention() {
        // Odd length: the true middle.
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        // Even length: the *lower* of the two central values, not their mean.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.0);
        assert_eq!(median(&[4.0, 3.0, 2.0, 1.0]), 2.0);
        // Degenerate populations.
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn as_machine_alloc_reattributes_allocation_time() {
        let s = SimStats {
            reallocs: 5,
            alloc_nanos: 100,
            machine_alloc_nanos: 7,
            drain_nanos: 3,
            ..SimStats::default()
        };
        let m = s.as_machine_alloc();
        assert_eq!(m.alloc_nanos, 0);
        assert_eq!(m.machine_alloc_nanos, 107);
        // Totals are preserved: only the attribution moves.
        assert_eq!(m.allocator_nanos(), s.allocator_nanos());
        assert_eq!(m.reallocs, 5);
    }
}
