//! Wall-clock observability for the simulator's own control plane.
//!
//! The paper's thesis is performance *clarity*; this module applies it to the
//! simulator itself: how many events fired, how many allocator recomputations
//! they triggered, and how much wall-clock time the allocators consumed.
//! `scale_sweep` (in `mt-bench`) uses these counters to track the control
//! plane's cost as clusters grow.

/// Counters describing one simulation run's control-plane cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulation events handled (driver-loop iterations).
    pub events: u64,
    /// Allocator reallocations (progressive-filling recomputations).
    pub reallocs: u64,
    /// Wall-clock nanoseconds spent inside allocator recomputations.
    pub alloc_nanos: u64,
}

impl SimStats {
    /// All-zero counters.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &SimStats) {
        self.events += other.events;
        self.reallocs += other.reallocs;
        self.alloc_nanos += other.alloc_nanos;
    }

    /// Wall-clock seconds spent in allocators.
    pub fn alloc_secs(&self) -> f64 {
        self.alloc_nanos as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            events: 1,
            reallocs: 2,
            alloc_nanos: 3,
        };
        a.merge(&SimStats {
            events: 10,
            reallocs: 20,
            alloc_nanos: 30,
        });
        assert_eq!(
            a,
            SimStats {
                events: 11,
                reallocs: 22,
                alloc_nanos: 33,
            }
        );
        assert!((a.alloc_secs() - 33e-9).abs() < 1e-18);
    }
}
