//! Deterministic discrete-event simulation core.
//!
//! This crate provides the building blocks shared by every simulated subsystem
//! in the monotasks reproduction:
//!
//! * [`time`] — integer-nanosecond simulated time ([`SimTime`], [`SimDuration`]),
//!   chosen over floating-point seconds so that event ordering is exact and runs
//!   are bit-reproducible.
//! * [`events`] — a tie-broken event queue ([`EventQueue`]) and a minimal
//!   [`World`]/[`events::run`] driver loop.
//! * [`resource`] — a processor-sharing resource ([`PsResource`]) with per-job
//!   rate caps and a concurrency-dependent efficiency curve. This one primitive
//!   models CPU core pools, HDDs (whose aggregate throughput *drops* with
//!   concurrent accesses due to seeks) and SSDs (whose throughput *rises* with
//!   queue depth up to a device limit).
//! * [`maxmin`] — max-min fair bandwidth allocation for network flows limited
//!   at both sender and receiver, the standard fluid model for shuffle traffic.
//! * [`shard`] — the rack-sharded hierarchical fabric: exact max-min within
//!   each rack, ε-fair (src-rack, dst-rack) super-classes across the
//!   oversubscribed core, with deterministic `(time, shard, seq)` cross-shard
//!   event exchange and scoped-thread fan-out.
//! * [`fx`] — a deterministic multiply-rotate hasher for hot-path maps keyed
//!   by small integers (no random seed, no external crate).
//! * [`recorder`] — time-weighted utilization traces with interval resampling
//!   and percentile queries, used to regenerate the paper's utilization figures.
//! * [`stats`] — wall-clock counters ([`SimStats`]) for the simulator's own
//!   control plane: events fired, allocator reallocations, allocator time.
//!
//! Nothing in this crate knows about tasks, jobs, or analytics; it is the
//! "operating system and hardware physics" layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod fx;
pub mod maxmin;
pub mod recorder;
pub mod resource;
pub mod shard;
pub mod stats;
pub mod time;

pub use events::{EventQueue, World};
pub use fx::{FxHashMap, FxHashSet};
pub use maxmin::{FlowAllocator, FlowId, MaxMinPolicy};
pub use recorder::UtilizationRecorder;
pub use resource::{JobId, PsResource, ResourceKind};
pub use shard::{Fabric, HierFabric, RackMap};
pub use stats::{median, SimStats};
pub use time::{SimDuration, SimTime};
