//! Integer-nanosecond simulated time.
//!
//! All simulation time is kept as whole nanoseconds so that event ordering,
//! arithmetic, and therefore entire simulation runs are exactly reproducible.
//! Floating-point seconds are only used at the edges (rate computations and
//! report formatting) and always converted back with explicit rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any event a simulation will ever schedule.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Builds a time from whole seconds.
    pub fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Builds a time from floating-point seconds, rounding up to the next
    /// nanosecond (same contract as [`SimDuration::from_secs_f64`]).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        SimTime::ZERO.saturating_add(SimDuration::from_secs_f64(secs))
    }

    /// Converts to floating-point seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; a simulation that observes
    /// time running backwards has a scheduling bug that must not be masked.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "time ran backwards: {earlier:?} > {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// One nanosecond, the simulation's time quantum.
    pub const NANO: SimDuration = SimDuration(1);

    /// Builds a duration from whole seconds.
    pub fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from floating-point seconds, rounding *up* to the
    /// next nanosecond so that work never finishes early.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid duration: {secs} s"
        );
        SimDuration((secs * 1e9).ceil() as u64)
    }

    /// Converts to floating-point seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulation duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation duration underflow"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_since_round_trip() {
        let t = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        let later = t + d;
        assert_eq!(later.since(t), d);
        assert_eq!(later.as_secs_f64(), 3.25);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns rounds up to 2 ns: work must never complete early.
        let d = SimDuration::from_secs_f64(1.5e-9);
        assert_eq!(d.0, 2);
        assert_eq!(SimDuration::from_secs_f64(0.0).0, 0);
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn since_panics_on_backwards_time() {
        SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_nan() {
        SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::FAR_FUTURE);
    }
}
