//! Event queue and driver loop for discrete-event simulation.
//!
//! Events are ordered by `(time, insertion sequence)`. The sequence number
//! breaks ties deterministically: two events scheduled for the same instant
//! fire in the order they were scheduled, independent of the payload type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::stats::SimStats;
use crate::time::SimTime;

/// A scheduled event: payload `E` plus its firing time and tie-break sequence.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimTime, SimDuration};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_secs(1), "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `now`; leaves later events untouched. The draining primitive for
    /// epoch-boundary exchange: a shard outbox is drained up to the epoch
    /// horizon, never past it.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(s) if s.time <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A simulated world that reacts to its own event type.
///
/// The driver loop ([`run`]) pops events in time order and hands each to
/// [`World::handle`], which may schedule further events. The simulation ends
/// when the queue drains (or a handler stops scheduling).
pub trait World {
    /// The event payload type.
    type Event;

    /// Reacts to `event` firing at time `now`; may schedule follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Runs `world` until the event queue is empty, returning the time of the last
/// event handled (or [`SimTime::ZERO`] if none fired).
///
/// # Panics
///
/// Panics if more than `max_events` events fire, which indicates a scheduling
/// livelock (an event handler perpetually rescheduling itself).
pub fn run<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>, max_events: u64) -> SimTime {
    let mut stats = SimStats::new();
    run_with_stats(world, queue, max_events, &mut stats)
}

/// Like [`run`], but also accumulates the number of events fired into
/// `stats.events` so callers can report the control plane's cost.
///
/// # Panics
///
/// Panics if more than `max_events` events fire, which indicates a scheduling
/// livelock (an event handler perpetually rescheduling itself).
pub fn run_with_stats<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    max_events: u64,
    stats: &mut SimStats,
) -> SimTime {
    let mut fired: u64 = 0;
    let mut now = SimTime::ZERO;
    while let Some((t, ev)) = queue.pop() {
        debug_assert!(t >= now, "event queue yielded out-of-order time");
        now = t;
        world.handle(now, ev, queue);
        fired += 1;
        assert!(
            fired <= max_events,
            "simulation exceeded {max_events} events: likely a scheduling livelock"
        );
    }
    stats.events += fired;
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(2), "c");
        let now = SimTime::from_secs(2);
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop_due(now).map(|(_, e)| e)).collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
        q.schedule(SimTime::from_secs(5), "late");
        assert_eq!(q.pop_due(now), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    struct Counter {
        remaining: u32,
        last: SimTime,
    }

    impl World for Counter {
        type Event = ();
        fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
            self.last = now;
            if self.remaining > 0 {
                self.remaining -= 1;
                q.schedule(now + SimDuration::from_secs(1), ());
            }
        }
    }

    #[test]
    fn run_drives_world_to_quiescence() {
        let mut w = Counter {
            remaining: 5,
            last: SimTime::ZERO,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let end = run(&mut w, &mut q, 1000);
        assert_eq!(end, SimTime::from_secs(5));
        assert_eq!(w.last, end);
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn run_detects_livelock() {
        struct Forever;
        impl World for Forever {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
                q.schedule(now, ());
            }
        }
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        run(&mut Forever, &mut q, 100);
    }
}
