//! Max-min fair bandwidth allocation for network flows.
//!
//! Shuffle traffic is modelled as fluid flows between machines. Each machine
//! has a full-duplex NIC: a transmit capacity and a receive capacity. A flow's
//! rate is set by progressive filling (the textbook max-min algorithm):
//! repeatedly find the most-contended port, freeze its flows at their fair
//! share, remove that capacity, and continue. The result is the unique max-min
//! fair allocation, recomputed whenever a flow starts or finishes.
//!
//! This is the same fluid abstraction the paper leans on when reasoning about
//! the network: what matters for performance clarity is how many flows share
//! each sender and receiver link, not packet-level dynamics.
//!
//! # Incremental implementation
//!
//! The allocator is built to stay cheap on clusters of 100+ machines with
//! thousands of concurrent shuffle flows:
//!
//! * **Per-port flow indices** (`tx_flows`/`rx_flows`) let progressive filling
//!   freeze a whole bottleneck port at once instead of re-scanning every flow
//!   per round, and make insert/remove O(1) on the index itself.
//! * **Per-port used-rate accumulators** (`tx_used`/`rx_used`) are maintained
//!   at each reallocation, so [`FlowAllocator::tx_busy_fraction`] and
//!   [`FlowAllocator::rx_busy_fraction`] are O(1) reads instead of O(flows)
//!   scans per trace sample.
//! * **A cached next-completion deadline**: reallocation recomputes every
//!   flow's completion instant in its single pass and keeps the minimum, so
//!   [`FlowAllocator::next_completion`] is O(1) and
//!   [`FlowAllocator::take_completed`] returns in O(1) when nothing is due
//!   (it only scans — and then reallocates — when a completion actually
//!   fires).
//! * **Batched mutations** ([`FlowAllocator::begin_update`] /
//!   [`FlowAllocator::commit`]) collapse a wave of inserts or removals at one
//!   instant into a single reallocation.
//!
//! Max-min fairness has a unique fixpoint, so the incremental algorithm must
//! produce the same rates as the original quadratic one. That original is kept
//! as [`FlowAllocator::reference_reallocate`], and with the `slowcheck` cargo
//! feature every reallocation is `debug_assert!`-checked against it.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::stats::SimStats;
use crate::time::{SimDuration, SimTime};

/// Remaining bytes below this are considered transferred.
const BYTES_EPSILON: f64 = 1e-6;

/// Identifies one flow. Allocated by the caller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Index of a machine (port) in the fabric.
pub type NodeId = usize;

#[derive(Clone, Copy, Debug)]
struct Flow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    remaining: f64,
    rate: f64,
    /// Position of this flow's dense index inside `tx_flows[src]`.
    tx_slot: usize,
    /// Position of this flow's dense index inside `rx_flows[dst]`.
    rx_slot: usize,
    /// Completion instant at the current rate ([`SimTime::FAR_FUTURE`] until
    /// the first reallocation assigns one).
    deadline: SimTime,
    /// Reallocation round stamp; equals the allocator's `freeze_stamp` while
    /// this flow's rate is frozen during the current reallocation.
    frozen_at: u64,
}

/// A fabric of full-duplex ports carrying max-min fair fluid flows.
#[derive(Debug)]
pub struct FlowAllocator {
    tx_cap: Vec<f64>,
    rx_cap: Vec<f64>,
    /// Dense flow storage (swap-removed); the hot per-reallocation passes are
    /// linear scans over this vector, not tree walks.
    flows: Vec<Flow>,
    /// Id → dense index. Only lookups touch this; iteration stays dense.
    index: BTreeMap<FlowId, usize>,
    /// Per-port indices: dense indices of flows transmitting from /
    /// receiving at a port.
    tx_flows: Vec<Vec<u32>>,
    rx_flows: Vec<Vec<u32>>,
    /// Sum of allocated rates per port, refreshed at each reallocation.
    tx_used: Vec<f64>,
    rx_used: Vec<f64>,
    /// Minimum completion deadline across all flows, maintained by
    /// reallocation ([`SimTime::FAR_FUTURE`] when no flow is live).
    next_deadline: SimTime,
    /// Reusable progressive-filling scratch (remaining capacity and unfrozen
    /// flow count per port), refilled at each reallocation to avoid
    /// allocating four vectors per call.
    scratch_left: Vec<f64>,
    scratch_n: Vec<u32>,
    freeze_stamp: u64,
    last_advance: SimTime,
    /// Instant up to which flow `remaining` fields are materialized; drain
    /// between `synced` and `last_advance` is virtual (rates are constant in
    /// between, so it is recoverable on demand).
    synced: SimTime,
    epoch: u64,
    delivered: f64,
    /// Open `begin_update` scopes; mutations defer reallocation while > 0.
    batch_depth: u32,
    /// A mutation happened inside the open batch.
    dirty: bool,
    reallocs: u64,
    alloc_nanos: u64,
}

impl FlowAllocator {
    /// Creates a fabric of `nodes` ports, each with the given transmit and
    /// receive capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is not strictly positive and finite.
    pub fn new(nodes: usize, tx_cap: f64, rx_cap: f64) -> FlowAllocator {
        assert!(tx_cap.is_finite() && tx_cap > 0.0, "bad tx capacity");
        assert!(rx_cap.is_finite() && rx_cap > 0.0, "bad rx capacity");
        FlowAllocator {
            tx_cap: vec![tx_cap; nodes],
            rx_cap: vec![rx_cap; nodes],
            flows: Vec::new(),
            index: BTreeMap::new(),
            tx_flows: vec![Vec::new(); nodes],
            rx_flows: vec![Vec::new(); nodes],
            tx_used: vec![0.0; nodes],
            rx_used: vec![0.0; nodes],
            next_deadline: SimTime::FAR_FUTURE,
            scratch_left: vec![0.0; 2 * nodes],
            scratch_n: vec![0; 2 * nodes],
            freeze_stamp: 0,
            last_advance: SimTime::ZERO,
            synced: SimTime::ZERO,
            epoch: 0,
            delivered: 0.0,
            batch_depth: 0,
            dirty: false,
            reallocs: 0,
            alloc_nanos: 0,
        }
    }

    /// Number of ports.
    pub fn nodes(&self) -> usize {
        self.tx_cap.len()
    }

    /// Stale-event guard; bumped on every flow-set mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of flows in flight.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered so far across all flows.
    pub fn total_delivered(&self) -> f64 {
        let dt = self.last_advance.since(self.synced).as_secs_f64();
        let pending: f64 = if dt == 0.0 {
            0.0
        } else {
            self.flows
                .iter()
                .map(|f| (f.rate * dt).min(f.remaining))
                .sum()
        };
        self.delivered + pending
    }

    /// Current rate of `flow`, if active.
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        self.index.get(&flow).map(|&i| self.flows[i].rate)
    }

    /// Control-plane cost counters for this allocator.
    pub fn stats(&self) -> SimStats {
        SimStats {
            events: 0,
            reallocs: self.reallocs,
            alloc_nanos: self.alloc_nanos,
        }
    }

    /// Fraction of `node`'s receive capacity currently in use.
    ///
    /// O(1): reads the per-port accumulator maintained by reallocation.
    pub fn rx_busy_fraction(&self, node: NodeId) -> f64 {
        self.rx_used[node] / self.rx_cap[node]
    }

    /// Fraction of `node`'s transmit capacity currently in use.
    ///
    /// O(1): reads the per-port accumulator maintained by reallocation.
    pub fn tx_busy_fraction(&self, node: NodeId) -> f64 {
        self.tx_used[node] / self.tx_cap[node]
    }

    /// Drains all flows at their current rates up to `now`.
    ///
    /// O(1): only the clock moves. Rates are constant between reallocations,
    /// so per-flow progress is materialized lazily by the operations that
    /// read or change `remaining` (reallocation, removal, completion).
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance);
        self.last_advance = now;
        debug_assert!(
            !(dt > SimDuration::ZERO && self.batch_depth > 0 && self.dirty),
            "time advanced inside an open batch with pending mutations"
        );
    }

    /// Applies the virtual drain accumulated since `synced` to every flow's
    /// `remaining` (and the delivered total).
    fn materialize(&mut self) {
        let dt = self.last_advance.since(self.synced).as_secs_f64();
        self.synced = self.last_advance;
        if dt == 0.0 {
            return;
        }
        for f in self.flows.iter_mut() {
            let drain = (f.rate * dt).min(f.remaining);
            f.remaining -= drain;
            self.delivered += drain;
        }
    }

    /// Opens a batched-update scope: mutations (insert / remove /
    /// take_completed) made before the matching [`FlowAllocator::commit`]
    /// defer their reallocation, so a wave of changes at one instant costs a
    /// single recomputation. Scopes nest; only the outermost commit
    /// reallocates. All mutations inside a batch must happen at the same
    /// instant (time must not advance until commit).
    pub fn begin_update(&mut self) {
        self.batch_depth += 1;
    }

    /// Closes a [`FlowAllocator::begin_update`] scope, reallocating once if
    /// any mutation happened inside it. Returns the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn commit(&mut self, now: SimTime) -> u64 {
        assert!(self.batch_depth > 0, "commit without begin_update");
        self.batch_depth -= 1;
        if self.batch_depth == 0 && self.dirty {
            self.advance(now);
            self.dirty = false;
            self.reallocate();
        }
        self.epoch
    }

    /// Reallocates now, or defers to the enclosing batch's commit.
    fn after_mutation(&mut self) {
        if self.batch_depth > 0 {
            self.dirty = true;
        } else {
            self.reallocate();
        }
        self.epoch += 1;
    }

    /// Starts a flow of `bytes` from `src` to `dst`; returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics on duplicate id, out-of-range node, or non-positive size.
    pub fn insert(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
    ) -> u64 {
        assert!(bytes.is_finite() && bytes > 0.0, "bad flow size: {bytes}");
        assert!(src < self.nodes() && dst < self.nodes(), "bad node id");
        self.advance(now);
        let idx = self.flows.len();
        let prev = self.index.insert(id, idx);
        assert!(prev.is_none(), "flow {id:?} inserted twice");
        self.flows.push(Flow {
            id,
            src,
            dst,
            remaining: bytes,
            rate: 0.0,
            tx_slot: self.tx_flows[src].len(),
            rx_slot: self.rx_flows[dst].len(),
            deadline: SimTime::FAR_FUTURE,
            frozen_at: 0,
        });
        self.tx_flows[src].push(idx as u32);
        self.rx_flows[dst].push(idx as u32);
        self.after_mutation();
        self.epoch
    }

    /// Removes a flow regardless of progress; returns remaining bytes if it
    /// was active.
    pub fn remove(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        self.materialize();
        let idx = self.index.remove(&id)?;
        let f = self.remove_at(idx);
        self.after_mutation();
        Some(f.remaining)
    }

    /// Removes the flow at dense index `idx` (already unlinked from `index`),
    /// keeping the port indices and the dense vector's swap-removed survivors
    /// consistent. Returns the removed flow.
    fn remove_at(&mut self, idx: usize) -> Flow {
        let f = self.flows[idx];
        // Unlink from the port lists; a survivor swapped into the vacated
        // port slot needs its slot field re-pointed.
        self.tx_flows[f.src].swap_remove(f.tx_slot);
        if let Some(&moved) = self.tx_flows[f.src].get(f.tx_slot) {
            self.flows[moved as usize].tx_slot = f.tx_slot;
        }
        self.rx_flows[f.dst].swap_remove(f.rx_slot);
        if let Some(&moved) = self.rx_flows[f.dst].get(f.rx_slot) {
            self.flows[moved as usize].rx_slot = f.rx_slot;
        }
        // Swap-remove from the dense vector; the flow moved into `idx` (if
        // any) must be re-pointed in the id map and both port lists.
        self.flows.swap_remove(idx);
        if let Some(moved) = self.flows.get(idx) {
            let (mid, msrc, mdst, mtx, mrx) =
                (moved.id, moved.src, moved.dst, moved.tx_slot, moved.rx_slot);
            self.tx_flows[msrc][mtx] = idx as u32;
            self.rx_flows[mdst][mrx] = idx as u32;
            *self.index.get_mut(&mid).expect("indexed flow") = idx;
        }
        f
    }

    /// Removes and returns all flows whose bytes have been fully delivered,
    /// in ascending id order.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        // Fast path: the cached minimum deadline says nothing is due, so skip
        // the scan entirely. This is what keeps speculative polling (every
        // event step asks every allocator) O(1).
        if self.next_deadline > now || self.flows.is_empty() {
            return Vec::new();
        }
        let dt = self.last_advance.since(self.synced).as_secs_f64();
        let mut done: Vec<FlowId> = Vec::new();
        let mut min_left = SimTime::FAR_FUTURE;
        for f in self.flows.iter_mut() {
            if f.deadline > now {
                min_left = min_left.min(f.deadline);
                continue;
            }
            if (f.remaining - f.rate * dt).max(0.0) <= BYTES_EPSILON {
                done.push(f.id);
            } else {
                // Floating-point drift: the deadline undershot the true
                // completion by a whisker. Reschedule from current progress.
                let left = (f.remaining - f.rate * dt).max(0.0);
                f.deadline = now + SimDuration::from_secs_f64(left / f.rate).max(SimDuration::NANO);
                min_left = min_left.min(f.deadline);
            }
        }
        if done.is_empty() {
            // Everything that looked due healed forward; refresh the cache so
            // the fast path works again.
            self.next_deadline = min_left;
            return done;
        }
        self.materialize();
        done.sort_unstable();
        for id in &done {
            let idx = self.index.remove(id).expect("completed flow present");
            let f = self.remove_at(idx);
            self.delivered += f.remaining; // at most BYTES_EPSILON of dust
        }
        // The reallocation triggered here recomputes `next_deadline`.
        self.after_mutation();
        done
    }

    /// Instant of the next flow completion if the flow set does not change.
    ///
    /// # Contract
    ///
    /// `now` may be at or after the last observed time: the allocator first
    /// self-advances to `now` (draining flows at their current rates), then
    /// reads the cached minimum deadline. Passing a `now` earlier than a
    /// previously observed instant panics with "time ran backwards". Must not
    /// be called inside an open [`FlowAllocator::begin_update`] batch, where
    /// rates are stale by construction.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(
            self.batch_depth == 0,
            "next_completion inside an open batch"
        );
        self.advance(now);
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(
            self.next_deadline < SimTime::FAR_FUTURE,
            "live flow without a deadline"
        );
        Some(self.next_deadline.max(now))
    }

    /// Recomputes the max-min fair allocation by progressive filling over the
    /// per-port indices: each round finds the bottleneck share, then freezes
    /// every not-yet-frozen flow crossing a port at that share. Refreshes the
    /// per-port used-rate accumulators and the cached next deadline.
    fn reallocate(&mut self) {
        let timer = Instant::now();
        self.reallocs += 1;
        // Virtual drain since `synced` is settled inside the freeze loop
        // (each flow drains at its old rate just before the new one lands),
        // so reallocation is a single pass over the flows.
        let dt = self.last_advance.since(self.synced).as_secs_f64();
        self.synced = self.last_advance;
        for u in &mut self.tx_used {
            *u = 0.0;
        }
        for u in &mut self.rx_used {
            *u = 0.0;
        }
        self.next_deadline = SimTime::FAR_FUTURE;
        if !self.flows.is_empty() {
            self.fill_rates(dt);
            #[cfg(feature = "slowcheck")]
            self.assert_matches_reference();
        }
        self.alloc_nanos += timer.elapsed().as_nanos() as u64;
    }

    /// Progressive filling proper: drains each flow at its old rate over
    /// `dt`, sets its new `rate`, and refreshes its completion deadline —
    /// all at the moment it freezes (every flow freezes exactly once).
    fn fill_rates(&mut self, dt: f64) {
        let FlowAllocator {
            tx_cap,
            rx_cap,
            flows,
            tx_flows,
            rx_flows,
            tx_used,
            rx_used,
            next_deadline,
            scratch_left,
            scratch_n,
            freeze_stamp,
            last_advance,
            delivered,
            ..
        } = self;
        let now = *last_advance;
        let n = tx_cap.len();
        let (tx_left, rx_left) = scratch_left.split_at_mut(n);
        let (tx_n, rx_n) = scratch_n.split_at_mut(n);
        tx_left.copy_from_slice(tx_cap);
        rx_left.copy_from_slice(rx_cap);
        for i in 0..n {
            tx_n[i] = tx_flows[i].len() as u32;
            rx_n[i] = rx_flows[i].len() as u32;
        }
        let mut unfrozen = flows.len();
        *freeze_stamp += 1;
        let stamp = *freeze_stamp;
        // Freezing a flow: drain it at the old rate, assign the share, and
        // refresh its completion deadline (folding it into the cached min).
        let mut freeze = |f: &mut Flow, share: f64| {
            let drain = (f.rate * dt).min(f.remaining);
            f.remaining -= drain;
            *delivered += drain;
            f.frozen_at = stamp;
            // An unchanged rate means the (absolute) completion instant is
            // unchanged too; keeping the stored deadline skips the division
            // and avoids re-rounding drift.
            if f.rate != share || f.remaining <= BYTES_EPSILON {
                f.rate = share;
                f.deadline = if f.remaining <= BYTES_EPSILON {
                    now
                } else {
                    debug_assert!(share > 0.0, "active flow with zero rate");
                    now + SimDuration::from_secs_f64(f.remaining / share).max(SimDuration::NANO)
                };
            }
            *next_deadline = (*next_deadline).min(f.deadline);
        };
        while unfrozen > 0 {
            // The bottleneck port is the one offering the smallest fair share.
            let mut share = f64::INFINITY;
            for i in 0..n {
                if tx_n[i] > 0 {
                    share = share.min(tx_left[i] / tx_n[i] as f64);
                }
                if rx_n[i] > 0 {
                    share = share.min(rx_left[i] / rx_n[i] as f64);
                }
            }
            debug_assert!(share.is_finite());
            let tol = share * 1e-12 + 1e-15;
            let before = unfrozen;
            // Freeze whole ports sitting at the bottleneck share. Freezing a
            // flow debits both its ports, which can only keep other ports at
            // or above the share, so port-order traversal freezes exactly the
            // flows the per-flow round would.
            for p in 0..n {
                if tx_n[p] > 0 && tx_left[p] / tx_n[p] as f64 <= share + tol {
                    for &i in &tx_flows[p] {
                        let f = &mut flows[i as usize];
                        if f.frozen_at == stamp {
                            continue;
                        }
                        freeze(f, share);
                        tx_left[f.src] -= share;
                        tx_n[f.src] -= 1;
                        rx_left[f.dst] -= share;
                        rx_n[f.dst] -= 1;
                        unfrozen -= 1;
                    }
                }
                if rx_n[p] > 0 && rx_left[p] / rx_n[p] as f64 <= share + tol {
                    for &i in &rx_flows[p] {
                        let f = &mut flows[i as usize];
                        if f.frozen_at == stamp {
                            continue;
                        }
                        freeze(f, share);
                        tx_left[f.src] -= share;
                        tx_n[f.src] -= 1;
                        rx_left[f.dst] -= share;
                        rx_n[f.dst] -= 1;
                        unfrozen -= 1;
                    }
                }
            }
            debug_assert!(unfrozen < before, "progressive filling made no progress");
            if unfrozen >= before {
                break; // release-mode safety valve; unreachable in practice
            }
        }
        // Allocated rate per port is whatever progressive filling debited.
        for i in 0..n {
            tx_used[i] = tx_cap[i] - tx_left[i];
            rx_used[i] = rx_cap[i] - rx_left[i];
        }
    }

    /// The original quadratic progressive-filling algorithm, kept verbatim as
    /// the executable specification of max-min fairness. Returns the rate for
    /// every active flow without touching allocator state. With the
    /// `slowcheck` feature, every reallocation is checked against this.
    pub fn reference_reallocate(&self) -> BTreeMap<FlowId, f64> {
        let n = self.nodes();
        let mut rates: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut tx_left = self.tx_cap.clone();
        let mut rx_left = self.rx_cap.clone();
        let mut tx_count = vec![0usize; n];
        let mut rx_count = vec![0usize; n];
        let mut unfrozen: Vec<FlowId> = self.index.keys().copied().collect();
        for f in self.flows.iter() {
            tx_count[f.src] += 1;
            rx_count[f.dst] += 1;
        }
        while !unfrozen.is_empty() {
            let mut share = f64::INFINITY;
            for i in 0..n {
                if tx_count[i] > 0 {
                    share = share.min(tx_left[i] / tx_count[i] as f64);
                }
                if rx_count[i] > 0 {
                    share = share.min(rx_left[i] / rx_count[i] as f64);
                }
            }
            debug_assert!(share.is_finite());
            let tol = share * 1e-12 + 1e-15;
            let mut frozen_any = false;
            let mut still: Vec<FlowId> = Vec::new();
            for id in unfrozen.drain(..) {
                let f = &self.flows[self.index[&id]];
                let tx_share = tx_left[f.src] / tx_count[f.src] as f64;
                let rx_share = rx_left[f.dst] / rx_count[f.dst] as f64;
                if tx_share <= share + tol || rx_share <= share + tol {
                    rates.insert(id, share);
                    tx_left[f.src] -= share;
                    rx_left[f.dst] -= share;
                    tx_count[f.src] -= 1;
                    rx_count[f.dst] -= 1;
                    frozen_any = true;
                } else {
                    still.push(id);
                }
            }
            debug_assert!(frozen_any, "progressive filling made no progress");
            if !frozen_any {
                break;
            }
            unfrozen = still;
        }
        rates
    }

    /// Asserts the incremental rates match the reference fixpoint.
    #[cfg(feature = "slowcheck")]
    fn assert_matches_reference(&self) {
        let reference = self.reference_reallocate();
        for f in &self.flows {
            let want = reference[&f.id];
            let tol = want.abs() * 1e-9 + 1e-12;
            debug_assert!(
                (f.rate - want).abs() <= tol,
                "rate mismatch for {:?}: incremental {} vs reference {want}",
                f.id,
                f.rate
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime(SimDuration::from_secs_f64(secs).0)
    }

    #[test]
    fn single_flow_gets_min_of_port_caps() {
        let mut fab = FlowAllocator::new(2, 100.0, 80.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 160.0);
        // Limited by the receiver at 80 B/s.
        assert_eq!(fab.rate(FlowId(1)), Some(80.0));
        assert_eq!(fab.next_completion(SimTime::ZERO), Some(t(2.0)));
    }

    #[test]
    fn receiver_shared_fairly() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 100.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 100.0);
        // Two senders into one receiver: 50 each.
        assert_eq!(fab.rate(FlowId(1)), Some(50.0));
        assert_eq!(fab.rate(FlowId(2)), Some(50.0));
        assert!((fab.rx_busy_fraction(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maxmin_redistributes_leftover_capacity() {
        // Node 0 sends to 1 and 2; node 3 also sends to 2.
        // Receiver 2 is the bottleneck for its two flows (50 each), and flow
        // 0→1 can then use the rest of 0's tx capacity (50).
        let mut fab = FlowAllocator::new(4, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1e9);
        fab.insert(SimTime::ZERO, FlowId(2), 0, 2, 1e9);
        fab.insert(SimTime::ZERO, FlowId(3), 3, 2, 1e9);
        let r1 = fab.rate(FlowId(1)).unwrap();
        let r2 = fab.rate(FlowId(2)).unwrap();
        let r3 = fab.rate(FlowId(3)).unwrap();
        assert!((r2 - 50.0).abs() < 1e-6, "r2={r2}");
        assert!((r3 - 50.0).abs() < 1e-6, "r3={r3}");
        assert!((r1 - 50.0).abs() < 1e-6, "r1={r1}");
        // Total out of node 0 respects its tx cap.
        assert!(r1 + r2 <= 100.0 + 1e-6);
    }

    #[test]
    fn completion_then_speedup() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 50.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 200.0);
        // Both at 50 B/s; flow 1 done at t=1.
        let c = fab.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c, t(1.0));
        fab.advance(c);
        assert_eq!(fab.take_completed(c), vec![FlowId(1)]);
        // Flow 2 now gets the full 100 B/s with 150 left: done at t=2.5.
        assert_eq!(fab.next_completion(c), Some(t(2.5)));
    }

    #[test]
    fn conservation_of_bytes() {
        let mut fab = FlowAllocator::new(4, 10.0, 10.0);
        let sizes = [3.0, 7.0, 11.0, 5.0];
        fab.insert(SimTime::ZERO, FlowId(0), 0, 1, sizes[0]);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, sizes[1]);
        fab.insert(SimTime::ZERO, FlowId(2), 3, 1, sizes[2]);
        fab.insert(SimTime::ZERO, FlowId(3), 2, 0, sizes[3]);
        let mut now = SimTime::ZERO;
        while fab.active_flows() > 0 {
            now = fab.next_completion(now).unwrap();
            fab.advance(now);
            fab.take_completed(now);
        }
        let total: f64 = sizes.iter().sum();
        assert!((fab.total_delivered() - total).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_flow_panics() {
        let mut fab = FlowAllocator::new(2, 1.0, 1.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1.0);
    }

    #[test]
    fn rates_match_reference_fixpoint() {
        let mut fab = FlowAllocator::new(6, 125e6, 125e6);
        for i in 0..24u64 {
            fab.insert(
                SimTime::ZERO,
                FlowId(i),
                (i % 6) as usize,
                ((i * 5 + 2) % 6) as usize,
                1e6 * (i + 1) as f64,
            );
        }
        let reference = fab.reference_reallocate();
        for (id, want) in reference {
            let got = fab.rate(id).unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-9 + 1e-12,
                "{id:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn batched_insert_matches_unbatched_and_reallocates_once() {
        let mut plain = FlowAllocator::new(8, 1e8, 1e8);
        let mut batched = FlowAllocator::new(8, 1e8, 1e8);
        batched.begin_update();
        for i in 0..32u64 {
            let (src, dst) = ((i % 8) as usize, ((i + 3) % 8) as usize);
            plain.insert(SimTime::ZERO, FlowId(i), src, dst, 1e6);
            batched.insert(SimTime::ZERO, FlowId(i), src, dst, 1e6);
        }
        let epoch = batched.commit(SimTime::ZERO);
        assert_eq!(epoch, plain.epoch());
        for i in 0..32u64 {
            assert_eq!(batched.rate(FlowId(i)), plain.rate(FlowId(i)));
        }
        // One reallocation for the whole batch vs one per insert.
        assert_eq!(batched.stats().reallocs, 1);
        assert_eq!(plain.stats().reallocs, 32);
        // Both agree on the next completion too.
        assert_eq!(
            batched.next_completion(SimTime::ZERO),
            plain.next_completion(SimTime::ZERO)
        );
    }

    #[test]
    fn busy_fractions_track_port_rates() {
        let mut fab = FlowAllocator::new(4, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1e9);
        fab.insert(SimTime::ZERO, FlowId(2), 0, 2, 1e9);
        fab.insert(SimTime::ZERO, FlowId(3), 3, 2, 1e9);
        let r1 = fab.rate(FlowId(1)).unwrap();
        let r2 = fab.rate(FlowId(2)).unwrap();
        let r3 = fab.rate(FlowId(3)).unwrap();
        assert!((fab.tx_busy_fraction(0) - (r1 + r2) / 100.0).abs() < 1e-12);
        assert!((fab.rx_busy_fraction(2) - (r2 + r3) / 100.0).abs() < 1e-12);
        assert!((fab.rx_busy_fraction(1) - r1 / 100.0).abs() < 1e-12);
        assert_eq!(fab.tx_busy_fraction(1), 0.0);
        // Removal updates the accumulators at the triggered reallocation.
        fab.remove(SimTime::ZERO, FlowId(2));
        let r1b = fab.rate(FlowId(1)).unwrap();
        assert!((fab.tx_busy_fraction(0) - r1b / 100.0).abs() < 1e-12);
    }

    #[test]
    fn removal_invalidates_stale_heap_entries() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 100.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 100.0);
        // Both at 50 B/s → first completion would be t=2.
        assert_eq!(fab.next_completion(SimTime::ZERO), Some(t(2.0)));
        // Removing flow 1 speeds flow 2 up to 100 B/s → completion at t=1.
        fab.remove(SimTime::ZERO, FlowId(1));
        assert_eq!(fab.next_completion(SimTime::ZERO), Some(t(1.0)));
        // And the stale t=2 entry never resurfaces.
        fab.advance(t(1.0));
        assert_eq!(fab.take_completed(t(1.0)), vec![FlowId(2)]);
        assert_eq!(fab.next_completion(t(1.0)), None);
    }

    #[test]
    fn take_completed_returns_ascending_ids() {
        let mut fab = FlowAllocator::new(8, 100.0, 100.0);
        // Insert in descending id order; all finish simultaneously.
        for id in (0..4u64).rev() {
            fab.insert(
                SimTime::ZERO,
                FlowId(id),
                id as usize,
                (id + 4) as usize,
                100.0,
            );
        }
        let c = fab.next_completion(SimTime::ZERO).unwrap();
        let done = fab.take_completed(c);
        assert_eq!(done, vec![FlowId(0), FlowId(1), FlowId(2), FlowId(3)]);
    }

    #[test]
    #[should_panic(expected = "commit without begin_update")]
    fn commit_without_begin_panics() {
        let mut fab = FlowAllocator::new(2, 1.0, 1.0);
        fab.commit(SimTime::ZERO);
    }
}
