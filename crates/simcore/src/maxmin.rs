//! Max-min fair bandwidth allocation for network flows.
//!
//! Shuffle traffic is modelled as fluid flows between machines. Each machine
//! has a full-duplex NIC: a transmit capacity and a receive capacity. A flow's
//! rate is set by progressive filling (the textbook max-min algorithm):
//! repeatedly find the most-contended port, freeze its flows at their fair
//! share, remove that capacity, and continue. The result is the unique max-min
//! fair allocation, recomputed whenever a flow starts or finishes.
//!
//! This is the same fluid abstraction the paper leans on when reasoning about
//! the network: what matters for performance clarity is how many flows share
//! each sender and receiver link, not packet-level dynamics.
//!
//! # Incremental implementation: flow classes over port resources
//!
//! An all-to-all shuffle wave holds ≈M² concurrent flows on an M-machine
//! fabric, and the executor mutates the flow set at almost every simulation
//! event. Per-event cost must therefore be proportional to what the event
//! *touches*, never to the cluster-wide flow count. The allocator gets there
//! in two layers:
//!
//! * **Flow classes keyed by `(src, dst)` — exact, not approximate.** Two
//!   flows with the same source and destination port see identical
//!   constraints, and swapping them is an automorphism of the max-min system;
//!   by uniqueness of the max-min fixpoint they carry the same rate at every
//!   instant. (Coarser keys do not work: flows whose ports merely have equal
//!   flow *counts* can have different rates, because the rate depends on the
//!   whole constraint graph.) With the `slowcheck` cargo feature every
//!   reallocation is `debug_assert!`-checked against the quadratic per-flow
//!   reference, [`FlowAllocator::reference_reallocate`].
//! * **Progressive filling runs over port *resources*, not classes.** The
//!   fabric has `2n` resources (each port's tx side and rx side). Filling
//!   maintains only per-resource scratch (`left`, `count`, cached share) plus
//!   compact per-resource entry lists — one `u64` packing
//!   `(class, peer resource, member count)` per class, kept in sync on every
//!   membership change; freezing a bottleneck resource streams its entries
//!   and debits the unfrozen peers. No per-class state is read or written
//!   during filling at all. A class's rate is *derived* afterwards as
//!   `min(freeze_share(tx src), freeze_share(rx dst))`: round shares are
//!   strictly increasing (debiting a resource at share `s` leaves its fair
//!   share strictly above `s`), so the min recovers the share of whichever
//!   resource froze the class first — exactly what per-class filling would
//!   have assigned.
//! * **Share-diff propagation.** After filling, the new per-resource freeze
//!   shares are diffed against the previous reallocation's (`stored_share`).
//!   Only classes on *changed* resources — plus classes whose membership
//!   changed since the last reallocation (`pending_dirty`) — get their rate,
//!   drain, and deadline refreshed. A reallocation therefore costs
//!   O(resource entries + rounds × ports) to fill and O(changed classes) to
//!   apply; untouched classes are never visited.
//! * **Lazy per-flow drain.** Each class keeps a cumulative per-member byte
//!   counter `cum` (valid as of the class's own `synced` instant). A flow
//!   stores only the value `cum` will reach when it completes
//!   (`finish_cum`); its remaining bytes materialize on demand as
//!   `finish_cum - cum`. Removing or completing one flow touches one class,
//!   not every flow. The global `delivered` total is maintained
//!   incrementally as classes drain.
//! * **Completion heaps.** Inside a class, completion order is the static
//!   order of `finish_cum`, so members sit in a per-class binary min-heap
//!   with lazy deletion (a serial number invalidates entries whose flow was
//!   removed), and the earliest live member's finish mark is cached in
//!   `min_finish`. Across classes, a global min-heap keyed on
//!   `(deadline, class)` with generation-based lazy invalidation makes
//!   [`FlowAllocator::next_completion`] O(1) amortized and
//!   [`FlowAllocator::take_completed`] O(due · log classes). A completion
//!   wave never rescans the flow set, and the returned ids keep the
//!   deterministic ascending order.
//! * **Busy fractions on demand.** [`FlowAllocator::tx_busy_fraction`] /
//!   [`FlowAllocator::rx_busy_fraction`] sum `rate × size` over the port's
//!   entry list: O(classes at the port), exact, and zero cost on the
//!   reallocation hot path.
//! * **Batched mutations** ([`FlowAllocator::begin_update`] /
//!   [`FlowAllocator::commit`]) collapse a wave of inserts or removals at one
//!   instant into a single reallocation.
//! * **Per-pair link state** ([`FlowAllocator::set_pair_cut`]) models
//!   network partitions: while a `(src, dst)` pair is cut its class carries
//!   rate zero and deadline `FAR_FUTURE`, and is withdrawn from progressive
//!   filling entirely (its flows release both ports' capacity, exactly as if
//!   removed) — but membership, delivered bytes, and finish marks stay put,
//!   so healing the pair restores the class into the fill and the resulting
//!   allocation is bit-identical to one that never saw the cut. Cut state is
//!   carried on the class entry size (zero ⇔ cut, impossible for a live
//!   class otherwise), so the fill and apply hot paths pay one integer
//!   compare per entry and nothing else when no pair is cut.
//! * **Approximate mode** ([`MaxMinPolicy`]) trades a bounded, one-sided rate
//!   error for control-plane work at 1000-machine scale. ε-fair fills
//!   terminate the round loop once every surviving class's exact rate is
//!   provably within a (1 + ε/3) factor of the current bottleneck share;
//!   share-diff application defers refreshing resources whose share *rose*
//!   by less than a (1 + ε/3) factor (decreases always apply), so applied
//!   rates sit in `[exact · (1 − ε), exact]` and port capacity is never
//!   exceeded; and completion coalescing fires every flow due within a time
//!   quantum Δ of a completion wave together, in the same deterministic
//!   ascending-id order, so a wave costs one reallocation instead of one per
//!   distinct deadline. ε = 0 and Δ = 0 (the default) run the very same code
//!   path and are bit-identical to the exact allocator, which remains the
//!   spec (`reference_reallocate` + the `slowcheck` feature).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::Instant;

use crate::fx::{FxHashMap, FxHashSet};
use crate::stats::SimStats;
use crate::time::{SimDuration, SimTime};

/// Remaining bytes below this are considered transferred.
pub(crate) const BYTES_EPSILON: f64 = 1e-6;

/// Identifies one flow. Allocated by the caller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Approximation policy for a [`FlowAllocator`]. The default (ε = 0, Δ = 0)
/// is the exact max-min allocator, bit-identical to
/// [`FlowAllocator::new`]'s behaviour before this policy existed.
///
/// With ε > 0 every applied rate is guaranteed to stay within
/// `[exact · (1 − ε), exact]` of the exact max-min rate for the current flow
/// set (one-sided: approximation only ever under-allocates, so port capacity
/// is never exceeded). With Δ > 0, a completion wave additionally collects
/// every flow due within Δ of the wave instant, completing each at most
/// `rate · Δ` bytes early (the shortfall is forgiven, so delivered-byte
/// conservation still holds exactly).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MaxMinPolicy {
    /// Relative rate tolerance ε ∈ [0, 1). 0 = exact fills.
    pub epsilon: f64,
    /// Completion-coalescing quantum Δ. Zero = every wave fires exactly the
    /// flows due at its instant.
    pub quantum: SimDuration,
}

impl Default for MaxMinPolicy {
    fn default() -> Self {
        MaxMinPolicy {
            epsilon: 0.0,
            quantum: SimDuration::ZERO,
        }
    }
}

/// Index of a machine (port) in the fabric.
pub type NodeId = usize;

/// `f64` completion key ordered by `total_cmp` (finite by construction).
#[derive(Clone, Copy, PartialEq, Debug)]
struct FinishCum(f64);

impl Eq for FinishCum {}

impl Ord for FinishCum {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for FinishCum {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-flow state: everything else lives on the flow's class.
#[derive(Clone, Copy, Debug)]
struct FlowState {
    /// Slab index of the `(src, dst)` class this flow belongs to (immutable
    /// for the flow's lifetime — a flow never migrates between classes).
    class: u32,
    /// Value of the class's `cum` at which this flow completes.
    finish_cum: f64,
    /// Uniqueness guard for the class member heap: a re-inserted id gets a
    /// fresh serial, so entries from its previous life are recognizably stale.
    serial: u64,
}

/// One slot of a per-resource entry list, packed into a word so progressive
/// filling streams 8 bytes per class with no side lookups: the class index,
/// the class's *other* resource (for a tx-side entry the peer is the
/// destination's rx resource, and vice versa), and the class's live size
/// (mirrored here on every membership change).
///
/// Layout: bits 0..22 size, 22..40 peer resource, 40..64 class index.
type PortEntry = u64;

const ENTRY_SIZE_BITS: u32 = 22;
const ENTRY_PEER_BITS: u32 = 18;
const ENTRY_SIZE_MASK: u64 = (1 << ENTRY_SIZE_BITS) - 1;
const ENTRY_PEER_MASK: u64 = (1 << ENTRY_PEER_BITS) - 1;

#[inline]
fn pack_entry(ci: u32, peer: u32, size: u32) -> PortEntry {
    debug_assert!(size as u64 <= ENTRY_SIZE_MASK && peer as u64 <= ENTRY_PEER_MASK);
    ((ci as u64) << (ENTRY_SIZE_BITS + ENTRY_PEER_BITS))
        | ((peer as u64) << ENTRY_SIZE_BITS)
        | size as u64
}

#[inline]
fn entry_ci(e: PortEntry) -> u32 {
    (e >> (ENTRY_SIZE_BITS + ENTRY_PEER_BITS)) as u32
}

#[inline]
fn entry_peer(e: PortEntry) -> u32 {
    ((e >> ENTRY_SIZE_BITS) & ENTRY_PEER_MASK) as u32
}

#[inline]
fn entry_size(e: PortEntry) -> u32 {
    (e & ENTRY_SIZE_MASK) as u32
}

/// Per-resource progressive-filling scratch, fused into one 16-byte record so
/// a debit dirties a single cache line.
#[derive(Clone, Copy, Debug)]
struct ResFill {
    /// Capacity not yet claimed by frozen classes.
    left: f64,
    /// Flows not yet frozen (0 = frozen or out of the game).
    cnt: u32,
    /// The resource was debited: its `share_cache` entry is out of date.
    stale: bool,
}

/// One `(src, dst)` equivalence class of flows. All members carry the same
/// max-min rate at every instant (see module docs), so drain progress and the
/// completion schedule live here instead of on flows. The rate and size sit
/// in dense side arrays (`c_rate`, `c_size`) so the reallocation hot path
/// never touches this struct for unchanged classes.
#[derive(Debug)]
// Hot update fields first and the struct line-aligned, so a rate/deadline
// refresh (the per-class unit of work on the reallocation hot path) touches
// exactly one cache line of the slab.
#[repr(C, align(64))]
struct FlowClass {
    /// Bytes delivered per member since the class was created, valid as of
    /// `synced`; drain between `synced` and the allocator clock is virtual.
    cum: f64,
    synced: SimTime,
    /// Cached `finish_cum` of the earliest live member (infinity if none).
    /// Maintained on insert (min), removal of the minimum (recompute), and
    /// completion (recompute) — so deadline refreshes never search the heap.
    min_finish: f64,
    /// Completion instant of the earliest member at the current rate.
    deadline: SimTime,
    /// Generation of this class's live entry in the global deadline heap;
    /// 0 means no entry yet.
    gen: u64,
    /// Membership changed since the last reallocation applied shares; the
    /// class sits in `pending_dirty` and gets its deadline refreshed even if
    /// neither of its resources' shares moved.
    members_dirty: bool,
    /// The `(src, dst)` pair is cut (network partition): rate pinned to zero,
    /// withdrawn from progressive filling, deadline `FAR_FUTURE`.
    cut: bool,
    // ---- cold from here: touched on membership changes only ----
    src: NodeId,
    dst: NodeId,
    /// Members by completion order; lazy deletion via the serial.
    members: BinaryHeap<Reverse<(FinishCum, FlowId, u64)>>,
    /// Position inside the tx / rx resource entry lists.
    tx_slot: u32,
    rx_slot: u32,
}

/// A fabric of full-duplex ports carrying max-min fair fluid flows.
///
/// Resources are indexed `0..n` for port tx sides and `n..2n` for rx sides.
#[derive(Debug)]
pub struct FlowAllocator {
    tx_cap: Vec<f64>,
    rx_cap: Vec<f64>,
    /// Nominal capacities; `set_port_scale` derives the live ones from these
    /// so degradation windows compose as scale × base, never scale × scale.
    tx_base: Vec<f64>,
    rx_base: Vec<f64>,
    /// Approximation contract (exact by default); see [`MaxMinPolicy`].
    policy: MaxMinPolicy,
    /// `1 + ε/3`, the per-mechanism slack factor: the fill's early
    /// termination and the apply skip each spend a third of ε so their
    /// product stays within `1 + ε`. Exactly `1.0` in exact mode, which
    /// collapses both mechanisms to bit-identical exact behaviour.
    eps_factor: f64,
    /// Id → per-flow state.
    index: BTreeMap<FlowId, FlowState>,
    /// Class slab; slots of destroyed classes (size 0) are recycled.
    classes: Vec<FlowClass>,
    /// Dense hot mirrors of the slab: current per-member rate and live size.
    c_rate: Vec<f64>,
    c_size: Vec<u32>,
    free_classes: Vec<u32>,
    /// `(src, dst)` → live class slot. Fx-hashed: the pair key is two small
    /// integers hit on every insert/remove, and nothing observable depends on
    /// the map's iteration order (the only iteration, the class-heap rebuild
    /// in `apply_shares`, sorts before heapifying).
    pair_index: FxHashMap<(NodeId, NodeId), u32>,
    /// Directed pairs currently cut by a partition. Source of truth for cut
    /// state; live classes mirror it in `FlowClass::cut`. Never iterated.
    cut_pairs: FxHashSet<(NodeId, NodeId)>,
    /// Live classes currently cut (subtracted from the fill's unfrozen
    /// count, since cut classes never freeze).
    cut_live: usize,
    /// Per-resource entry lists (dense, swap-removed).
    res_list: Vec<Vec<PortEntry>>,
    /// Per-resource live *flow* counts (Σ class sizes), maintained on mutation.
    res_nflows: Vec<u32>,
    /// Progressive-filling scratch, `2n`-sized and reused.
    res_fill: Vec<ResFill>,
    share_cache: Vec<f64>,
    /// This reallocation's freeze share per resource (∞ = never froze).
    frozen_share: Vec<f64>,
    /// Previous reallocation's freeze shares, for the dirty diff.
    stored_share: Vec<f64>,
    dirty_res: Vec<u32>,
    /// Dense mirror of `dirty_res` membership for the current application,
    /// so the dirty walk can read a peer's *effective* share in O(1).
    res_dirty: Vec<bool>,
    /// Classes whose membership changed since shares were last applied.
    pending_dirty: Vec<u32>,
    /// Min-heap of (deadline, class, generation); stale entries (dead class
    /// or generation mismatch) are skipped lazily.
    class_heap: BinaryHeap<Reverse<(SimTime, u32, u64)>>,
    gen_counter: u64,
    serial_counter: u64,
    last_advance: SimTime,
    delivered: f64,
    epoch: u64,
    /// Open `begin_update` scopes; mutations defer reallocation while > 0.
    batch_depth: u32,
    /// A mutation happened inside the open batch.
    dirty: bool,
    reallocs: u64,
    alloc_nanos: u64,
    completion_nanos: u64,
}

impl FlowAllocator {
    /// Creates a fabric of `nodes` ports, each with the given transmit and
    /// receive capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is not strictly positive and finite.
    pub fn new(nodes: usize, tx_cap: f64, rx_cap: f64) -> FlowAllocator {
        Self::new_with_policy(nodes, tx_cap, rx_cap, MaxMinPolicy::default())
    }

    /// Creates a fabric under an explicit [`MaxMinPolicy`]. The default
    /// policy is bit-identical to [`FlowAllocator::new`].
    ///
    /// # Panics
    ///
    /// Panics if a capacity is not strictly positive and finite, if
    /// `policy.epsilon` is outside `[0, 1)`, or if it is not finite.
    pub fn new_with_policy(
        nodes: usize,
        tx_cap: f64,
        rx_cap: f64,
        policy: MaxMinPolicy,
    ) -> FlowAllocator {
        assert!(tx_cap.is_finite() && tx_cap > 0.0, "bad tx capacity");
        assert!(rx_cap.is_finite() && rx_cap > 0.0, "bad rx capacity");
        assert!(
            policy.epsilon.is_finite() && (0.0..1.0).contains(&policy.epsilon),
            "bad epsilon: {}",
            policy.epsilon
        );
        let nr = 2 * nodes;
        FlowAllocator {
            tx_cap: vec![tx_cap; nodes],
            rx_cap: vec![rx_cap; nodes],
            tx_base: vec![tx_cap; nodes],
            rx_base: vec![rx_cap; nodes],
            policy,
            eps_factor: 1.0 + policy.epsilon / 3.0,
            index: BTreeMap::new(),
            classes: Vec::new(),
            c_rate: Vec::new(),
            c_size: Vec::new(),
            free_classes: Vec::new(),
            pair_index: FxHashMap::default(),
            cut_pairs: FxHashSet::default(),
            cut_live: 0,
            res_list: vec![Vec::new(); nr],
            res_nflows: vec![0; nr],
            res_fill: vec![
                ResFill {
                    left: 0.0,
                    cnt: 0,
                    stale: false,
                };
                nr
            ],
            share_cache: vec![0.0; nr],
            frozen_share: vec![f64::INFINITY; nr],
            stored_share: vec![f64::INFINITY; nr],
            dirty_res: Vec::new(),
            res_dirty: vec![false; nr],
            pending_dirty: Vec::new(),
            class_heap: BinaryHeap::new(),
            gen_counter: 0,
            serial_counter: 0,
            last_advance: SimTime::ZERO,
            delivered: 0.0,
            epoch: 0,
            batch_depth: 0,
            dirty: false,
            reallocs: 0,
            alloc_nanos: 0,
            completion_nanos: 0,
        }
    }

    /// Number of ports.
    pub fn nodes(&self) -> usize {
        self.tx_cap.len()
    }

    /// The approximation policy this fabric runs under.
    pub fn policy(&self) -> MaxMinPolicy {
        self.policy
    }

    /// Scales both sides of `node`'s port to `factor × nominal capacity`
    /// (link degradation; `1.0` restores the nominal rate). Absolute, not
    /// cumulative, so degradation windows restore exactly. Triggers a
    /// reallocation (or defers it to the enclosing batch).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite, or `node` is
    /// out of range.
    pub fn set_port_scale(&mut self, now: SimTime, node: NodeId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bad port scale: {factor}"
        );
        assert!(node < self.nodes(), "bad node id");
        self.advance(now);
        self.tx_cap[node] = self.tx_base[node] * factor;
        self.rx_cap[node] = self.rx_base[node] * factor;
        self.after_mutation();
    }

    /// Cuts or heals the directed `(src, dst)` pair (network partition).
    ///
    /// While cut, every flow of the pair — current and future — carries rate
    /// zero and never completes; both ports' capacity is redistributed to the
    /// surviving classes exactly as if the cut flows had been removed.
    /// Healing re-enters the class into progressive filling with its
    /// membership and drain progress intact, so the restored allocation is
    /// bit-identical to one computed for the same flow set without the cut.
    /// Idempotent: repeating the current state is a no-op (no reallocation,
    /// no epoch bump). Composes with [`FlowAllocator::set_port_scale`] and
    /// with ε/Δ policies.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn set_pair_cut(&mut self, now: SimTime, src: NodeId, dst: NodeId, cut: bool) {
        assert!(src < self.nodes() && dst < self.nodes(), "bad node id");
        self.advance(now);
        let changed = if cut {
            self.cut_pairs.insert((src, dst))
        } else {
            self.cut_pairs.remove(&(src, dst))
        };
        if !changed {
            return;
        }
        let Some(&ci) = self.pair_index.get(&(src, dst)) else {
            return; // no live class; future inserts will see `cut_pairs`
        };
        let i = ci as usize;
        let n = self.nodes();
        let size = self.c_size[i];
        if cut {
            // Materialize drain at the old rate, then park the class: zero
            // rate, zero entry size (withdrawn from filling), far deadline.
            Self::drain_class(
                &mut self.classes[i],
                self.c_rate[i],
                size,
                &mut self.delivered,
                now,
            );
            self.c_rate[i] = 0.0;
            let class = &mut self.classes[i];
            class.cut = true;
            self.res_nflows[class.src] -= size;
            self.res_nflows[n + class.dst] -= size;
            Self::sync_entry_size(&mut self.res_list, n, &self.classes[i], 0);
            self.cut_live += 1;
            self.gen_counter += 1;
            let class = &mut self.classes[i];
            class.gen = self.gen_counter;
            class.deadline = SimTime::FAR_FUTURE;
            self.class_heap
                .push(Reverse((SimTime::FAR_FUTURE, ci, class.gen)));
        } else {
            let class = &mut self.classes[i];
            class.cut = false;
            self.res_nflows[class.src] += size;
            self.res_nflows[n + class.dst] += size;
            Self::sync_entry_size(&mut self.res_list, n, &self.classes[i], size);
            self.cut_live -= 1;
            // Force a deadline refresh even if the class was already marked
            // pending before the cut (the pending list may have been drained
            // while it was parked).
            self.classes[i].members_dirty = false;
            self.mark_pending(ci);
        }
        self.after_mutation();
    }

    /// True when the directed `(src, dst)` pair is currently cut.
    pub fn pair_cut(&self, src: NodeId, dst: NodeId) -> bool {
        self.cut_pairs.contains(&(src, dst))
    }

    /// Stale-event guard; bumped on every flow-set mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True while an open batch holds a deferred mutation, i.e. the next
    /// [`FlowAllocator::commit`] will actually reallocate. The hierarchical
    /// fabric uses this to count how many rack allocators have real commit
    /// work before deciding whether to fan the commits out to worker threads.
    pub(crate) fn batch_pending(&self) -> bool {
        self.batch_depth > 0 && self.dirty
    }

    /// Number of flows in flight.
    pub fn active_flows(&self) -> usize {
        self.index.len()
    }

    /// Number of live `(src, dst)` flow classes.
    pub fn active_classes(&self) -> usize {
        self.pair_index.len()
    }

    /// Total bytes delivered so far across all flows.
    ///
    /// O(classes): pending virtual drain is summed per class, not per flow.
    pub fn total_delivered(&self) -> f64 {
        let now = self.last_advance;
        let pending: f64 = self
            .classes
            .iter()
            .enumerate()
            .filter(|(ci, _)| self.c_size[*ci] > 0)
            .map(|(ci, c)| {
                self.c_size[ci] as f64 * self.c_rate[ci] * now.since(c.synced).as_secs_f64()
            })
            .sum();
        self.delivered + pending
    }

    /// Current rate of `flow`, if active.
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        self.index.get(&flow).map(|f| self.c_rate[f.class as usize])
    }

    /// Control-plane cost counters for this allocator.
    pub fn stats(&self) -> SimStats {
        SimStats {
            reallocs: self.reallocs,
            alloc_nanos: self.alloc_nanos,
            completion_nanos: self.completion_nanos,
            ..SimStats::default()
        }
    }

    /// Fraction of `node`'s receive capacity currently in use.
    ///
    /// O(classes at the port): sums `rate × size` over the rx entry list, so
    /// the reallocation hot path carries no used-rate bookkeeping.
    pub fn rx_busy_fraction(&self, node: NodeId) -> f64 {
        let used: f64 = self.res_list[self.nodes() + node]
            .iter()
            .map(|&e| self.c_rate[entry_ci(e) as usize] * entry_size(e) as f64)
            .sum();
        used / self.rx_cap[node]
    }

    /// Fraction of `node`'s transmit capacity currently in use.
    ///
    /// O(classes at the port); see [`FlowAllocator::rx_busy_fraction`].
    pub fn tx_busy_fraction(&self, node: NodeId) -> f64 {
        let used: f64 = self.res_list[node]
            .iter()
            .map(|&e| self.c_rate[entry_ci(e) as usize] * entry_size(e) as f64)
            .sum();
        used / self.tx_cap[node]
    }

    /// Drains all flows at their current rates up to `now`.
    ///
    /// O(1): only the clock moves. Rates are constant between reallocations,
    /// so per-class progress is materialized lazily by the operations that
    /// touch a class (reallocation, removal, completion).
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance);
        self.last_advance = now;
        debug_assert!(
            !(dt > SimDuration::ZERO && self.batch_depth > 0 && self.dirty),
            "time advanced inside an open batch with pending mutations"
        );
    }

    /// Materializes one class's virtual drain up to the allocator clock,
    /// folding it into the global delivered total. Exact because rates are
    /// constant between reallocations.
    fn drain_class(class: &mut FlowClass, rate: f64, size: u32, delivered: &mut f64, now: SimTime) {
        let dt = now.since(class.synced).as_secs_f64();
        class.synced = now;
        if dt > 0.0 {
            let per_member = rate * dt;
            *delivered += size as f64 * per_member;
            class.cum += per_member;
        }
    }

    /// Opens a batched-update scope: mutations (insert / remove /
    /// take_completed) made before the matching [`FlowAllocator::commit`]
    /// defer their reallocation, so a wave of changes at one instant costs a
    /// single recomputation. Scopes nest; only the outermost commit
    /// reallocates. All mutations inside a batch must happen at the same
    /// instant (time must not advance until commit).
    pub fn begin_update(&mut self) {
        self.batch_depth += 1;
    }

    /// Closes a [`FlowAllocator::begin_update`] scope, reallocating once if
    /// any mutation happened inside it. Returns the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn commit(&mut self, now: SimTime) -> u64 {
        assert!(self.batch_depth > 0, "commit without begin_update");
        self.batch_depth -= 1;
        if self.batch_depth == 0 && self.dirty {
            self.advance(now);
            self.dirty = false;
            self.reallocate();
        }
        self.epoch
    }

    /// Reallocates now, or defers to the enclosing batch's commit.
    fn after_mutation(&mut self) {
        if self.batch_depth > 0 {
            self.dirty = true;
        } else {
            self.reallocate();
        }
        self.epoch += 1;
    }

    /// Flags `ci` for a deadline refresh at the next share application even
    /// if neither of its resources' freeze shares move.
    fn mark_pending(&mut self, ci: u32) {
        let class = &mut self.classes[ci as usize];
        if !class.members_dirty {
            class.members_dirty = true;
            self.pending_dirty.push(ci);
        }
    }

    /// Starts a flow of `bytes` from `src` to `dst`; returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics on duplicate id, out-of-range node, or non-positive size.
    pub fn insert(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
    ) -> u64 {
        assert!(bytes.is_finite() && bytes > 0.0, "bad flow size: {bytes}");
        assert!(src < self.nodes() && dst < self.nodes(), "bad node id");
        self.advance(now);
        let ci = match self.pair_index.get(&(src, dst)) {
            Some(&ci) => ci,
            None => self.create_class(src, dst, now),
        };
        let i = ci as usize;
        Self::drain_class(
            &mut self.classes[i],
            self.c_rate[i],
            self.c_size[i],
            &mut self.delivered,
            now,
        );
        let class = &mut self.classes[i];
        self.serial_counter += 1;
        let state = FlowState {
            class: ci,
            finish_cum: class.cum + bytes,
            serial: self.serial_counter,
        };
        let prev = self.index.insert(id, state);
        assert!(prev.is_none(), "flow {id:?} inserted twice");
        class
            .members
            .push(Reverse((FinishCum(state.finish_cum), id, state.serial)));
        if state.finish_cum < class.min_finish {
            class.min_finish = state.finish_cum;
        }
        self.c_size[i] += 1;
        let n = self.nodes();
        if self.classes[i].cut {
            // A cut class stays withdrawn from filling (entry size 0, no
            // resource flow counts) and keeps its FAR_FUTURE deadline; make
            // sure the global heap has a live entry so `peek_deadline` sees
            // the class even if every other class is cut too.
            let class = &mut self.classes[i];
            if class.gen == 0 || class.deadline != SimTime::FAR_FUTURE {
                self.gen_counter += 1;
                class.gen = self.gen_counter;
                class.deadline = SimTime::FAR_FUTURE;
                self.class_heap
                    .push(Reverse((SimTime::FAR_FUTURE, ci, class.gen)));
            }
        } else {
            Self::sync_entry_size(&mut self.res_list, n, &self.classes[i], self.c_size[i]);
            self.res_nflows[src] += 1;
            self.res_nflows[n + dst] += 1;
            self.mark_pending(ci);
        }
        self.after_mutation();
        self.epoch
    }

    /// Allocates (or recycles) a class slot for a new `(src, dst)` pair and
    /// links it into both resource entry lists.
    fn create_class(&mut self, src: NodeId, dst: NodeId, now: SimTime) -> u32 {
        let n = self.nodes();
        let cut = self.cut_pairs.contains(&(src, dst));
        let mut fresh = FlowClass {
            src,
            dst,
            members: BinaryHeap::new(),
            cum: 0.0,
            synced: now,
            min_finish: f64::INFINITY,
            deadline: SimTime::FAR_FUTURE,
            gen: 0,
            members_dirty: false,
            cut,
            tx_slot: self.res_list[src].len() as u32,
            rx_slot: self.res_list[n + dst].len() as u32,
        };
        let ci = match self.free_classes.pop() {
            Some(ci) => {
                // Recycled slot: adopt its retained (cleared) member-heap
                // allocation so wave churn stops reallocating heaps.
                fresh.members = std::mem::take(&mut self.classes[ci as usize].members);
                debug_assert!(fresh.members.is_empty());
                self.classes[ci as usize] = fresh;
                self.c_rate[ci as usize] = 0.0;
                self.c_size[ci as usize] = 0;
                ci
            }
            None => {
                self.classes.push(fresh);
                self.c_rate.push(0.0);
                self.c_size.push(0);
                (self.classes.len() - 1) as u32
            }
        };
        self.res_list[src].push(pack_entry(ci, (n + dst) as u32, 0));
        self.res_list[n + dst].push(pack_entry(ci, src as u32, 0));
        self.pair_index.insert((src, dst), ci);
        if cut {
            self.cut_live += 1;
        }
        ci
    }

    /// Rewrites the size bits of both of `class`'s resource entries; called on
    /// every membership change so filling can read sizes off the entry stream.
    fn sync_entry_size(res_list: &mut [Vec<PortEntry>], n: usize, class: &FlowClass, size: u32) {
        debug_assert!(size as u64 <= ENTRY_SIZE_MASK);
        let e = &mut res_list[class.src][class.tx_slot as usize];
        *e = (*e & !ENTRY_SIZE_MASK) | size as u64;
        let e = &mut res_list[n + class.dst][class.rx_slot as usize];
        *e = (*e & !ENTRY_SIZE_MASK) | size as u64;
    }

    /// Unlinks a now-empty class from both resource lists and recycles its
    /// slot.
    fn destroy_class(&mut self, ci: u32) {
        let i = ci as usize;
        let n = self.nodes();
        let (src, dst, tx_slot, rx_slot) = {
            let c = &self.classes[i];
            debug_assert_eq!(self.c_size[i], 0, "destroying a non-empty class");
            (c.src, c.dst, c.tx_slot as usize, c.rx_slot as usize)
        };
        if self.classes[i].cut {
            self.cut_live -= 1;
        }
        self.res_list[src].swap_remove(tx_slot);
        if let Some(&moved) = self.res_list[src].get(tx_slot) {
            self.classes[entry_ci(moved) as usize].tx_slot = tx_slot as u32;
        }
        self.res_list[n + dst].swap_remove(rx_slot);
        if let Some(&moved) = self.res_list[n + dst].get(rx_slot) {
            self.classes[entry_ci(moved) as usize].rx_slot = rx_slot as u32;
        }
        self.pair_index.remove(&(src, dst));
        self.c_rate[i] = 0.0;
        // Keep the member heap's allocation with the recycled slot; the next
        // class created here inherits it instead of growing from empty.
        self.classes[i].members.clear();
        self.free_classes.push(ci);
    }

    /// Removes a flow regardless of progress; returns remaining bytes if it
    /// was active.
    ///
    /// O(log flows): touches only the flow's own class (lazy drain), never
    /// the rest of the flow set.
    pub fn remove(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        let state = self.index.remove(&id)?;
        let ci = state.class;
        let i = ci as usize;
        Self::drain_class(
            &mut self.classes[i],
            self.c_rate[i],
            self.c_size[i],
            &mut self.delivered,
            now,
        );
        let class = &mut self.classes[i];
        // The aggregate drain counted this flow at full rate; if it had
        // already finished (dust past its completion), give the overshoot
        // back so `delivered` stays exact.
        let raw = state.finish_cum - class.cum;
        if raw < 0.0 {
            self.delivered += raw;
        }
        self.c_size[i] -= 1;
        // The member heap entry goes stale (serial mismatch); rebuild when
        // stale entries dominate so memory stays O(live members). The live
        // count is known exactly (`c_size`), so the rebuild allocates once.
        if class.members.len() > 2 * self.c_size[i] as usize + 8 {
            let index = &self.index;
            let live = |e: &Reverse<(FinishCum, FlowId, u64)>| {
                index.get(&e.0 .1).is_some_and(|f| f.serial == e.0 .2)
            };
            let mut kept: Vec<_> = Vec::with_capacity(self.c_size[i] as usize);
            kept.extend(class.members.drain().filter(live));
            class.members = BinaryHeap::from(kept);
        }
        // If the departing flow held the cached minimum finish mark, find the
        // next live one (the flow is already out of `index`, so its heap
        // entries are stale).
        if state.finish_cum == class.min_finish {
            class.min_finish =
                Self::peek_finish(&mut class.members, &self.index, ci).unwrap_or(f64::INFINITY);
        }
        let (src, dst, cut) = (class.src, class.dst, class.cut);
        let n = self.nodes();
        if !cut {
            // A cut class is already withdrawn from the resource flow counts.
            self.res_nflows[src] -= 1;
            self.res_nflows[n + dst] -= 1;
        }
        if self.c_size[i] == 0 {
            self.destroy_class(ci);
        } else if !cut {
            Self::sync_entry_size(&mut self.res_list, n, &self.classes[i], self.c_size[i]);
            self.mark_pending(ci);
        }
        self.after_mutation();
        Some(raw.max(0.0))
    }

    /// Removes and returns all flows whose bytes have been fully delivered,
    /// in ascending id order. Equivalent to
    /// [`FlowAllocator::take_completed_into`] with a fresh buffer.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<FlowId> {
        let mut done = Vec::new();
        self.take_completed_into(now, &mut done);
        done
    }

    /// Removes all flows whose bytes have been fully delivered, appending
    /// their ids to `done` (cleared first) in ascending id order. With a
    /// coalescing quantum Δ, the wave also collects every flow *due within
    /// Δ of `now`*, completing each up to `rate · Δ` bytes early (the dust
    /// is forgiven into `delivered`, so byte conservation is exact); all of
    /// them fire at `now`, so the `(time, flow id)` completion order stays
    /// deterministic and one reallocation covers the whole window.
    ///
    /// O(1) when nothing is due (the speculative-polling fast path: every
    /// event step asks every allocator); a completion wave costs
    /// O(due · log) via the class heaps, never a scan of the flow set.
    pub fn take_completed_into(&mut self, now: SimTime, done: &mut Vec<FlowId>) {
        self.advance(now);
        done.clear();
        let horizon = now.saturating_add(self.policy.quantum);
        let quantum_secs = self.policy.quantum.as_secs_f64();
        // Floor for survivor reschedules: strictly past the horizon, so a
        // class whose computed next deadline rounds onto it cannot be popped
        // again in this same wave. Exactly the old one-nanosecond floor when
        // Δ = 0.
        let min_step = self.policy.quantum + SimDuration::NANO;
        // Fast path: the earliest valid class deadline says nothing is due.
        match self.peek_deadline() {
            Some(d) if d <= horizon => {}
            _ => return,
        }
        let timer = Instant::now();
        let n = self.nodes();
        while let Some(&Reverse((deadline, ci, gen))) = self.class_heap.peek() {
            if deadline > horizon {
                break;
            }
            self.class_heap.pop();
            let i = ci as usize;
            if self.c_size[i] == 0 || self.classes[i].gen != gen {
                continue; // stale: class died or was rescheduled
            }
            let rate = self.c_rate[i];
            Self::drain_class(
                &mut self.classes[i],
                rate,
                self.c_size[i],
                &mut self.delivered,
                now,
            );
            // Bytes a member may be short of its finish mark and still
            // complete in this wave: what the quantum would have delivered.
            let slack = rate * quantum_secs;
            let class = &mut self.classes[i];
            // Collect members the drain has carried past their finish mark.
            let mut died = false;
            while let Some(&Reverse((finish, id, serial))) = class.members.peek() {
                let live = self
                    .index
                    .get(&id)
                    .is_some_and(|f| f.serial == serial && f.class == ci);
                if !live {
                    class.members.pop();
                    continue;
                }
                let remaining = finish.0 - class.cum;
                if remaining > slack + BYTES_EPSILON {
                    break;
                }
                class.members.pop();
                self.index.remove(&id);
                self.delivered += remaining; // forgiven: ≤ rate·Δ + epsilon
                self.c_size[i] -= 1;
                self.res_nflows[class.src] -= 1;
                self.res_nflows[n + class.dst] -= 1;
                done.push(id);
                if self.c_size[i] == 0 {
                    died = true;
                    break;
                }
            }
            if died {
                self.destroy_class(ci);
                continue;
            }
            Self::sync_entry_size(&mut self.res_list, n, &self.classes[i], self.c_size[i]);
            // Earliest survivor: reschedule the class (this also heals
            // floating-point drift when the deadline undershot the true
            // completion by a whisker). A survivor's remaining bytes exceed
            // `slack`, so its new deadline lands strictly past the horizon.
            let class = &mut self.classes[i];
            let next = match Self::peek_finish(&mut class.members, &self.index, ci) {
                Some(finish) => {
                    class.min_finish = finish;
                    debug_assert!(rate > 0.0, "scheduled class with zero rate");
                    now + SimDuration::from_secs_f64((finish - class.cum) / rate).max(min_step)
                }
                None => unreachable!("non-empty class without live members"),
            };
            self.gen_counter += 1;
            class.gen = self.gen_counter;
            class.deadline = next;
            self.class_heap.push(Reverse((next, ci, class.gen)));
        }
        self.completion_nanos += timer.elapsed().as_nanos() as u64;
        if !done.is_empty() {
            done.sort_unstable();
            // The reallocation triggered here refreshes rates and deadlines.
            self.after_mutation();
        }
    }

    /// Earliest live member's `finish_cum`, popping stale entries.
    fn peek_finish(
        members: &mut BinaryHeap<Reverse<(FinishCum, FlowId, u64)>>,
        index: &BTreeMap<FlowId, FlowState>,
        ci: u32,
    ) -> Option<f64> {
        while let Some(&Reverse((finish, id, serial))) = members.peek() {
            if index
                .get(&id)
                .is_some_and(|f| f.serial == serial && f.class == ci)
            {
                return Some(finish.0);
            }
            members.pop();
        }
        None
    }

    /// Earliest valid class deadline, lazily discarding stale heap entries.
    fn peek_deadline(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((deadline, ci, gen))) = self.class_heap.peek() {
            let class = &self.classes[ci as usize];
            if self.c_size[ci as usize] > 0 && class.gen == gen {
                return Some(deadline);
            }
            self.class_heap.pop();
        }
        None
    }

    /// Instant of the next flow completion if the flow set does not change.
    ///
    /// # Contract
    ///
    /// `now` may be at or after the last observed time: the allocator first
    /// self-advances to `now` (draining flows at their current rates), then
    /// reads the earliest class deadline. Passing a `now` earlier than a
    /// previously observed instant panics with "time ran backwards". Must not
    /// be called inside an open [`FlowAllocator::begin_update`] batch, where
    /// rates are stale by construction.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(
            self.batch_depth == 0,
            "next_completion inside an open batch"
        );
        self.advance(now);
        if self.index.is_empty() {
            return None;
        }
        let deadline = self.peek_deadline().expect("live flow without a deadline");
        Some(deadline.max(now))
    }

    /// Recomputes the max-min fair allocation: progressive filling over port
    /// resources, then share-diff application to the touched classes only.
    fn reallocate(&mut self) {
        let timer = Instant::now();
        self.reallocs += 1;
        self.fill_shares();
        self.apply_shares();
        #[cfg(feature = "slowcheck")]
        self.assert_matches_reference();
        self.alloc_nanos += timer.elapsed().as_nanos() as u64;
    }

    /// Progressive filling over the `2n` port resources. Produces
    /// `frozen_share[r]` for every resource (∞ if the resource never became
    /// a bottleneck before running out of flows) and touches no per-class
    /// state beyond the size array. Each round finds the smallest fair
    /// share, then freezes — in port order, with live re-evaluation exactly
    /// like the per-flow reference — every resource sitting at that share,
    /// streaming its entry list to debit unfrozen peers.
    fn fill_shares(&mut self) {
        let n = self.nodes();
        let nr = 2 * n;
        let eps_factor = self.eps_factor;
        let cut_live = self.cut_live;
        let FlowAllocator {
            tx_cap,
            rx_cap,
            pair_index,
            res_list,
            res_nflows,
            res_fill,
            share_cache,
            frozen_share,
            ..
        } = self;
        for r in 0..nr {
            res_fill[r] = ResFill {
                left: if r < n { tx_cap[r] } else { rx_cap[r - n] },
                cnt: res_nflows[r],
                stale: true,
            };
        }
        frozen_share.fill(f64::INFINITY);
        // Cut classes (entry size 0, zero rate) never freeze and are not in
        // the resource flow counts; they simply sit out the fill.
        let mut unfrozen = pair_index.len() - cut_live;
        while unfrozen > 0 {
            // The bottleneck resource is the one offering the smallest fair
            // share. Frozen resources have their count zeroed, so one dense
            // guarded scan covers exactly the survivors; a share costs one
            // division at most once per debit, not once per scan.
            let mut share = f64::INFINITY;
            for r in 0..nr {
                let f = res_fill[r];
                if f.cnt > 0 {
                    if f.stale {
                        share_cache[r] = f.left / f.cnt as f64;
                        res_fill[r].stale = false;
                    }
                    if share_cache[r] < share {
                        share = share_cache[r];
                    }
                }
            }
            debug_assert!(share.is_finite());
            // ε-fair early termination. A surviving resource can freeze no
            // higher than `left − (cnt − 1)·share` (every other flow on it
            // must freeze at ≥ the current bottleneck share, and shares only
            // rise between rounds), so once that bound sits within the
            // eps_factor band of `share` for every survivor, every surviving
            // class's exact rate lies in [share, share · eps_factor]:
            // freezing them all at `share` keeps rates one-sided within the
            // ε contract and strictly under capacity. Fires in the end-game
            // rounds where survivors are nearly tied; gated on ε > 0 so the
            // exact path is untouched.
            if eps_factor > 1.0 {
                let bound = share * eps_factor;
                let done = (0..nr).all(|r| {
                    let f = res_fill[r];
                    f.cnt == 0 || f.left - (f.cnt - 1) as f64 * share <= bound
                });
                if done {
                    for r in 0..nr {
                        if res_fill[r].cnt > 0 {
                            frozen_share[r] = share;
                            res_fill[r].cnt = 0;
                        }
                    }
                    break;
                }
            }
            let tol = share * 1e-12 + 1e-15;
            let before = unfrozen;
            // Freeze the resources sitting at the bottleneck share, streaming
            // each one's entry list to debit unfrozen peers. Shares are
            // re-evaluated live, so a resource nudged onto the share by an
            // earlier freeze in the same round still joins it.
            for r in 0..nr {
                let f = res_fill[r];
                if f.cnt == 0 {
                    continue;
                }
                if f.stale {
                    share_cache[r] = f.left / f.cnt as f64;
                    res_fill[r].stale = false;
                }
                if share_cache[r] > share + tol {
                    continue;
                }
                frozen_share[r] = share;
                res_fill[r].cnt = 0; // out of the game for later rounds
                for &e in &res_list[r] {
                    let k = entry_size(e);
                    if k == 0 {
                        continue; // cut class: sits out the fill entirely
                    }
                    let peer = entry_peer(e) as usize;
                    if frozen_share[peer].is_finite() {
                        continue; // class already froze via its peer
                    }
                    // This class freezes now, at `share`: r is the first of
                    // its two resources to freeze.
                    unfrozen -= 1;
                    let pf = &mut res_fill[peer];
                    pf.left -= share * k as f64;
                    pf.cnt -= k;
                    pf.stale = true;
                }
            }
            debug_assert!(unfrozen < before, "progressive filling made no progress");
            if unfrozen >= before {
                break; // release-mode safety valve; unreachable in practice
            }
        }
    }

    /// Applies the freeze shares computed by [`FlowAllocator::fill_shares`]:
    /// diffs them against the previous reallocation's, then refreshes rate,
    /// drain, and deadline for exactly (a) classes on a changed resource
    /// whose derived rate moved and (b) classes with changed membership
    /// (`pending_dirty`). A class's rate is `min` of its two resources'
    /// freeze shares — the share of whichever froze it first, since round
    /// shares strictly increase.
    fn apply_shares(&mut self) {
        let n = self.nodes();
        let nr = 2 * n;
        let now = self.last_advance;
        let skip = self.eps_factor;
        let FlowAllocator {
            classes,
            c_rate,
            c_size,
            pair_index,
            res_list,
            frozen_share,
            stored_share,
            dirty_res,
            res_dirty,
            pending_dirty,
            class_heap,
            gen_counter,
            delivered,
            ..
        } = self;
        dirty_res.clear();
        for r in 0..nr {
            let (fr, st) = (frozen_share[r], stored_share[r]);
            // In exact mode (skip = 1.0) this is `fr != st`. With ε > 0 a
            // share *increase* is deferred until it accumulates past the
            // skip factor — the stored share then lags the fill by at most
            // that factor, so applied rates stay in [exact/skip², exact].
            // Decreases always apply, so capacity is never exceeded.
            if fr < st || fr > st * skip {
                dirty_res.push(r as u32);
                res_dirty[r] = true;
            }
        }
        // The dirty walk below relies on visiting resources in ascending
        // index order (peer effective-share reads assume a single coherent
        // pass); the builder above pushes 0..nr, so this can only fire if
        // someone reorders the loop.
        debug_assert!(
            dirty_res.windows(2).all(|w| w[0] < w[1]),
            "dirty resource walk must stay in ascending resource order"
        );
        // Refreshes one class at its newly derived rate: drain at the old
        // rate, swap the rate in, recompute the deadline, and (re)schedule
        // it in the global heap if the schedule moved. Idempotent. (A free fn
        // taking split borrows, hence the argument count.)
        #[allow(clippy::too_many_arguments)]
        fn update_one(
            classes: &mut [FlowClass],
            c_rate: &mut [f64],
            size: u32,
            class_heap: &mut BinaryHeap<Reverse<(SimTime, u32, u64)>>,
            gen_counter: &mut u64,
            delivered: &mut f64,
            now: SimTime,
            ci: u32,
            new_rate: f64,
        ) {
            let i = ci as usize;
            FlowAllocator::drain_class(&mut classes[i], c_rate[i], size, delivered, now);
            c_rate[i] = new_rate;
            let class = &mut classes[i];
            class.members_dirty = false;
            let remaining = class.min_finish - class.cum;
            let deadline = if remaining <= BYTES_EPSILON {
                now
            } else {
                debug_assert!(new_rate > 0.0, "active class with zero rate");
                now + SimDuration::from_secs_f64(remaining / new_rate).max(SimDuration::NANO)
            };
            if deadline != class.deadline || class.gen == 0 {
                *gen_counter += 1;
                class.gen = *gen_counter;
                class.deadline = deadline;
                class_heap.push(Reverse((deadline, ci, class.gen)));
            }
        }
        // The current rate of every non-pending class is the min of its two
        // *stored* shares (the invariant `update_one` maintains), so the scan
        // decides "did this class's rate move?" from the two small share
        // arrays alone — no per-class loads for the untouched majority. A
        // peer's *effective* share after this application is its fresh
        // freeze share when it is dirty too, and its (possibly ε-lagging)
        // stored share otherwise — in exact mode those coincide. A class
        // sitting on two dirty resources is visited twice; the second visit
        // re-derives the same rate and finds the deadline unchanged.
        for &r in dirty_res.iter() {
            let r = r as usize;
            let (fr, or) = (frozen_share[r], stored_share[r]);
            for &e in &res_list[r] {
                if entry_size(e) == 0 {
                    continue; // cut class: rate stays pinned at zero
                }
                let peer = entry_peer(e) as usize;
                let peer_eff = if res_dirty[peer] {
                    frozen_share[peer]
                } else {
                    stored_share[peer]
                };
                let new_rate = fr.min(peer_eff);
                let old_rate = or.min(stored_share[peer]);
                if new_rate != old_rate {
                    update_one(
                        classes,
                        c_rate,
                        entry_size(e),
                        class_heap,
                        gen_counter,
                        delivered,
                        now,
                        entry_ci(e),
                        new_rate,
                    );
                }
            }
        }
        for &r in dirty_res.iter() {
            let r = r as usize;
            stored_share[r] = frozen_share[r];
            res_dirty[r] = false;
        }
        // Membership changed but neither resource's share moved (and the
        // derived rate may be bitwise unchanged): the deadline still has to
        // track the new earliest member. Stored shares are the effective
        // ones now, so the derived rate matches what the dirty walk applies.
        for &ci in pending_dirty.iter() {
            let i = ci as usize;
            if c_size[i] == 0 || classes[i].cut || !classes[i].members_dirty {
                continue; // destroyed, cut, or already refreshed above
            }
            let (src, dst) = (classes[i].src, classes[i].dst);
            let new_rate = stored_share[src].min(stored_share[n + dst]);
            update_one(
                classes,
                c_rate,
                c_size[i],
                class_heap,
                gen_counter,
                delivered,
                now,
                ci,
                new_rate,
            );
        }
        pending_dirty.clear();
        // Stale global-heap entries are dropped lazily; rebuild when they
        // dominate so the heap stays O(classes). `pair_index` iteration order
        // is hasher-dependent, but entries are totally ordered by
        // (deadline, class, generation) with generations unique, so no pop
        // order can depend on insertion order; sorting before heapifying
        // additionally pins the heap's internal layout, making the rebuild a
        // pure function of the live class set. The live count is known, so
        // the rebuild allocates once.
        let live = pair_index.len();
        if class_heap.len() > 2 * live + 64 {
            let mut entries = Vec::with_capacity(live);
            entries.extend(pair_index.values().map(|&ci| {
                let c = &classes[ci as usize];
                Reverse((c.deadline, ci, c.gen))
            }));
            entries.sort_unstable();
            debug_assert_eq!(entries.len(), live);
            *class_heap = BinaryHeap::from(entries);
        }
    }

    /// The original quadratic per-flow progressive-filling algorithm, kept as
    /// the executable specification of max-min fairness. Returns the rate for
    /// every active flow without touching allocator state. With the
    /// `slowcheck` cargo feature, every reallocation is checked against this.
    pub fn reference_reallocate(&self) -> BTreeMap<FlowId, f64> {
        let n = self.nodes();
        let mut rates: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut tx_left = self.tx_cap.clone();
        let mut rx_left = self.rx_cap.clone();
        let mut tx_count = vec![0usize; n];
        let mut rx_count = vec![0usize; n];
        // Flows of a cut pair carry rate zero and do not contend for ports.
        let ports: BTreeMap<FlowId, (NodeId, NodeId)> = self
            .index
            .iter()
            .filter_map(|(&id, f)| {
                let c = &self.classes[f.class as usize];
                if c.cut {
                    rates.insert(id, 0.0);
                    None
                } else {
                    Some((id, (c.src, c.dst)))
                }
            })
            .collect();
        let mut unfrozen: Vec<FlowId> = ports.keys().copied().collect();
        for &(src, dst) in ports.values() {
            tx_count[src] += 1;
            rx_count[dst] += 1;
        }
        while !unfrozen.is_empty() {
            let mut share = f64::INFINITY;
            for i in 0..n {
                if tx_count[i] > 0 {
                    share = share.min(tx_left[i] / tx_count[i] as f64);
                }
                if rx_count[i] > 0 {
                    share = share.min(rx_left[i] / rx_count[i] as f64);
                }
            }
            debug_assert!(share.is_finite());
            let tol = share * 1e-12 + 1e-15;
            let mut frozen_any = false;
            let mut still: Vec<FlowId> = Vec::new();
            for id in unfrozen.drain(..) {
                let (src, dst) = ports[&id];
                let tx_share = tx_left[src] / tx_count[src] as f64;
                let rx_share = rx_left[dst] / rx_count[dst] as f64;
                if tx_share <= share + tol || rx_share <= share + tol {
                    rates.insert(id, share);
                    tx_left[src] -= share;
                    rx_left[dst] -= share;
                    tx_count[src] -= 1;
                    rx_count[dst] -= 1;
                    frozen_any = true;
                } else {
                    still.push(id);
                }
            }
            debug_assert!(frozen_any, "progressive filling made no progress");
            if !frozen_any {
                break;
            }
            unfrozen = still;
        }
        rates
    }

    /// Asserts the class rates match the per-flow reference fixpoint — to
    /// floating-point tolerance in exact mode, and to the one-sided
    /// `[want · (1 − ε), want]` contract (plus port-capacity safety) under
    /// an ε > 0 policy.
    #[cfg(feature = "slowcheck")]
    fn assert_matches_reference(&self) {
        let reference = self.reference_reallocate();
        let eps = self.policy.epsilon;
        for (id, f) in &self.index {
            let got = self.c_rate[f.class as usize];
            let want = reference[id];
            let tol = want.abs() * 1e-9 + 1e-12;
            if eps == 0.0 {
                debug_assert!(
                    (got - want).abs() <= tol,
                    "rate mismatch for {id:?}: class {got} vs reference {want}"
                );
            } else {
                debug_assert!(
                    got <= want + tol && got >= want * (1.0 - eps) - tol,
                    "rate outside ε band for {id:?}: {got} vs reference {want} (ε={eps})"
                );
            }
        }
        // The approximation is one-sided, so port capacity must always hold.
        let n = self.nodes();
        let mut tx_used = vec![0.0; n];
        let mut rx_used = vec![0.0; n];
        for f in self.index.values() {
            let c = &self.classes[f.class as usize];
            let r = self.c_rate[f.class as usize];
            tx_used[c.src] += r;
            rx_used[c.dst] += r;
        }
        for i in 0..n {
            debug_assert!(
                tx_used[i] <= self.tx_cap[i] * (1.0 + 1e-9) + 1e-9,
                "tx port {i} over capacity: {} > {}",
                tx_used[i],
                self.tx_cap[i]
            );
            debug_assert!(
                rx_used[i] <= self.rx_cap[i] * (1.0 + 1e-9) + 1e-9,
                "rx port {i} over capacity: {} > {}",
                rx_used[i],
                self.rx_cap[i]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime(SimDuration::from_secs_f64(secs).0)
    }

    #[test]
    fn single_flow_gets_min_of_port_caps() {
        let mut fab = FlowAllocator::new(2, 100.0, 80.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 160.0);
        // Limited by the receiver at 80 B/s.
        assert_eq!(fab.rate(FlowId(1)), Some(80.0));
        assert_eq!(fab.next_completion(SimTime::ZERO), Some(t(2.0)));
    }

    #[test]
    fn receiver_shared_fairly() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 100.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 100.0);
        // Two senders into one receiver: 50 each.
        assert_eq!(fab.rate(FlowId(1)), Some(50.0));
        assert_eq!(fab.rate(FlowId(2)), Some(50.0));
        assert!((fab.rx_busy_fraction(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maxmin_redistributes_leftover_capacity() {
        // Node 0 sends to 1 and 2; node 3 also sends to 2.
        // Receiver 2 is the bottleneck for its two flows (50 each), and flow
        // 0→1 can then use the rest of 0's tx capacity (50).
        let mut fab = FlowAllocator::new(4, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1e9);
        fab.insert(SimTime::ZERO, FlowId(2), 0, 2, 1e9);
        fab.insert(SimTime::ZERO, FlowId(3), 3, 2, 1e9);
        let r1 = fab.rate(FlowId(1)).unwrap();
        let r2 = fab.rate(FlowId(2)).unwrap();
        let r3 = fab.rate(FlowId(3)).unwrap();
        assert!((r2 - 50.0).abs() < 1e-6, "r2={r2}");
        assert!((r3 - 50.0).abs() < 1e-6, "r3={r3}");
        assert!((r1 - 50.0).abs() < 1e-6, "r1={r1}");
        // Total out of node 0 respects its tx cap.
        assert!(r1 + r2 <= 100.0 + 1e-6);
    }

    #[test]
    fn completion_then_speedup() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 50.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 200.0);
        // Both at 50 B/s; flow 1 done at t=1.
        let c = fab.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c, t(1.0));
        fab.advance(c);
        assert_eq!(fab.take_completed(c), vec![FlowId(1)]);
        // Flow 2 now gets the full 100 B/s with 150 left: done at t=2.5.
        assert_eq!(fab.next_completion(c), Some(t(2.5)));
    }

    #[test]
    fn conservation_of_bytes() {
        let mut fab = FlowAllocator::new(4, 10.0, 10.0);
        let sizes = [3.0, 7.0, 11.0, 5.0];
        fab.insert(SimTime::ZERO, FlowId(0), 0, 1, sizes[0]);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, sizes[1]);
        fab.insert(SimTime::ZERO, FlowId(2), 3, 1, sizes[2]);
        fab.insert(SimTime::ZERO, FlowId(3), 2, 0, sizes[3]);
        let mut now = SimTime::ZERO;
        while fab.active_flows() > 0 {
            now = fab.next_completion(now).unwrap();
            fab.advance(now);
            fab.take_completed(now);
        }
        let total: f64 = sizes.iter().sum();
        assert!((fab.total_delivered() - total).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_flow_panics() {
        let mut fab = FlowAllocator::new(2, 1.0, 1.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1.0);
    }

    #[test]
    fn rates_match_reference_fixpoint() {
        let mut fab = FlowAllocator::new(6, 125e6, 125e6);
        for i in 0..24u64 {
            fab.insert(
                SimTime::ZERO,
                FlowId(i),
                (i % 6) as usize,
                ((i * 5 + 2) % 6) as usize,
                1e6 * (i + 1) as f64,
            );
        }
        let reference = fab.reference_reallocate();
        for (id, want) in reference {
            let got = fab.rate(id).unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-9 + 1e-12,
                "{id:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn batched_insert_matches_unbatched_and_reallocates_once() {
        let mut plain = FlowAllocator::new(8, 1e8, 1e8);
        let mut batched = FlowAllocator::new(8, 1e8, 1e8);
        batched.begin_update();
        for i in 0..32u64 {
            let (src, dst) = ((i % 8) as usize, ((i + 3) % 8) as usize);
            plain.insert(SimTime::ZERO, FlowId(i), src, dst, 1e6);
            batched.insert(SimTime::ZERO, FlowId(i), src, dst, 1e6);
        }
        let epoch = batched.commit(SimTime::ZERO);
        assert_eq!(epoch, plain.epoch());
        for i in 0..32u64 {
            assert_eq!(batched.rate(FlowId(i)), plain.rate(FlowId(i)));
        }
        // One reallocation for the whole batch vs one per insert.
        assert_eq!(batched.stats().reallocs, 1);
        assert_eq!(plain.stats().reallocs, 32);
        // Both agree on the next completion too.
        assert_eq!(
            batched.next_completion(SimTime::ZERO),
            plain.next_completion(SimTime::ZERO)
        );
    }

    #[test]
    fn busy_fractions_track_port_rates() {
        let mut fab = FlowAllocator::new(4, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1e9);
        fab.insert(SimTime::ZERO, FlowId(2), 0, 2, 1e9);
        fab.insert(SimTime::ZERO, FlowId(3), 3, 2, 1e9);
        let r1 = fab.rate(FlowId(1)).unwrap();
        let r2 = fab.rate(FlowId(2)).unwrap();
        let r3 = fab.rate(FlowId(3)).unwrap();
        assert!((fab.tx_busy_fraction(0) - (r1 + r2) / 100.0).abs() < 1e-12);
        assert!((fab.rx_busy_fraction(2) - (r2 + r3) / 100.0).abs() < 1e-12);
        assert!((fab.rx_busy_fraction(1) - r1 / 100.0).abs() < 1e-12);
        assert_eq!(fab.tx_busy_fraction(1), 0.0);
        // Removal updates the accumulators at the triggered reallocation.
        fab.remove(SimTime::ZERO, FlowId(2));
        let r1b = fab.rate(FlowId(1)).unwrap();
        assert!((fab.tx_busy_fraction(0) - r1b / 100.0).abs() < 1e-12);
    }

    #[test]
    fn removal_invalidates_stale_heap_entries() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 100.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 100.0);
        // Both at 50 B/s → first completion would be t=2.
        assert_eq!(fab.next_completion(SimTime::ZERO), Some(t(2.0)));
        // Removing flow 1 speeds flow 2 up to 100 B/s → completion at t=1.
        fab.remove(SimTime::ZERO, FlowId(1));
        assert_eq!(fab.next_completion(SimTime::ZERO), Some(t(1.0)));
        // And the stale t=2 entry never resurfaces.
        fab.advance(t(1.0));
        assert_eq!(fab.take_completed(t(1.0)), vec![FlowId(2)]);
        assert_eq!(fab.next_completion(t(1.0)), None);
    }

    #[test]
    fn take_completed_returns_ascending_ids() {
        let mut fab = FlowAllocator::new(8, 100.0, 100.0);
        // Insert in descending id order; all finish simultaneously.
        for id in (0..4u64).rev() {
            fab.insert(
                SimTime::ZERO,
                FlowId(id),
                id as usize,
                (id + 4) as usize,
                100.0,
            );
        }
        let c = fab.next_completion(SimTime::ZERO).unwrap();
        let done = fab.take_completed(c);
        assert_eq!(done, vec![FlowId(0), FlowId(1), FlowId(2), FlowId(3)]);
    }

    #[test]
    #[should_panic(expected = "commit without begin_update")]
    fn commit_without_begin_panics() {
        let mut fab = FlowAllocator::new(2, 1.0, 1.0);
        fab.commit(SimTime::ZERO);
    }

    #[test]
    fn class_members_complete_in_finish_order() {
        // Three flows share one (src, dst) class; they complete strictly in
        // insertion-size order even though rates are always identical.
        let mut fab = FlowAllocator::new(2, 100.0, 100.0);
        fab.begin_update();
        fab.insert(SimTime::ZERO, FlowId(7), 0, 1, 300.0);
        fab.insert(SimTime::ZERO, FlowId(3), 0, 1, 100.0);
        fab.insert(SimTime::ZERO, FlowId(5), 0, 1, 200.0);
        fab.commit(SimTime::ZERO);
        assert_eq!(fab.active_classes(), 1);
        // 3 flows share 100 B/s: smallest (100 B) finishes at t=3.
        let c1 = fab.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c1, t(3.0));
        assert_eq!(fab.take_completed(c1), vec![FlowId(3)]);
        // Two 100-B-remaining flows at 50 B/s each: next at t=5.
        let c2 = fab.next_completion(c1).unwrap();
        assert_eq!(c2, t(5.0));
        assert_eq!(fab.take_completed(c2), vec![FlowId(5)]);
        let c3 = fab.next_completion(c2).unwrap();
        assert_eq!(fab.take_completed(c3), vec![FlowId(7)]);
        assert_eq!(fab.active_flows(), 0);
        assert_eq!(fab.active_classes(), 0);
        assert!((fab.total_delivered() - 600.0).abs() < 1e-3);
    }

    #[test]
    fn reinserted_id_is_not_confused_with_its_past_life() {
        // Remove a flow mid-transfer, then reuse its id in the same class:
        // the stale member-heap entry must not complete the new flow early.
        let mut fab = FlowAllocator::new(2, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 100.0);
        fab.insert(SimTime::ZERO, FlowId(2), 0, 1, 1000.0);
        fab.advance(t(1.0));
        let rem = fab.remove(t(1.0), FlowId(1)).unwrap();
        assert!((rem - 50.0).abs() < 1e-9, "rem={rem}");
        fab.insert(t(1.0), FlowId(1), 0, 1, 500.0);
        // Old entry would fire at the old finish mark; the new flow needs
        // 500 B at 50 B/s.
        fab.advance(t(2.0));
        assert_eq!(fab.take_completed(t(2.0)), Vec::<FlowId>::new());
        let mut now = t(2.0);
        let mut done = Vec::new();
        while fab.active_flows() > 0 {
            now = fab.next_completion(now).unwrap();
            fab.advance(now);
            done.extend(fab.take_completed(now));
        }
        assert_eq!(done, vec![FlowId(1), FlowId(2)]);
        // 100 + 1000 + 500 bytes offered, 50 withdrawn.
        assert!((fab.total_delivered() - 1550.0).abs() < 1e-3);
    }

    #[test]
    fn port_scale_degrades_and_restores_rates() {
        let mut fab = FlowAllocator::new(2, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1000.0);
        assert_eq!(fab.rate(FlowId(1)), Some(100.0));
        // Degrading the sender's port halves the flow's rate...
        fab.set_port_scale(SimTime::ZERO, 0, 0.5);
        assert_eq!(fab.rate(FlowId(1)), Some(50.0));
        // ...compounding degradations stay relative to the *nominal* rate...
        fab.set_port_scale(SimTime::ZERO, 0, 0.25);
        assert_eq!(fab.rate(FlowId(1)), Some(25.0));
        // ...and restoring gives back exactly the nominal capacity.
        fab.set_port_scale(t(1.0), 0, 1.0);
        assert_eq!(fab.rate(FlowId(1)), Some(100.0));
        // 25 B in the first second, then full speed: done at 1 + 975/100.
        assert_eq!(fab.next_completion(t(1.0)), Some(t(10.75)));
    }

    #[test]
    fn quantum_coalesces_near_simultaneous_completions() {
        let policy = MaxMinPolicy {
            epsilon: 0.0,
            quantum: SimDuration::from_millis(10),
        };
        let mut fab = FlowAllocator::new_with_policy(4, 100.0, 100.0, policy);
        // Independent port pairs: flow 1 done at t=1.000, flow 2 at t=1.005,
        // flow 3 at t=2.0 (outside the quantum).
        fab.begin_update();
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 100.0);
        fab.insert(SimTime::ZERO, FlowId(2), 2, 3, 100.5);
        fab.insert(SimTime::ZERO, FlowId(3), 1, 0, 200.0);
        fab.commit(SimTime::ZERO);
        let c = fab.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c, t(1.0));
        // One wave takes both flows due within 10 ms, in ascending id order.
        assert_eq!(fab.take_completed(c), vec![FlowId(1), FlowId(2)]);
        assert_eq!(fab.next_completion(c), Some(t(2.0)));
        assert_eq!(fab.take_completed(t(2.0)), vec![FlowId(3)]);
        // The 0.5 B the quantum forgave still count as delivered.
        assert!((fab.total_delivered() - 400.5).abs() < 1e-3);
    }

    #[test]
    fn zero_policy_is_bit_identical_to_exact() {
        let policy = MaxMinPolicy::default();
        let mut exact = FlowAllocator::new(4, 125e6, 125e6);
        let mut approx = FlowAllocator::new_with_policy(4, 125e6, 125e6, policy);
        for i in 0..16u64 {
            let (src, dst) = ((i % 4) as usize, ((i * 3 + 1) % 4) as usize);
            exact.insert(SimTime::ZERO, FlowId(i), src, dst, 1e6 * (i + 1) as f64);
            approx.insert(SimTime::ZERO, FlowId(i), src, dst, 1e6 * (i + 1) as f64);
        }
        let mut now = SimTime::ZERO;
        while exact.active_flows() > 0 {
            for i in 0..16u64 {
                let (a, b) = (exact.rate(FlowId(i)), approx.rate(FlowId(i)));
                assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits), "flow {i}");
            }
            now = exact.next_completion(now).unwrap();
            assert_eq!(approx.next_completion(now), Some(now));
            assert_eq!(exact.take_completed(now), approx.take_completed(now));
        }
        assert_eq!(approx.active_flows(), 0);
    }

    #[test]
    fn epsilon_rates_stay_in_the_one_sided_band() {
        let eps = 0.05;
        let policy = MaxMinPolicy {
            epsilon: eps,
            quantum: SimDuration::ZERO,
        };
        let mut fab = FlowAllocator::new_with_policy(6, 1e3, 1e3, policy);
        // Churn: staggered inserts and removals force repeated fills whose
        // skipped share increases must stay within the contract.
        for i in 0..48u64 {
            let (src, dst) = ((i % 6) as usize, ((i * 5 + 2) % 6) as usize);
            fab.insert(SimTime::ZERO, FlowId(i), src, dst, 1e4 * (1 + i % 7) as f64);
            if i % 3 == 2 {
                fab.remove(SimTime::ZERO, FlowId(i - 2));
            }
            let reference = fab.reference_reallocate();
            let mut tx_used = [0.0; 6];
            let mut rx_used = [0.0; 6];
            for (id, want) in &reference {
                let got = fab.rate(*id).unwrap();
                let tol = want * 1e-9 + 1e-12;
                assert!(
                    got <= want + tol && got >= want * (1.0 - eps) - tol,
                    "flow {id:?}: {got} outside [{}, {want}]",
                    want * (1.0 - eps)
                );
            }
            for i in 0..48u64 {
                if let Some(r) = fab.rate(FlowId(i)) {
                    let f = fab.index[&FlowId(i)];
                    let c = &fab.classes[f.class as usize];
                    tx_used[c.src] += r;
                    rx_used[c.dst] += r;
                }
            }
            for p in 0..6 {
                assert!(tx_used[p] <= 1e3 * (1.0 + 1e-9), "tx {p} over capacity");
                assert!(rx_used[p] <= 1e3 * (1.0 + 1e-9), "rx {p} over capacity");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad epsilon")]
    fn epsilon_out_of_range_panics() {
        let policy = MaxMinPolicy {
            epsilon: 1.0,
            quantum: SimDuration::ZERO,
        };
        FlowAllocator::new_with_policy(2, 1.0, 1.0, policy);
    }

    #[test]
    fn cut_pair_stalls_flow_and_heal_resumes() {
        let mut fab = FlowAllocator::new(2, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1000.0);
        assert_eq!(fab.rate(FlowId(1)), Some(100.0));
        // Cut at t=1: 900 B remain, rate pinned to zero, no completion.
        fab.set_pair_cut(t(1.0), 0, 1, true);
        assert!(fab.pair_cut(0, 1));
        assert_eq!(fab.rate(FlowId(1)), Some(0.0));
        assert_eq!(fab.next_completion(t(1.0)), Some(SimTime::FAR_FUTURE));
        assert_eq!(fab.take_completed(t(2.0)), Vec::<FlowId>::new());
        // Heal at t=3: the flow resumes at full rate; 900 B at 100 B/s.
        fab.set_pair_cut(t(3.0), 0, 1, false);
        assert_eq!(fab.rate(FlowId(1)), Some(100.0));
        assert_eq!(fab.next_completion(t(3.0)), Some(t(12.0)));
        assert_eq!(fab.take_completed(t(12.0)), vec![FlowId(1)]);
        assert!((fab.total_delivered() - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn cut_releases_capacity_and_heal_restores_bit_exactly() {
        // Mirror allocators: `a` suffers a cut+heal at one instant, `b`
        // never does. After the heal, every rate must be bit-identical.
        let mut a = FlowAllocator::new(3, 100.0, 100.0);
        let mut b = FlowAllocator::new(3, 100.0, 100.0);
        for fab in [&mut a, &mut b] {
            fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 1e6);
            fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 1e6);
        }
        assert_eq!(a.rate(FlowId(1)), Some(50.0));
        // Cutting (0,2) hands the whole rx port to the surviving flow.
        a.set_pair_cut(t(1.0), 0, 2, true);
        assert_eq!(a.rate(FlowId(1)), Some(0.0));
        assert_eq!(a.rate(FlowId(2)), Some(100.0));
        a.set_pair_cut(t(1.0), 0, 2, false);
        b.advance(t(1.0));
        for id in [FlowId(1), FlowId(2)] {
            assert_eq!(
                a.rate(id).map(f64::to_bits),
                b.rate(id).map(f64::to_bits),
                "{id:?} not restored bit-exactly"
            );
        }
    }

    #[test]
    fn insert_into_cut_pair_starts_parked() {
        let mut fab = FlowAllocator::new(2, 100.0, 100.0);
        fab.set_pair_cut(SimTime::ZERO, 0, 1, true);
        // Cutting an idle pair is remembered; cutting it again is a no-op.
        let reallocs = fab.stats().reallocs;
        fab.set_pair_cut(SimTime::ZERO, 0, 1, true);
        assert_eq!(fab.stats().reallocs, reallocs);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 100.0);
        assert_eq!(fab.rate(FlowId(1)), Some(0.0));
        assert_eq!(
            fab.next_completion(SimTime::ZERO),
            Some(SimTime::FAR_FUTURE)
        );
        // Removing a parked flow returns its untouched remaining bytes.
        fab.insert(SimTime::ZERO, FlowId(2), 0, 1, 70.0);
        assert_eq!(fab.remove(SimTime::ZERO, FlowId(2)), Some(70.0));
        fab.set_pair_cut(t(1.0), 0, 1, false);
        assert_eq!(fab.rate(FlowId(1)), Some(100.0));
        assert_eq!(fab.next_completion(t(1.0)), Some(t(2.0)));
    }

    #[test]
    fn cut_composes_with_port_scale() {
        let mut fab = FlowAllocator::new(2, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1000.0);
        fab.set_port_scale(SimTime::ZERO, 0, 0.5);
        assert_eq!(fab.rate(FlowId(1)), Some(50.0));
        fab.set_pair_cut(SimTime::ZERO, 0, 1, true);
        assert_eq!(fab.rate(FlowId(1)), Some(0.0));
        // Scale changes while cut apply on heal, not to the parked class.
        fab.set_port_scale(t(1.0), 0, 0.25);
        assert_eq!(fab.rate(FlowId(1)), Some(0.0));
        fab.set_pair_cut(t(2.0), 0, 1, false);
        assert_eq!(fab.rate(FlowId(1)), Some(25.0));
        fab.set_port_scale(t(3.0), 0, 1.0);
        assert_eq!(fab.rate(FlowId(1)), Some(100.0));
    }

    #[test]
    fn cut_composes_with_policies() {
        // ε-fair fills and Δ-coalescing must not resurrect a cut class.
        let policy = MaxMinPolicy {
            epsilon: 0.05,
            quantum: SimDuration::from_millis(10),
        };
        let mut fab = FlowAllocator::new_with_policy(4, 100.0, 100.0, policy);
        fab.begin_update();
        for i in 0..8u64 {
            fab.insert(
                SimTime::ZERO,
                FlowId(i),
                (i % 4) as usize,
                ((i + 1) % 4) as usize,
                100.0 * (i + 1) as f64,
            );
        }
        fab.commit(SimTime::ZERO);
        fab.set_pair_cut(SimTime::ZERO, 0, 1, true);
        assert_eq!(fab.rate(FlowId(0)), Some(0.0));
        assert_eq!(fab.rate(FlowId(4)), Some(0.0));
        // Drive the rest to completion; the cut pair's flows never fire.
        let mut now = SimTime::ZERO;
        let mut done = Vec::new();
        loop {
            now = fab.next_completion(now).unwrap();
            if now == SimTime::FAR_FUTURE {
                break;
            }
            done.extend(fab.take_completed(now));
        }
        assert_eq!(done.len(), 6);
        assert!(!done.contains(&FlowId(0)) && !done.contains(&FlowId(4)));
        // Heal releases the survivors of the cut pair.
        fab.set_pair_cut(now.min(t(100.0)), 0, 1, false);
        let mut now = t(100.0);
        while fab.active_flows() > 0 {
            now = fab.next_completion(now).unwrap();
            done.extend(fab.take_completed(now));
        }
        assert_eq!(done.len(), 8);
    }

    #[test]
    fn cut_class_matches_reference_fixpoint() {
        let mut fab = FlowAllocator::new(4, 100.0, 100.0);
        for i in 0..12u64 {
            fab.insert(
                SimTime::ZERO,
                FlowId(i),
                (i % 4) as usize,
                ((i * 3 + 1) % 4) as usize,
                1e4,
            );
        }
        fab.set_pair_cut(SimTime::ZERO, 1, 0, true);
        let reference = fab.reference_reallocate();
        for (id, want) in reference {
            let got = fab.rate(id).unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-9 + 1e-12,
                "{id:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn take_completed_into_reuses_buffer() {
        let mut fab = FlowAllocator::new(2, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 100.0);
        let mut buf = vec![FlowId(999)];
        fab.take_completed_into(SimTime::ZERO, &mut buf);
        assert!(buf.is_empty(), "buffer must be cleared on the fast path");
        let c = fab.next_completion(SimTime::ZERO).unwrap();
        fab.take_completed_into(c, &mut buf);
        assert_eq!(buf, vec![FlowId(1)]);
    }
}
