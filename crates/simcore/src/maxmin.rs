//! Max-min fair bandwidth allocation for network flows.
//!
//! Shuffle traffic is modelled as fluid flows between machines. Each machine
//! has a full-duplex NIC: a transmit capacity and a receive capacity. A flow's
//! rate is set by progressive filling (the textbook max-min algorithm):
//! repeatedly find the most-contended port, freeze its flows at their fair
//! share, remove that capacity, and continue. The result is the unique max-min
//! fair allocation, recomputed whenever a flow starts or finishes.
//!
//! This is the same fluid abstraction the paper leans on when reasoning about
//! the network: what matters for performance clarity is how many flows share
//! each sender and receiver link, not packet-level dynamics.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Remaining bytes below this are considered transferred.
const BYTES_EPSILON: f64 = 1e-6;

/// Identifies one flow. Allocated by the caller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Index of a machine (port) in the fabric.
pub type NodeId = usize;

#[derive(Clone, Debug)]
struct Flow {
    src: NodeId,
    dst: NodeId,
    remaining: f64,
    rate: f64,
}

/// A fabric of full-duplex ports carrying max-min fair fluid flows.
#[derive(Debug)]
pub struct FlowAllocator {
    tx_cap: Vec<f64>,
    rx_cap: Vec<f64>,
    flows: BTreeMap<FlowId, Flow>,
    last_advance: SimTime,
    epoch: u64,
    delivered: f64,
}

impl FlowAllocator {
    /// Creates a fabric of `nodes` ports, each with the given transmit and
    /// receive capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is not strictly positive and finite.
    pub fn new(nodes: usize, tx_cap: f64, rx_cap: f64) -> FlowAllocator {
        assert!(tx_cap.is_finite() && tx_cap > 0.0, "bad tx capacity");
        assert!(rx_cap.is_finite() && rx_cap > 0.0, "bad rx capacity");
        FlowAllocator {
            tx_cap: vec![tx_cap; nodes],
            rx_cap: vec![rx_cap; nodes],
            flows: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            epoch: 0,
            delivered: 0.0,
        }
    }

    /// Number of ports.
    pub fn nodes(&self) -> usize {
        self.tx_cap.len()
    }

    /// Stale-event guard; bumped on every flow-set mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of flows in flight.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered so far across all flows.
    pub fn total_delivered(&self) -> f64 {
        self.delivered
    }

    /// Current rate of `flow`, if active.
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        self.flows.get(&flow).map(|f| f.rate)
    }

    /// Fraction of `node`'s receive capacity currently in use.
    pub fn rx_busy_fraction(&self, node: NodeId) -> f64 {
        let used: f64 = self
            .flows
            .values()
            .filter(|f| f.dst == node)
            .map(|f| f.rate)
            .sum();
        used / self.rx_cap[node]
    }

    /// Fraction of `node`'s transmit capacity currently in use.
    pub fn tx_busy_fraction(&self, node: NodeId) -> f64 {
        let used: f64 = self
            .flows
            .values()
            .filter(|f| f.src == node)
            .map(|f| f.rate)
            .sum();
        used / self.tx_cap[node]
    }

    /// Drains all flows at their current rates up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt == 0.0 {
            return;
        }
        for f in self.flows.values_mut() {
            let drain = (f.rate * dt).min(f.remaining);
            f.remaining -= drain;
            self.delivered += drain;
        }
    }

    /// Starts a flow of `bytes` from `src` to `dst`; returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics on duplicate id, out-of-range node, or non-positive size.
    pub fn insert(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
    ) -> u64 {
        assert!(bytes.is_finite() && bytes > 0.0, "bad flow size: {bytes}");
        assert!(src < self.nodes() && dst < self.nodes(), "bad node id");
        self.advance(now);
        let prev = self.flows.insert(
            id,
            Flow {
                src,
                dst,
                remaining: bytes,
                rate: 0.0,
            },
        );
        assert!(prev.is_none(), "flow {id:?} inserted twice");
        self.reallocate();
        self.epoch += 1;
        self.epoch
    }

    /// Removes a flow regardless of progress; returns remaining bytes if it
    /// was active.
    pub fn remove(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        let removed = self.flows.remove(&id).map(|f| f.remaining);
        if removed.is_some() {
            self.reallocate();
            self.epoch += 1;
        }
        removed
    }

    /// Removes and returns all flows whose bytes have been fully delivered.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= BYTES_EPSILON)
            .map(|(id, _)| *id)
            .collect();
        for id in &done {
            self.flows.remove(id);
        }
        if !done.is_empty() {
            self.reallocate();
            self.epoch += 1;
        }
        done
    }

    /// Instant of the next flow completion if the flow set does not change.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        debug_assert_eq!(self.last_advance, now);
        let mut best: Option<f64> = None;
        for f in self.flows.values() {
            if f.remaining <= BYTES_EPSILON {
                return Some(now);
            }
            debug_assert!(f.rate > 0.0, "active flow with zero rate");
            let dt = f.remaining / f.rate;
            best = Some(match best {
                Some(b) => b.min(dt),
                None => dt,
            });
        }
        best.map(|dt| now + SimDuration::from_secs_f64(dt).max(SimDuration::NANO))
    }

    /// Recomputes the max-min fair allocation by progressive filling.
    fn reallocate(&mut self) {
        let n = self.nodes();
        let mut tx_left = self.tx_cap.clone();
        let mut rx_left = self.rx_cap.clone();
        let mut tx_count = vec![0usize; n];
        let mut rx_count = vec![0usize; n];
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut unfrozen: Vec<FlowId> = ids.clone();
        for f in self.flows.values() {
            tx_count[f.src] += 1;
            rx_count[f.dst] += 1;
        }
        while !unfrozen.is_empty() {
            // The bottleneck port is the one offering the smallest fair share.
            let mut share = f64::INFINITY;
            for i in 0..n {
                if tx_count[i] > 0 {
                    share = share.min(tx_left[i] / tx_count[i] as f64);
                }
                if rx_count[i] > 0 {
                    share = share.min(rx_left[i] / rx_count[i] as f64);
                }
            }
            debug_assert!(share.is_finite());
            // Freeze every flow crossing a port that is exactly at the
            // bottleneck share (within tolerance).
            let tol = share * 1e-12 + 1e-15;
            let mut frozen_any = false;
            let mut still: Vec<FlowId> = Vec::new();
            for id in unfrozen.drain(..) {
                let (src, dst) = {
                    let f = &self.flows[&id];
                    (f.src, f.dst)
                };
                let tx_share = tx_left[src] / tx_count[src] as f64;
                let rx_share = rx_left[dst] / rx_count[dst] as f64;
                if tx_share <= share + tol || rx_share <= share + tol {
                    let f = self.flows.get_mut(&id).expect("flow vanished");
                    f.rate = share;
                    tx_left[src] -= share;
                    rx_left[dst] -= share;
                    tx_count[src] -= 1;
                    rx_count[dst] -= 1;
                    frozen_any = true;
                } else {
                    still.push(id);
                }
            }
            debug_assert!(frozen_any, "progressive filling made no progress");
            unfrozen = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime(SimDuration::from_secs_f64(secs).0)
    }

    #[test]
    fn single_flow_gets_min_of_port_caps() {
        let mut fab = FlowAllocator::new(2, 100.0, 80.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 160.0);
        // Limited by the receiver at 80 B/s.
        assert_eq!(fab.rate(FlowId(1)), Some(80.0));
        assert_eq!(fab.next_completion(SimTime::ZERO), Some(t(2.0)));
    }

    #[test]
    fn receiver_shared_fairly() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 100.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 100.0);
        // Two senders into one receiver: 50 each.
        assert_eq!(fab.rate(FlowId(1)), Some(50.0));
        assert_eq!(fab.rate(FlowId(2)), Some(50.0));
        assert!((fab.rx_busy_fraction(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maxmin_redistributes_leftover_capacity() {
        // Node 0 sends to 1 and 2; node 3 also sends to 2.
        // Receiver 2 is the bottleneck for its two flows (50 each), and flow
        // 0→1 can then use the rest of 0's tx capacity (50).
        let mut fab = FlowAllocator::new(4, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1e9);
        fab.insert(SimTime::ZERO, FlowId(2), 0, 2, 1e9);
        fab.insert(SimTime::ZERO, FlowId(3), 3, 2, 1e9);
        let r1 = fab.rate(FlowId(1)).unwrap();
        let r2 = fab.rate(FlowId(2)).unwrap();
        let r3 = fab.rate(FlowId(3)).unwrap();
        assert!((r2 - 50.0).abs() < 1e-6, "r2={r2}");
        assert!((r3 - 50.0).abs() < 1e-6, "r3={r3}");
        assert!((r1 - 50.0).abs() < 1e-6, "r1={r1}");
        // Total out of node 0 respects its tx cap.
        assert!(r1 + r2 <= 100.0 + 1e-6);
    }

    #[test]
    fn completion_then_speedup() {
        let mut fab = FlowAllocator::new(3, 100.0, 100.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, 50.0);
        fab.insert(SimTime::ZERO, FlowId(2), 1, 2, 200.0);
        // Both at 50 B/s; flow 1 done at t=1.
        let c = fab.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c, t(1.0));
        fab.advance(c);
        assert_eq!(fab.take_completed(c), vec![FlowId(1)]);
        // Flow 2 now gets the full 100 B/s with 150 left: done at t=2.5.
        assert_eq!(fab.next_completion(c), Some(t(2.5)));
    }

    #[test]
    fn conservation_of_bytes() {
        let mut fab = FlowAllocator::new(4, 10.0, 10.0);
        let sizes = [3.0, 7.0, 11.0, 5.0];
        fab.insert(SimTime::ZERO, FlowId(0), 0, 1, sizes[0]);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 2, sizes[1]);
        fab.insert(SimTime::ZERO, FlowId(2), 3, 1, sizes[2]);
        fab.insert(SimTime::ZERO, FlowId(3), 2, 0, sizes[3]);
        let mut now = SimTime::ZERO;
        while fab.active_flows() > 0 {
            now = fab.next_completion(now).unwrap();
            fab.advance(now);
            fab.take_completed(now);
        }
        let total: f64 = sizes.iter().sum();
        assert!((fab.total_delivered() - total).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_flow_panics() {
        let mut fab = FlowAllocator::new(2, 1.0, 1.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1.0);
        fab.insert(SimTime::ZERO, FlowId(1), 0, 1, 1.0);
    }
}
