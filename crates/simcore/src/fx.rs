//! A fast, fully deterministic hasher for hot-path maps.
//!
//! `std::collections::HashMap`'s default `RandomState` is seeded per process,
//! which is fine for determinism here (no iteration order ever reaches an
//! observable ordering — see the audit notes in [`crate::maxmin`]) but pays
//! SipHash's full per-lookup cost on keys that are two small integers. This
//! module provides the Fx multiply-rotate hash (the scheme used by the Rust
//! compiler's `FxHashMap`), hand-rolled because this workspace vendors no
//! external hashing crate. It is:
//!
//! * **deterministic across processes and platforms** — no random seed, so a
//!   map's iteration order is a pure function of its insertion history (we
//!   still never let that order escape; see the rebuild paths in `maxmin`);
//! * **fast on short fixed-width keys** — one rotate, one xor, and one
//!   multiply per word, which is what the `(src, dst)` pair index hits on
//!   every flow insert/remove;
//! * **not DoS-resistant** — keys here are machine indices produced by the
//!   simulator itself, never attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit variant): the closest
/// odd number to 2⁶⁴ / φ, spreading consecutive integers across the table.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx streaming hasher: `hash = (hash rol 5 ⊕ word) × SEED` per word.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s; zero-sized, so maps cost nothing extra to create.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_usize(7);
        a.write_usize(13);
        b.write_usize(7);
        b.write_usize(13);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_matches_padded_words() {
        // write() must consume trailing bytes (zero-padded), not drop them.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[]);
        assert_eq!(c.finish(), 0, "empty input leaves the state untouched");
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<(usize, usize), u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((i, i * 2), i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(41, 82)), Some(&41));
        assert_eq!(m.remove(&(41, 82)), Some(41));
        assert_eq!(m.get(&(41, 82)), None);
    }
}
