//! Rack-sharded hierarchical fabric: exact max-min within racks, ε-fair
//! across racks, with deterministic cross-shard event exchange.
//!
//! The flat [`FlowAllocator`] has an honest Θ(live classes)/event floor: every
//! reallocation walks the whole fabric's dirty resources, and everything runs
//! on one thread. At 10k machines that floor is the simulator's wall-clock.
//! This module splits the fabric along the physical rack topology:
//!
//! * **One exact allocator per rack.** Flows whose endpoints share a rack are
//!   max-min allocated over that rack's ports only — bit-identical physics to
//!   the flat allocator restricted to the rack, at Θ(rack classes)/event.
//! * **One core allocator over rack aggregation ports.** An inter-rack flow
//!   is inserted into a core [`FlowAllocator`] whose "nodes" are racks, as a
//!   flow `rack(src) → rack(dst)`; the existing `(src, dst)` class mechanism
//!   therefore aggregates all traffic between a rack pair into one
//!   **super-class** for free, and the core can run under the ε/Δ
//!   [`MaxMinPolicy`]. The modelled constraint is the rack's (typically
//!   oversubscribed) aggregation uplink/downlink; inter-rack flows do not
//!   additionally contend for their endpoints' NIC — the deliberate
//!   "exact within the rack, approximate across" trade documented in
//!   DESIGN.md §9.
//! * **Epoch-boundary exchange.** Each rack shard owns an outbox
//!   [`EventQueue`]. A completion sweep runs every rack's collection
//!   independently (fanned out to scoped worker threads when enough racks
//!   have work), publishes each rack's completions into its own outbox, and
//!   only then merges all outboxes — in total `(time, shard, seq)` order —
//!   into the caller's buffer. Nothing a worker thread does can reorder the
//!   merged stream: per-shard work is a pure function of that shard's state,
//!   and the merge is sequential over shards. Results are therefore
//!   **bit-identical for any shard count**, which the proptests pin.
//!
//! With one rack, every flow is intra-rack, the single rack allocator sees
//! exactly the call sequence the flat allocator would have seen, and the
//! merge degenerates to that allocator's own ascending-id output: the
//! hierarchical path at `racks = 1` is bit-identical to the flat exact path.

use std::collections::BTreeMap;

use crate::events::EventQueue;
use crate::fx::{FxHashMap, FxHashSet};
use crate::maxmin::{FlowAllocator, FlowId, MaxMinPolicy, NodeId};
use crate::stats::SimStats;
use crate::time::SimTime;

/// Fan completion collection / commit waves out to scoped worker threads only
/// when at least this many racks have work; below it, per-event thread spawn
/// overhead would swamp the rack-local work itself.
const PAR_RACK_THRESHOLD: usize = 4;

/// An immutable machine → rack assignment, validated to partition the
/// machine set.
#[derive(Clone, Debug)]
pub struct RackMap {
    /// Machine → rack index.
    rack_of: Vec<u32>,
    /// Machine → index within its rack (the rack allocator's node id).
    local_of: Vec<u32>,
    /// Rack → member machines, ascending.
    members: Vec<Vec<NodeId>>,
}

impl RackMap {
    /// Builds a map from explicit rack member lists over machines
    /// `0..n_machines`. The lists must partition the machine set: every
    /// machine in exactly one rack, no rack empty.
    pub fn from_groups(n_machines: usize, groups: &[Vec<usize>]) -> Result<RackMap, String> {
        if groups.is_empty() {
            return Err("rack topology has no racks".into());
        }
        let mut rack_of = vec![u32::MAX; n_machines];
        let mut local_of = vec![u32::MAX; n_machines];
        let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(groups.len());
        for (r, g) in groups.iter().enumerate() {
            if g.is_empty() {
                return Err(format!("rack {r} is empty"));
            }
            let mut sorted = g.clone();
            sorted.sort_unstable();
            for (l, &m) in sorted.iter().enumerate() {
                if m >= n_machines {
                    return Err(format!(
                        "rack {r} names machine {m} out of range ({n_machines} machines)"
                    ));
                }
                if rack_of[m] != u32::MAX {
                    return Err(format!("machine {m} appears in two racks"));
                }
                rack_of[m] = r as u32;
                local_of[m] = l as u32;
            }
            members.push(sorted);
        }
        if let Some(m) = rack_of.iter().position(|&r| r == u32::MAX) {
            return Err(format!(
                "machine {m} is in no rack (racks must partition the machine set)"
            ));
        }
        Ok(RackMap {
            rack_of,
            local_of,
            members,
        })
    }

    /// Uniform assignment: racks of `rack_size` consecutive machines, the
    /// last rack holding the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `n_machines` or `rack_size` is zero.
    pub fn uniform(n_machines: usize, rack_size: usize) -> RackMap {
        assert!(n_machines > 0, "no machines");
        assert!(rack_size > 0, "zero rack size");
        let groups: Vec<Vec<usize>> = (0..n_machines)
            .collect::<Vec<_>>()
            .chunks(rack_size)
            .map(|c| c.to_vec())
            .collect();
        RackMap::from_groups(n_machines, &groups).expect("uniform chunks partition by construction")
    }

    /// The whole cluster as one rack.
    pub fn single(n_machines: usize) -> RackMap {
        RackMap::uniform(n_machines, n_machines)
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        self.members.len()
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.rack_of.len()
    }

    /// Rack index of `machine`.
    pub fn rack_of(&self, machine: NodeId) -> usize {
        self.rack_of[machine] as usize
    }

    /// `machine`'s node index inside its rack's allocator.
    pub fn local_of(&self, machine: NodeId) -> usize {
        self.local_of[machine] as usize
    }

    /// Member machines of rack `r`, ascending.
    pub fn members(&self, r: usize) -> &[NodeId] {
        &self.members[r]
    }
}

/// One rack's shard: its intra-rack allocator plus the outbox through which
/// its completions are exchanged at epoch boundaries.
#[derive(Debug)]
struct RackShard {
    alloc: FlowAllocator,
    /// Cross-shard effects published by this shard, drained at epoch merge.
    outbox: EventQueue<FlowId>,
    /// Scratch for the rack allocator's completion sweep.
    buf: Vec<FlowId>,
}

impl RackShard {
    /// Collects this rack's due completions and publishes them into the
    /// shard outbox. Pure function of this shard's state — safe to run on a
    /// worker thread without affecting the merged order.
    fn collect(&mut self, now: SimTime) {
        self.alloc.take_completed_into(now, &mut self.buf);
        for &id in &self.buf {
            self.outbox.schedule(now, id);
        }
        self.buf.clear();
    }
}

/// The two-level, rack-sharded fabric. Same surface as [`FlowAllocator`]
/// (insert / remove / completions / cuts / port scaling / batching), same
/// determinism guarantees, Θ(rack classes + rack-pair classes)/event cost.
#[derive(Debug)]
pub struct HierFabric {
    map: RackMap,
    racks: Vec<RackShard>,
    /// Allocator over rack aggregation ports; nodes are racks, classes are
    /// (src-rack, dst-rack) super-classes.
    core: FlowAllocator,
    core_outbox: EventQueue<FlowId>,
    core_buf: Vec<FlowId>,
    /// Machine endpoints of every live flow, parked ones included. BTreeMap
    /// so every scan over it is in ascending-id order by construction.
    flows: BTreeMap<FlowId, (NodeId, NodeId)>,
    /// Cut inter-rack flows → remaining bytes. An inter-rack machine-pair cut
    /// cannot be expressed as a core pair cut (that would cut the whole
    /// rack-pair super-class), so affected flows are *parked*: withdrawn from
    /// the core with their remaining bytes retained, re-inserted on heal.
    parked: BTreeMap<FlowId, f64>,
    /// Machine-level cuts whose endpoints straddle racks (intra-rack cuts are
    /// delegated to the rack allocator's own exact cut machinery).
    cut_pairs: FxHashSet<(NodeId, NodeId)>,
    /// Live (un-parked) inter-rack flows by machine pair, in insertion order;
    /// lets a pair cut find its flows without scanning the flow set.
    pair_flows: FxHashMap<(NodeId, NodeId), Vec<FlowId>>,
    intra_policy: MaxMinPolicy,
    core_policy: MaxMinPolicy,
    /// Worker-thread count for commit / collection fan-out; 1 = serial.
    shards: usize,
    /// Per-rack cached next completion, keyed by the rack allocator's epoch.
    next_cache: Vec<Option<SimTime>>,
    epoch_cache: Vec<u64>,
    core_next: Option<SimTime>,
    core_epoch: u64,
    epoch: u64,
    last_advance: SimTime,
    batch_depth: u32,
    shard_epochs: u64,
    cross_shard_events: u64,
    parallel_commits: u64,
}

impl HierFabric {
    /// Creates a hierarchical fabric over `map`'s racks. Intra-rack ports get
    /// `tx_cap` / `rx_cap` bytes per second and are allocated under
    /// `intra_policy` (pass the default policy for the exact-within-racks
    /// contract); each rack's aggregation uplink/downlink gets `agg_tx` /
    /// `agg_rx` and is allocated under `core_policy` (ε/Δ welcome — this is
    /// the level with O(racks²) classes, not O(machines²)).
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacities or a bad policy (see
    /// [`FlowAllocator::new_with_policy`]), or `shards == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        map: RackMap,
        tx_cap: f64,
        rx_cap: f64,
        agg_tx: f64,
        agg_rx: f64,
        intra_policy: MaxMinPolicy,
        core_policy: MaxMinPolicy,
        shards: usize,
    ) -> HierFabric {
        assert!(shards > 0, "need at least one shard");
        let racks: Vec<RackShard> = (0..map.n_racks())
            .map(|r| RackShard {
                alloc: FlowAllocator::new_with_policy(
                    map.members(r).len(),
                    tx_cap,
                    rx_cap,
                    intra_policy,
                ),
                outbox: EventQueue::new(),
                buf: Vec::new(),
            })
            .collect();
        let core = FlowAllocator::new_with_policy(map.n_racks(), agg_tx, agg_rx, core_policy);
        let n_racks = map.n_racks();
        HierFabric {
            map,
            racks,
            core,
            core_outbox: EventQueue::new(),
            core_buf: Vec::new(),
            flows: BTreeMap::new(),
            parked: BTreeMap::new(),
            cut_pairs: FxHashSet::default(),
            pair_flows: FxHashMap::default(),
            intra_policy,
            core_policy,
            shards,
            next_cache: vec![None; n_racks],
            epoch_cache: vec![0; n_racks],
            core_next: None,
            core_epoch: 0,
            epoch: 0,
            last_advance: SimTime::ZERO,
            batch_depth: 0,
            shard_epochs: 0,
            cross_shard_events: 0,
            parallel_commits: 0,
        }
    }

    /// The machine → rack assignment this fabric shards by.
    pub fn rack_map(&self) -> &RackMap {
        &self.map
    }

    /// Number of machines (ports at the intra-rack level).
    pub fn nodes(&self) -> usize {
        self.map.n_machines()
    }

    /// Stale-event guard; bumped on every flow-set mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of flows in flight (parked flows included).
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Live flow classes across every rack plus the core's super-classes.
    pub fn active_classes(&self) -> usize {
        self.racks
            .iter()
            .map(|r| r.alloc.active_classes())
            .sum::<usize>()
            + self.core.active_classes()
    }

    /// Total bytes delivered across every level.
    pub fn total_delivered(&self) -> f64 {
        self.racks
            .iter()
            .map(|r| r.alloc.total_delivered())
            .sum::<f64>()
            + self.core.total_delivered()
    }

    /// Drains all flows at their current rates up to `now`. O(1): the clock
    /// moves here; sub-allocators self-advance lazily when next touched.
    pub fn advance(&mut self, now: SimTime) {
        self.last_advance = now;
    }

    /// Starts a flow of `bytes` from machine `src` to machine `dst`; returns
    /// the new epoch. Routes to `src`'s rack allocator when the endpoints
    /// share a rack, otherwise into the core as a `rack(src) → rack(dst)`
    /// super-class member (or straight to the parked set if that machine
    /// pair is currently cut).
    ///
    /// # Panics
    ///
    /// Panics on duplicate id, out-of-range machine, or non-positive size.
    pub fn insert(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
    ) -> u64 {
        assert!(src < self.nodes() && dst < self.nodes(), "bad machine id");
        self.last_advance = now;
        let prev = self.flows.insert(id, (src, dst));
        assert!(prev.is_none(), "flow {id:?} inserted twice");
        let (rs, rd) = (self.map.rack_of(src), self.map.rack_of(dst));
        if rs == rd {
            self.racks[rs].alloc.insert(
                now,
                id,
                self.map.local_of(src),
                self.map.local_of(dst),
                bytes,
            );
        } else if self.cut_pairs.contains(&(src, dst)) {
            assert!(bytes.is_finite() && bytes > 0.0, "bad flow size: {bytes}");
            self.parked.insert(id, bytes);
        } else {
            self.core.insert(now, id, rs, rd, bytes);
            self.pair_flows.entry((src, dst)).or_default().push(id);
        }
        self.epoch += 1;
        self.epoch
    }

    /// Removes a flow regardless of progress; returns remaining bytes if it
    /// was active. Parked flows return their parked remainder.
    pub fn remove(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.last_advance = now;
        let (src, dst) = self.flows.remove(&id)?;
        self.epoch += 1;
        let (rs, rd) = (self.map.rack_of(src), self.map.rack_of(dst));
        if rs == rd {
            self.racks[rs].alloc.remove(now, id)
        } else if let Some(bytes) = self.parked.remove(&id) {
            Some(bytes)
        } else {
            self.pair_flows_remove(src, dst, id);
            self.core.remove(now, id)
        }
    }

    /// Current rate of `flow`, if active. Parked flows report rate zero,
    /// exactly like a cut class in the flat allocator.
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        let &(src, dst) = self.flows.get(&flow)?;
        let (rs, rd) = (self.map.rack_of(src), self.map.rack_of(dst));
        if rs == rd {
            self.racks[rs].alloc.rate(flow)
        } else if self.parked.contains_key(&flow) {
            Some(0.0)
        } else {
            self.core.rate(flow)
        }
    }

    /// Drops `id` from the inter-rack pair index (order within a pair's list
    /// is insertion order; removal is a linear scan of a list that holds the
    /// handful of concurrent flows between one machine pair).
    fn pair_flows_remove(&mut self, src: NodeId, dst: NodeId, id: FlowId) {
        let std::collections::hash_map::Entry::Occupied(mut e) = self.pair_flows.entry((src, dst))
        else {
            panic!("inter-rack flow {id:?} missing from pair index");
        };
        let list = e.get_mut();
        let pos = list
            .iter()
            .position(|&f| f == id)
            .expect("flow in pair index");
        list.remove(pos);
        if list.is_empty() {
            e.remove();
        }
    }

    /// Opens a batched-update scope across every level; see
    /// [`FlowAllocator::begin_update`].
    pub fn begin_update(&mut self) {
        self.batch_depth += 1;
        for rack in &mut self.racks {
            rack.alloc.begin_update();
        }
        self.core.begin_update();
    }

    /// Closes a batch scope, committing every level. Racks with deferred
    /// mutations reallocate independently; when at least
    /// `PAR_RACK_THRESHOLD` racks have real work (and this fabric was built
    /// with `shards > 1`), the rack commits are fanned out to scoped worker
    /// threads in contiguous rack chunks — each rack's reallocation is a
    /// pure function of that rack's state, so the fan-out cannot change any
    /// result, only the wall-clock. Returns the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn commit(&mut self, now: SimTime) -> u64 {
        assert!(self.batch_depth > 0, "commit without begin_update");
        self.batch_depth -= 1;
        let pending = self
            .racks
            .iter()
            .filter(|r| r.alloc.batch_pending())
            .count();
        let shards = self.shards.min(self.racks.len());
        if shards > 1 && pending >= PAR_RACK_THRESHOLD {
            self.parallel_commits += 1;
            let chunk = self.racks.len().div_ceil(shards);
            let HierFabric { racks, core, .. } = self;
            std::thread::scope(|s| {
                for racks_chunk in racks.chunks_mut(chunk) {
                    s.spawn(move || {
                        for rack in racks_chunk {
                            rack.alloc.commit(now);
                        }
                    });
                }
                // The core's super-class reallocation rides on this thread
                // while the rack shards work.
                core.commit(now);
            });
        } else {
            for rack in &mut self.racks {
                rack.alloc.commit(now);
            }
            self.core.commit(now);
        }
        self.epoch
    }

    /// Whether rack `i`'s cached deadline admits a completion at or before
    /// `horizon` (a stale cache — the rack mutated since the cache was
    /// refreshed — always admits one).
    fn rack_maybe_due(&self, i: usize, horizon: SimTime) -> bool {
        self.epoch_cache[i] != self.racks[i].alloc.epoch()
            || self.next_cache[i].is_some_and(|t| t <= horizon)
    }

    /// Removes all flows whose bytes have been fully delivered, appending
    /// their ids to `done` (cleared first) in ascending id order.
    ///
    /// This is the epoch boundary of the sharded design: every rack's
    /// collection runs independently (on scoped worker threads when at least
    /// [`PAR_RACK_THRESHOLD`] racks are due), publishes into its own outbox,
    /// and the outboxes — racks in index order, then the core — are merged
    /// sequentially in total `(time, shard, seq)` order. The merged stream
    /// is a pure function of per-shard state, so any shard count produces
    /// identical bytes; the final ascending-id sort preserves the flat
    /// allocator's public completion order.
    pub fn take_completed_into(&mut self, now: SimTime, done: &mut Vec<FlowId>) {
        self.last_advance = now;
        done.clear();
        debug_assert!(self.core_buf.is_empty());
        let nr = self.racks.len();
        let intra_horizon = now.saturating_add(self.intra_policy.quantum);
        let core_horizon = now.saturating_add(self.core_policy.quantum);
        let due: Vec<bool> = (0..nr)
            .map(|i| self.rack_maybe_due(i, intra_horizon))
            .collect();
        let core_due = self.core_epoch != self.core.epoch()
            || self.core_next.is_some_and(|t| t <= core_horizon);
        let n_due = due.iter().filter(|&&d| d).count();
        let shards = self.shards.min(nr);
        if shards > 1 && n_due >= PAR_RACK_THRESHOLD {
            let chunk = nr.div_ceil(shards);
            let HierFabric {
                racks,
                core,
                core_buf,
                ..
            } = self;
            std::thread::scope(|s| {
                for (racks_chunk, due_chunk) in racks.chunks_mut(chunk).zip(due.chunks(chunk)) {
                    s.spawn(move || {
                        for (rack, &is_due) in racks_chunk.iter_mut().zip(due_chunk) {
                            if is_due {
                                rack.collect(now);
                            }
                        }
                    });
                }
                if core_due {
                    core.take_completed_into(now, core_buf);
                }
            });
        } else {
            for (rack, &is_due) in self.racks.iter_mut().zip(&due) {
                if is_due {
                    rack.collect(now);
                }
            }
            if core_due {
                self.core.take_completed_into(now, &mut self.core_buf);
            }
        }
        for &id in &self.core_buf {
            self.core_outbox.schedule(now, id);
        }
        self.core_buf.clear();
        // Epoch boundary: merge every shard's published effects. Racks in
        // index order, the core last; within a shard, outbox (time, seq)
        // order — the total (time, shard, seq) order of the exchange.
        for rack in &mut self.racks {
            while let Some((_, id)) = rack.outbox.pop_due(now) {
                done.push(id);
            }
        }
        while let Some((_, id)) = self.core_outbox.pop_due(now) {
            done.push(id);
        }
        if !done.is_empty() {
            self.shard_epochs += 1;
            self.cross_shard_events += done.len() as u64;
            self.epoch += 1;
            for &id in done.iter() {
                let (src, dst) = self
                    .flows
                    .remove(&id)
                    .expect("completed flow missing from the index");
                if self.map.rack_of(src) != self.map.rack_of(dst) {
                    self.pair_flows_remove(src, dst, id);
                }
            }
            done.sort_unstable();
        }
    }

    /// Instant of the next flow completion if the flow set does not change:
    /// the min over every rack's cached deadline and the core's. Caches are
    /// keyed by sub-allocator epoch, so an event that touched two racks
    /// refreshes two deadlines, not `O(racks)`. A fabric whose only flows
    /// are parked reports [`SimTime::FAR_FUTURE`], like a flat allocator
    /// whose flows are all cut.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(
            self.batch_depth == 0,
            "next_completion inside an open batch"
        );
        self.last_advance = now;
        let mut min: Option<SimTime> = None;
        for (i, rack) in self.racks.iter_mut().enumerate() {
            if self.epoch_cache[i] != rack.alloc.epoch() {
                self.next_cache[i] = rack.alloc.next_completion(now);
                self.epoch_cache[i] = rack.alloc.epoch();
            }
            min = match (min, self.next_cache[i]) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        if self.core_epoch != self.core.epoch() {
            self.core_next = self.core.next_completion(now);
            self.core_epoch = self.core.epoch();
        }
        min = match (min, self.core_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if min.is_none() && !self.parked.is_empty() {
            min = Some(SimTime::FAR_FUTURE);
        }
        min.map(|t| t.max(now))
    }

    /// Scales machine `node`'s intra-rack port to `factor × nominal`
    /// (degradation windows). Inter-rack flows of that machine see only the
    /// rack aggregation constraint, so a machine-level degradation does not
    /// throttle them — the documented level-split approximation.
    pub fn set_port_scale(&mut self, now: SimTime, node: NodeId, factor: f64) {
        self.last_advance = now;
        let r = self.map.rack_of(node);
        self.racks[r]
            .alloc
            .set_port_scale(now, self.map.local_of(node), factor);
        self.epoch += 1;
    }

    /// Cuts or heals the directed machine pair `(src, dst)`.
    ///
    /// Intra-rack pairs delegate to the rack allocator's exact cut machinery
    /// (bit-exact heal). An inter-rack pair cannot cut its core super-class
    /// — that would cut *every* flow between the two racks — so its flows
    /// are parked: removed from the core with remaining bytes retained
    /// (capacity redistributes exactly as a removal would), rate pinned to
    /// zero, and re-inserted on heal in ascending id order. Idempotent.
    pub fn set_pair_cut(&mut self, now: SimTime, src: NodeId, dst: NodeId, cut: bool) {
        assert!(src < self.nodes() && dst < self.nodes(), "bad machine id");
        self.last_advance = now;
        let (rs, rd) = (self.map.rack_of(src), self.map.rack_of(dst));
        if rs == rd {
            self.racks[rs].alloc.set_pair_cut(
                now,
                self.map.local_of(src),
                self.map.local_of(dst),
                cut,
            );
            self.epoch += 1;
            return;
        }
        if cut {
            if !self.cut_pairs.insert((src, dst)) {
                return;
            }
            if let Some(mut ids) = self.pair_flows.remove(&(src, dst)) {
                ids.sort_unstable();
                self.core.begin_update();
                for id in ids {
                    let remaining = self
                        .core
                        .remove(now, id)
                        .expect("pair-indexed flow missing from the core");
                    // A flow cut within dust of its completion parks with one
                    // dust byte so heal can re-insert it; the dust is forgiven
                    // at completion exactly like the flat allocator's epsilon.
                    self.parked
                        .insert(id, remaining.max(crate::maxmin::BYTES_EPSILON));
                }
                self.core.commit(now);
            }
        } else {
            if !self.cut_pairs.remove(&(src, dst)) {
                return;
            }
            // `parked` is a BTreeMap, so the re-insertion order is ascending
            // by id — deterministic regardless of how the flows were parked.
            let ids: Vec<FlowId> = self
                .parked
                .iter()
                .filter(|(id, _)| self.flows.get(id) == Some(&(src, dst)))
                .map(|(&id, _)| id)
                .collect();
            self.core.begin_update();
            for id in ids {
                let bytes = self.parked.remove(&id).expect("id came from the map");
                self.core.insert(now, id, rs, rd, bytes);
                self.pair_flows.entry((src, dst)).or_default().push(id);
            }
            self.core.commit(now);
        }
        self.epoch += 1;
    }

    /// True when the directed machine pair `(src, dst)` is currently cut.
    pub fn pair_cut(&self, src: NodeId, dst: NodeId) -> bool {
        let (rs, rd) = (self.map.rack_of(src), self.map.rack_of(dst));
        if rs == rd {
            self.racks[rs]
                .alloc
                .pair_cut(self.map.local_of(src), self.map.local_of(dst))
        } else {
            self.cut_pairs.contains(&(src, dst))
        }
    }

    /// Fraction of `node`'s intra-rack receive capacity in use. Inter-rack
    /// traffic is accounted at the rack aggregation level, not per machine.
    pub fn rx_busy_fraction(&self, node: NodeId) -> f64 {
        let r = self.map.rack_of(node);
        self.racks[r]
            .alloc
            .rx_busy_fraction(self.map.local_of(node))
    }

    /// Fraction of `node`'s intra-rack transmit capacity in use; see
    /// [`HierFabric::rx_busy_fraction`].
    pub fn tx_busy_fraction(&self, node: NodeId) -> f64 {
        let r = self.map.rack_of(node);
        self.racks[r]
            .alloc
            .tx_busy_fraction(self.map.local_of(node))
    }

    /// Control-plane cost counters summed across every level, plus the
    /// sharding counters (epochs, exchanged events, parallel commit waves).
    pub fn stats(&self) -> SimStats {
        let mut s = SimStats::default();
        for rack in &self.racks {
            s.merge(&rack.alloc.stats());
        }
        s.merge(&self.core.stats());
        s.shard_epochs = self.shard_epochs;
        s.cross_shard_events = self.cross_shard_events;
        s.parallel_commits = self.parallel_commits;
        s
    }
}

/// A fabric that is either the flat single-level [`FlowAllocator`] (the
/// default, bit-identical to every run before rack topologies existed) or
/// the rack-sharded [`HierFabric`]. Executors hold this and call through;
/// every method forwards with identical semantics.
#[derive(Debug)]
pub enum Fabric {
    /// Single-level exact/ε fabric over machine ports.
    Flat(Box<FlowAllocator>),
    /// Two-level rack-sharded fabric.
    ///
    /// Both variants are boxed: either allocator is hundreds of bytes to
    /// kilobytes, is built once per run, and is only ever touched through
    /// this enum's forwarding methods.
    Hier(Box<HierFabric>),
}

impl Fabric {
    /// See [`FlowAllocator::advance`].
    pub fn advance(&mut self, now: SimTime) {
        match self {
            Fabric::Flat(f) => f.advance(now),
            Fabric::Hier(h) => h.advance(now),
        }
    }

    /// See [`FlowAllocator::insert`].
    pub fn insert(
        &mut self,
        now: SimTime,
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
    ) -> u64 {
        match self {
            Fabric::Flat(f) => f.insert(now, id, src, dst, bytes),
            Fabric::Hier(h) => h.insert(now, id, src, dst, bytes),
        }
    }

    /// See [`FlowAllocator::remove`].
    pub fn remove(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        match self {
            Fabric::Flat(f) => f.remove(now, id),
            Fabric::Hier(h) => h.remove(now, id),
        }
    }

    /// See [`FlowAllocator::rate`].
    pub fn rate(&self, flow: FlowId) -> Option<f64> {
        match self {
            Fabric::Flat(f) => f.rate(flow),
            Fabric::Hier(h) => h.rate(flow),
        }
    }

    /// See [`FlowAllocator::take_completed_into`].
    pub fn take_completed_into(&mut self, now: SimTime, done: &mut Vec<FlowId>) {
        match self {
            Fabric::Flat(f) => f.take_completed_into(now, done),
            Fabric::Hier(h) => h.take_completed_into(now, done),
        }
    }

    /// See [`FlowAllocator::next_completion`].
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        match self {
            Fabric::Flat(f) => f.next_completion(now),
            Fabric::Hier(h) => h.next_completion(now),
        }
    }

    /// See [`FlowAllocator::begin_update`].
    pub fn begin_update(&mut self) {
        match self {
            Fabric::Flat(f) => f.begin_update(),
            Fabric::Hier(h) => h.begin_update(),
        }
    }

    /// See [`FlowAllocator::commit`].
    pub fn commit(&mut self, now: SimTime) -> u64 {
        match self {
            Fabric::Flat(f) => f.commit(now),
            Fabric::Hier(h) => h.commit(now),
        }
    }

    /// See [`FlowAllocator::set_port_scale`].
    pub fn set_port_scale(&mut self, now: SimTime, node: NodeId, factor: f64) {
        match self {
            Fabric::Flat(f) => f.set_port_scale(now, node, factor),
            Fabric::Hier(h) => h.set_port_scale(now, node, factor),
        }
    }

    /// See [`FlowAllocator::set_pair_cut`].
    pub fn set_pair_cut(&mut self, now: SimTime, src: NodeId, dst: NodeId, cut: bool) {
        match self {
            Fabric::Flat(f) => f.set_pair_cut(now, src, dst, cut),
            Fabric::Hier(h) => h.set_pair_cut(now, src, dst, cut),
        }
    }

    /// See [`FlowAllocator::pair_cut`].
    pub fn pair_cut(&self, src: NodeId, dst: NodeId) -> bool {
        match self {
            Fabric::Flat(f) => f.pair_cut(src, dst),
            Fabric::Hier(h) => h.pair_cut(src, dst),
        }
    }

    /// See [`FlowAllocator::rx_busy_fraction`].
    pub fn rx_busy_fraction(&self, node: NodeId) -> f64 {
        match self {
            Fabric::Flat(f) => f.rx_busy_fraction(node),
            Fabric::Hier(h) => h.rx_busy_fraction(node),
        }
    }

    /// See [`FlowAllocator::tx_busy_fraction`].
    pub fn tx_busy_fraction(&self, node: NodeId) -> f64 {
        match self {
            Fabric::Flat(f) => f.tx_busy_fraction(node),
            Fabric::Hier(h) => h.tx_busy_fraction(node),
        }
    }

    /// See [`FlowAllocator::epoch`].
    pub fn epoch(&self) -> u64 {
        match self {
            Fabric::Flat(f) => f.epoch(),
            Fabric::Hier(h) => h.epoch(),
        }
    }

    /// See [`FlowAllocator::active_flows`].
    pub fn active_flows(&self) -> usize {
        match self {
            Fabric::Flat(f) => f.active_flows(),
            Fabric::Hier(h) => h.active_flows(),
        }
    }

    /// See [`FlowAllocator::stats`].
    pub fn stats(&self) -> SimStats {
        match self {
            Fabric::Flat(f) => f.stats(),
            Fabric::Hier(h) => h.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn rack_map_validation_errors() {
        // Non-partitioning: machine 3 missing.
        let err = RackMap::from_groups(4, &[vec![0, 1], vec![2]]).unwrap_err();
        assert!(err.contains("machine 3 is in no rack"), "{err}");
        // Zero-size rack.
        let err = RackMap::from_groups(3, &[vec![0, 1, 2], vec![]]).unwrap_err();
        assert!(err.contains("rack 1 is empty"), "{err}");
        // Duplicate membership.
        let err = RackMap::from_groups(3, &[vec![0, 1], vec![1, 2]]).unwrap_err();
        assert!(err.contains("machine 1 appears in two racks"), "{err}");
        // Out-of-range machine.
        let err = RackMap::from_groups(2, &[vec![0, 1], vec![5]]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // No racks at all.
        let err = RackMap::from_groups(2, &[]).unwrap_err();
        assert!(err.contains("no racks"), "{err}");
        // A valid uniform map round-trips.
        let map = RackMap::uniform(10, 4);
        assert_eq!(map.n_racks(), 3);
        assert_eq!(map.members(2), &[8, 9]);
        assert_eq!(map.rack_of(5), 1);
        assert_eq!(map.local_of(5), 1);
    }

    /// Drives the same scripted mixed intra/inter-rack load through the
    /// fabric and returns an observation transcript with every float as raw
    /// bits, so comparisons are bitwise.
    fn transcript(fabric: &mut HierFabric, machines: usize) -> Vec<(u64, u64)> {
        let mut obs: Vec<(u64, u64)> = Vec::new();
        let mut done = Vec::new();
        let mut clock = SimTime::ZERO;
        let mut next_id = 0u64;
        let mut live: Vec<FlowId> = Vec::new();
        for step in 0..60u64 {
            clock += SimDuration::from_millis(200);
            fabric.begin_update();
            fabric.take_completed_into(clock, &mut done);
            for &id in &done {
                obs.push((1, id.0));
                live.retain(|&f| f != id);
            }
            // A deterministic little workload: fan-in, fan-out, and removal.
            for k in 0..3u64 {
                let id = FlowId(next_id);
                next_id += 1;
                let src = ((step * 7 + k * 3) % machines as u64) as usize;
                let dst = ((step * 5 + k * 11 + 1) % machines as u64) as usize;
                if src != dst {
                    fabric.insert(clock, id, src, dst, 1e6 * (1.0 + (k as f64)));
                    live.push(id);
                }
            }
            if step % 7 == 3 {
                if let Some(&victim) = live.first() {
                    let rem = fabric.remove(clock, victim);
                    obs.push((2, rem.map(f64::to_bits).unwrap_or(0)));
                    live.retain(|&f| f != victim);
                }
            }
            fabric.commit(clock);
            for &id in &live {
                obs.push((3, fabric.rate(id).map(f64::to_bits).unwrap_or(u64::MAX)));
            }
            obs.push((4, fabric.next_completion(clock).map(|x| x.0).unwrap_or(0)));
        }
        obs.push((5, fabric.total_delivered().to_bits()));
        obs
    }

    fn hier(machines: usize, rack_size: usize, shards: usize) -> HierFabric {
        HierFabric::new(
            RackMap::uniform(machines, rack_size),
            1e8,
            1e8,
            4e8,
            4e8,
            MaxMinPolicy::default(),
            MaxMinPolicy::default(),
            shards,
        )
    }

    #[test]
    fn shard_count_is_unobservable() {
        let base = transcript(&mut hier(24, 4, 1), 24);
        for shards in [2, 4, 8] {
            let other = transcript(&mut hier(24, 4, shards), 24);
            assert_eq!(base, other, "shards={shards} diverged");
        }
    }

    #[test]
    fn single_rack_is_bit_identical_to_flat() {
        // Drive the same script through the flat allocator by hand.
        let machines = 12;
        let mut flat = FlowAllocator::new(machines, 1e8, 1e8);
        let mut h = hier(machines, machines, 1);
        let mut done_f = Vec::new();
        let mut done_h = Vec::new();
        let mut clock = SimTime::ZERO;
        let mut next_id = 0u64;
        for step in 0..40u64 {
            clock += SimDuration::from_millis(150);
            flat.begin_update();
            h.begin_update();
            flat.take_completed_into(clock, &mut done_f);
            h.take_completed_into(clock, &mut done_h);
            assert_eq!(done_f, done_h);
            for k in 0..2u64 {
                let id = FlowId(next_id);
                next_id += 1;
                let src = ((step * 3 + k) % machines as u64) as usize;
                let dst = ((step * 11 + k * 5 + 1) % machines as u64) as usize;
                if src != dst {
                    flat.insert(clock, id, src, dst, 5e5);
                    h.insert(clock, id, src, dst, 5e5);
                }
            }
            flat.commit(clock);
            h.commit(clock);
            for probe in 0..next_id {
                let rf = flat.rate(FlowId(probe)).map(f64::to_bits);
                let rh = h.rate(FlowId(probe)).map(f64::to_bits);
                assert_eq!(rf, rh, "rate of flow {probe} diverged at step {step}");
            }
            assert_eq!(flat.next_completion(clock), h.next_completion(clock));
        }
        assert_eq!(
            flat.total_delivered().to_bits(),
            h.total_delivered().to_bits()
        );
    }

    #[test]
    fn inter_rack_pair_cut_parks_and_heals() {
        let mut h = hier(8, 4, 1);
        // Machines 1 (rack 0) and 5 (rack 1): inter-rack.
        h.insert(t(0), FlowId(1), 1, 5, 1e6);
        h.insert(t(0), FlowId(2), 1, 6, 1e6);
        assert!(h.rate(FlowId(1)).unwrap() > 0.0);
        h.set_pair_cut(t(1), 1, 5, true);
        assert!(h.pair_cut(1, 5));
        assert_eq!(h.rate(FlowId(1)), Some(0.0), "cut flow is parked at zero");
        assert!(h.rate(FlowId(2)).unwrap() > 0.0, "other pair unaffected");
        // A new flow on the cut pair parks immediately.
        h.insert(t(1), FlowId(3), 1, 5, 2e6);
        assert_eq!(h.rate(FlowId(3)), Some(0.0));
        // Parked flows never complete: next_completion never returns None
        // while they exist.
        let mut done = Vec::new();
        h.take_completed_into(t(50), &mut done);
        assert_eq!(done, vec![FlowId(2)], "only the live flow completes");
        assert!(h.next_completion(t(50)).is_some());
        // Heal: both parked flows resume and eventually complete.
        h.set_pair_cut(t(51), 1, 5, false);
        assert!(!h.pair_cut(1, 5));
        assert!(h.rate(FlowId(1)).unwrap() > 0.0);
        assert!(h.rate(FlowId(3)).unwrap() > 0.0);
        h.take_completed_into(t(200), &mut done);
        assert_eq!(done, vec![FlowId(1), FlowId(3)]);
        assert_eq!(h.active_flows(), 0);
        // Idempotent cut/heal on a pair with no flows.
        h.set_pair_cut(t(201), 0, 7, true);
        h.set_pair_cut(t(201), 0, 7, true);
        h.set_pair_cut(t(202), 0, 7, false);
        h.set_pair_cut(t(202), 0, 7, false);
    }

    #[test]
    fn intra_rack_cut_delegates_to_the_rack_allocator() {
        let mut h = hier(8, 4, 1);
        h.insert(t(0), FlowId(1), 0, 2, 1e6);
        h.set_pair_cut(t(0), 0, 2, true);
        assert!(h.pair_cut(0, 2));
        assert_eq!(h.rate(FlowId(1)), Some(0.0));
        assert_eq!(h.next_completion(t(0)), Some(SimTime::FAR_FUTURE));
        h.set_pair_cut(t(1), 0, 2, false);
        assert!(h.rate(FlowId(1)).unwrap() > 0.0);
    }

    #[test]
    fn oversubscribed_core_throttles_inter_rack_flows() {
        // 2 racks × 4 machines, rack NICs 1e8 but aggregation only 5e7:
        // a single inter-rack flow is capped by the core, an intra-rack flow
        // by the NIC.
        let map = RackMap::uniform(8, 4);
        let mut h = HierFabric::new(
            map,
            1e8,
            1e8,
            5e7,
            5e7,
            MaxMinPolicy::default(),
            MaxMinPolicy::default(),
            1,
        );
        h.insert(t(0), FlowId(1), 0, 1, 1e6); // intra
        h.insert(t(0), FlowId(2), 2, 5, 1e6); // inter
        assert_eq!(h.rate(FlowId(1)), Some(1e8));
        assert_eq!(h.rate(FlowId(2)), Some(5e7));
        // Two inter-rack flows between the same racks share the uplink.
        h.insert(t(0), FlowId(3), 3, 6, 1e6);
        assert_eq!(h.rate(FlowId(2)), Some(2.5e7));
        assert_eq!(h.rate(FlowId(3)), Some(2.5e7));
    }

    #[test]
    fn stats_count_epochs_and_exchanges() {
        let mut h = hier(8, 2, 1);
        h.insert(t(0), FlowId(1), 0, 5, 1e6);
        h.insert(t(0), FlowId(2), 0, 1, 1e6);
        let mut done = Vec::new();
        h.take_completed_into(t(100), &mut done);
        assert_eq!(done.len(), 2);
        let s = h.stats();
        assert_eq!(s.shard_epochs, 1);
        assert_eq!(s.cross_shard_events, 2);
        assert!(s.reallocs > 0);
    }

    proptest! {
        /// Any machine count / rack size / shard count: the transcript is a
        /// pure function of everything except the shard count.
        #[test]
        fn prop_shard_count_invariance(
            machines in 2usize..30,
            rack_size in 1usize..30,
            shards_a in 1usize..9,
            shards_b in 1usize..9,
        ) {
            let rack_size = rack_size.min(machines);
            let a = transcript(&mut hier(machines, rack_size, shards_a), machines);
            let b = transcript(&mut hier(machines, rack_size, shards_b), machines);
            prop_assert_eq!(a, b);
        }

        /// One rack ≡ the flat exact allocator, observed bitwise over rates,
        /// completions, deadlines, and delivered bytes.
        #[test]
        fn prop_single_rack_matches_flat(
            machines in 2usize..16,
            seed in 0u64..500,
        ) {
            let mut flat = FlowAllocator::new(machines, 1e8, 1e8);
            let mut h = hier(machines, machines, 1);
            let mut done_f = Vec::new();
            let mut done_h = Vec::new();
            let mut clock = SimTime::ZERO;
            let mut rng = seed;
            let mut next_id = 0u64;
            for _ in 0..30 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                clock += SimDuration::from_millis(50 + (rng >> 33) % 400);
                flat.take_completed_into(clock, &mut done_f);
                h.take_completed_into(clock, &mut done_h);
                prop_assert_eq!(&done_f, &done_h);
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let src = (rng >> 33) as usize % machines;
                let dst = (rng >> 13) as usize % machines;
                if src != dst {
                    let id = FlowId(next_id);
                    next_id += 1;
                    let bytes = 1e5 + ((rng >> 3) % 1000) as f64 * 1e4;
                    flat.insert(clock, id, src, dst, bytes);
                    h.insert(clock, id, src, dst, bytes);
                }
                for probe in next_id.saturating_sub(8)..next_id {
                    prop_assert_eq!(
                        flat.rate(FlowId(probe)).map(f64::to_bits),
                        h.rate(FlowId(probe)).map(f64::to_bits)
                    );
                }
                prop_assert_eq!(flat.next_completion(clock), h.next_completion(clock));
            }
            prop_assert_eq!(
                flat.total_delivered().to_bits(),
                h.total_delivered().to_bits()
            );
        }
    }
}
