//! Property tests for the simulation primitives: whatever the workload, the
//! fluid resources must conserve work, respect capacities, and terminate.

use proptest::prelude::*;
use simcore::resource::EfficiencyCurve;
use simcore::{
    FlowAllocator, FlowId, JobId, MaxMinPolicy, PsResource, ResourceKind, SimDuration, SimTime,
};

/// Every live flow's class-derived rate must equal the unique per-flow
/// max-min fixpoint computed from scratch by the quadratic reference.
fn assert_matches_reference(fab: &FlowAllocator) -> Result<(), TestCaseError> {
    for (id, want) in fab.reference_reallocate() {
        let got = fab.rate(id).expect("live flow has a rate");
        prop_assert!(
            (got - want).abs() <= want.abs() * 1e-9 + 1e-12,
            "flow {:?}: class rate {} vs reference {}",
            id,
            got,
            want
        );
    }
    Ok(())
}

fn drive_resource(r: &mut PsResource, jobs: usize) -> (f64, SimTime) {
    let mut now = SimTime::ZERO;
    let mut completed = 0;
    let mut guard = 0;
    while completed < jobs {
        let t = r.next_completion(now).expect("active jobs must progress");
        assert!(t >= now, "time went backwards");
        now = t;
        r.advance(now);
        completed += r.take_completed(now).len();
        guard += 1;
        assert!(guard < 10_000, "resource did not converge");
    }
    (r.total_delivered(), now)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ps_resource_conserves_work(
        capacity in 1.0f64..1000.0,
        cap in prop_oneof![Just(None), (0.1f64..10.0).prop_map(Some)],
        works in prop::collection::vec(0.1f64..100.0, 1..20),
    ) {
        let mut r = PsResource::new(
            ResourceKind::Cpu,
            capacity,
            cap,
            EfficiencyCurve::Flat,
        );
        for (i, w) in works.iter().enumerate() {
            r.insert(SimTime::ZERO, JobId(i as u64), *w);
        }
        let total: f64 = works.iter().sum();
        let (delivered, _) = drive_resource(&mut r, works.len());
        prop_assert!((delivered - total).abs() / total < 1e-6);
        prop_assert_eq!(r.active_jobs(), 0);
    }

    #[test]
    fn ps_resource_never_beats_capacity_or_caps(
        capacity in 1.0f64..100.0,
        works in prop::collection::vec(1.0f64..50.0, 1..16),
    ) {
        // With a per-job cap of 1.0, n jobs of work w each must take at
        // least max(w, total/capacity) seconds.
        let mut r = PsResource::new(
            ResourceKind::Cpu,
            capacity,
            Some(1.0),
            EfficiencyCurve::Flat,
        );
        for (i, w) in works.iter().enumerate() {
            r.insert(SimTime::ZERO, JobId(i as u64), *w);
        }
        let total: f64 = works.iter().sum();
        let max_work = works.iter().cloned().fold(0.0f64, f64::max);
        let (_, end) = drive_resource(&mut r, works.len());
        let lower = max_work.max(total / capacity);
        prop_assert!(
            end.as_secs_f64() >= lower * (1.0 - 1e-9),
            "finished at {} but lower bound is {}", end.as_secs_f64(), lower
        );
    }

    #[test]
    fn hdd_curve_is_monotone_and_floored(
        factor in 0.01f64..2.0,
        floor in 0.05f64..0.9,
        k in 1usize..64,
    ) {
        let c = EfficiencyCurve::HddSeek {
            read_factor: factor,
            write_factor: factor * 2.0,
            floor,
        };
        let e_k = c.at(k);
        let e_k1 = c.at(k + 1);
        prop_assert!(e_k1 <= e_k + 1e-12, "efficiency must not rise with k");
        prop_assert!(e_k >= floor - 1e-12);
        prop_assert!(e_k <= 1.0 + 1e-12);
        // Writers hurt at least as much as readers.
        prop_assert!(c.at_rw(k, 1) <= c.at_rw(k + 1, 0) + 1e-12);
    }

    #[test]
    fn flow_allocator_respects_port_caps_and_delivers_all_bytes(
        n_nodes in 2usize..8,
        flows in prop::collection::vec(
            (0usize..8, 0usize..8, 1.0f64..1000.0),
            1..24,
        ),
        cap in 10.0f64..1000.0,
    ) {
        let mut fab = FlowAllocator::new(n_nodes, cap, cap);
        let mut total = 0.0;
        let mut inserted = 0;
        for (i, (src, dst, bytes)) in flows.iter().enumerate() {
            let (src, dst) = (src % n_nodes, dst % n_nodes);
            fab.insert(SimTime::ZERO, FlowId(i as u64), src, dst, *bytes);
            total += bytes;
            inserted += 1;
        }
        // Rates never exceed port capacities.
        for node in 0..n_nodes {
            prop_assert!(fab.tx_busy_fraction(node) <= 1.0 + 1e-9);
            prop_assert!(fab.rx_busy_fraction(node) <= 1.0 + 1e-9);
        }
        // Drive to completion; all bytes arrive.
        let mut now = SimTime::ZERO;
        let mut done = 0;
        let mut guard = 0;
        while done < inserted {
            let t = fab.next_completion(now).expect("flows active");
            now = t;
            fab.advance(now);
            done += fab.take_completed(now).len();
            // Caps hold at every reallocation point.
            for node in 0..n_nodes {
                prop_assert!(fab.tx_busy_fraction(node) <= 1.0 + 1e-9);
                prop_assert!(fab.rx_busy_fraction(node) <= 1.0 + 1e-9);
            }
            guard += 1;
            prop_assert!(guard < 10_000);
        }
        prop_assert!((fab.total_delivered() - total).abs() / total < 1e-6);
    }

    #[test]
    fn flow_completion_time_no_better_than_bandwidth_bound(
        flows in prop::collection::vec(1.0f64..500.0, 1..12),
        cap in 10.0f64..200.0,
    ) {
        // All flows into one receiver: finish no earlier than sum/cap.
        let n = flows.len();
        let mut fab = FlowAllocator::new(n + 1, 1e12, cap);
        for (i, bytes) in flows.iter().enumerate() {
            fab.insert(SimTime::ZERO, FlowId(i as u64), i, n, *bytes);
        }
        let mut now = SimTime::ZERO;
        let mut done = 0;
        while done < n {
            let t = fab.next_completion(now).expect("flows active");
            now = t;
            fab.advance(now);
            done += fab.take_completed(now).len();
        }
        let bound = flows.iter().sum::<f64>() / cap;
        prop_assert!(now.as_secs_f64() >= bound * (1.0 - 1e-9));
        // And max-min fairness means equal flows finish together.
    }

    #[test]
    fn incremental_rates_match_reference_under_churn(
        n_nodes in 2usize..6,
        tx_cap in 10.0f64..500.0,
        rx_cap in 10.0f64..500.0,
        ops in prop::collection::vec(
            (0u8..4, 0usize..8, 0usize..8, 1.0f64..500.0, 0.1f64..0.9),
            1..40,
        ),
    ) {
        // Random insert/remove/advance churn: after every mutation the
        // incremental allocator's rates must equal the from-scratch
        // progressive-filling fixpoint (which is unique).
        let mut fab = FlowAllocator::new(n_nodes, tx_cap, rx_cap);
        let mut now = SimTime::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        for (op, src, dst, bytes, frac) in ops {
            match op {
                // Weighted toward inserts so churn builds real populations.
                0 | 1 => {
                    let id = FlowId(next_id);
                    next_id += 1;
                    fab.insert(now, id, src % n_nodes, dst % n_nodes, bytes);
                    live.push(id);
                }
                2 => {
                    if !live.is_empty() {
                        let idx = (bytes as usize) % live.len();
                        fab.remove(now, live.swap_remove(idx));
                    }
                }
                _ => {
                    if let Some(t) = fab.next_completion(now) {
                        let dt = t.since(now).as_secs_f64();
                        now += SimDuration::from_secs_f64(dt * frac);
                        fab.advance(now);
                        if frac > 0.5 {
                            now = t.max(now);
                            fab.advance(now);
                            let done = fab.take_completed(now);
                            live.retain(|id| !done.contains(id));
                        }
                    }
                }
            }
            let want = fab.reference_reallocate();
            prop_assert_eq!(want.len(), live.len());
            for (id, w) in &want {
                let got = fab.rate(*id).expect("live flow has a rate");
                prop_assert!(
                    (got - w).abs() <= w.abs() * 1e-9 + 1e-12,
                    "flow {:?}: incremental {} vs reference {}", id, got, w
                );
            }
        }
    }

    #[test]
    fn randomized_fabric_conserves_bytes_under_staggered_arrivals(
        n_nodes in 2usize..6,
        flows in prop::collection::vec(
            (0usize..8, 0usize..8, 1.0f64..300.0, 0.0f64..5.0),
            1..24,
        ),
        cap in 10.0f64..300.0,
    ) {
        // Flows arrive at random times mid-flight (reallocation while other
        // flows are partially drained); every byte still lands and port caps
        // hold at every reallocation point.
        let mut arrivals: Vec<(SimTime, usize, usize, f64)> = flows
            .iter()
            .map(|&(s, d, bytes, at)| {
                (
                    SimTime::ZERO + SimDuration::from_secs_f64(at),
                    s % n_nodes,
                    d % n_nodes,
                    bytes,
                )
            })
            .collect();
        arrivals.sort_by_key(|a| a.0);
        let total: f64 = flows.iter().map(|f| f.2).sum();
        let mut fab = FlowAllocator::new(n_nodes, cap, cap);
        let mut now = SimTime::ZERO;
        let mut next_arrival = 0;
        let mut next_id = 0u64;
        let mut done = 0;
        let mut guard = 0;
        while next_arrival < arrivals.len() || done < next_id as usize {
            let completion = fab.next_completion(now);
            let arrival = arrivals.get(next_arrival).map(|a| a.0);
            let t = match (completion, arrival) {
                (Some(c), Some(a)) => c.min(a),
                (Some(c), None) => c,
                (None, Some(a)) => a,
                (None, None) => break,
            };
            now = t;
            fab.advance(now);
            while arrivals.get(next_arrival).is_some_and(|a| a.0 == t) {
                let (_, s, d, bytes) = arrivals[next_arrival];
                fab.insert(now, FlowId(next_id), s, d, bytes);
                next_id += 1;
                next_arrival += 1;
            }
            done += fab.take_completed(now).len();
            for node in 0..n_nodes {
                prop_assert!(fab.tx_busy_fraction(node) <= 1.0 + 1e-9);
                prop_assert!(fab.rx_busy_fraction(node) <= 1.0 + 1e-9);
            }
            guard += 1;
            prop_assert!(guard < 10_000);
        }
        prop_assert_eq!(fab.active_flows(), 0);
        prop_assert!(
            (fab.total_delivered() - total).abs() / total < 1e-6,
            "delivered {} of {} bytes", fab.total_delivered(), total
        );
    }

    #[test]
    fn same_instant_batched_waves_match_unbatched(
        n_nodes in 2usize..6,
        waves in prop::collection::vec(
            prop::collection::vec((0u8..3, 0usize..8, 0usize..8, 1.0f64..200.0), 1..8),
            1..10,
        ),
        caps in (10.0f64..300.0, 10.0f64..300.0),
    ) {
        // Each wave of mutations lands at one instant. One allocator wraps
        // the wave in begin_update/commit (a single reallocation), the other
        // mutates step by step; both must agree exactly on rates, remaining
        // bytes at removal, completion instants, and same-instant completion
        // batches. Every other wave jumps to the next completion so batches
        // interleave with real progress.
        let mut batched = FlowAllocator::new(n_nodes, caps.0, caps.1);
        let mut plain = FlowAllocator::new(n_nodes, caps.0, caps.1);
        let mut now = SimTime::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        for (wi, wave) in waves.into_iter().enumerate() {
            batched.begin_update();
            for (op, src, dst, bytes) in wave {
                match op {
                    // Weighted toward inserts so waves build populations.
                    0 | 1 => {
                        let id = FlowId(next_id);
                        next_id += 1;
                        batched.insert(now, id, src % n_nodes, dst % n_nodes, bytes);
                        plain.insert(now, id, src % n_nodes, dst % n_nodes, bytes);
                        live.push(id);
                    }
                    _ => {
                        if !live.is_empty() {
                            let idx = (bytes as usize) % live.len();
                            let id = live.swap_remove(idx);
                            // Up to fp grouping (batched drains one long
                            // interval where unbatched drains it piecewise),
                            // both views agree on the remaining bytes even
                            // though the batched rates are mid-wave stale.
                            let a = batched.remove(now, id).expect("live in batched");
                            let b = plain.remove(now, id).expect("live in plain");
                            prop_assert!((a - b).abs() <= b.abs() * 1e-9 + 1e-9);
                        }
                    }
                }
            }
            batched.commit(now);
            for &id in &live {
                let a = batched.rate(id).expect("live in batched");
                let b = plain.rate(id).expect("live in plain");
                prop_assert!((a - b).abs() <= b.abs() * 1e-9 + 1e-12);
            }
            let (ca, cb) = (batched.next_completion(now), plain.next_completion(now));
            prop_assert_eq!(ca.is_some(), cb.is_some());
            if let (Some(ta), Some(tb)) = (ca, cb) {
                // Deadlines may differ by an ulp of drain grouping; never more.
                prop_assert!((ta.as_secs_f64() - tb.as_secs_f64()).abs() <= 2e-9);
                if wi % 2 == 0 {
                    // Jump past both deadlines so an ulp split cannot divide
                    // a completion batch between the two views.
                    now = ta.max(tb);
                    let a = batched.take_completed(now);
                    let b = plain.take_completed(now);
                    prop_assert_eq!(&a, &b, "same-instant completion batches diverged");
                    live.retain(|id| !a.contains(id));
                }
            }
        }
        let (da, dp) = (batched.total_delivered(), plain.total_delivered());
        prop_assert!((da - dp).abs() <= dp.abs() * 1e-9 + 1e-6);
    }

    #[test]
    fn epsilon_rates_stay_in_one_sided_band_under_churn(
        n_nodes in 2usize..6,
        tx_cap in 10.0f64..500.0,
        rx_cap in 10.0f64..500.0,
        epsilon in 0.001f64..0.2,
        ops in prop::collection::vec(
            (0u8..4, 0usize..8, 0usize..8, 1.0f64..500.0, 0.1f64..0.9),
            1..40,
        ),
    ) {
        // The ε-fair contract: after every mutation, each applied rate sits
        // in [reference · (1 − ε), reference] — approximation only ever
        // under-allocates — and port capacity holds. Same churn generator as
        // the exact-mode property above.
        let policy = MaxMinPolicy { epsilon, quantum: SimDuration::ZERO };
        let mut fab = FlowAllocator::new_with_policy(n_nodes, tx_cap, rx_cap, policy);
        let mut now = SimTime::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        for (op, src, dst, bytes, frac) in ops {
            match op {
                0 | 1 => {
                    let id = FlowId(next_id);
                    next_id += 1;
                    fab.insert(now, id, src % n_nodes, dst % n_nodes, bytes);
                    live.push(id);
                }
                2 => {
                    if !live.is_empty() {
                        let idx = (bytes as usize) % live.len();
                        fab.remove(now, live.swap_remove(idx));
                    }
                }
                _ => {
                    if let Some(t) = fab.next_completion(now) {
                        let dt = t.since(now).as_secs_f64();
                        now += SimDuration::from_secs_f64(dt * frac);
                        fab.advance(now);
                        if frac > 0.5 {
                            now = t.max(now);
                            fab.advance(now);
                            let done = fab.take_completed(now);
                            live.retain(|id| !done.contains(id));
                        }
                    }
                }
            }
            let want = fab.reference_reallocate();
            prop_assert_eq!(want.len(), live.len());
            for (id, w) in &want {
                let got = fab.rate(*id).expect("live flow has a rate");
                let tol = w.abs() * 1e-9 + 1e-12;
                prop_assert!(
                    got <= w + tol && got >= w * (1.0 - epsilon) - tol,
                    "flow {:?}: rate {} outside [{}, {}] (ε={})",
                    id, got, w * (1.0 - epsilon), w, epsilon
                );
            }
            for node in 0..n_nodes {
                prop_assert!(fab.tx_busy_fraction(node) <= 1.0 + 1e-9);
                prop_assert!(fab.rx_busy_fraction(node) <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn zero_epsilon_zero_quantum_is_bit_identical_to_exact(
        n_nodes in 2usize..6,
        tx_cap in 10.0f64..500.0,
        rx_cap in 10.0f64..500.0,
        ops in prop::collection::vec(
            (0u8..4, 0usize..8, 0usize..8, 1.0f64..500.0, 0.1f64..0.9),
            1..40,
        ),
    ) {
        // A MaxMinPolicy of ε = 0, Δ = 0 runs the very same code path as the
        // exact allocator: rates (bitwise), epochs, next-completion instants
        // and completion batches must all be identical under churn.
        let policy = MaxMinPolicy { epsilon: 0.0, quantum: SimDuration::ZERO };
        let mut exact = FlowAllocator::new(n_nodes, tx_cap, rx_cap);
        let mut approx = FlowAllocator::new_with_policy(n_nodes, tx_cap, rx_cap, policy);
        let mut now = SimTime::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        for (op, src, dst, bytes, frac) in ops {
            match op {
                0 | 1 => {
                    let id = FlowId(next_id);
                    next_id += 1;
                    exact.insert(now, id, src % n_nodes, dst % n_nodes, bytes);
                    approx.insert(now, id, src % n_nodes, dst % n_nodes, bytes);
                    live.push(id);
                }
                2 => {
                    if !live.is_empty() {
                        let idx = (bytes as usize) % live.len();
                        let id = live.swap_remove(idx);
                        let a = exact.remove(now, id);
                        let b = approx.remove(now, id);
                        prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
                    }
                }
                _ => {
                    let (ta, tb) = (exact.next_completion(now), approx.next_completion(now));
                    prop_assert_eq!(ta, tb);
                    if let Some(t) = ta {
                        let dt = t.since(now).as_secs_f64();
                        now += SimDuration::from_secs_f64(dt * frac);
                        if frac > 0.5 {
                            now = t.max(now);
                            let da = exact.take_completed(now);
                            let db = approx.take_completed(now);
                            prop_assert_eq!(&da, &db);
                            live.retain(|id| !da.contains(id));
                        }
                    }
                }
            }
            prop_assert_eq!(exact.epoch(), approx.epoch());
            for &id in &live {
                let a = exact.rate(id).expect("live in exact");
                let b = approx.rate(id).expect("live in approx");
                prop_assert_eq!(a.to_bits(), b.to_bits(), "flow {:?} diverged", id);
            }
        }
        prop_assert_eq!(
            exact.total_delivered().to_bits(),
            approx.total_delivered().to_bits()
        );
    }

    #[test]
    fn quantum_coalescing_conserves_bytes_and_never_finishes_later(
        n_nodes in 2usize..6,
        flows in prop::collection::vec(
            (0usize..8, 0usize..8, 1.0f64..500.0),
            1..24,
        ),
        cap in 10.0f64..500.0,
        quantum_ms in 1u64..2000,
    ) {
        // Coalescing completes flows at most rate·Δ bytes early, never late,
        // and removing a flow never slows the survivors (max-min
        // monotonicity) — so the coalesced run's makespan can only improve
        // on exact, and every offered byte is still accounted delivered.
        let policy = MaxMinPolicy {
            epsilon: 0.0,
            quantum: SimDuration::from_millis(quantum_ms),
        };
        let mut exact = FlowAllocator::new(n_nodes, cap, cap);
        let mut coal = FlowAllocator::new_with_policy(n_nodes, cap, cap, policy);
        let mut total = 0.0;
        for (i, &(src, dst, bytes)) in flows.iter().enumerate() {
            let (src, dst) = (src % n_nodes, dst % n_nodes);
            exact.insert(SimTime::ZERO, FlowId(i as u64), src, dst, bytes);
            coal.insert(SimTime::ZERO, FlowId(i as u64), src, dst, bytes);
            total += bytes;
        }
        let drive = |fab: &mut FlowAllocator| -> Result<SimTime, TestCaseError> {
            let mut now = SimTime::ZERO;
            let mut guard = 0;
            while fab.active_flows() > 0 {
                now = fab.next_completion(now).expect("flows active");
                fab.take_completed(now);
                guard += 1;
                prop_assert!(guard < 10_000, "fabric did not converge");
            }
            Ok(now)
        };
        let end_exact = drive(&mut exact)?;
        let end_coal = drive(&mut coal)?;
        prop_assert!(
            end_coal <= end_exact,
            "coalesced run finished later: {:?} vs {:?}", end_coal, end_exact
        );
        prop_assert!(
            (coal.total_delivered() - total).abs() / total < 1e-6,
            "delivered {} of {} bytes", coal.total_delivered(), total
        );
    }

    #[test]
    fn asymmetric_hot_sender_straggler_receiver_matches_reference(
        n_nodes in 3usize..7,
        hot_fanout in 2usize..6,
        straggler_fanin in 2usize..6,
        extra in prop::collection::vec((0usize..8, 0usize..8, 1.0f64..300.0), 0..10),
        partial in 0.2f64..0.9,
    ) {
        // Deliberately asymmetric constraint graphs — a hot sender fanning
        // out, a straggler receiver fanning in, background pairs riding
        // along — are exactly where coarser-than-(src,dst) aggregation broke:
        // equal port *counts* do not imply equal rates. The (src, dst) class
        // rates must match the per-flow fixpoint at every event, including
        // mid-flight second waves (partial wave overlap).
        let mut fab = FlowAllocator::new(n_nodes, 100.0, 100.0);
        let mut next_id = 0u64;
        let hot = 0;
        let straggler = n_nodes - 1;
        fab.begin_update();
        for i in 0..hot_fanout {
            let dst = 1 + (i % (n_nodes - 1));
            fab.insert(SimTime::ZERO, FlowId(next_id), hot, dst, 50.0 + 10.0 * i as f64);
            next_id += 1;
        }
        for i in 0..straggler_fanin {
            let src = i % (n_nodes - 1);
            fab.insert(SimTime::ZERO, FlowId(next_id), src, straggler, 70.0 + 5.0 * i as f64);
            next_id += 1;
        }
        for &(src, dst, bytes) in &extra {
            fab.insert(SimTime::ZERO, FlowId(next_id), src % n_nodes, dst % n_nodes, bytes);
            next_id += 1;
        }
        fab.commit(SimTime::ZERO);
        assert_matches_reference(&fab)?;
        // Advance partway through the first wave, then land a second wave
        // mid-flight: partially drained classes and fresh ones coexist.
        let mut now = SimTime::ZERO;
        if let Some(t) = fab.next_completion(now) {
            now += SimDuration::from_secs_f64(t.since(now).as_secs_f64() * partial);
            fab.advance(now);
        }
        fab.begin_update();
        for i in 0..hot_fanout {
            let dst = 1 + (i % (n_nodes - 1));
            fab.insert(now, FlowId(next_id), hot, dst, 30.0);
            next_id += 1;
        }
        fab.commit(now);
        assert_matches_reference(&fab)?;
        let mut guard = 0;
        while fab.active_flows() > 0 {
            now = fab.next_completion(now).expect("live flows must complete");
            fab.take_completed(now);
            assert_matches_reference(&fab)?;
            guard += 1;
            prop_assert!(guard < 10_000, "fabric did not converge");
        }
    }
}
