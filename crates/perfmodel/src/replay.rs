//! Fault-aware what-if replay (DESIGN.md §10).
//!
//! Extends the §6 what-if model from hardware swaps to *fault plans*: given
//! one fault-free profiled run, predict the makespan of the same workload
//! under a [`FaultPlan`] — without re-simulating. The model walks the plan's
//! events against the baseline's stage windows and charges each event a
//! first-order additive penalty:
//!
//! * **machine crash at `t`** — the remaining work, `T₀ − t`, was provisioned
//!   for `N` machines and must now finish on `N − 1` (capacity loss), and
//!   every stage-second already completed by `t` had `1/N` of its outputs on
//!   the dead machine, which the survivors recompute (lineage loss);
//! * **disk degradation `f` over `[a, b)`** — each overlapped stage-second
//!   loses `(1 − f)` of one disk out of the cluster's `N·D`, weighted by how
//!   disk-bound the stage is (its ideal disk time over its ideal stage time);
//! * **link degradation** — same shape against the stage's network share,
//!   with one NIC of `N`;
//! * **partition isolating a group over `[a, b)`** — the isolated fraction of
//!   the cluster contributes nothing to overlapped network-bound work;
//! * **straggling task (`factor ×` CPU)** — the stage's tail grows by the
//!   extra CPU time of one task, `(factor − 1) × cpu_secs / tasks`. Stragglers
//!   in the *same* stage run concurrently and the stage ends at the max of
//!   its tasks, so only the worst one charges fully; a lesser same-stage
//!   straggler is shadowed (charges only its excess over the worst so far).
//!
//! The penalties deliberately ignore second-order effects the simulator
//! captures (retry scheduling, speculation races, fetch backoff, allocator
//! feedback), so predictions carry a documented error band — the
//! `replay_tolerance` test measures it against `fault_sweep` ground truth and
//! pins it below [`DOCUMENTED_ERROR_BAND`]. That a *model this crude* lands
//! within the band is the §6 argument again: per-resource profiles plus
//! event arithmetic explain most of a faulty run's makespan.

use cluster::{FaultEvent, FaultPlan};
use dataflow::JobReport;

use crate::model::{ideal_times, Scenario};
use crate::profile::StageProfile;

/// Relative error the replay model is documented (and CI-asserted) to stay
/// within against simulated ground truth on the `fault_sweep` workload at
/// intensities up to 1 (measured: 0% at intensity 0, +0.8% at 0.5, +13.4%
/// at 1 on the committed 5-machine sort; +10.5% at 10 machines, +6.1% at
/// 100). Beyond intensity 1 the additive model compounds crash penalties it
/// should overlap and the error grows (+21% at intensity 2) — outside the
/// documented range, printed but not gated.
pub const DOCUMENTED_ERROR_BAND: f64 = 0.25;

/// Inputs beyond the profiles that fault replay needs.
#[derive(Clone, Debug)]
pub struct ReplayOptions {
    /// The cluster the baseline ran on (and the faults strike).
    pub scenario: Scenario,
    /// Task count per profiled stage, aligned with the profiles slice (for
    /// straggler tail arithmetic).
    pub tasks_per_stage: Vec<usize>,
}

/// One fault event's modeled contribution to the predicted makespan.
#[derive(Clone, Debug, PartialEq)]
pub struct EventPenalty {
    /// Which kind of event ("crash", "disk_degrade", "link_degrade",
    /// "partition", "straggle").
    pub label: &'static str,
    /// Modeled additional seconds of makespan.
    pub penalty_secs: f64,
}

/// The replay model's output: a predicted makespan with per-event
/// attribution — *why* the model thinks the run slows down, in the same
/// spirit as the paper's per-resource clarity.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayPrediction {
    /// The fault-free measured makespan the penalties add onto.
    pub baseline_secs: f64,
    /// Predicted faulty makespan: baseline plus all penalties.
    pub predicted_secs: f64,
    /// Per-event attribution, in plan event order.
    pub penalties: Vec<EventPenalty>,
}

impl ReplayPrediction {
    /// Signed relative error against a measured faulty makespan.
    pub fn relative_error(&self, measured_secs: f64) -> f64 {
        if measured_secs <= 0.0 {
            return 0.0;
        }
        (self.predicted_secs - measured_secs) / measured_secs
    }
}

/// Overlap in seconds of `[a0, a1)` and `[b0, b1)`.
fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// Baseline `(start, end)` windows in seconds, aligned with `profiles`.
fn stage_windows(profiles: &[StageProfile], reports: &[JobReport]) -> Vec<(f64, f64)> {
    profiles
        .iter()
        .map(|p| {
            let rep = reports
                .iter()
                .find(|r| r.job == p.job)
                .expect("profile for an unreported job");
            let st = rep
                .stages
                .iter()
                .find(|s| s.stage == p.stage)
                .expect("profile for an unreported stage");
            (st.start.as_secs_f64(), st.end.as_secs_f64())
        })
        .collect()
}

/// Predicts the makespan of the baseline workload under `plan`.
///
/// `profiles` and `reports` must come from a *fault-free* run of the same
/// workload on `opts.scenario`; `baseline_makespan_secs` is that run's
/// measured makespan.
pub fn replay(
    profiles: &[StageProfile],
    reports: &[JobReport],
    baseline_makespan_secs: f64,
    plan: &FaultPlan,
    opts: &ReplayOptions,
) -> ReplayPrediction {
    assert_eq!(
        profiles.len(),
        opts.tasks_per_stage.len(),
        "tasks_per_stage must align with profiles"
    );
    let t0 = baseline_makespan_secs;
    let n = opts.scenario.machines as f64;
    let disks_per_machine = opts.scenario.machine.disks.len() as f64;
    let windows = stage_windows(profiles, reports);
    // Per-stage resource-boundedness weights from the §6 ideal times.
    let shares: Vec<(f64, f64)> = profiles
        .iter()
        .map(|p| {
            let t = ideal_times(p, &opts.scenario);
            let total = t.stage_time();
            if total <= 0.0 {
                (0.0, 0.0)
            } else {
                ((t.disk / total).min(1.0), (t.network / total).min(1.0))
            }
        })
        .collect();

    let mut penalties = Vec::new();
    // Worst straggle extension charged so far, per stage: concurrent
    // same-stage stragglers overlap, so together they extend the stage tail
    // by their max, not their sum.
    let mut straggle_charged: std::collections::BTreeMap<usize, f64> =
        std::collections::BTreeMap::new();
    for ev in plan.events() {
        let p = match *ev {
            FaultEvent::MachineCrash { at, .. } => {
                let t = at.as_secs_f64();
                if t >= t0 || n <= 1.0 {
                    EventPenalty {
                        label: "crash",
                        penalty_secs: 0.0,
                    }
                } else {
                    // Capacity: the remaining schedule stretches by N/(N-1).
                    let capacity = (t0 - t) / (n - 1.0);
                    // Lineage: 1/N of each completed stage-second is redone
                    // by the N-1 survivors.
                    let recompute: f64 = windows
                        .iter()
                        .map(|&(s, e)| {
                            let dur = (e - s).max(0.0);
                            if dur <= 0.0 {
                                return 0.0;
                            }
                            let done = ((t - s) / dur).clamp(0.0, 1.0);
                            dur * done / (n - 1.0)
                        })
                        .sum();
                    EventPenalty {
                        label: "crash",
                        penalty_secs: capacity + recompute,
                    }
                }
            }
            FaultEvent::DiskDegrade {
                factor,
                from,
                until,
                ..
            } => {
                let (a, b) = (from.as_secs_f64(), until.as_secs_f64());
                let lost: f64 = windows
                    .iter()
                    .zip(&shares)
                    .map(|(&(s, e), &(disk_share, _))| {
                        overlap(s, e, a, b) * disk_share * (1.0 - factor) / (n * disks_per_machine)
                    })
                    .sum();
                EventPenalty {
                    label: "disk_degrade",
                    penalty_secs: lost,
                }
            }
            FaultEvent::LinkDegrade {
                factor,
                from,
                until,
                ..
            } => {
                let (a, b) = (from.as_secs_f64(), until.as_secs_f64());
                let lost: f64 = windows
                    .iter()
                    .zip(&shares)
                    .map(|(&(s, e), &(_, net_share))| {
                        overlap(s, e, a, b) * net_share * (1.0 - factor) / n
                    })
                    .sum();
                EventPenalty {
                    label: "link_degrade",
                    penalty_secs: lost,
                }
            }
            FaultEvent::Partition {
                ref groups,
                start,
                heal,
            } => {
                let minority = groups.iter().map(|g| g.len()).min().unwrap_or(0) as f64;
                let a = start.as_secs_f64();
                let b = heal.map_or(t0, |h| h.as_secs_f64());
                let lost: f64 = windows
                    .iter()
                    .zip(&shares)
                    .map(|(&(s, e), &(_, net_share))| {
                        overlap(s, e, a, b) * net_share * minority / n
                    })
                    .sum();
                EventPenalty {
                    label: "partition",
                    penalty_secs: lost,
                }
            }
            FaultEvent::LinkCut { start, heal, .. } => {
                // One directed pair of the N² fabric goes dark: overlapped
                // network-bound work loses that pair's share of receive
                // bandwidth (1/N of the traffic into one receiver of N).
                let a = start.as_secs_f64();
                let b = heal.map_or(t0, |h| h.as_secs_f64());
                let lost: f64 = windows
                    .iter()
                    .zip(&shares)
                    .map(|(&(s, e), &(_, net_share))| overlap(s, e, a, b) * net_share / (n * n))
                    .sum();
                EventPenalty {
                    label: "link_cut",
                    penalty_secs: lost,
                }
            }
            FaultEvent::TaskStraggle { stage, factor, .. } => {
                // The straggling first attempt extends its stage's tail by
                // its extra CPU time — but only past what a concurrent
                // same-stage straggler already extends it by.
                let extra: f64 = profiles
                    .iter()
                    .zip(&opts.tasks_per_stage)
                    .filter(|(p, _)| p.stage.0 as usize == stage)
                    .map(|(p, &tasks)| {
                        if tasks == 0 {
                            0.0
                        } else {
                            (factor - 1.0).max(0.0) * p.cpu_secs / tasks as f64
                        }
                    })
                    .sum();
                let charged = straggle_charged.entry(stage).or_insert(0.0);
                let increment = (extra - *charged).max(0.0);
                *charged = charged.max(extra);
                EventPenalty {
                    label: "straggle",
                    penalty_secs: increment,
                }
            }
        };
        penalties.push(p);
    }

    let predicted = t0 + penalties.iter().map(|p| p.penalty_secs).sum::<f64>();
    ReplayPrediction {
        baseline_secs: t0,
        predicted_secs: predicted,
        penalties,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MachineSpec;
    use dataflow::{JobId, StageId};
    use simcore::SimTime;

    fn scenario() -> Scenario {
        Scenario {
            machines: 4,
            machine: MachineSpec::m2_4xlarge(),
            input_deserialized_in_memory: false,
            cpu_speedup: 1.0,
            serde_speedup: 1.0,
        }
    }

    fn profile(stage: u32, measured: f64, cpu: f64, disk: f64, net: f64) -> StageProfile {
        StageProfile {
            job: JobId(0),
            stage: StageId(stage),
            measured_secs: measured,
            cpu_secs: cpu,
            cpu_deser_secs: 0.0,
            cpu_ser_secs: 0.0,
            input_read_bytes: disk,
            other_disk_bytes: 0.0,
            net_bytes: net,
            reads_job_input: disk > 0.0,
        }
    }

    fn report(stages: &[(u64, u64)]) -> JobReport {
        JobReport {
            job: JobId(0),
            name: "t".into(),
            start: SimTime::ZERO,
            end: SimTime::from_secs(stages.last().map_or(0, |&(_, e)| e)),
            stages: stages
                .iter()
                .enumerate()
                .map(|(i, &(s, e))| dataflow::StageReport {
                    stage: StageId(i as u32),
                    start: SimTime::from_secs(s),
                    end: SimTime::from_secs(e),
                    control: Default::default(),
                })
                .collect(),
            recovery: Default::default(),
        }
    }

    #[test]
    fn empty_plan_predicts_baseline_exactly() {
        let profiles = [profile(0, 10.0, 40.0, 0.0, 0.0)];
        let reports = [report(&[(0, 10)])];
        let pred = replay(
            &profiles,
            &reports,
            10.0,
            &FaultPlan::new(),
            &ReplayOptions {
                scenario: scenario(),
                tasks_per_stage: vec![8],
            },
        );
        assert_eq!(pred.predicted_secs, 10.0);
        assert!(pred.penalties.is_empty());
    }

    #[test]
    fn crash_charges_capacity_and_recompute() {
        let profiles = [profile(0, 10.0, 40.0, 0.0, 0.0)];
        let reports = [report(&[(0, 10)])];
        let plan = FaultPlan::new().crash(1, SimTime::from_secs(5));
        let pred = replay(
            &profiles,
            &reports,
            10.0,
            &plan,
            &ReplayOptions {
                scenario: scenario(),
                tasks_per_stage: vec![8],
            },
        );
        // Capacity: 5s remaining / 3 survivors; recompute: 10s window half
        // done → 10·0.5/3.
        let expect = 5.0 / 3.0 + 10.0 * 0.5 / 3.0;
        assert!((pred.predicted_secs - 10.0 - expect).abs() < 1e-9);
        assert_eq!(pred.penalties[0].label, "crash");
    }

    #[test]
    fn post_makespan_crash_is_free() {
        let profiles = [profile(0, 10.0, 40.0, 0.0, 0.0)];
        let reports = [report(&[(0, 10)])];
        let plan = FaultPlan::new().crash(1, SimTime::from_secs(50));
        let pred = replay(
            &profiles,
            &reports,
            10.0,
            &plan,
            &ReplayOptions {
                scenario: scenario(),
                tasks_per_stage: vec![8],
            },
        );
        assert_eq!(pred.predicted_secs, 10.0);
    }

    #[test]
    fn straggler_charges_one_task_tail() {
        let profiles = [profile(0, 10.0, 40.0, 0.0, 0.0)];
        let reports = [report(&[(0, 10)])];
        let plan = FaultPlan::new().straggle(0, 3, 3.0);
        let pred = replay(
            &profiles,
            &reports,
            10.0,
            &plan,
            &ReplayOptions {
                scenario: scenario(),
                tasks_per_stage: vec![8],
            },
        );
        // (3 - 1) × 40 cpu-secs / 8 tasks = 10s.
        assert!((pred.predicted_secs - 20.0).abs() < 1e-9);
        assert_eq!(pred.penalties[0].label, "straggle");
    }

    #[test]
    fn same_stage_stragglers_overlap_to_their_max() {
        let profiles = [
            profile(0, 10.0, 40.0, 0.0, 0.0),
            profile(1, 10.0, 40.0, 0.0, 0.0),
        ];
        let reports = [report(&[(0, 10), (10, 20)])];
        // Two stragglers on stage 0 (3× shadows the later 2×) plus one on
        // stage 1: stages extend independently, same-stage ones overlap.
        let plan = FaultPlan::new()
            .straggle(0, 3, 3.0)
            .straggle(0, 5, 2.0)
            .straggle(1, 1, 2.0);
        let pred = replay(
            &profiles,
            &reports,
            20.0,
            &plan,
            &ReplayOptions {
                scenario: scenario(),
                tasks_per_stage: vec![8, 8],
            },
        );
        // Stage 0: max(10, 5) = 10s; stage 1: 5s.
        assert!((pred.predicted_secs - 35.0).abs() < 1e-9);
        assert_eq!(pred.penalties[1].penalty_secs, 0.0, "shadowed straggler");
        assert!((pred.penalties[2].penalty_secs - 5.0).abs() < 1e-9);
    }
}
