//! Bottleneck analysis: best-case runtimes with one resource made infinitely
//! fast (Fig 14).
//!
//! This replicates the blocked-time analysis of "Making Sense of Performance
//! in Data Analytics Frameworks" (NSDI'15) — which required extensive
//! white-box logging in Spark — from monotask records alone: the predicted
//! runtime with resource R optimized away is the measured runtime scaled by
//! `max(ideal times without R) / max(all ideal times)`, per stage.

use simcore::ResourceKind;

use crate::model::{ideal_times, Scenario};
use crate::profile::StageProfile;

/// Predicted job runtime if `resource` were infinitely fast — a lower bound
/// on what optimizing that resource can buy (Fig 14's bars). As in
/// [`crate::model::predict_job`], the measured job duration is scaled by the
/// stage-duration-weighted ratio so concurrently-running stages are not
/// double-counted.
pub fn optimized_resource_runtime(
    profiles: &[StageProfile],
    measured_job_secs: f64,
    scenario: &Scenario,
    resource: ResourceKind,
) -> f64 {
    let weight: f64 = profiles.iter().map(|p| p.measured_secs).sum();
    if weight <= 0.0 {
        return measured_job_secs;
    }
    let scaled: f64 = profiles
        .iter()
        .map(|p| {
            let t = ideal_times(p, scenario);
            let full = t.stage_time();
            if full <= 0.0 {
                return p.measured_secs;
            }
            p.measured_secs * t.stage_time_without(resource) / full
        })
        .sum();
    measured_job_secs * scaled / weight
}

/// Per-stage bottleneck resources, in stage order.
pub fn stage_bottlenecks(profiles: &[StageProfile], scenario: &Scenario) -> Vec<ResourceKind> {
    profiles
        .iter()
        .map(|p| ideal_times(p, scenario).bottleneck())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MachineSpec;
    use dataflow::{JobId, StageId};

    fn scenario() -> Scenario {
        Scenario {
            machines: 1,
            machine: MachineSpec::m2_4xlarge(),
            input_deserialized_in_memory: false,
            cpu_speedup: 1.0,
            serde_speedup: 1.0,
        }
    }

    fn cpu_bound() -> StageProfile {
        StageProfile {
            job: JobId(0),
            stage: StageId(0),
            measured_secs: 120.0,
            cpu_secs: 800.0, // ideal 100 s
            cpu_deser_secs: 0.0,
            cpu_ser_secs: 0.0,
            // Two aggregate-disk-seconds (2 HDDs × 110 MiB/s): ideal 2 s.
            input_read_bytes: 2.0 * 220.0 * 1024.0 * 1024.0,
            other_disk_bytes: 0.0,
            net_bytes: 0.0,
            reads_job_input: true,
        }
    }

    #[test]
    fn optimizing_the_non_bottleneck_buys_nothing() {
        let p = cpu_bound();
        let with_fast_disk =
            optimized_resource_runtime(&[p], 120.0, &scenario(), ResourceKind::Disk);
        assert!((with_fast_disk - 120.0).abs() < 1e-9);
    }

    #[test]
    fn optimizing_the_bottleneck_reduces_to_secondary() {
        let p = cpu_bound();
        let with_fast_cpu = optimized_resource_runtime(&[p], 120.0, &scenario(), ResourceKind::Cpu);
        // Disk ideal is 2 s vs CPU 100 s → runtime scales by 2/100.
        assert!((with_fast_cpu - 2.4).abs() < 1e-9);
    }

    #[test]
    fn bottlenecks_reported_per_stage() {
        let a = cpu_bound();
        let mut b = cpu_bound();
        b.stage = StageId(1);
        b.cpu_secs = 1.0;
        b.net_bytes = 1e12;
        let kinds = stage_bottlenecks(&[a, b], &scenario());
        assert_eq!(kinds, vec![ResourceKind::Cpu, ResourceKind::Network]);
    }
}
