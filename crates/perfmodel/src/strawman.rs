//! The models available *without* monotasks (§6.6).
//!
//! Spark controls resource use with **slots**, so the straightforward model
//! scales runtime by slot count — which cannot see disks at all (Fig 15).
//! A better Spark model aggregates measured resource use per stage, but the
//! aggregate hides contention and cannot separate deserialization, leaving
//! 20–30 % errors (Fig 17). And when several jobs share a cluster, Spark can
//! only attribute an executor's resource use to jobs in proportion to slot
//! occupancy, which misattributes whenever the jobs' resource profiles differ
//! (Fig 16).

use cluster::{ClusterSpec, MachineId, ResourceSel, TraceSet};
use dataflow::{InputSpec, JobId, JobReport, JobSpec, StageId};
use simcore::SimTime;
use sparklike::TaskRecord;

use crate::profile::{ResourceUse, StageProfile};

/// The slot-based model (Fig 15): runtime scales inversely with slot count —
/// the only knob the Spark scheduler exposes. Changing disks does not change
/// slots, so the model predicts hardware changes have no effect.
pub fn slot_model_predict(measured_secs: f64, old_slots: usize, new_slots: usize) -> f64 {
    measured_secs * old_slots as f64 / new_slots as f64
}

/// Builds stage profiles from the *job specification* — what a Spark
/// operator could assemble from OS counters measured while the job ran alone
/// (§6.6's restricted case). Deserialization time cannot be separated
/// (`cpu_deser_secs = 0`), so the in-memory what-if of §6.3 is out of reach,
/// and contention effects are invisible to the resulting model.
pub fn spec_profile(job: &JobSpec, report: &JobReport) -> Vec<StageProfile> {
    job.stages
        .iter()
        .map(|st| {
            let window = report
                .stage(st.id)
                .unwrap_or_else(|| panic!("no report window for stage {:?}", st.id));
            let mut input_read = 0.0;
            let mut other_disk = 0.0;
            let mut net = 0.0;
            let mut reads_input = false;
            for t in &st.tasks {
                match t.input {
                    InputSpec::DiskBlock { bytes, .. } => {
                        input_read += bytes;
                        reads_input = true;
                    }
                    InputSpec::ShuffleFetch { bytes } => {
                        // Shuffle data is read once (local or remote) and was
                        // written once by the producer stage; the write side
                        // is charged to the producer below.
                        other_disk += bytes;
                        // Roughly (M-1)/M of fetched bytes cross the network;
                        // a Spark-side modeler knows only the fetch total, so
                        // charge it all (one of this model's error sources).
                        net += bytes;
                    }
                    _ => {}
                }
                other_disk += t.output.disk_bytes();
            }
            StageProfile {
                job: report.job,
                stage: st.id,
                measured_secs: window.duration().as_secs_f64(),
                cpu_secs: st.total_cpu(),
                cpu_deser_secs: 0.0,
                cpu_ser_secs: 0.0,
                input_read_bytes: input_read,
                other_disk_bytes: other_disk,
                net_bytes: net,
                reads_job_input: reads_input,
            }
        })
        .collect()
}

/// Slot-share resource attribution (Fig 16's Spark side): each machine's
/// total resource use during a stage's window is credited to the stage in
/// proportion to the task-seconds its tasks occupied on that machine.
pub fn attribute_by_share(
    target: JobId,
    target_report: &JobReport,
    all_tasks: &[TaskRecord],
    traces: &TraceSet,
    spec: &ClusterSpec,
) -> ResourceUse {
    let mut use_ = ResourceUse::default();
    for stage_report in &target_report.stages {
        let (from, to) = (stage_report.start, stage_report.end);
        if to <= from {
            continue;
        }
        let dur = to.since(from).as_secs_f64();
        for m in 0..spec.machines {
            let share = slot_share(target, stage_report.stage, m, from, to, all_tasks);
            if share <= 0.0 {
                continue;
            }
            let mean = |sel: ResourceSel| {
                traces
                    .recorder(MachineId(m), sel)
                    .map_or(0.0, |r| r.mean_over(from, to))
            };
            let cpu = mean(ResourceSel::Cpu) * spec.machine.cores as f64 * dur;
            let mut disk = 0.0;
            for (d, ds) in spec.machine.disks.iter().enumerate() {
                // Assumes the device delivered its sequential throughput —
                // the contention-blindness the paper calls out.
                disk += mean(ResourceSel::Disk(d)) * ds.throughput * dur;
            }
            let net = mean(ResourceSel::Network) * spec.machine.nic * dur;
            use_.cpu_secs += cpu * share;
            use_.disk_bytes += disk * share;
            use_.net_bytes += net * share;
        }
    }
    use_
}

/// Fraction of task-seconds on machine `m` in `[from, to)` belonging to
/// `(job, stage)`.
fn slot_share(
    job: JobId,
    stage: StageId,
    machine: usize,
    from: SimTime,
    to: SimTime,
    all_tasks: &[TaskRecord],
) -> f64 {
    let overlap = |t: &TaskRecord| -> f64 {
        let s = t.start.max(from);
        let e = t.end.min(to);
        if e > s {
            e.since(s).as_secs_f64()
        } else {
            0.0
        }
    };
    let mut mine = 0.0;
    let mut total = 0.0;
    for t in all_tasks.iter().filter(|t| t.machine == machine) {
        let o = overlap(t);
        total += o;
        if t.job == job && t.stage == stage {
            mine += o;
        }
    }
    if total > 0.0 {
        mine / total
    } else {
        0.0
    }
}

/// The exact resource demand of a job, derivable from its spec — the ground
/// truth that attribution estimates are judged against. Network bytes assume
/// `1 − 1/machines` of shuffle data is remote (uniform placement).
pub fn true_resource_use(job: &JobSpec, machines: usize) -> ResourceUse {
    let mut u = ResourceUse::default();
    let remote_frac = 1.0 - 1.0 / machines as f64;
    for st in &job.stages {
        u.cpu_secs += st.total_cpu();
        for t in &st.tasks {
            match t.input {
                InputSpec::DiskBlock { bytes, .. } => u.disk_bytes += bytes,
                InputSpec::ShuffleFetch { bytes } => {
                    u.disk_bytes += bytes; // read back once (local or serve)
                    u.net_bytes += bytes * remote_frac;
                }
                _ => {}
            }
            u.disk_bytes += t.output.disk_bytes();
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MachineSpec;
    use dataflow::{BlockMap, CostModel, JobBuilder};

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn slot_model_sees_only_slots() {
        assert_eq!(slot_model_predict(100.0, 8, 8), 100.0);
        assert_eq!(slot_model_predict(100.0, 8, 4), 200.0);
    }

    fn sort_job(tag: &str) -> (JobSpec, BlockMap) {
        let total = 2.0 * GIB;
        let job = JobBuilder::new(tag, CostModel::spark_1_3())
            .read_disk(total, total / 100.0, total / 16.0)
            .map(1.0, 1.0, true)
            .shuffle(16, false)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        (job, BlockMap::round_robin(16, 4, 2))
    }

    #[test]
    fn spec_profile_matches_job_totals() {
        let (job, blocks) = sort_job("sort");
        let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
        let out = sparklike::run(&cluster, &[(job.clone(), blocks)], &Default::default());
        let profiles = spec_profile(&job, &out.jobs[0]);
        assert_eq!(profiles.len(), 2);
        assert!(profiles[0].reads_job_input);
        assert!((profiles[0].input_read_bytes - 2.0 * GIB).abs() < 1.0);
        assert!(profiles[1].net_bytes > 0.0);
        assert!(profiles.iter().all(|p| p.measured_secs > 0.0));
    }

    #[test]
    fn slot_share_attribution_is_computable_and_positive() {
        let (a, ba) = sort_job("a");
        let (b, bb) = sort_job("b");
        let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
        let out = sparklike::run(&cluster, &[(a.clone(), ba), (b, bb)], &Default::default());
        let est = attribute_by_share(JobId(0), &out.jobs[0], &out.tasks, &out.traces, &cluster);
        assert!(est.cpu_secs > 0.0 && est.disk_bytes > 0.0);
        let truth = true_resource_use(&a, 4);
        assert!(truth.cpu_secs > 0.0 && truth.disk_bytes > 0.0 && truth.net_bytes > 0.0);
    }
}
