//! Per-stage resource profiles aggregated from monotask records.
//!
//! Because every monotask reports its resource, purpose, and timing, building
//! a stage's resource profile is a fold over the records — no extra
//! instrumentation, which is the architectural point of §6.5.

use std::collections::BTreeMap;

use dataflow::{JobId, JobReport, StageId};
use monotasks_core::{MonotaskRecord, Purpose};
use serde::{Deserialize, Serialize};
use simcore::ResourceKind;

/// Total resource consumption of some scope (a stage, or one job of a
/// multi-job run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUse {
    /// CPU core-seconds.
    pub cpu_secs: f64,
    /// Bytes through disks.
    pub disk_bytes: f64,
    /// Bytes through NICs.
    pub net_bytes: f64,
}

/// One stage's aggregated resource profile.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StageProfile {
    /// Owning job.
    pub job: JobId,
    /// Which stage.
    pub stage: StageId,
    /// Measured wall-clock stage duration in seconds.
    pub measured_secs: f64,
    /// Total compute-monotask service time (core-seconds).
    pub cpu_secs: f64,
    /// Portion of `cpu_secs` spent deserializing (subtractable in §6.3's
    /// in-memory what-if).
    pub cpu_deser_secs: f64,
    /// Portion of `cpu_secs` spent serializing output (scalable in the §9
    /// faster-serializer what-if).
    pub cpu_ser_secs: f64,
    /// Bytes read from disk as job input.
    pub input_read_bytes: f64,
    /// All other disk bytes (shuffle reads/writes/serves, output writes).
    pub other_disk_bytes: f64,
    /// Bytes received over the network.
    pub net_bytes: f64,
    /// Whether this stage reads the job's input (so the in-memory what-if
    /// applies to it).
    pub reads_job_input: bool,
}

impl StageProfile {
    /// All disk bytes.
    pub fn disk_bytes(&self) -> f64 {
        self.input_read_bytes + self.other_disk_bytes
    }

    /// Resource-use summary.
    pub fn resource_use(&self) -> ResourceUse {
        ResourceUse {
            cpu_secs: self.cpu_secs,
            disk_bytes: self.disk_bytes(),
            net_bytes: self.net_bytes,
        }
    }
}

/// Builds per-stage profiles from monotask `records` and the stage windows in
/// `reports`. Stages are returned in `(job, stage)` order.
pub fn profile_stages(records: &[MonotaskRecord], reports: &[JobReport]) -> Vec<StageProfile> {
    let mut map: BTreeMap<(JobId, StageId), StageProfile> = BTreeMap::new();
    for report in reports {
        for st in &report.stages {
            map.insert(
                (report.job, st.stage),
                StageProfile {
                    job: report.job,
                    stage: st.stage,
                    measured_secs: st.duration().as_secs_f64(),
                    cpu_secs: 0.0,
                    cpu_deser_secs: 0.0,
                    cpu_ser_secs: 0.0,
                    input_read_bytes: 0.0,
                    other_disk_bytes: 0.0,
                    net_bytes: 0.0,
                    reads_job_input: false,
                },
            );
        }
    }
    for r in records {
        let key = (r.multitask.job, r.multitask.stage);
        let p = map
            .get_mut(&key)
            .expect("record for a stage missing from reports");
        match r.resource {
            ResourceKind::Cpu => {
                p.cpu_secs += r.service_secs();
                if let Some(cpu) = r.cpu {
                    // Attribute wall time to components proportionally (they
                    // execute back-to-back on one core, so this is exact up
                    // to rounding).
                    let total = cpu.total();
                    if total > 0.0 {
                        p.cpu_deser_secs += r.service_secs() * cpu.deser / total;
                        p.cpu_ser_secs += r.service_secs() * cpu.ser / total;
                    }
                }
            }
            ResourceKind::Disk => {
                if r.purpose == Purpose::ReadInput {
                    p.input_read_bytes += r.bytes;
                    p.reads_job_input = true;
                } else {
                    p.other_disk_bytes += r.bytes;
                }
            }
            ResourceKind::Network => p.net_bytes += r.bytes,
        }
    }
    map.into_values().collect()
}

/// Exact per-job resource attribution from monotask records — trivially
/// correct even with concurrent jobs (Fig 16's monotasks side).
pub fn attribute_by_records(records: &[MonotaskRecord], job: JobId) -> ResourceUse {
    let mut u = ResourceUse::default();
    for r in records.iter().filter(|r| r.multitask.job == job) {
        match r.resource {
            ResourceKind::Cpu => u.cpu_secs += r.service_secs(),
            ResourceKind::Disk => u.disk_bytes += r.bytes,
            ResourceKind::Network => u.net_bytes += r.bytes,
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, MachineSpec};
    use dataflow::{BlockMap, CostModel, JobBuilder};
    use monotasks_core::MonoConfig;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn run_sort() -> (Vec<MonotaskRecord>, Vec<JobReport>) {
        let total = 2.0 * GIB;
        let job = JobBuilder::new("sort", CostModel::spark_1_3())
            .read_disk(total, total / 100.0, total / 16.0)
            .map(1.0, 1.0, true)
            .shuffle(16, false)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        let blocks = BlockMap::round_robin(16, 4, 2);
        let out = monotasks_core::run(
            &ClusterSpec::new(4, MachineSpec::m2_4xlarge()),
            &[(job, blocks)],
            &MonoConfig::default(),
        );
        (out.records, out.jobs)
    }

    #[test]
    fn profiles_cover_all_stages_with_positive_use() {
        let (records, reports) = run_sort();
        let profiles = profile_stages(&records, &reports);
        assert_eq!(profiles.len(), 2);
        let map = &profiles[0];
        assert!(map.reads_job_input);
        assert!(map.input_read_bytes > 0.0);
        assert!(map.other_disk_bytes > 0.0, "shuffle write bytes");
        assert!(map.cpu_secs > 0.0);
        assert!(map.cpu_deser_secs > 0.0 && map.cpu_deser_secs < map.cpu_secs);
        assert!(map.cpu_ser_secs > 0.0 && map.cpu_ser_secs < map.cpu_secs);
        let reduce = &profiles[1];
        assert!(!reduce.reads_job_input);
        assert!(reduce.net_bytes > 0.0);
        assert!(reduce.measured_secs > 0.0);
    }

    #[test]
    fn attribution_sums_to_profile_totals() {
        let (records, reports) = run_sort();
        let profiles = profile_stages(&records, &reports);
        let total: f64 = profiles.iter().map(|p| p.disk_bytes()).sum();
        let attr = attribute_by_records(&records, JobId(0));
        assert!((attr.disk_bytes - total).abs() / total < 1e-9);
        assert!(attr.cpu_secs > 0.0 && attr.net_bytes > 0.0);
    }
}
