//! Per-machine load imbalance — the model's acknowledged blind spot.
//!
//! §6.1: "this model is simple and ignores many practicalities, including the
//! fact that resource use cannot always be perfectly parallelized. For
//! example, if one disk monotask reads much more data than the other disk
//! monotasks, the disk that executes that monotask may be disproportionately
//! highly loaded." Monotask records carry the machine that ran each
//! monotask, so the imbalance is directly measurable: when it is large, the
//! ideal-time model's assumption of perfect parallelism is the thing to
//! distrust.

use std::collections::BTreeMap;

use dataflow::{JobId, StageId};
use monotasks_core::MonotaskRecord;
use serde::{Deserialize, Serialize};
use simcore::ResourceKind;

/// Max-to-mean per-machine load ratios for one stage (1.0 = perfectly even).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StageImbalance {
    /// Owning job.
    pub job: JobId,
    /// Which stage.
    pub stage: StageId,
    /// CPU core-seconds: busiest machine over the mean.
    pub cpu: f64,
    /// Disk bytes: busiest machine over the mean.
    pub disk: f64,
    /// Network bytes received: busiest machine over the mean.
    pub network: f64,
}

impl StageImbalance {
    /// The worst ratio across resources.
    pub fn worst(&self) -> f64 {
        self.cpu.max(self.disk).max(self.network)
    }
}

fn ratio(per_machine: &BTreeMap<usize, f64>, machines: usize) -> f64 {
    if per_machine.is_empty() || machines == 0 {
        return 1.0;
    }
    let total: f64 = per_machine.values().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let mean = total / machines as f64;
    let max = per_machine.values().cloned().fold(0.0f64, f64::max);
    max / mean
}

/// Computes per-stage machine-load imbalance from monotask records.
///
/// `machines` is the cluster size (machines that ran nothing still count in
/// the mean — an idle machine *is* imbalance).
pub fn stage_imbalance(records: &[MonotaskRecord], machines: usize) -> Vec<StageImbalance> {
    #[derive(Default)]
    struct Acc {
        cpu: BTreeMap<usize, f64>,
        disk: BTreeMap<usize, f64>,
        net: BTreeMap<usize, f64>,
    }
    let mut by_stage: BTreeMap<(JobId, StageId), Acc> = BTreeMap::new();
    for r in records {
        let acc = by_stage
            .entry((r.multitask.job, r.multitask.stage))
            .or_default();
        match r.resource {
            ResourceKind::Cpu => *acc.cpu.entry(r.machine).or_default() += r.service_secs(),
            ResourceKind::Disk => *acc.disk.entry(r.machine).or_default() += r.bytes,
            ResourceKind::Network => *acc.net.entry(r.machine).or_default() += r.bytes,
        }
    }
    by_stage
        .into_iter()
        .map(|((job, stage), acc)| StageImbalance {
            job,
            stage,
            cpu: ratio(&acc.cpu, machines),
            disk: ratio(&acc.disk, machines),
            network: ratio(&acc.net, machines),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, MachineSpec};
    use workloads::{apply_input_skew, sort_job, SortConfig};

    fn run(skew: Option<f64>) -> Vec<StageImbalance> {
        let cfg = SortConfig::new(4.0, 10, 4, 2);
        let (mut job, blocks) = sort_job(&cfg);
        if let Some(s) = skew {
            apply_input_skew(&mut job, s, 11);
        }
        let out = monotasks_core::run(
            &ClusterSpec::new(4, MachineSpec::m2_4xlarge()),
            &[(job, blocks)],
            &monotasks_core::MonoConfig::default(),
        );
        stage_imbalance(&out.records, 4)
    }

    #[test]
    fn uniform_job_is_nearly_balanced() {
        let imb = run(None);
        assert_eq!(imb.len(), 2);
        for s in &imb {
            assert!(s.worst() >= 1.0);
            assert!(s.cpu < 1.3, "cpu imbalance {s:?}");
            assert!(s.disk < 1.3, "disk imbalance {s:?}");
        }
    }

    #[test]
    fn skewed_input_shows_up_as_disk_imbalance() {
        let uniform = run(None);
        let skewed = run(Some(1.5));
        assert!(
            skewed[0].disk > uniform[0].disk,
            "skewed {:?} vs uniform {:?}",
            skewed[0],
            uniform[0]
        );
        assert!(skewed[0].disk > 1.25);
    }

    #[test]
    fn empty_records_are_balanced_by_definition() {
        assert!(stage_imbalance(&[], 4).is_empty());
        let m: BTreeMap<usize, f64> = BTreeMap::new();
        assert_eq!(ratio(&m, 4), 1.0);
    }
}
