//! Ideal resource times and what-if prediction (Figs 10–13).
//!
//! For each stage, the model computes the **ideal resource completion time**
//! of CPU, disk, and network (§6.1): CPU monotask time divided by cluster
//! cores, and bytes moved divided by aggregate device throughput. The ideal
//! stage time is the maximum — the bottleneck resource. To answer a what-if
//! question, the ideal times are recomputed under the hypothetical hardware
//! and software configuration, and the *measured* runtime is scaled by the
//! ratio of modeled times — which corrects for the model's blind spots
//! (ramp-up periods, imperfect parallelism), exactly as §6.2 prescribes.

use cluster::{ClusterSpec, MachineSpec};
use serde::{Deserialize, Serialize};
use simcore::ResourceKind;

use crate::profile::StageProfile;

/// A hardware + software configuration to evaluate the model under.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of worker machines.
    pub machines: usize,
    /// Per-machine hardware.
    pub machine: MachineSpec,
    /// Input data stored in memory, already deserialized (§6.3): input-read
    /// disk time and input deserialization CPU time both disappear.
    pub input_deserialized_in_memory: bool,
    /// Uniform CPU speedup (newer cores, better JIT): all compute monotask
    /// time divides by this.
    pub cpu_speedup: f64,
    /// Speedup of (de)serialization only — the §9 what-if ("efforts to
    /// reduce serialization time would reduce the runtime for the compute
    /// monotasks that perform (de)serialization in MonoSpark", e.g. Project
    /// Tungsten). Only monotask records make this component visible.
    pub serde_speedup: f64,
}

impl Scenario {
    /// The configuration a run actually used.
    pub fn of_cluster(spec: &ClusterSpec) -> Scenario {
        Scenario {
            machines: spec.machines,
            machine: spec.machine.clone(),
            input_deserialized_in_memory: false,
            cpu_speedup: 1.0,
            serde_speedup: 1.0,
        }
    }

    /// Total cores.
    pub fn total_cores(&self) -> f64 {
        (self.machines as u32 * self.machine.cores) as f64
    }

    /// Aggregate sequential disk bandwidth, bytes/s.
    pub fn total_disk_bw(&self) -> f64 {
        self.machines as f64 * self.machine.disks.iter().map(|d| d.throughput).sum::<f64>()
    }

    /// Aggregate NIC receive bandwidth, bytes/s.
    pub fn total_net_bw(&self) -> f64 {
        self.machines as f64 * self.machine.nic
    }
}

/// Ideal per-resource completion times for one stage (Fig 10).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IdealTimes {
    /// Ideal CPU seconds (perfectly parallelized over all cores).
    pub cpu: f64,
    /// Ideal disk seconds (bytes over aggregate bandwidth).
    pub disk: f64,
    /// Ideal network seconds (bytes over aggregate bandwidth).
    pub network: f64,
}

impl IdealTimes {
    /// The modeled stage time: the maximum ideal resource time.
    pub fn stage_time(&self) -> f64 {
        self.cpu.max(self.disk).max(self.network)
    }

    /// The bottleneck: the resource with the largest ideal time.
    pub fn bottleneck(&self) -> ResourceKind {
        if self.cpu >= self.disk && self.cpu >= self.network {
            ResourceKind::Cpu
        } else if self.disk >= self.network {
            ResourceKind::Disk
        } else {
            ResourceKind::Network
        }
    }

    /// Stage time with one resource made infinitely fast (Fig 14).
    pub fn stage_time_without(&self, resource: ResourceKind) -> f64 {
        match resource {
            ResourceKind::Cpu => self.disk.max(self.network),
            ResourceKind::Disk => self.cpu.max(self.network),
            ResourceKind::Network => self.cpu.max(self.disk),
        }
    }
}

/// Computes a stage's ideal resource times under `scenario`.
pub fn ideal_times(p: &StageProfile, scenario: &Scenario) -> IdealTimes {
    let drop_input = scenario.input_deserialized_in_memory && p.reads_job_input;
    let deser = if drop_input { 0.0 } else { p.cpu_deser_secs };
    let serde = (deser + p.cpu_ser_secs) / scenario.serde_speedup;
    let other = p.cpu_secs - p.cpu_deser_secs - p.cpu_ser_secs;
    let cpu_secs = (other + serde) / scenario.cpu_speedup;
    let disk_bytes = if drop_input {
        p.other_disk_bytes
    } else {
        p.other_disk_bytes + p.input_read_bytes
    };
    IdealTimes {
        cpu: cpu_secs / scenario.total_cores(),
        disk: if disk_bytes > 0.0 {
            disk_bytes / scenario.total_disk_bw()
        } else {
            0.0
        },
        network: p.net_bytes / scenario.total_net_bw(),
    }
}

/// Predicts a stage's runtime under `new`, given it was measured under `old`:
/// the measured time scaled by the ratio of modeled times (§6.2).
pub fn predict_stage(p: &StageProfile, old: &Scenario, new: &Scenario) -> f64 {
    let t_old = ideal_times(p, old).stage_time();
    let t_new = ideal_times(p, new).stage_time();
    if t_old <= 0.0 {
        return p.measured_secs;
    }
    p.measured_secs * t_new / t_old
}

/// Predicts a whole job's runtime under `new`.
///
/// # Examples
///
/// ```
/// use cluster::{ClusterSpec, DiskSpec, MachineSpec};
/// use dataflow::{BlockMap, CostModel, JobBuilder};
/// use perfmodel::{predict_job, profile_stages, Scenario};
///
/// let gib = 1024.0 * 1024.0 * 1024.0;
/// let job = JobBuilder::new("scan", CostModel::spark_1_3())
///     .read_disk(2.0 * gib, 1e7, gib / 8.0)
///     .map(1.0, 1.0, true)
///     .collect();
/// let blocks = BlockMap::round_robin(16, 4, 2);
/// let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
/// let out = monotasks_core::run(&cluster, &[(job, blocks)], &Default::default());
///
/// // Ask: what if every machine had four disks instead of two?
/// let profiles = profile_stages(&out.records, &out.jobs);
/// let base = Scenario::of_cluster(&cluster);
/// let mut upgraded = base.clone();
/// upgraded.machine.disks = vec![DiskSpec::hdd(); 4];
/// let measured = out.jobs[0].duration_secs();
/// let predicted = predict_job(&profiles, measured, &base, &upgraded);
/// assert!(predicted <= measured);
/// ```
///
/// §6.1 sums stage completion times; our jobs may also run *independent*
/// stages concurrently (e.g. the two scans feeding a join), so summing
/// per-stage predictions would double-count overlapped time. Instead the
/// measured job duration is scaled by the stage-duration-weighted mean of
/// the per-stage model ratios — identical to the paper's formula when stages
/// are sequential, and correct under overlap.
pub fn predict_job(
    profiles: &[StageProfile],
    measured_job_secs: f64,
    old: &Scenario,
    new: &Scenario,
) -> f64 {
    let weight: f64 = profiles.iter().map(|p| p.measured_secs).sum();
    if weight <= 0.0 {
        return measured_job_secs;
    }
    let scaled: f64 = profiles.iter().map(|p| predict_stage(p, old, new)).sum();
    measured_job_secs * scaled / weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::DiskSpec;
    use dataflow::{JobId, StageId};

    fn profile() -> StageProfile {
        StageProfile {
            job: JobId(0),
            stage: StageId(0),
            measured_secs: 100.0,
            cpu_secs: 800.0,
            cpu_deser_secs: 400.0,
            cpu_ser_secs: 0.0,
            input_read_bytes: 40.0 * 110.0 * 1024.0 * 1024.0, // 40 disk-secs on 1 HDD
            other_disk_bytes: 0.0,
            net_bytes: 0.0,
            reads_job_input: true,
        }
    }

    fn hdd_cluster(machines: usize, disks: usize) -> Scenario {
        let mut m = MachineSpec::m2_4xlarge();
        m.disks = vec![DiskSpec::hdd(); disks];
        Scenario {
            machines,
            machine: m,
            input_deserialized_in_memory: false,
            cpu_speedup: 1.0,
            serde_speedup: 1.0,
        }
    }

    #[test]
    fn ideal_times_follow_the_formula() {
        // 1 machine, 8 cores, 2 HDDs: cpu = 800/8 = 100 s; disk = 40/2 = 20 s.
        let s = hdd_cluster(1, 2);
        let t = ideal_times(&profile(), &s);
        assert!((t.cpu - 100.0).abs() < 1e-9);
        assert!((t.disk - 20.0).abs() < 1e-9);
        assert_eq!(t.network, 0.0);
        assert_eq!(t.bottleneck(), ResourceKind::Cpu);
        assert_eq!(t.stage_time(), 100.0);
    }

    #[test]
    fn cpu_bound_stage_unaffected_by_disk_change() {
        // Fig 11's 10-value result: a CPU-bound job gains nothing from disks.
        let p = profile();
        let pred = predict_stage(&p, &hdd_cluster(1, 2), &hdd_cluster(1, 4));
        assert!((pred - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disk_bound_stage_scales_with_disks_until_bottleneck_shifts() {
        let mut p = profile();
        p.cpu_secs = 80.0; // cpu ideal 10 s; disk ideal (1 HDD) 40 s.
        let one = hdd_cluster(1, 1);
        let two = hdd_cluster(1, 2);
        let four = hdd_cluster(1, 4);
        // 1→2 disks: disk still the bottleneck, 2× improvement.
        let t2 = predict_stage(&p, &one, &two);
        assert!((t2 - 50.0).abs() < 1e-9);
        // 1→4 disks: disk ideal 10 s — ties CPU; improvement caps at 4×, and
        // further disks would do nothing.
        let t4 = predict_stage(&p, &one, &four);
        assert!((t4 - 25.0).abs() < 1e-9);
        let t8 = predict_stage(&p, &one, &hdd_cluster(1, 8));
        assert!((t8 - 25.0).abs() < 1e-9, "bottleneck shifted to CPU");
    }

    #[test]
    fn in_memory_scenario_drops_input_io_and_deser() {
        let p = profile();
        let mut s = hdd_cluster(1, 2);
        s.input_deserialized_in_memory = true;
        let t = ideal_times(&p, &s);
        // CPU halves (deser gone), disk input gone.
        assert!((t.cpu - 50.0).abs() < 1e-9);
        assert_eq!(t.disk, 0.0);
    }

    #[test]
    fn in_memory_does_not_touch_non_input_stages() {
        let mut p = profile();
        p.reads_job_input = false;
        p.input_read_bytes = 0.0;
        p.other_disk_bytes = 10.0 * 110.0 * 1024.0 * 1024.0;
        let mut s = hdd_cluster(1, 2);
        s.input_deserialized_in_memory = true;
        let t = ideal_times(&p, &s);
        assert!((t.cpu - 100.0).abs() < 1e-9, "shuffle deser must remain");
        assert!(t.disk > 0.0);
    }

    #[test]
    fn job_prediction_weights_stage_ratios() {
        let p1 = profile();
        let mut p2 = profile();
        p2.stage = StageId(1);
        p2.measured_secs = 50.0;
        let old = hdd_cluster(1, 2);
        // Unchanged scenario: prediction equals the measured job time.
        let pred = predict_job(&[p1, p2], 150.0, &old, &old);
        assert!((pred - 150.0).abs() < 1e-9);
        // With overlapping stages (job shorter than the stage sum), the
        // prediction scales the measured job time, not the sum.
        let pred = predict_job(&[p1, p2], 120.0, &old, &old);
        assert!((pred - 120.0).abs() < 1e-9);
    }

    #[test]
    fn serde_speedup_scales_only_the_serde_component() {
        // 800 cpu-s total: 400 deser + 100 ser + 300 operator work.
        let mut p = profile();
        p.cpu_ser_secs = 100.0;
        let mut s = hdd_cluster(1, 2);
        s.serde_speedup = 2.0;
        let t = ideal_times(&p, &s);
        // (400+100)/2 + 300 = 550 over 8 cores.
        assert!((t.cpu - 550.0 / 8.0).abs() < 1e-9);
        // A uniform CPU speedup divides everything.
        s.cpu_speedup = 2.0;
        let t = ideal_times(&p, &s);
        assert!((t.cpu - 275.0 / 8.0).abs() < 1e-9);
        // Disk untouched by CPU-side what-ifs.
        assert!((t.disk - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_cluster_scales_cpu_and_disk() {
        let p = profile();
        // 4× machines: CPU ideal 25 s → prediction 25.
        let pred = predict_stage(&p, &hdd_cluster(1, 2), &hdd_cluster(4, 2));
        assert!((pred - 25.0).abs() < 1e-9);
    }
}
