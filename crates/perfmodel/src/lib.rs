//! The monotasks performance model (§6).
//!
//! "Explicitly separating the use of different resources into monotasks
//! allows each job to report the time spent using each resource. These times
//! can be used to construct a simple model for the job's completion time,
//! which can be used to answer what-if questions" (§6).
//!
//! * [`profile`] — aggregates [`monotasks_core::MonotaskRecord`]s into
//!   per-stage resource profiles (total compute monotask time, bytes moved on
//!   disk and network, deserialization separated out).
//! * [`model`] — ideal per-resource completion times (Fig 10), bottleneck
//!   identification, and what-if prediction under a changed [`Scenario`]
//!   (different disks, cluster sizes, in-memory deserialized input, or all at
//!   once — Figs 11–13).
//! * [`bottleneck`] — "how much faster with an infinitely fast X" analysis
//!   replicating the NSDI'15 blocked-time methodology (Fig 14).
//! * [`imbalance`] — per-machine load-imbalance diagnostics, quantifying the
//!   "cannot always be perfectly parallelized" caveat of §6.1 directly from
//!   the records.
//! * [`strawman`] — the models available *without* monotasks: the slot-based
//!   model (Fig 15), the measured-aggregate Spark model (Fig 17), and
//!   slot-share resource attribution for concurrent jobs (Fig 16).
//! * [`replay`] — fault-aware what-ifs (DESIGN.md §10): predicts a faulty
//!   run's makespan from a fault-free profile and a [`cluster::FaultPlan`],
//!   with per-event penalty attribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod imbalance;
pub mod model;
pub mod profile;
pub mod replay;
pub mod strawman;

pub use bottleneck::optimized_resource_runtime;
pub use imbalance::{stage_imbalance, StageImbalance};
pub use model::{predict_job, predict_stage, IdealTimes, Scenario};
pub use profile::{profile_stages, ResourceUse, StageProfile};
pub use replay::{replay, EventPenalty, ReplayOptions, ReplayPrediction, DOCUMENTED_ERROR_BAND};
pub use strawman::{attribute_by_share, slot_model_predict, spec_profile};
