//! The paper's evaluation workloads (§5.1–§5.2), as job generators.
//!
//! * [`sort`] — the tunable sort: fixed total bytes, variable values-per-key
//!   so the CPU:disk balance sweeps from CPU-bound (small values) to
//!   disk-bound (large values), exactly the lever §6.2 uses.
//! * [`bdb`] — the big data benchmark (AMPLab, derived from Pavlo et al.):
//!   ten queries over compressed sequence files — scans (1a–1c),
//!   aggregations (2a–2c), joins (3a–3c), and a UDF query (4) — with
//!   result-size variants a/b/c.
//! * [`ml`] — the machine-learning workload: block-coordinate-descent matrix
//!   multiplications with native-code CPU efficiency and in-memory shuffles,
//!   making it network-intensive.
//! * [`wordcount`] — the paper's running example (Fig 1), with both a planned
//!   job and a real reference-executor implementation.
//! * [`faulty`] — canned fault plans (mid-shuffle crash, crash-all, seeded
//!   random sweep) for injecting failures into any of the above.
//!
//! Data that the paper draws from Common Crawl and HiBench is generated
//! synthetically with the published volumes and shapes (see DESIGN.md's
//! substitution table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdb;
pub mod faulty;
pub mod ml;
pub mod skew;
pub mod sort;
pub mod wordcount;

pub use bdb::{bdb_job, BdbQuery};
pub use faulty::{
    crash_all, mid_shuffle_crash, partition_plan, rack_partition_plan, straggler_plan, sweep_plan,
};
pub use ml::{ml_jobs, MlConfig};
pub use skew::{apply_input_skew, input_skew_ratio};
pub use sort::{sort_job, SortConfig};
pub use wordcount::wordcount_job;

/// One gibibyte in bytes.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// One mebibyte in bytes.
pub const MIB: f64 = 1024.0 * 1024.0;

/// Default HDFS-style block size (128 MiB).
pub const BLOCK_BYTES: f64 = 128.0 * MIB;
