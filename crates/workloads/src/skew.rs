//! Task-size skew: the straggler generator.
//!
//! Real input data is rarely uniform; a few oversized blocks produce the
//! stragglers that §8's head-of-line-blocking discussion worries about.
//! [`apply_input_skew`] rescales a job's per-task input sizes by seeded
//! Zipf-like weights while preserving the stage's total bytes, so the same
//! workload can be studied uniform and skewed.

use dataflow::{InputSpec, JobSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Multiplies stage 0's per-task input sizes by Zipf(`s`)-distributed weights
/// (randomly permuted with `seed`), rescaled so the total input is unchanged.
/// CPU per task is scaled with its bytes, preserving the stage's CPU:byte
/// ratio.
///
/// Larger `s` means heavier skew: `s = 0` is uniform; at `s = 1` the largest
/// task is roughly `n / H(n)` times the mean.
///
/// # Panics
///
/// Panics if the job's first stage does not read sized input, or `s < 0`.
pub fn apply_input_skew(job: &mut JobSpec, s: f64, seed: u64) {
    assert!(s >= 0.0, "skew exponent must be non-negative");
    let stage = job.stages.first_mut().expect("job has no stages");
    let n = stage.tasks.len();
    assert!(n > 0);
    // Zipf weights 1/rank^s, shuffled deterministically.
    let mut weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Fisher–Yates with the seeded generator.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }
    let mean_w: f64 = weights.iter().sum::<f64>() / n as f64;
    for (task, w) in stage.tasks.iter_mut().zip(&weights) {
        let scale = w / mean_w;
        match &mut task.input {
            InputSpec::DiskBlock { bytes, .. } | InputSpec::Memory { bytes } => {
                *bytes *= scale;
            }
            other => panic!("cannot skew input {other:?}"),
        }
        task.cpu.deser *= scale;
        task.cpu.compute *= scale;
        task.cpu.ser *= scale;
    }
}

/// The largest-to-mean input ratio of a job's first stage — how bad the
/// straggler is.
pub fn input_skew_ratio(job: &JobSpec) -> f64 {
    let sizes: Vec<f64> = job.stages[0]
        .tasks
        .iter()
        .map(|t| t.input.bytes())
        .collect();
    let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
    let max = sizes.iter().cloned().fold(0.0f64, f64::max);
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sort_job, SortConfig};

    fn job() -> JobSpec {
        sort_job(&SortConfig::new(2.0, 10, 4, 2)).0
    }

    #[test]
    fn preserves_total_bytes_and_cpu() {
        let uniform = job();
        let total = |j: &JobSpec| -> (f64, f64) {
            (
                j.stages[0].tasks.iter().map(|t| t.input.bytes()).sum(),
                j.stages[0].total_cpu(),
            )
        };
        let (b0, c0) = total(&uniform);
        let mut skewed = uniform;
        apply_input_skew(&mut skewed, 1.0, 7);
        let (b1, c1) = total(&skewed);
        assert!((b0 - b1).abs() / b0 < 1e-9);
        assert!((c0 - c1).abs() / c0 < 1e-9);
        assert!(skewed.validate().is_ok());
    }

    #[test]
    fn skew_grows_with_the_exponent() {
        let mut mild = job();
        apply_input_skew(&mut mild, 0.5, 7);
        let mut heavy = job();
        apply_input_skew(&mut heavy, 1.5, 7);
        assert!(input_skew_ratio(&heavy) > input_skew_ratio(&mild));
        assert!(input_skew_ratio(&mild) > 1.0);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let mut j = job();
        apply_input_skew(&mut j, 0.0, 7);
        assert!((input_skew_ratio(&j) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_and_deterministic() {
        let mut a = job();
        apply_input_skew(&mut a, 1.0, 42);
        let mut b = job();
        apply_input_skew(&mut b, 1.0, 42);
        let sizes = |j: &JobSpec| -> Vec<f64> {
            j.stages[0].tasks.iter().map(|t| t.input.bytes()).collect()
        };
        assert_eq!(sizes(&a), sizes(&b));
        let mut c = job();
        apply_input_skew(&mut c, 1.0, 43);
        assert_ne!(sizes(&a), sizes(&c), "different seeds, different layout");
    }
}
