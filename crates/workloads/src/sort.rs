//! The tunable sort workload (§5.2, §6.2, §7).
//!
//! Sorts `total_bytes` of key-value pairs where each value is an array of
//! `longs_per_value` 8-byte longs. Fixing the total bytes while shrinking the
//! values multiplies the record count, and with it the per-record sort CPU —
//! "smaller values result in more CPU time" (§5.2) — without changing the I/O
//! demand. The paper sweeps 1–100 longs to move the bottleneck between CPU
//! and disk (Figs 11, 13, 18).

use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec};

use crate::BLOCK_BYTES;

/// Sort workload parameters.
#[derive(Clone, Debug)]
pub struct SortConfig {
    /// Total input bytes.
    pub total_bytes: f64,
    /// Longs per value; the key is one more long.
    pub longs_per_value: usize,
    /// Worker machines (for block placement).
    pub machines: usize,
    /// Disks per machine (for block placement).
    pub disks_per_machine: usize,
    /// Override the number of map tasks (None: one per 128 MiB block).
    pub map_tasks: Option<usize>,
    /// Override the number of reduce tasks (None: same as map tasks).
    pub reduce_tasks: Option<usize>,
    /// Store input in memory, deserialized (the Fig 13 target config).
    pub input_in_memory: bool,
}

impl SortConfig {
    /// A sort of `gib` GiB with `longs_per_value`-long values on a cluster.
    pub fn new(gib: f64, longs_per_value: usize, machines: usize, disks: usize) -> SortConfig {
        SortConfig {
            total_bytes: gib * crate::GIB,
            longs_per_value,
            machines,
            disks_per_machine: disks,
            map_tasks: None,
            reduce_tasks: None,
            input_in_memory: false,
        }
    }

    /// Bytes per record: an 8-byte key plus the value longs.
    pub fn record_bytes(&self) -> f64 {
        8.0 * (1 + self.longs_per_value) as f64
    }

    /// Total records.
    pub fn records(&self) -> f64 {
        self.total_bytes / self.record_bytes()
    }
}

/// Builds the sort job and its input block placement.
pub fn sort_job(cfg: &SortConfig) -> (JobSpec, BlockMap) {
    let records = cfg.records();
    let map_tasks = cfg
        .map_tasks
        .unwrap_or_else(|| (cfg.total_bytes / BLOCK_BYTES).ceil().max(1.0) as usize);
    let reduce_tasks = cfg.reduce_tasks.unwrap_or(map_tasks);
    let cost = CostModel::spark_1_3();
    let builder = if cfg.input_in_memory {
        JobBuilder::new("sort", cost).read_memory(cfg.total_bytes, records, map_tasks, true)
    } else {
        JobBuilder::new("sort", cost).read_disk(
            cfg.total_bytes,
            records,
            cfg.total_bytes / map_tasks as f64,
        )
    };
    let job = builder
        .map(1.0, 1.0, true) // partition + sort map side
        .shuffle(reduce_tasks, false)
        .map(1.0, 1.0, true) // merge/sort reduce side
        .write_disk(1.0);
    let blocks = BlockMap::round_robin(
        dataflow::JobBuilder::blocks_allocated(&job).max(1),
        cfg.machines,
        cfg.disks_per_machine,
    );
    (job, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::InputSpec;

    #[test]
    fn record_count_scales_with_value_size() {
        let small = SortConfig::new(1.0, 1, 4, 2);
        let large = SortConfig::new(1.0, 99, 4, 2);
        assert_eq!(small.record_bytes(), 16.0);
        assert_eq!(large.record_bytes(), 800.0);
        assert!(small.records() > 40.0 * large.records());
    }

    #[test]
    fn smaller_values_cost_more_cpu_same_io() {
        let (small, _) = sort_job(&SortConfig::new(1.0, 1, 4, 2));
        let (large, _) = sort_job(&SortConfig::new(1.0, 99, 4, 2));
        let cpu = |j: &JobSpec| -> f64 { j.stages.iter().map(|s| s.total_cpu()).sum() };
        assert!(cpu(&small) > 3.0 * cpu(&large));
        // I/O identical.
        assert!(
            (small.stages[0].total_shuffle_write() - large.stages[0].total_shuffle_write()).abs()
                < 1.0
        );
    }

    #[test]
    fn default_task_count_follows_block_size() {
        let (job, blocks) = sort_job(&SortConfig::new(2.0, 10, 4, 2));
        assert_eq!(job.stages[0].tasks.len(), 16); // 2 GiB / 128 MiB
        assert_eq!(blocks.blocks(), 16);
        assert!(job.validate().is_ok());
    }

    #[test]
    fn in_memory_variant_reads_no_disk() {
        let mut cfg = SortConfig::new(1.0, 10, 4, 2);
        cfg.input_in_memory = true;
        let (job, _) = sort_job(&cfg);
        assert!(job.stages[0]
            .tasks
            .iter()
            .all(|t| matches!(t.input, InputSpec::Memory { .. })));
        assert_eq!(job.stages[0].tasks[0].cpu.deser, 0.0);
    }

    #[test]
    fn task_overrides_respected() {
        let mut cfg = SortConfig::new(1.0, 10, 4, 2);
        cfg.map_tasks = Some(5);
        cfg.reduce_tasks = Some(3);
        let (job, _) = sort_job(&cfg);
        assert_eq!(job.stages[0].tasks.len(), 5);
        assert_eq!(job.stages[1].tasks.len(), 3);
    }
}
