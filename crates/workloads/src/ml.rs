//! The machine-learning workload (§5.2): a least-squares solve by block
//! coordinate descent, i.e. a series of distributed matrix multiplications.
//!
//! Three properties distinguish it from the other workloads, all reproduced
//! here: the CPU path is *optimized* (flat double arrays, native BLAS — the
//! [`CostModel::optimized_native`] constants), "a large amount of data is
//! sent over the network in between each stage" making it network-intensive,
//! and shuffle data is stored in memory, so disks are never touched.
//!
//! Each multiplication is one job (map: multiply row blocks; reduce: sum the
//! partial products); the workload is the sequence of multiplications, run
//! back-to-back as the driver would.

use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec};

/// Machine-learning workload parameters.
#[derive(Clone, Debug)]
pub struct MlConfig {
    /// Worker machines (the paper uses 15).
    pub machines: usize,
    /// Matrix multiplications (block coordinate descent iterations).
    pub iterations: usize,
    /// Matrix rows (the paper: one million).
    pub rows: f64,
    /// Matrix columns (the paper: 4096).
    pub cols: f64,
}

impl Default for MlConfig {
    fn default() -> Self {
        MlConfig {
            machines: 15,
            iterations: 3,
            rows: 1e6,
            cols: 4096.0,
        }
    }
}

impl MlConfig {
    /// Bytes of the row-partitioned input matrix (doubles).
    pub fn matrix_bytes(&self) -> f64 {
        self.rows * self.cols * 8.0
    }

    /// Bytes shuffled per multiplication: each map task emits a cols×cols
    /// partial Gram matrix.
    pub fn shuffle_bytes(&self, map_tasks: usize) -> f64 {
        self.cols * self.cols * 8.0 * map_tasks as f64
    }
}

/// Builds one job per matrix multiplication; run them sequentially.
pub fn ml_jobs(cfg: &MlConfig) -> Vec<(JobSpec, BlockMap)> {
    let cost = CostModel::optimized_native();
    // Row blocks: a few tasks per core keeps every machine busy.
    let map_tasks = cfg.machines * 8 * 2;
    let reduce_tasks = cfg.machines * 8;
    let matrix = cfg.matrix_bytes();
    let shuffle = cfg.shuffle_bytes(map_tasks);
    // BLAS time per multiplication: rows × cols² × 2 flops at ~8 GFLOP/s/core.
    let flops = cfg.rows * cfg.cols * cfg.cols * 2.0;
    let blas_secs = flops / 8e9;
    (0..cfg.iterations)
        .map(|i| {
            let job = JobBuilder::new(format!("ml-iter-{i}"), cost)
                .read_memory(matrix, cfg.rows, map_tasks, true)
                .add_compute(blas_secs)
                .map(1.0, shuffle / matrix, false)
                .shuffle(reduce_tasks, true)
                // Reduce: sum `map_tasks` partial matrices.
                .add_compute(shuffle / 8.0 * 1e-9)
                .map(1.0, 1.0 / map_tasks as f64, false)
                .write_memory();
            let blocks = BlockMap::round_robin(1, cfg.machines, 1);
            (job, blocks)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::OutputSpec;

    #[test]
    fn jobs_validate_and_never_touch_disk() {
        let jobs = ml_jobs(&MlConfig::default());
        assert_eq!(jobs.len(), 3);
        for (job, _) in &jobs {
            assert!(job.validate().is_ok());
            for st in &job.stages {
                for t in &st.tasks {
                    assert_eq!(t.output.disk_bytes(), 0.0);
                    assert!(!matches!(t.input, dataflow::InputSpec::DiskBlock { .. }));
                }
            }
        }
    }

    #[test]
    fn shuffle_is_large_relative_to_network() {
        let cfg = MlConfig::default();
        let jobs = ml_jobs(&cfg);
        let (job, _) = &jobs[0];
        let shuffle = job.stages[0].total_shuffle_write();
        // ≈ 240 tasks × 134 MB ≈ 32 GB: several seconds of cluster NIC time.
        assert!(shuffle > 10.0 * crate::GIB, "shuffle = {shuffle}");
        assert!(job.stages[0].tasks.iter().all(|t| matches!(
            t.output,
            OutputSpec::ShuffleWrite {
                in_memory: true,
                ..
            }
        )));
    }

    #[test]
    fn compute_is_heavy_but_native() {
        let cfg = MlConfig::default();
        let (job, _) = &ml_jobs(&cfg)[0];
        let cpu: f64 = job.stages[0].total_cpu();
        // 2·rows·cols² flops at 8 GFLOP/s ≈ 4200 core-seconds.
        assert!(cpu > 3000.0 && cpu < 10_000.0, "cpu = {cpu}");
    }
}
