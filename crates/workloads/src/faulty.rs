//! Canned fault plans for the evaluation workloads.
//!
//! Thin builders over [`cluster::FaultPlan`] so benchmarks and tests inject
//! the same faults without repeating the plumbing: a single mid-shuffle
//! machine crash (the lineage-recomputation scenario), a crash of every
//! machine (the unrecoverable scenario), and the seeded random plan the
//! `fault_sweep` benchmark scales by intensity.

use cluster::{ClusterSpec, FaultPlan, FaultSpec};
use simcore::SimTime;

/// A single machine crash at `at_secs`, aimed mid-shuffle: with a sort whose
/// map stage finishes around the midpoint, the crash destroys completed map
/// outputs and forces Spark-style stage resubmission in both executors.
pub fn mid_shuffle_crash(machine: usize, at_secs: f64) -> FaultPlan {
    FaultPlan::new().crash(machine, SimTime::from_secs_f64(at_secs))
}

/// Crashes every machine in the cluster at `at_secs` — no recovery is
/// possible and a run must fail with a clean `Unrecoverable` error.
pub fn crash_all(cluster: &ClusterSpec, at_secs: f64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for m in 0..cluster.machines {
        plan = plan.crash(m, SimTime::from_secs_f64(at_secs));
    }
    plan
}

/// The seeded random plan the fault sweep uses: `intensity` scales crash,
/// degradation, and straggler counts over a horizon of `horizon_secs`
/// (typically the fault-free makespan of the workload under test).
pub fn sweep_plan(
    seed: u64,
    cluster: &ClusterSpec,
    horizon_secs: f64,
    stages: usize,
    tasks_per_stage: usize,
    intensity: f64,
) -> FaultPlan {
    let spec = FaultSpec::new(
        cluster,
        SimTime::from_secs_f64(horizon_secs),
        stages,
        tasks_per_stage,
    );
    FaultPlan::random(seed, &spec, intensity)
}

/// Straggler-only variant of [`sweep_plan`]: the same seeded
/// reproducibility, but every event is a task straggle — no crashes, no
/// degraded hardware. The speculation benchmark matrix uses this to isolate
/// straggler *mitigation* from crash *recovery*.
pub fn straggler_plan(
    seed: u64,
    cluster: &ClusterSpec,
    horizon_secs: f64,
    stages: usize,
    tasks_per_stage: usize,
    intensity: f64,
) -> FaultPlan {
    let spec = FaultSpec::new(
        cluster,
        SimTime::from_secs_f64(horizon_secs),
        stages,
        tasks_per_stage,
    );
    FaultPlan::random_stragglers(seed, &spec, intensity)
}

/// Partition-only variant of [`sweep_plan`]: one seeded partition window
/// isolating `≈ intensity` machines (each alone, the rest in a majority
/// group) landing mid-horizon and healing late enough that fetch recovery
/// must act rather than wait it out. No crashes, degradations, or
/// stragglers — every makespan stretch is attributable to unreachable
/// fetches alone, which is what the partition sweep ranks recovery modes on.
pub fn partition_plan(
    seed: u64,
    cluster: &ClusterSpec,
    horizon_secs: f64,
    intensity: f64,
) -> FaultPlan {
    let spec = FaultSpec::new(cluster, SimTime::from_secs_f64(horizon_secs), 0, 0);
    FaultPlan::random_partitions(seed, &spec, intensity)
}

/// Partitions one entire rack away from the rest of the cluster over
/// `[start_secs, heal_secs)`: the rack's machines form one group, everything
/// else the other. The hierarchical-fabric integration tests use this to
/// exercise quarantine + lineage resubmission when a whole rack goes dark.
///
/// # Panics
///
/// Panics if the cluster has no rack topology, `rack` is out of range, or
/// the rack spans the whole cluster (a partition needs two non-empty groups).
pub fn rack_partition_plan(
    cluster: &ClusterSpec,
    rack: usize,
    start_secs: f64,
    heal_secs: f64,
) -> FaultPlan {
    let topo = cluster
        .topology
        .as_ref()
        .expect("rack_partition_plan needs a rack topology");
    let rack_members = topo.racks[rack].clone();
    let rest: Vec<usize> = (0..cluster.machines)
        .filter(|m| !rack_members.contains(m))
        .collect();
    assert!(
        !rest.is_empty(),
        "partitioning the only rack would isolate nobody"
    );
    FaultPlan::new().partition(
        vec![rack_members, rest],
        SimTime::from_secs_f64(start_secs),
        Some(SimTime::from_secs_f64(heal_secs)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MachineSpec;

    #[test]
    fn straggler_plan_is_seeded_and_straggler_only() {
        let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
        let plan = straggler_plan(7, &cluster, 60.0, 2, 10, 1.0);
        assert!(plan.validate(&cluster).is_ok());
        assert_eq!(
            plan.events(),
            straggler_plan(7, &cluster, 60.0, 2, 10, 1.0).events()
        );
        assert!(!plan.is_empty());
        assert!(straggler_plan(7, &cluster, 60.0, 2, 10, 0.0).is_empty());
    }

    #[test]
    fn partition_plan_is_seeded_and_partition_only() {
        let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
        let plan = partition_plan(7, &cluster, 100.0, 1.0);
        assert!(plan.validate(&cluster).is_ok());
        assert!(plan.has_partitions());
        assert_eq!(
            plan.events(),
            partition_plan(7, &cluster, 100.0, 1.0).events()
        );
        assert!(partition_plan(7, &cluster, 100.0, 0.0).is_empty());
    }

    #[test]
    fn rack_partition_isolates_one_rack() {
        let cluster = ClusterSpec::with_racks(8, MachineSpec::m2_4xlarge(), 4, 2.0);
        let plan = rack_partition_plan(&cluster, 1, 10.0, 20.0);
        assert!(plan.validate(&cluster).is_ok());
        assert!(plan.has_partitions());
        match &plan.events()[0] {
            cluster::FaultEvent::Partition { groups, .. } => {
                assert_eq!(groups[0], vec![4, 5, 6, 7]);
                assert_eq!(groups[1], vec![0, 1, 2, 3]);
            }
            other => panic!("expected a partition, got {other:?}"),
        }
    }

    #[test]
    fn builders_produce_valid_plans() {
        let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
        let plan = mid_shuffle_crash(1, 30.0);
        assert!(plan.validate(&cluster).is_ok());
        assert_eq!(plan.events().len(), 1);

        let all = crash_all(&cluster, 10.0);
        assert!(all.validate(&cluster).is_ok());
        assert_eq!(all.events().len(), 4);

        let swept = sweep_plan(7, &cluster, 120.0, 2, 32, 1.5);
        assert!(swept.validate(&cluster).is_ok());
        assert!(!swept.is_empty());
        assert_eq!(
            swept.events(),
            sweep_plan(7, &cluster, 120.0, 2, 32, 1.5).events()
        );
    }
}
