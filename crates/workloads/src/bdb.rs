//! The big data benchmark (§5.2): ten queries over synthetic tables shaped
//! like the AMPLab benchmark at scale factor five.
//!
//! Tables (uncompressed sizes; stored as ~2.5× compressed sequence files,
//! with decompression charged to CPU — the benchmark configuration the paper
//! uses):
//!
//! * `rankings` (~6.4 GB, ~90 M rows): page, pageRank, avgDuration.
//! * `uservisits` (~126 GB, ~775 M rows): sourceIP, destURL, date, adRevenue…
//! * `documents` (~30 GB): unstructured crawl text for the UDF query.
//!
//! Queries 1–3 come in three variants whose *result sizes* grow from
//! business-intelligence-like (a) to ETL-like (c); query 4 runs a
//! script-style UDF (the paper's version uses a Python script).

use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec};

use crate::{BLOCK_BYTES, GIB};

/// Compression ratio of the on-disk sequence files.
const COMPRESSION: f64 = 2.5;

/// Uncompressed table sizes and row counts.
const RANKINGS_BYTES: f64 = 6.4 * GIB;
const RANKINGS_ROWS: f64 = 90e6;
const USERVISITS_BYTES: f64 = 126.0 * GIB;
const USERVISITS_ROWS: f64 = 775e6;
const DOCUMENTS_BYTES: f64 = 30.0 * GIB;
const DOCUMENTS_ROWS: f64 = 120e6;

/// CPU cost per byte of the query-4 UDF (a script interpreter, ~10 MB/s).
const UDF_SECS_PER_BYTE: f64 = 1.0 / (10.0 * 1024.0 * 1024.0);

/// Block size for the small tables: small enough that even the scan of
/// `rankings` yields several waves of tasks per core (the paper notes all
/// benchmark defaults "broke jobs into enough tasks", §5.3).
const SMALL_TABLE_BLOCK: f64 = 16.0 * crate::MIB;

/// One of the benchmark's queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BdbQuery {
    Q1a,
    Q1b,
    Q1c,
    Q2a,
    Q2b,
    Q2c,
    Q3a,
    Q3b,
    Q3c,
    Q4,
}

impl BdbQuery {
    /// All ten queries in presentation order (Fig 5's x-axis).
    pub fn all() -> [BdbQuery; 10] {
        use BdbQuery::*;
        [Q1a, Q1b, Q1c, Q2a, Q2b, Q2c, Q3a, Q3b, Q3c, Q4]
    }

    /// The label the paper uses.
    pub fn label(self) -> &'static str {
        use BdbQuery::*;
        match self {
            Q1a => "1a",
            Q1b => "1b",
            Q1c => "1c",
            Q2a => "2a",
            Q2b => "2b",
            Q2c => "2c",
            Q3a => "3a",
            Q3b => "3b",
            Q3c => "3c",
            Q4 => "4",
        }
    }
}

/// Charges the scan-side CPU for reading a compressed table: decompression
/// of the raw bytes (deserialization of the compressed bytes is charged by
/// `read_disk` itself).
fn scan_compressed(name: &str, raw_bytes: f64, rows: f64, cost: CostModel) -> JobBuilder {
    let compressed = raw_bytes / COMPRESSION;
    let block = if compressed < 20.0 * GIB {
        SMALL_TABLE_BLOCK
    } else {
        BLOCK_BYTES
    };
    JobBuilder::new(name, cost)
        .read_disk(compressed, rows, block)
        .add_compute(raw_bytes * cost.decompress_per_byte)
}

/// Builds one benchmark query for a cluster of `machines`×`disks` workers.
pub fn bdb_job(q: BdbQuery, machines: usize, disks: usize) -> (JobSpec, BlockMap) {
    let cost = CostModel::spark_1_3();
    let name = format!("bdb-{}", q.label());
    let reduce_tasks = (machines * 8 * 2).max(8);
    use BdbQuery::*;
    let job = match q {
        // Query 1: SELECT pageURL, pageRank FROM rankings WHERE pageRank > X.
        // One scan stage; the variants differ in how much survives the
        // filter and is written out (1c writes an ETL-sized result).
        Q1a | Q1b | Q1c => {
            // 1c writes an ETL-scale result (uncompressed, several times the
            // compressed input) — large enough that forcing the write to disk
            // visibly slows the query, as in §5.3.
            let out_sel: f64 = match q {
                Q1a => 0.0005,
                Q1b => 0.05,
                _ => 4.0,
            };
            scan_compressed(&name, RANKINGS_BYTES, RANKINGS_ROWS, cost)
                .map(out_sel.min(1.0), 1.0, false)
                .write_disk(out_sel)
        }
        // Query 2: SELECT SUBSTR(sourceIP, 1, X), SUM(adRevenue) FROM
        // uservisits GROUP BY SUBSTR(...). Scan + aggregation; the variants
        // grow the group count and thus the shuffle and result.
        Q2a | Q2b | Q2c => {
            let shuffle_sel = match q {
                Q2a => 0.001,
                Q2b => 0.01,
                _ => 0.08,
            };
            scan_compressed(&name, USERVISITS_BYTES, USERVISITS_ROWS, cost)
                .map(1.0, shuffle_sel, true) // hash + partial aggregation
                .shuffle(reduce_tasks, false)
                .map(0.5, 0.9, true) // final aggregation
                .write_disk(1.0)
        }
        // Query 3: join of date-filtered uservisits with rankings. Two scan
        // stages feeding one join stage; variants widen the date range.
        Q3a | Q3b | Q3c => {
            let date_sel = match q {
                Q3a => 0.015,
                Q3b => 0.06,
                _ => 0.30,
            };
            let visits = scan_compressed(&name, USERVISITS_BYTES, USERVISITS_ROWS, cost)
                .map(date_sel, date_sel, false);
            let rankings = scan_compressed("bdb-q3-rankings", RANKINGS_BYTES, RANKINGS_ROWS, cost)
                .map(1.0, 1.0, false);
            visits
                .shuffle_join(rankings, reduce_tasks, false)
                .map(0.3, 0.3, true) // join + aggregate
                .write_disk(0.5)
        }
        // Query 4: a script UDF over the crawl documents (CPU-heavy), then a
        // count-like aggregation.
        Q4 => scan_compressed(&name, DOCUMENTS_BYTES, DOCUMENTS_ROWS, cost)
            .add_compute(DOCUMENTS_BYTES * UDF_SECS_PER_BYTE)
            .map(1.0, 0.02, false)
            .shuffle(reduce_tasks, false)
            .map(0.5, 0.5, true)
            .write_disk(1.0),
    };
    let blocks = BlockMap::round_robin(JobBuilder::blocks_allocated(&job).max(1), machines, disks);
    (job, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_validate() {
        for q in BdbQuery::all() {
            let (job, blocks) = bdb_job(q, 5, 2);
            assert!(job.validate().is_ok(), "{q:?}: {:?}", job.validate());
            assert!(blocks.blocks() > 0);
        }
    }

    #[test]
    fn query_shapes_match_the_benchmark() {
        let (q1, _) = bdb_job(BdbQuery::Q1a, 5, 2);
        assert_eq!(q1.stages.len(), 1, "scan query is one stage");
        let (q2, _) = bdb_job(BdbQuery::Q2b, 5, 2);
        assert_eq!(q2.stages.len(), 2, "aggregation is scan + reduce");
        let (q3, _) = bdb_job(BdbQuery::Q3c, 5, 2);
        assert_eq!(q3.stages.len(), 3, "join has two scans + join stage");
    }

    #[test]
    fn result_sizes_grow_across_variants() {
        let out = |q: BdbQuery| -> f64 {
            let (job, _) = bdb_job(q, 5, 2);
            job.stages
                .iter()
                .flat_map(|s| &s.tasks)
                .map(|t| t.output.disk_bytes())
                .sum()
        };
        assert!(out(BdbQuery::Q1a) < out(BdbQuery::Q1b));
        assert!(out(BdbQuery::Q1b) < out(BdbQuery::Q1c));
        assert!(out(BdbQuery::Q2a) < out(BdbQuery::Q2c));
        assert!(out(BdbQuery::Q3a) < out(BdbQuery::Q3c));
    }

    #[test]
    fn q1c_writes_an_etl_scale_result() {
        // §5.3: with 5 workers × 2 disks, each disk writes hundreds of MB of
        // result (the paper measured ~511 MB; our scan CPU is lighter, so a
        // proportionally larger result reproduces the runtime ratio).
        let (job, _) = bdb_job(BdbQuery::Q1c, 5, 2);
        let out: f64 = job.stages[0]
            .tasks
            .iter()
            .map(|t| t.output.disk_bytes())
            .sum();
        let per_disk = out / 10.0;
        assert!(
            per_disk > 300e6 && per_disk < 2000e6,
            "per-disk output {per_disk}"
        );
    }

    #[test]
    fn q4_is_cpu_heavy() {
        let (q4, _) = bdb_job(BdbQuery::Q4, 5, 2);
        let cpu: f64 = q4.stages.iter().map(|s| s.total_cpu()).sum();
        // The UDF alone is ≥ 30 GB × 100 ns/B ≈ 3000 core-seconds.
        assert!(cpu > 3000.0, "q4 cpu = {cpu}");
    }
}
