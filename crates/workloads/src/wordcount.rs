//! Word count — the paper's running example (Fig 1 / Fig 4).
//!
//! Provided both as a planned job (for the simulated executors) and as a
//! real computation on the reference executor (for examples and semantics
//! tests): `textFile → flatMap(split) → map((w,1)) → reduceByKey(+) →
//! saveAsTextFile`.

use std::collections::HashMap;

use dataflow::{BlockMap, CostModel, JobBuilder, JobSpec, LocalDataset};

use crate::BLOCK_BYTES;

/// Builds the planned word-count job over `total_bytes` of text.
///
/// Text averages ~6 bytes per word; the shuffle carries `(word, count)`
/// pairs after map-side combining (~10 % of input bytes), and the final
/// counts are small.
pub fn wordcount_job(total_bytes: f64, machines: usize, disks: usize) -> (JobSpec, BlockMap) {
    let words = total_bytes / 6.0;
    let reduce_tasks = (machines * 8).max(4);
    let job = JobBuilder::new("wordcount", CostModel::spark_1_3())
        .read_disk(total_bytes, words / 12.0, BLOCK_BYTES) // lines in, then:
        .map(12.0, 1.0, false) // flatMap: split lines into words
        .map(1.0, 0.1, true) // map to pairs + map-side combine
        .shuffle(reduce_tasks, false)
        .map(0.2, 0.5, true) // final counts
        .write_disk(1.0);
    let blocks = BlockMap::round_robin(JobBuilder::blocks_allocated(&job).max(1), machines, disks);
    (job, blocks)
}

/// Runs word count for real on the reference executor.
pub fn wordcount_reference(lines: Vec<String>, partitions: usize) -> HashMap<String, u64> {
    LocalDataset::from_vec(lines, partitions)
        .flat_map(|l| l.split_whitespace().map(str::to_string).collect::<Vec<_>>())
        .map(|w| (w, 1u64))
        .reduce_by_key(partitions, |a, b| a + b)
        .collect()
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_job_validates() {
        let (job, blocks) = wordcount_job(4.0 * crate::GIB, 4, 2);
        assert!(job.validate().is_ok());
        assert_eq!(job.stages.len(), 2);
        assert_eq!(blocks.blocks(), job.stages[0].tasks.len());
    }

    #[test]
    fn reference_counts_words() {
        let counts = wordcount_reference(
            vec!["to be or not to be".into(), "that is the question".into()],
            3,
        );
        assert_eq!(counts["to"], 2);
        assert_eq!(counts["be"], 2);
        assert_eq!(counts["question"], 1);
        assert_eq!(counts.values().sum::<u64>(), 10);
    }
}
