//! Hardware specifications and the calibration constants of the reproduction.
//!
//! All numbers that stand in for the paper's EC2 hardware live here so the
//! calibration story is auditable in one place. We target the *ratios* the
//! paper's evaluation depends on (disk vs CPU vs network balance), not the
//! absolute speeds of 2017 hardware.

use serde::{Deserialize, Serialize};
use simcore::resource::EfficiencyCurve;

/// One mebibyte in bytes; disk and network throughputs are given in MiB/s.
pub const MIB: f64 = 1024.0 * 1024.0;

/// One gibibyte in bytes.
pub const GIB: f64 = 1024.0 * MIB;

/// Disk technology, which determines the concurrency-efficiency curve.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DiskKind {
    /// Spinning disk: concurrent streams trigger seeks and *reduce* aggregate
    /// throughput (§5.4: controlling contention roughly doubled throughput).
    Hdd,
    /// Flash: needs several outstanding operations to reach peak throughput
    /// (§3.3: four outstanding monotasks achieved near-maximum throughput).
    Ssd,
}

/// A disk's performance envelope.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Technology class.
    pub kind: DiskKind,
    /// Peak sequential throughput in bytes per second.
    pub throughput: f64,
    /// HDD: throughput-loss factor per extra concurrent *reader* (mild —
    /// kernel readahead batches sequential readers). SSD: ignored.
    pub read_seek_factor: f64,
    /// HDD: throughput-loss factor per *writer* interleaved with other
    /// traffic (harsh — head travel between regions). SSD: ignored.
    pub write_seek_factor: f64,
    /// HDD: minimum fraction of sequential throughput retained under heavy
    /// interleaving (the OS elevator batches requests). SSD: ignored.
    pub seek_floor: f64,
    /// SSD: outstanding operations needed for peak throughput. HDD: ignored.
    pub queue_depth: u32,
}

impl DiskSpec {
    /// The paper-era spinning disk: ~110 MiB/s sequential. Extra concurrent
    /// readers cost 8% each (readahead keeps parallel sequential scans
    /// efficient), while each interleaved writer costs 60%; a default Spark
    /// configuration's four readers plus a write-back stream per disk
    /// therefore lose ~2× aggregate throughput — matching §5.4's "roughly
    /// twice the disk throughput" observation — and the floor of 35% models
    /// the OS elevator's batching.
    pub fn hdd() -> DiskSpec {
        DiskSpec {
            kind: DiskKind::Hdd,
            throughput: 110.0 * MIB,
            read_seek_factor: 0.08,
            write_seek_factor: 0.6,
            seek_floor: 0.35,
            queue_depth: 1,
        }
    }

    /// The paper-era SSD (i2.2xlarge-class): ~450 MiB/s at queue depth 4.
    pub fn ssd() -> DiskSpec {
        DiskSpec {
            kind: DiskKind::Ssd,
            throughput: 450.0 * MIB,
            read_seek_factor: 0.0,
            write_seek_factor: 0.0,
            seek_floor: 1.0,
            queue_depth: 4,
        }
    }

    /// Efficiency curve for `simcore::PsResource`.
    pub fn efficiency(&self) -> EfficiencyCurve {
        match self.kind {
            DiskKind::Hdd => EfficiencyCurve::HddSeek {
                read_factor: self.read_seek_factor,
                write_factor: self.write_seek_factor,
                floor: self.seek_floor,
            },
            DiskKind::Ssd => EfficiencyCurve::SsdQueueDepth {
                depth: self.queue_depth,
            },
        }
    }

    /// Aggregate throughput with `k ≥ 1` concurrent readers.
    pub fn throughput_at(&self, k: usize) -> f64 {
        self.throughput * self.efficiency().at(k)
    }

    /// Aggregate throughput with `k_r` readers and `k_w` writers.
    pub fn throughput_at_rw(&self, k_r: usize, k_w: usize) -> f64 {
        self.throughput * self.efficiency().at_rw(k_r, k_w)
    }

    /// The ideal concurrency a per-disk scheduler should allow (§3.3):
    /// one monotask per HDD, `queue_depth` per SSD.
    pub fn scheduler_slots(&self) -> usize {
        match self.kind {
            DiskKind::Hdd => 1,
            DiskKind::Ssd => self.queue_depth as usize,
        }
    }
}

/// A worker machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineSpec {
    /// CPU cores (the paper's instances expose 8 vCPUs).
    pub cores: u32,
    /// RAM in bytes (~60 GB on the paper's instances).
    pub memory: f64,
    /// Locally attached disks.
    pub disks: Vec<DiskSpec>,
    /// NIC bandwidth in bytes per second, full duplex (≈1 Gbps).
    pub nic: f64,
}

impl MachineSpec {
    /// The paper's HDD instance: 8 cores, 60 GB RAM, two HDDs, 1 Gbps.
    pub fn m2_4xlarge() -> MachineSpec {
        MachineSpec {
            cores: 8,
            memory: 60.0 * GIB,
            disks: vec![DiskSpec::hdd(), DiskSpec::hdd()],
            nic: 125.0 * MIB,
        }
    }

    /// The paper's SSD instance: 8 cores, 60 GB RAM, `n` SSDs, 1 Gbps.
    pub fn i2_2xlarge(n_ssds: usize) -> MachineSpec {
        MachineSpec {
            cores: 8,
            memory: 60.0 * GIB,
            disks: vec![DiskSpec::ssd(); n_ssds],
            nic: 125.0 * MIB,
        }
    }

    /// Total disk-scheduler slots across all disks (§3.4's concurrency sum).
    pub fn disk_slots(&self) -> usize {
        self.disks.iter().map(DiskSpec::scheduler_slots).sum()
    }
}

/// Physical rack layout of a cluster: which machines share a rack, and the
/// aggregation bandwidth each rack's uplink/downlink to the cluster core
/// carries. Present on a [`ClusterSpec`] it switches the monotasks executor's
/// fabric to the hierarchical two-level allocator (`simcore::shard`): exact
/// max-min inside each rack, rack-pair super-classes across the core.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RackTopology {
    /// Machine indices per rack. Must partition `0..machines`: every machine
    /// in exactly one rack, no empty rack ([`RackTopology::validate`]).
    pub racks: Vec<Vec<usize>>,
    /// Per-rack aggregation transmit (uplink) bandwidth in bytes per second.
    pub agg_tx: f64,
    /// Per-rack aggregation receive (downlink) bandwidth in bytes per second.
    pub agg_rx: f64,
}

impl RackTopology {
    /// Uniform racks of `rack_size` consecutive machines (last rack takes the
    /// remainder), with each rack's aggregation link sized
    /// `rack_size × nic / oversubscription`. `oversubscription = 1` is a
    /// non-blocking core; datacenter cores typically run 2–8× oversubscribed.
    ///
    /// # Panics
    ///
    /// Panics if `machines` or `rack_size` is zero, or `oversubscription` is
    /// not strictly positive and finite.
    pub fn uniform(
        machines: usize,
        rack_size: usize,
        nic: f64,
        oversubscription: f64,
    ) -> RackTopology {
        assert!(machines > 0, "no machines");
        assert!(rack_size > 0, "zero rack size");
        assert!(
            oversubscription.is_finite() && oversubscription > 0.0,
            "bad oversubscription factor: {oversubscription}"
        );
        let racks: Vec<Vec<usize>> = (0..machines)
            .collect::<Vec<_>>()
            .chunks(rack_size)
            .map(|c| c.to_vec())
            .collect();
        let agg = rack_size as f64 * nic / oversubscription;
        RackTopology {
            racks,
            agg_tx: agg,
            agg_rx: agg,
        }
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        self.racks.len()
    }

    /// Checks the topology against a cluster of `machines` workers: racks
    /// must partition the machine set (no empty rack, no duplicate or
    /// out-of-range machine, no machine left rackless) and the aggregation
    /// bandwidths must be positive and finite.
    pub fn validate(&self, machines: usize) -> Result<(), String> {
        if !(self.agg_tx.is_finite() && self.agg_tx > 0.0) {
            return Err(format!(
                "rack aggregation tx bandwidth {} must be finite and > 0",
                self.agg_tx
            ));
        }
        if !(self.agg_rx.is_finite() && self.agg_rx > 0.0) {
            return Err(format!(
                "rack aggregation rx bandwidth {} must be finite and > 0",
                self.agg_rx
            ));
        }
        // RackMap::from_groups performs the partition check itself; reuse it
        // so cluster-level validation and the fabric agree exactly.
        simcore::RackMap::from_groups(machines, &self.racks).map(|_| ())
    }

    /// The validated machine → rack assignment for the fabric.
    pub fn rack_map(&self, machines: usize) -> Result<simcore::RackMap, String> {
        simcore::RackMap::from_groups(machines, &self.racks)
    }
}

/// A homogeneous cluster of workers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker machines.
    pub machines: usize,
    /// Per-machine hardware.
    pub machine: MachineSpec,
    /// Optional rack layout. `None` (the default) keeps the single-level
    /// flat fabric — bit-identical to every run before topologies existed.
    #[serde(default)]
    pub topology: Option<RackTopology>,
}

impl ClusterSpec {
    /// Builds a cluster of `machines` identical workers on a flat fabric.
    pub fn new(machines: usize, machine: MachineSpec) -> ClusterSpec {
        assert!(machines > 0, "cluster needs at least one machine");
        ClusterSpec {
            machines,
            machine,
            topology: None,
        }
    }

    /// Builds a rack-organized cluster: uniform racks of `rack_size`
    /// machines, aggregation links `oversubscription`× under the racks'
    /// aggregate NIC bandwidth.
    pub fn with_racks(
        machines: usize,
        machine: MachineSpec,
        rack_size: usize,
        oversubscription: f64,
    ) -> ClusterSpec {
        let nic = machine.nic;
        let mut spec = ClusterSpec::new(machines, machine);
        spec.topology = Some(RackTopology::uniform(
            machines,
            rack_size,
            nic,
            oversubscription,
        ));
        spec
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.machines as u32 * self.machine.cores
    }

    /// Total number of disks in the cluster.
    pub fn total_disks(&self) -> usize {
        self.machines * self.machine.disks.len()
    }

    /// Aggregate single-stream disk bandwidth in bytes/s.
    pub fn total_disk_bandwidth(&self) -> f64 {
        self.machines as f64 * self.machine.disks.iter().map(|d| d.throughput).sum::<f64>()
    }

    /// Total cluster memory in bytes.
    pub fn total_memory(&self) -> f64 {
        self.machines as f64 * self.machine.memory
    }

    /// Checks the spec is physically meaningful: at least one machine, at
    /// least one core, positive finite memory/NIC, and every disk with a
    /// positive finite throughput and sane efficiency constants. Returns a
    /// descriptive error instead of letting downstream rate arithmetic
    /// produce NaNs or deadlocks.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("cluster has zero machines".into());
        }
        let m = &self.machine;
        if m.cores == 0 {
            return Err("machine has zero cores".into());
        }
        if !(m.memory.is_finite() && m.memory > 0.0) {
            return Err(format!(
                "machine memory {} must be finite and > 0",
                m.memory
            ));
        }
        if !(m.nic.is_finite() && m.nic > 0.0) {
            return Err(format!(
                "machine NIC bandwidth {} must be finite and > 0",
                m.nic
            ));
        }
        for (i, d) in m.disks.iter().enumerate() {
            if !(d.throughput.is_finite() && d.throughput > 0.0) {
                return Err(format!(
                    "disk {i} throughput {} must be finite and > 0",
                    d.throughput
                ));
            }
            if !(d.read_seek_factor.is_finite() && d.read_seek_factor >= 0.0) {
                return Err(format!(
                    "disk {i} read_seek_factor {} must be finite and >= 0",
                    d.read_seek_factor
                ));
            }
            if !(d.write_seek_factor.is_finite() && d.write_seek_factor >= 0.0) {
                return Err(format!(
                    "disk {i} write_seek_factor {} must be finite and >= 0",
                    d.write_seek_factor
                ));
            }
            if !(d.seek_floor.is_finite() && d.seek_floor > 0.0 && d.seek_floor <= 1.0) {
                return Err(format!(
                    "disk {i} seek_floor {} must be in (0, 1]",
                    d.seek_floor
                ));
            }
            if d.kind == DiskKind::Ssd && d.queue_depth == 0 {
                return Err(format!("SSD disk {i} has zero queue depth"));
            }
        }
        if let Some(topo) = &self.topology {
            topo.validate(self.machines)
                .map_err(|e| format!("rack topology: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_contention_roughly_halves_with_writer_in_the_mix() {
        let d = DiskSpec::hdd();
        let solo = d.throughput_at(1);
        // Four readers plus a write-back stream: the default-Spark mix.
        let mixed = d.throughput_at_rw(4, 1);
        let loss = solo / mixed;
        assert!(loss > 1.6 && loss < 3.0, "loss factor {loss}");
        // Pure parallel sequential readers degrade only mildly.
        let readers = d.throughput_at(4);
        assert!(solo / readers < 1.4, "read-only loss {}", solo / readers);
        // A lone writer is sequential.
        assert_eq!(d.throughput_at_rw(0, 1), solo);
    }

    #[test]
    fn ssd_peaks_at_queue_depth() {
        let d = DiskSpec::ssd();
        assert!(d.throughput_at(1) < d.throughput_at(4));
        assert_eq!(d.throughput_at(4), d.throughput_at(8));
        assert_eq!(d.scheduler_slots(), 4);
    }

    #[test]
    fn presets_match_paper_shape() {
        let m = MachineSpec::m2_4xlarge();
        assert_eq!(m.cores, 8);
        assert_eq!(m.disks.len(), 2);
        assert_eq!(m.disk_slots(), 2);
        let s = MachineSpec::i2_2xlarge(2);
        assert_eq!(s.disk_slots(), 8);
        let c = ClusterSpec::new(20, m);
        assert_eq!(c.total_cores(), 160);
        assert_eq!(c.total_disks(), 40);
    }

    #[test]
    fn rack_topology_validation() {
        let m = MachineSpec::m2_4xlarge();
        // Uniform construction partitions and validates.
        let c = ClusterSpec::with_racks(10, m.clone(), 4, 2.5);
        assert!(c.validate().is_ok());
        let topo = c.topology.as_ref().unwrap();
        assert_eq!(topo.n_racks(), 3);
        assert!((topo.agg_tx - 4.0 * m.nic / 2.5).abs() < 1e-3);
        // Non-partitioning racks: machine 3 in no rack.
        let mut bad = ClusterSpec::new(4, m.clone());
        bad.topology = Some(RackTopology {
            racks: vec![vec![0, 1], vec![2]],
            agg_tx: 1e8,
            agg_rx: 1e8,
        });
        let err = bad.validate().unwrap_err();
        assert!(err.contains("rack topology"), "{err}");
        assert!(err.contains("machine 3 is in no rack"), "{err}");
        // Zero-size rack.
        bad.topology = Some(RackTopology {
            racks: vec![vec![0, 1, 2, 3], vec![]],
            agg_tx: 1e8,
            agg_rx: 1e8,
        });
        let err = bad.validate().unwrap_err();
        assert!(err.contains("rack 1 is empty"), "{err}");
        // Duplicate machine.
        bad.topology = Some(RackTopology {
            racks: vec![vec![0, 1, 2], vec![2, 3]],
            agg_tx: 1e8,
            agg_rx: 1e8,
        });
        let err = bad.validate().unwrap_err();
        assert!(err.contains("appears in two racks"), "{err}");
        // Degenerate aggregation bandwidth.
        bad.topology = Some(RackTopology {
            racks: vec![vec![0, 1], vec![2, 3]],
            agg_tx: 0.0,
            agg_rx: 1e8,
        });
        assert!(bad.validate().unwrap_err().contains("aggregation tx"));
    }

    #[test]
    fn validate_flags_degenerate_hardware() {
        let mut c = ClusterSpec::new(2, MachineSpec::m2_4xlarge());
        assert!(c.validate().is_ok());
        c.machine.cores = 0;
        assert!(c.validate().unwrap_err().contains("zero cores"));
        c.machine.cores = 8;
        c.machine.disks[1].throughput = 0.0;
        assert!(c.validate().unwrap_err().contains("throughput"));
        c.machine.disks[1].throughput = f64::NAN;
        assert!(c.validate().is_err());
        c.machine.disks[1] = DiskSpec::hdd();
        c.machine.nic = -1.0;
        assert!(c.validate().is_err());
    }
}
