//! Simulated cluster hardware for the monotasks reproduction.
//!
//! The paper evaluates on EC2 clusters of 8-vCPU machines with ~60 GB of RAM
//! and either two HDDs or one/two SSDs, connected by ~1 Gbps links. This crate
//! models exactly the hardware properties the evaluation exercises:
//!
//! * [`hw`] — machine and cluster specifications, with presets matching the
//!   paper's instance types.
//! * [`fluid`] — a coupled fluid allocator. Fine-grained pipelined tasks
//!   (today's frameworks, §2.1) are streams that use several resources
//!   simultaneously and progress at the rate of their most contended
//!   resource; monotasks are streams with a single non-zero demand, so one
//!   allocator serves both executors symmetrically.
//! * [`cache`] — the OS buffer cache: asynchronous write-back that defers and
//!   hides disk writes, the behaviour §3.1 and §5.3 identify as a source of
//!   unpredictability (and of Spark's win on query 1c).
//! * [`trace`] — per-machine, per-resource utilization traces used to
//!   regenerate the paper's utilization figures.
//! * [`faults`] — deterministic fault injection: scheduled machine crashes,
//!   disk/link degradation windows, and task stragglers (DESIGN.md §6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod faults;
pub mod fluid;
pub mod hw;
pub mod trace;

pub use cache::{BufferCache, CachePolicy, WriteOutcome};
pub use faults::{FaultAction, FaultEvent, FaultPlan, FaultSpec, FaultTimeline};
pub use fluid::{DiskId, FluidMachine, MachineId, StreamDemand, StreamId};
pub use hw::{ClusterSpec, DiskKind, DiskSpec, MachineSpec, RackTopology};
pub use trace::{ClassMeans, InstantKind, ResourceSel, RunInstant, TraceSet};
