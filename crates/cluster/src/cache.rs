//! OS buffer-cache model: asynchronous write-back.
//!
//! In today's frameworks, "data written to disk is typically written to the
//! buffer cache. The operating system, and not the framework, will eventually
//! flush the cache, and this write may contend with later disk reads or
//! writes" (§2.2). This module reproduces the three behaviours that matter:
//!
//! 1. Small writes are absorbed instantly and may never reach the disk while
//!    the job runs (why Spark beats MonoSpark on query 1c, §5.3).
//! 2. Dirty data is flushed after an expiry delay, or eagerly once dirty bytes
//!    exceed a background threshold — and the flush contends with reads.
//! 3. Past a hard threshold, writers are throttled to disk speed (writes
//!    become synchronous).
//!
//! Linux defaults inspire the constants: ~10 % of RAM background ratio, ~20 %
//! hard ratio, 30 s expiry.

use simcore::{SimDuration, SimTime};

/// Verdict for one write issued through the cache.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum WriteOutcome {
    /// The write was absorbed by the cache: it completes immediately for the
    /// writer, and the dirty bytes must be flushed to disk starting at
    /// `flush_at` (an asynchronous, contending disk stream).
    Absorbed {
        /// When the background flusher will start writing these bytes.
        flush_at: SimTime,
    },
    /// Dirty data exceeds the hard threshold: the writer must perform the
    /// write synchronously at disk speed.
    Synchronous,
}

/// Write-back policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct CachePolicy {
    /// Dirty bytes above which the flusher starts immediately.
    pub background_bytes: f64,
    /// Dirty bytes above which writers are throttled to synchronous writes.
    pub hard_bytes: f64,
    /// Age at which dirty data is flushed regardless of volume.
    pub expire: SimDuration,
}

impl CachePolicy {
    /// Linux-default-shaped policy for a machine with `memory` bytes of RAM.
    pub fn for_memory(memory: f64) -> CachePolicy {
        CachePolicy {
            background_bytes: 0.10 * memory,
            hard_bytes: 0.20 * memory,
            expire: SimDuration::from_secs(30),
        }
    }
}

/// Per-machine dirty-page accounting.
#[derive(Debug)]
pub struct BufferCache {
    policy: CachePolicy,
    dirty: f64,
}

impl BufferCache {
    /// Creates an empty cache with the given policy.
    pub fn new(policy: CachePolicy) -> BufferCache {
        BufferCache { policy, dirty: 0.0 }
    }

    /// Bytes currently dirty (written but not yet flushed).
    pub fn dirty(&self) -> f64 {
        self.dirty
    }

    /// Issues a write of `bytes` at time `now`.
    ///
    /// On [`WriteOutcome::Absorbed`] the caller must schedule a flush stream
    /// of `bytes` on the target disk starting at `flush_at`, and call
    /// [`flushed`](Self::flushed) when it drains. On
    /// [`WriteOutcome::Synchronous`] the caller performs the write as an
    /// ordinary disk stream and the cache is not charged.
    pub fn write(&mut self, now: SimTime, bytes: f64) -> WriteOutcome {
        assert!(bytes.is_finite() && bytes >= 0.0, "bad write size");
        if self.dirty + bytes > self.policy.hard_bytes {
            return WriteOutcome::Synchronous;
        }
        self.dirty += bytes;
        let flush_at = if self.dirty > self.policy.background_bytes {
            now
        } else {
            now + self.policy.expire
        };
        WriteOutcome::Absorbed { flush_at }
    }

    /// Records that `bytes` of dirty data finished flushing to disk.
    pub fn flushed(&mut self, bytes: f64) {
        self.dirty = (self.dirty - bytes).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_mb(bg: f64, hard: f64) -> BufferCache {
        BufferCache::new(CachePolicy {
            background_bytes: bg,
            hard_bytes: hard,
            expire: SimDuration::from_secs(30),
        })
    }

    #[test]
    fn small_write_deferred_by_expiry() {
        let mut c = cache_mb(100.0, 200.0);
        let out = c.write(SimTime::ZERO, 10.0);
        assert_eq!(
            out,
            WriteOutcome::Absorbed {
                flush_at: SimTime::from_secs(30)
            }
        );
        assert_eq!(c.dirty(), 10.0);
    }

    #[test]
    fn heavy_dirtying_flushes_immediately() {
        let mut c = cache_mb(100.0, 200.0);
        let now = SimTime::from_secs(5);
        assert!(matches!(
            c.write(now, 90.0),
            WriteOutcome::Absorbed { flush_at } if flush_at == now + SimDuration::from_secs(30)
        ));
        // Crosses the background threshold: flush starts now.
        assert!(matches!(
            c.write(now, 20.0),
            WriteOutcome::Absorbed { flush_at } if flush_at == now
        ));
    }

    #[test]
    fn hard_threshold_forces_synchronous_writes() {
        let mut c = cache_mb(100.0, 200.0);
        assert!(matches!(
            c.write(SimTime::ZERO, 150.0),
            WriteOutcome::Absorbed { .. }
        ));
        assert_eq!(c.write(SimTime::ZERO, 100.0), WriteOutcome::Synchronous);
        // Synchronous writes do not charge the cache.
        assert_eq!(c.dirty(), 150.0);
    }

    #[test]
    fn flushed_releases_dirty_bytes() {
        let mut c = cache_mb(100.0, 200.0);
        c.write(SimTime::ZERO, 150.0);
        c.flushed(150.0);
        assert_eq!(c.dirty(), 0.0);
        assert!(matches!(
            c.write(SimTime::ZERO, 150.0),
            WriteOutcome::Absorbed { .. }
        ));
    }

    #[test]
    fn policy_scales_with_memory() {
        let p = CachePolicy::for_memory(1000.0);
        assert_eq!(p.background_bytes, 100.0);
        assert_eq!(p.hard_bytes, 200.0);
    }
}
