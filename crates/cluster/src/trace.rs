//! Cluster-wide utilization traces.
//!
//! Executors record each machine's CPU, per-disk, and NIC busy fractions into
//! a [`TraceSet`] whenever the fluid allocation changes. The paper's
//! utilization figures are then queries against the set:
//!
//! * Fig 2 / Fig 9 — second-by-second series for one machine.
//! * Fig 6 — percentiles of the most- and second-most-utilized resource over
//!   a stage, across machines.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime, UtilizationRecorder};

use crate::fluid::{DiskId, FluidMachine, MachineId};

/// Selects one traced resource on a machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ResourceSel {
    /// The CPU core pool.
    Cpu,
    /// One local disk.
    Disk(usize),
    /// NIC receive bandwidth.
    Network,
}

/// Utilization recorders for every `(machine, resource)` pair.
#[derive(Debug, Default)]
pub struct TraceSet {
    traces: BTreeMap<(MachineId, ResourceSel), UtilizationRecorder>,
}

/// Per-resource-class mean utilizations over a window, for one machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassMeans {
    /// Mean CPU busy fraction.
    pub cpu: f64,
    /// Mean busy fraction of the busiest disk.
    pub disk: f64,
    /// Mean NIC receive busy fraction.
    pub network: f64,
}

impl ClassMeans {
    /// Returns `(most, second)` utilized resource classes by mean.
    pub fn top_two(&self) -> (f64, f64) {
        let mut v = [self.cpu, self.disk, self.network];
        v.sort_by(|a, b| b.partial_cmp(a).expect("NaN utilization"));
        (v[0], v[1])
    }
}

impl TraceSet {
    /// Creates an empty trace set.
    pub fn new() -> TraceSet {
        TraceSet::default()
    }

    /// Snapshots all busy fractions of `machine` at `now`.
    ///
    /// Executors call this after every allocation change; the recorders
    /// coalesce unchanged values, so the cost is proportional to actual
    /// utilization changes.
    pub fn snapshot(&mut self, now: SimTime, id: MachineId, machine: &FluidMachine) {
        self.set(now, id, ResourceSel::Cpu, machine.cpu_busy());
        for d in 0..machine.spec().disks.len() {
            self.set(now, id, ResourceSel::Disk(d), machine.disk_busy(DiskId(d)));
        }
        self.set(now, id, ResourceSel::Network, machine.rx_busy());
    }

    /// Records a single value.
    pub fn set(&mut self, now: SimTime, machine: MachineId, sel: ResourceSel, value: f64) {
        self.traces
            .entry((machine, sel))
            .or_default()
            .set(now, value);
    }

    /// The recorder for a `(machine, resource)` pair, if it has samples.
    pub fn recorder(&self, machine: MachineId, sel: ResourceSel) -> Option<&UtilizationRecorder> {
        self.traces.get(&(machine, sel))
    }

    /// Second-by-second (or any interval) utilization series for one
    /// resource on one machine over `[from, to)`.
    pub fn series(
        &self,
        machine: MachineId,
        sel: ResourceSel,
        from: SimTime,
        to: SimTime,
        interval: SimDuration,
    ) -> Vec<f64> {
        match self.recorder(machine, sel) {
            Some(r) => r.series(from, to, interval),
            None => {
                let mut out = Vec::new();
                let mut start = from;
                while start < to {
                    out.push(0.0);
                    start = start.saturating_add(interval).min(to);
                }
                out
            }
        }
    }

    /// Mean utilization per resource class for `machine` over `[from, to)`.
    /// The disk class reports the busiest disk (the paper plots "one of the
    /// disks" as the disk bottleneck).
    pub fn class_means(&self, machine: MachineId, from: SimTime, to: SimTime) -> ClassMeans {
        let mean = |sel: ResourceSel| {
            self.recorder(machine, sel)
                .map_or(0.0, |r| r.mean_over(from, to))
        };
        let mut disk = 0.0f64;
        let mut d = 0;
        while let Some(r) = self.recorder(machine, ResourceSel::Disk(d)) {
            disk = disk.max(r.mean_over(from, to));
            d += 1;
        }
        ClassMeans {
            cpu: mean(ResourceSel::Cpu),
            disk,
            network: mean(ResourceSel::Network),
        }
    }

    /// Machines with at least one recorded sample.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut ids: Vec<MachineId> = self.traces.keys().map(|(m, _)| *m).collect();
        ids.dedup();
        ids
    }

    /// `(most, second)` utilized class means for every machine over a window
    /// — the samples behind each box in Fig 6.
    pub fn top_two_samples(&self, from: SimTime, to: SimTime) -> Vec<(f64, f64)> {
        self.machines()
            .into_iter()
            .map(|m| self.class_means(m, from, to).top_two())
            .collect()
    }
}

/// Nearest-rank percentile of a sample set (0–100). Returns 0 when empty.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::{StreamDemand, StreamId};
    use crate::hw::{DiskSpec, MachineSpec, MIB};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn snapshot_records_all_resources() {
        let spec = MachineSpec {
            cores: 2,
            memory: 1024.0 * MIB,
            disks: vec![DiskSpec::hdd()],
            nic: 125.0 * MIB,
        };
        let mut m = FluidMachine::new(spec);
        let mut ts = TraceSet::new();
        ts.snapshot(SimTime::ZERO, MachineId(0), &m);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(5.0, 1));
        ts.snapshot(SimTime::ZERO, MachineId(0), &m);
        let cm = ts.class_means(MachineId(0), t(0), t(1));
        assert!((cm.cpu - 0.5).abs() < 1e-9);
        assert_eq!(cm.disk, 0.0);
        assert_eq!(cm.network, 0.0);
        assert_eq!(cm.top_two(), (0.5, 0.0));
    }

    #[test]
    fn series_defaults_to_zero_without_samples() {
        let ts = TraceSet::new();
        let s = ts.series(
            MachineId(3),
            ResourceSel::Cpu,
            t(0),
            t(3),
            SimDuration::from_secs(1),
        );
        assert_eq!(s, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn top_two_orders_classes() {
        let mut ts = TraceSet::new();
        ts.set(t(0), MachineId(0), ResourceSel::Cpu, 0.9);
        ts.set(t(0), MachineId(0), ResourceSel::Disk(0), 0.4);
        ts.set(t(0), MachineId(0), ResourceSel::Disk(1), 0.6);
        ts.set(t(0), MachineId(0), ResourceSel::Network, 0.1);
        let samples = ts.top_two_samples(t(0), t(10));
        assert_eq!(samples.len(), 1);
        let (most, second) = samples[0];
        assert!((most - 0.9).abs() < 1e-9);
        // Disk class = busiest disk (0.6).
        assert!((second - 0.6).abs() < 1e-9);
    }

    #[test]
    fn percentile_helper() {
        let v = [0.1, 0.9, 0.5, 0.3];
        assert!((percentile(&v, 0.0) - 0.1).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 0.9).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
