//! Cluster-wide utilization traces.
//!
//! Executors record each machine's CPU, per-disk, and NIC busy fractions into
//! a [`TraceSet`] whenever the fluid allocation changes. The paper's
//! utilization figures are then queries against the set:
//!
//! * Fig 2 / Fig 9 — second-by-second series for one machine.
//! * Fig 6 — percentiles of the most- and second-most-utilized resource over
//!   a stage, across machines.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime, UtilizationRecorder};

use crate::faults::FaultAction;
use crate::fluid::{DiskId, FluidMachine, MachineId};

/// What happened at one instant of a traced run.
///
/// The aggregate recovery counters (`RecoveryStats`, `SimStats`) say *how
/// often* something happened; a trace needs to say *when*. Both executors
/// push one [`RunInstant`] per fault firing and recovery decision into their
/// run output when trace collection is armed (`trace_path` on the executor
/// config), and the `mt-trace` crate turns them into Perfetto instant
/// markers on the affected machine's (or owning job's) track.
///
/// The contract mirrors the fault layer's: collection is observation-only.
/// Pushing an instant never changes scheduler state, so runs with collection
/// on are bit-identical to runs with it off, and every recovery counter has
/// exactly as many matching instants as its final value (both proptested in
/// `tests/trace_props.rs`).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum InstantKind {
    /// A machine crashed permanently (fault injection).
    MachineCrash {
        /// Index of the crashed machine.
        machine: usize,
    },
    /// A disk's service-rate scale changed (degradation start or heal).
    DiskScale {
        /// Machine owning the disk.
        machine: usize,
        /// Disk index within the machine.
        disk: usize,
        /// New scale factor (`1.0` = healed).
        factor: f64,
    },
    /// A NIC's bandwidth scale changed (degradation start or heal).
    LinkScale {
        /// Machine whose link changed.
        machine: usize,
        /// New scale factor (`1.0` = healed).
        factor: f64,
    },
    /// One directed fabric pair was cut (partition or link cut).
    PairCut {
        /// Sending machine of the cut direction.
        src: usize,
        /// Receiving machine of the cut direction.
        dst: usize,
    },
    /// One directed fabric pair was restored.
    PairHeal {
        /// Sending machine of the restored direction.
        src: usize,
        /// Receiving machine of the restored direction.
        dst: usize,
    },
    /// A task attempt was re-queued after a failure (counts against
    /// `RecoveryStats::tasks_retried`).
    TaskRetry {
        /// Job index.
        job: u32,
        /// Stage index.
        stage: u32,
        /// Task index.
        task: u32,
        /// Whether the retry is a lineage recomputation of a previously
        /// completed task (vs an aborted in-flight attempt).
        recompute: bool,
    },
    /// A slot-level speculative task copy launched (counts against
    /// `RecoveryStats::tasks_speculated`).
    TaskSpeculate {
        /// Job index.
        job: u32,
        /// Stage index.
        stage: u32,
        /// Task index.
        task: u32,
        /// Machine the copy launched on.
        machine: usize,
    },
    /// A monotask-level speculative copy launched (counts against
    /// `RecoveryStats::mono_copies`).
    MonoCopy {
        /// Job index.
        job: u32,
        /// Stage index.
        stage: u32,
        /// Task index.
        task: u32,
        /// `RES_CPU`/`RES_DISK`/`RES_NET` index of the straggling resource.
        resource: usize,
    },
    /// A monotask-level copy beat its original (counts against
    /// `RecoveryStats::mono_copy_wins`).
    MonoCopyWin {
        /// Job index.
        job: u32,
        /// Stage index.
        stage: u32,
        /// Task index.
        task: u32,
        /// `RES_CPU`/`RES_DISK`/`RES_NET` index of the straggling resource.
        resource: usize,
    },
    /// An execution template was invalidated by a placement change (counts
    /// against `StageControlStats::template_invalidations`).
    TemplateInvalidate {
        /// Job index.
        job: u32,
        /// Consumer stage whose template was dropped.
        stage: u32,
    },
    /// A stalled fetch burned one retry decision (counts against
    /// `RecoveryStats::fetch_retries`).
    FetchRetry {
        /// Job index.
        job: u32,
        /// Stage index.
        stage: u32,
        /// Retry number within the attempt's budget.
        attempt: u32,
    },
    /// A fetch's source assignment was re-planned around an unreachable
    /// sender (counts against `RecoveryStats::fetches_replanned`).
    FetchReplan {
        /// Job index.
        job: u32,
        /// Stage index.
        stage: u32,
    },
}

impl InstantKind {
    /// The machine this instant is anchored to, if any — fault instants
    /// render on the affected machine's trace track, recovery instants on
    /// the owning job's track.
    pub fn machine(&self) -> Option<usize> {
        match *self {
            InstantKind::MachineCrash { machine }
            | InstantKind::DiskScale { machine, .. }
            | InstantKind::LinkScale { machine, .. } => Some(machine),
            InstantKind::PairCut { dst, .. } | InstantKind::PairHeal { dst, .. } => Some(dst),
            InstantKind::TaskSpeculate { machine, .. } => Some(machine),
            _ => None,
        }
    }

    /// The job this instant belongs to, if any (fault instants are
    /// cluster-level and belong to none).
    pub fn job(&self) -> Option<u32> {
        match *self {
            InstantKind::TaskRetry { job, .. }
            | InstantKind::TaskSpeculate { job, .. }
            | InstantKind::MonoCopy { job, .. }
            | InstantKind::MonoCopyWin { job, .. }
            | InstantKind::TemplateInvalidate { job, .. }
            | InstantKind::FetchRetry { job, .. }
            | InstantKind::FetchReplan { job, .. } => Some(job),
            _ => None,
        }
    }

    /// Short label for trace rendering, stable across runs.
    pub fn label(&self) -> &'static str {
        match self {
            InstantKind::MachineCrash { .. } => "crash",
            InstantKind::DiskScale { .. } => "disk_scale",
            InstantKind::LinkScale { .. } => "link_scale",
            InstantKind::PairCut { .. } => "pair_cut",
            InstantKind::PairHeal { .. } => "pair_heal",
            InstantKind::TaskRetry { .. } => "task_retry",
            InstantKind::TaskSpeculate { .. } => "task_speculate",
            InstantKind::MonoCopy { .. } => "mono_copy",
            InstantKind::MonoCopyWin { .. } => "mono_copy_win",
            InstantKind::TemplateInvalidate { .. } => "template_invalidate",
            InstantKind::FetchRetry { .. } => "fetch_retry",
            InstantKind::FetchReplan { .. } => "fetch_replan",
        }
    }
}

impl From<&FaultAction> for InstantKind {
    /// The instant marker an executor emits when it applies `action` — the
    /// same lowering for both executors, so traces agree on fault taxonomy.
    fn from(action: &FaultAction) -> InstantKind {
        match *action {
            FaultAction::Crash { machine } => InstantKind::MachineCrash { machine },
            FaultAction::SetDiskScale {
                machine,
                disk,
                factor,
            } => InstantKind::DiskScale {
                machine,
                disk,
                factor,
            },
            FaultAction::SetLinkScale { machine, factor } => {
                InstantKind::LinkScale { machine, factor }
            }
            FaultAction::CutPair { src, dst } => InstantKind::PairCut { src, dst },
            FaultAction::HealPair { src, dst } => InstantKind::PairHeal { src, dst },
        }
    }
}

/// One timestamped instant of a traced run.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct RunInstant {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: InstantKind,
}

/// Selects one traced resource on a machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ResourceSel {
    /// The CPU core pool.
    Cpu,
    /// One local disk.
    Disk(usize),
    /// NIC receive bandwidth.
    Network,
}

/// Utilization recorders for every `(machine, resource)` pair.
#[derive(Debug, Default)]
pub struct TraceSet {
    traces: BTreeMap<(MachineId, ResourceSel), UtilizationRecorder>,
}

/// Per-resource-class mean utilizations over a window, for one machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassMeans {
    /// Mean CPU busy fraction.
    pub cpu: f64,
    /// Mean busy fraction of the busiest disk.
    pub disk: f64,
    /// Mean NIC receive busy fraction.
    pub network: f64,
}

impl ClassMeans {
    /// Returns `(most, second)` utilized resource classes by mean.
    pub fn top_two(&self) -> (f64, f64) {
        let mut v = [self.cpu, self.disk, self.network];
        v.sort_by(|a, b| b.partial_cmp(a).expect("NaN utilization"));
        (v[0], v[1])
    }
}

impl TraceSet {
    /// Creates an empty trace set.
    pub fn new() -> TraceSet {
        TraceSet::default()
    }

    /// Snapshots all busy fractions of `machine` at `now`.
    ///
    /// Executors call this after every allocation change; the recorders
    /// coalesce unchanged values, so the cost is proportional to actual
    /// utilization changes.
    pub fn snapshot(&mut self, now: SimTime, id: MachineId, machine: &FluidMachine) {
        self.set(now, id, ResourceSel::Cpu, machine.cpu_busy());
        for d in 0..machine.spec().disks.len() {
            self.set(now, id, ResourceSel::Disk(d), machine.disk_busy(DiskId(d)));
        }
        self.set(now, id, ResourceSel::Network, machine.rx_busy());
    }

    /// Records a single value.
    pub fn set(&mut self, now: SimTime, machine: MachineId, sel: ResourceSel, value: f64) {
        self.traces
            .entry((machine, sel))
            .or_default()
            .set(now, value);
    }

    /// The recorder for a `(machine, resource)` pair, if it has samples.
    pub fn recorder(&self, machine: MachineId, sel: ResourceSel) -> Option<&UtilizationRecorder> {
        self.traces.get(&(machine, sel))
    }

    /// Every `(machine, resource)` recorder, in deterministic key order.
    /// Powers the trace exporter's utilization counter tracks.
    pub fn iter(&self) -> impl Iterator<Item = (&(MachineId, ResourceSel), &UtilizationRecorder)> {
        self.traces.iter()
    }

    /// Second-by-second (or any interval) utilization series for one
    /// resource on one machine over `[from, to)`.
    pub fn series(
        &self,
        machine: MachineId,
        sel: ResourceSel,
        from: SimTime,
        to: SimTime,
        interval: SimDuration,
    ) -> Vec<f64> {
        match self.recorder(machine, sel) {
            Some(r) => r.series(from, to, interval),
            None => {
                let mut out = Vec::new();
                let mut start = from;
                while start < to {
                    out.push(0.0);
                    start = start.saturating_add(interval).min(to);
                }
                out
            }
        }
    }

    /// Mean utilization per resource class for `machine` over `[from, to)`.
    /// The disk class reports the busiest disk (the paper plots "one of the
    /// disks" as the disk bottleneck).
    pub fn class_means(&self, machine: MachineId, from: SimTime, to: SimTime) -> ClassMeans {
        let mean = |sel: ResourceSel| {
            self.recorder(machine, sel)
                .map_or(0.0, |r| r.mean_over(from, to))
        };
        let mut disk = 0.0f64;
        let mut d = 0;
        while let Some(r) = self.recorder(machine, ResourceSel::Disk(d)) {
            disk = disk.max(r.mean_over(from, to));
            d += 1;
        }
        ClassMeans {
            cpu: mean(ResourceSel::Cpu),
            disk,
            network: mean(ResourceSel::Network),
        }
    }

    /// Machines with at least one recorded sample.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut ids: Vec<MachineId> = self.traces.keys().map(|(m, _)| *m).collect();
        ids.dedup();
        ids
    }

    /// `(most, second)` utilized class means for every machine over a window
    /// — the samples behind each box in Fig 6.
    pub fn top_two_samples(&self, from: SimTime, to: SimTime) -> Vec<(f64, f64)> {
        self.machines()
            .into_iter()
            .map(|m| self.class_means(m, from, to).top_two())
            .collect()
    }
}

/// Nearest-rank percentile of a sample set (0–100). Returns 0 when empty.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::{StreamDemand, StreamId};
    use crate::hw::{DiskSpec, MachineSpec, MIB};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn snapshot_records_all_resources() {
        let spec = MachineSpec {
            cores: 2,
            memory: 1024.0 * MIB,
            disks: vec![DiskSpec::hdd()],
            nic: 125.0 * MIB,
        };
        let mut m = FluidMachine::new(spec);
        let mut ts = TraceSet::new();
        ts.snapshot(SimTime::ZERO, MachineId(0), &m);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(5.0, 1));
        ts.snapshot(SimTime::ZERO, MachineId(0), &m);
        let cm = ts.class_means(MachineId(0), t(0), t(1));
        assert!((cm.cpu - 0.5).abs() < 1e-9);
        assert_eq!(cm.disk, 0.0);
        assert_eq!(cm.network, 0.0);
        assert_eq!(cm.top_two(), (0.5, 0.0));
    }

    #[test]
    fn series_defaults_to_zero_without_samples() {
        let ts = TraceSet::new();
        let s = ts.series(
            MachineId(3),
            ResourceSel::Cpu,
            t(0),
            t(3),
            SimDuration::from_secs(1),
        );
        assert_eq!(s, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn top_two_orders_classes() {
        let mut ts = TraceSet::new();
        ts.set(t(0), MachineId(0), ResourceSel::Cpu, 0.9);
        ts.set(t(0), MachineId(0), ResourceSel::Disk(0), 0.4);
        ts.set(t(0), MachineId(0), ResourceSel::Disk(1), 0.6);
        ts.set(t(0), MachineId(0), ResourceSel::Network, 0.1);
        let samples = ts.top_two_samples(t(0), t(10));
        assert_eq!(samples.len(), 1);
        let (most, second) = samples[0];
        assert!((most - 0.9).abs() < 1e-9);
        // Disk class = busiest disk (0.6).
        assert!((second - 0.6).abs() < 1e-9);
    }

    #[test]
    fn instant_anchors_route_fault_and_recovery_instants() {
        let crash = InstantKind::MachineCrash { machine: 3 };
        assert_eq!(crash.machine(), Some(3));
        assert_eq!(crash.job(), None);
        assert_eq!(crash.label(), "crash");
        assert_eq!(InstantKind::from(&FaultAction::Crash { machine: 3 }), crash);

        let retry = InstantKind::TaskRetry {
            job: 1,
            stage: 2,
            task: 3,
            recompute: true,
        };
        assert_eq!(retry.machine(), None);
        assert_eq!(retry.job(), Some(1));

        let cut = InstantKind::from(&FaultAction::CutPair { src: 0, dst: 4 });
        assert_eq!(cut.machine(), Some(4));
    }

    #[test]
    fn percentile_helper() {
        let v = [0.1, 0.9, 0.5, 0.3];
        assert!((percentile(&v, 0.0) - 0.1).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 0.9).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
