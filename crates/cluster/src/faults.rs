//! Deterministic fault injection: scheduled crashes, degradations, stragglers.
//!
//! A [`FaultPlan`] is a list of *scheduled* fault events — there is no
//! wall-clock randomness anywhere. Randomised plans come from
//! [`FaultPlan::random`], which derives every choice from an explicit seed via
//! the repo's deterministic `SmallRng`, so a (seed, spec, intensity) triple
//! always produces the same plan and therefore the same simulated run.
//!
//! Executors consume a plan through [`FaultPlan::compile`], which lowers the
//! declarative events into a time-sorted [`FaultTimeline`] of atomic
//! [`FaultAction`]s (a `DiskDegrade` becomes a scale-set at `from` and an
//! explicit scale-restore to `1.0` at `until` — restoring by multiplication
//! would not be bit-exact; a `Partition` becomes one `CutPair`/`HealPair`
//! per directed cross-group pair, in sorted pair order) plus a sorted
//! straggle-factor lookup table.
//!
//! The determinism contract: an **empty plan must be a perfect no-op**. The
//! compiled timeline of an empty plan schedules nothing, and every hook the
//! executors call (`next_time`, `straggle_factor`) returns `None`, so the
//! fault-free event sequence is bit-identical to a run without any fault
//! machinery at all.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcore::SimTime;

use crate::hw::ClusterSpec;

/// One declarative fault event.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Machine `machine` fails permanently at time `at`: in-flight work on it
    /// aborts, and its buffer cache and stored shuffle outputs are lost.
    MachineCrash {
        /// Index of the machine that crashes.
        machine: usize,
        /// Instant of the crash.
        at: SimTime,
    },
    /// Disk `disk` on `machine` serves at `factor ×` its healthy rate over
    /// `[from, until)` — the paper's §3.3 seek/contention pathology turned
    /// pathological (e.g. a remapping-sector drive at `factor = 0.25`).
    DiskDegrade {
        /// Machine owning the disk.
        machine: usize,
        /// Disk index within the machine.
        disk: usize,
        /// Service-rate multiplier in `(0, 1]` while degraded.
        factor: f64,
        /// Start of the degraded window.
        from: SimTime,
        /// End of the degraded window (rate restored exactly to healthy).
        until: SimTime,
    },
    /// The NIC of `machine` carries `factor ×` its healthy bandwidth over
    /// `[from, until)` (receiver-side model; see DESIGN.md §6).
    LinkDegrade {
        /// Machine whose link degrades.
        machine: usize,
        /// Bandwidth multiplier in `(0, 1]` while degraded.
        factor: f64,
        /// Start of the degraded window.
        from: SimTime,
        /// End of the degraded window.
        until: SimTime,
    },
    /// Task `task` of stage `stage` (first attempt only, in every job of the
    /// run) takes `factor ×` its normal CPU work — a data-skew/JIT straggler.
    /// Retries and speculative copies run at full speed, which is what makes
    /// speculation profitable.
    TaskStraggle {
        /// Stage index the straggler belongs to.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// CPU-work multiplier, `≥ 1`.
        factor: f64,
    },
    /// A network partition: machines in different `groups` cannot exchange
    /// bytes over `[start, heal)`. Every machine stays alive and keeps its
    /// local disks — only cross-group fabric pairs are cut (both directions).
    /// `heal: None` means the partition never heals within the run.
    Partition {
        /// Disjoint machine groups; traffic is cut between groups, not
        /// within them.
        groups: Vec<Vec<usize>>,
        /// Instant the cut takes effect.
        start: SimTime,
        /// Instant connectivity is restored, or `None` for a permanent cut.
        heal: Option<SimTime>,
    },
    /// An asymmetric cut of one directed fabric pair: `src` cannot send to
    /// `dst` over `[start, heal)`, while the reverse direction stays healthy.
    LinkCut {
        /// Sending machine of the cut direction.
        src: usize,
        /// Receiving machine of the cut direction.
        dst: usize,
        /// Instant the cut takes effect.
        start: SimTime,
        /// Instant the direction is restored, or `None` for a permanent cut.
        heal: Option<SimTime>,
    },
}

/// A schedule of fault events for one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Shape parameters for [`FaultPlan::random`].
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Number of machines in the target cluster.
    pub machines: usize,
    /// Disks per machine (uniform; the repo's cluster specs are homogeneous).
    pub disks_per_machine: usize,
    /// Rough expected makespan of the fault-free run; events are scheduled
    /// inside this window so they actually land mid-run.
    pub horizon: SimTime,
    /// Number of stages in the workload (for straggler targeting).
    pub stages: usize,
    /// Tasks per stage (for straggler targeting).
    pub tasks_per_stage: usize,
}

impl FaultSpec {
    /// Derives a spec from a cluster and workload shape.
    pub fn new(
        cluster: &ClusterSpec,
        horizon: SimTime,
        stages: usize,
        tasks_per_stage: usize,
    ) -> FaultSpec {
        FaultSpec {
            machines: cluster.machines,
            disks_per_machine: cluster.machine.disks.len(),
            horizon,
            stages,
            tasks_per_stage,
        }
    }
}

impl FaultPlan {
    /// An empty plan (perfect no-op).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds a machine crash.
    pub fn crash(mut self, machine: usize, at: SimTime) -> FaultPlan {
        self.events.push(FaultEvent::MachineCrash { machine, at });
        self
    }

    /// Adds a disk degradation window.
    pub fn degrade_disk(
        mut self,
        machine: usize,
        disk: usize,
        factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        self.events.push(FaultEvent::DiskDegrade {
            machine,
            disk,
            factor,
            from,
            until,
        });
        self
    }

    /// Adds a link degradation window.
    pub fn degrade_link(
        mut self,
        machine: usize,
        factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        self.events.push(FaultEvent::LinkDegrade {
            machine,
            factor,
            from,
            until,
        });
        self
    }

    /// Adds a task straggler.
    pub fn straggle(mut self, stage: usize, task: usize, factor: f64) -> FaultPlan {
        self.events.push(FaultEvent::TaskStraggle {
            stage,
            task,
            factor,
        });
        self
    }

    /// Adds a network partition separating `groups` over `[start, heal)`.
    pub fn partition(
        mut self,
        groups: Vec<Vec<usize>>,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> FaultPlan {
        self.events.push(FaultEvent::Partition {
            groups,
            start,
            heal,
        });
        self
    }

    /// Adds an asymmetric cut of the directed pair `src → dst`.
    pub fn cut_link(
        mut self,
        src: usize,
        dst: usize,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> FaultPlan {
        self.events.push(FaultEvent::LinkCut {
            src,
            dst,
            start,
            heal,
        });
        self
    }

    /// True when the plan schedules at least one partition or link cut —
    /// executors use this to arm their partition-recovery machinery only
    /// when it can matter, keeping partition-free runs bit-identical.
    pub fn has_partitions(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Partition { .. } | FaultEvent::LinkCut { .. }))
    }

    /// Checks the plan against a cluster: every referenced machine and disk
    /// must exist, degrade factors must be positive and finite, straggle
    /// factors at least one, and windows non-empty. Degrade windows on the
    /// same device must not overlap (the timeline restores rates to exactly
    /// `1.0`, so overlapping windows would not compose), and a machine may
    /// crash at most once. Partition windows touching the same machine must
    /// not overlap each other (heal restores connectivity outright, so two
    /// live cuts on one machine would not compose), and a machine may not
    /// crash inside a partition window it belongs to — firing order between
    /// "unreachable" and "dead" would otherwise be undocumented.
    pub fn validate(&self, cluster: &ClusterSpec) -> Result<(), String> {
        let n = cluster.machines;
        let mut crashes: Vec<(usize, SimTime)> = Vec::new();
        let mut disk_windows: Vec<(usize, usize, SimTime, SimTime)> = Vec::new();
        let mut link_windows: Vec<(usize, SimTime, SimTime)> = Vec::new();
        // Machine-granularity partition windows (partitions and link cuts),
        // as (machine, event index, start, effective heal).
        let mut part_windows: Vec<(usize, usize, SimTime, SimTime)> = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            match *ev {
                FaultEvent::MachineCrash { machine, at } => {
                    if machine >= n {
                        return Err(format!("fault event {i}: crash of nonexistent machine {machine} (cluster has {n})"));
                    }
                    if crashes.iter().any(|&(m, _)| m == machine) {
                        return Err(format!(
                            "fault event {i}: machine {machine} crashes more than once"
                        ));
                    }
                    crashes.push((machine, at));
                }
                FaultEvent::DiskDegrade {
                    machine,
                    disk,
                    factor,
                    from,
                    until,
                } => {
                    if machine >= n {
                        return Err(format!(
                            "fault event {i}: disk degrade on nonexistent machine {machine}"
                        ));
                    }
                    let nd = cluster.machine.disks.len();
                    if disk >= nd {
                        return Err(format!("fault event {i}: degrade of nonexistent disk {disk} on machine {machine} (has {nd})"));
                    }
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(format!(
                            "fault event {i}: disk degrade factor {factor} must be finite and > 0"
                        ));
                    }
                    if from >= until {
                        return Err(format!(
                            "fault event {i}: empty degrade window ({from:?} >= {until:?})"
                        ));
                    }
                    for &(m2, d2, f2, u2) in &disk_windows {
                        if m2 == machine && d2 == disk && from < u2 && f2 < until {
                            return Err(format!("fault event {i}: overlapping degrade windows on machine {machine} disk {disk}"));
                        }
                    }
                    disk_windows.push((machine, disk, from, until));
                }
                FaultEvent::LinkDegrade {
                    machine,
                    factor,
                    from,
                    until,
                } => {
                    if machine >= n {
                        return Err(format!(
                            "fault event {i}: link degrade on nonexistent machine {machine}"
                        ));
                    }
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(format!(
                            "fault event {i}: link degrade factor {factor} must be finite and > 0"
                        ));
                    }
                    if from >= until {
                        return Err(format!(
                            "fault event {i}: empty link degrade window ({from:?} >= {until:?})"
                        ));
                    }
                    for &(m2, f2, u2) in &link_windows {
                        if m2 == machine && from < u2 && f2 < until {
                            return Err(format!("fault event {i}: overlapping link degrade windows on machine {machine}"));
                        }
                    }
                    link_windows.push((machine, from, until));
                }
                FaultEvent::TaskStraggle { factor, .. } => {
                    if !(factor.is_finite() && factor >= 1.0) {
                        return Err(format!(
                            "fault event {i}: straggle factor {factor} must be finite and >= 1"
                        ));
                    }
                }
                FaultEvent::Partition {
                    ref groups,
                    start,
                    heal,
                } => {
                    if groups.len() < 2 {
                        return Err(format!(
                            "fault event {i}: partition needs at least two groups"
                        ));
                    }
                    let mut seen: Vec<usize> = Vec::new();
                    for g in groups {
                        if g.is_empty() {
                            return Err(format!("fault event {i}: empty partition group"));
                        }
                        for &m in g {
                            if m >= n {
                                return Err(format!("fault event {i}: partition of nonexistent machine {m} (cluster has {n})"));
                            }
                            if seen.contains(&m) {
                                return Err(format!(
                                    "fault event {i}: machine {m} appears in two partition groups"
                                ));
                            }
                            seen.push(m);
                        }
                    }
                    let until = Self::check_cut_window(i, start, heal)?;
                    for m in seen {
                        Self::check_part_overlap(&part_windows, i, m, start, until)?;
                        part_windows.push((m, i, start, until));
                    }
                }
                FaultEvent::LinkCut {
                    src,
                    dst,
                    start,
                    heal,
                } => {
                    if src >= n || dst >= n {
                        return Err(format!("fault event {i}: link cut between nonexistent machines {src} -> {dst} (cluster has {n})"));
                    }
                    if src == dst {
                        return Err(format!(
                            "fault event {i}: link cut of machine {src} to itself"
                        ));
                    }
                    let until = Self::check_cut_window(i, start, heal)?;
                    for m in [src, dst] {
                        Self::check_part_overlap(&part_windows, i, m, start, until)?;
                        part_windows.push((m, i, start, until));
                    }
                }
            }
        }
        // Crashes are collected above regardless of event order, so the
        // crash-inside-partition-window rejection is order-independent.
        for &(m, at) in &crashes {
            for &(pm, i, from, until) in &part_windows {
                if pm == m && from <= at && at < until {
                    return Err(format!("fault event {i}: machine {m} crashes at {at:?} inside its partition window"));
                }
            }
        }
        Ok(())
    }

    /// Validates one cut window, returning its effective end (`FAR_FUTURE`
    /// for a permanent cut).
    fn check_cut_window(
        i: usize,
        start: SimTime,
        heal: Option<SimTime>,
    ) -> Result<SimTime, String> {
        match heal {
            Some(h) if start >= h => Err(format!(
                "fault event {i}: empty partition window ({start:?} >= {h:?})"
            )),
            Some(h) => Ok(h),
            None => Ok(SimTime::FAR_FUTURE),
        }
    }

    /// Rejects a cut window touching `machine` that overlaps an earlier one
    /// on the same machine (self-overlap within one event is fine: the event
    /// index breaks the tie).
    fn check_part_overlap(
        windows: &[(usize, usize, SimTime, SimTime)],
        i: usize,
        machine: usize,
        from: SimTime,
        until: SimTime,
    ) -> Result<(), String> {
        for &(m2, i2, f2, u2) in windows {
            if m2 == machine && i2 != i && from < u2 && f2 < until {
                return Err(format!(
                    "fault event {i}: overlapping partition windows on machine {machine}"
                ));
            }
        }
        Ok(())
    }

    /// Generates a reproducible plan: same `(seed, spec, intensity)` triple,
    /// same plan, always. Event counts scale with `intensity` — at `1.0`
    /// roughly one crash, two disk degrades, one link degrade, and two
    /// stragglers; at `0.0` the plan is empty. Crashes never take down every
    /// machine (at least one survivor), so random plans stay recoverable.
    pub fn random(seed: u64, spec: &FaultSpec, intensity: f64) -> FaultPlan {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be finite and >= 0"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if intensity == 0.0 || spec.machines == 0 || spec.horizon == SimTime::ZERO {
            return plan;
        }
        let h = spec.horizon.0;
        let count = |base: f64| -> usize { (base * intensity).round() as usize };

        // Crashes: at most floor(intensity), never the whole cluster.
        let n_crash = (intensity.floor() as usize).min(spec.machines.saturating_sub(1));
        let mut crashed: Vec<usize> = Vec::new();
        for _ in 0..n_crash {
            let m = rng.gen_range(0..spec.machines);
            if crashed.contains(&m) {
                continue;
            }
            crashed.push(m);
            let at = SimTime(h / 5 + rng.gen_range(0..(3 * h / 5).max(1)));
            plan = plan.crash(m, at);
        }

        // Disk degrades: one window per (machine, disk) at most.
        let mut used_disks: Vec<(usize, usize)> = Vec::new();
        if spec.disks_per_machine > 0 {
            for _ in 0..count(2.0) {
                let m = rng.gen_range(0..spec.machines);
                let d = rng.gen_range(0..spec.disks_per_machine);
                if used_disks.contains(&(m, d)) {
                    continue;
                }
                used_disks.push((m, d));
                let factor = rng.gen_range(0.15..0.6);
                let from = SimTime(rng.gen_range(0..(3 * h / 5).max(1)));
                let len = rng.gen_range(h / 5..(h / 2).max(h / 5 + 1));
                plan = plan.degrade_disk(m, d, factor, from, SimTime(from.0 + len));
            }
        }

        // Link degrades: one window per machine at most.
        let mut used_links: Vec<usize> = Vec::new();
        for _ in 0..count(1.0) {
            let m = rng.gen_range(0..spec.machines);
            if used_links.contains(&m) {
                continue;
            }
            used_links.push(m);
            let factor = rng.gen_range(0.2..0.6);
            let from = SimTime(rng.gen_range(0..(3 * h / 5).max(1)));
            let len = rng.gen_range(h / 5..(h / 2).max(h / 5 + 1));
            plan = plan.degrade_link(m, factor, from, SimTime(from.0 + len));
        }

        // Stragglers: distinct (stage, task) targets, slowdown 2–6×.
        if spec.stages > 0 && spec.tasks_per_stage > 0 {
            let mut used_tasks: Vec<(usize, usize)> = Vec::new();
            for _ in 0..count(2.0) {
                let s = rng.gen_range(0..spec.stages);
                let t = rng.gen_range(0..spec.tasks_per_stage);
                if used_tasks.contains(&(s, t)) {
                    continue;
                }
                used_tasks.push((s, t));
                let factor = rng.gen_range(2.0..6.0);
                plan = plan.straggle(s, t, factor);
            }
        }
        plan
    }

    /// Generates a reproducible **straggler-only** plan: no crashes, no
    /// degradations — just `≈ 4 × intensity` distinct `(stage, task)`
    /// stragglers slowed 2–6×. This is the speculation benchmark's fault
    /// model: every makespan stretch is attributable to stragglers alone, so
    /// speculation modes can be ranked on how much of it they recover and at
    /// what cost in wasted work.
    pub fn random_stragglers(seed: u64, spec: &FaultSpec, intensity: f64) -> FaultPlan {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be finite and >= 0"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if intensity == 0.0 || spec.stages == 0 || spec.tasks_per_stage == 0 {
            return plan;
        }
        let mut used: Vec<(usize, usize)> = Vec::new();
        for _ in 0..((4.0 * intensity).round() as usize) {
            let s = rng.gen_range(0..spec.stages);
            let t = rng.gen_range(0..spec.tasks_per_stage);
            if used.contains(&(s, t)) {
                continue;
            }
            used.push((s, t));
            let factor = rng.gen_range(2.0..6.0);
            plan = plan.straggle(s, t, factor);
        }
        plan
    }

    /// Generates a reproducible **partition-only** plan: one partition window
    /// isolating `≈ intensity` distinct machines (each in its own group) from
    /// the rest of the cluster, landing mid-horizon. No crashes,
    /// degradations, or stragglers — every makespan stretch is attributable
    /// to unreachable fetches alone, which is what the partition sweep ranks
    /// recovery modes on. At most `machines - 1` isolations, so the majority
    /// group is never empty.
    pub fn random_partitions(seed: u64, spec: &FaultSpec, intensity: f64) -> FaultPlan {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be finite and >= 0"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let plan = FaultPlan::new();
        if intensity == 0.0 || spec.machines < 2 || spec.horizon == SimTime::ZERO {
            return plan;
        }
        let h = spec.horizon.0;
        let n_cuts = ((intensity.round() as usize).max(1)).min(spec.machines - 1);
        let mut isolated: Vec<usize> = Vec::new();
        while isolated.len() < n_cuts {
            let m = rng.gen_range(0..spec.machines);
            if !isolated.contains(&m) {
                isolated.push(m);
            }
        }
        // Land mid-run (during the shuffle for the repo's sort jobs) and heal
        // late enough that recovery has to act, not just wait it out.
        let start = SimTime(h / 5 + rng.gen_range(0..(2 * h / 5).max(1)));
        let len = rng.gen_range(h / 4..(h / 2).max(h / 4 + 1));
        let rest: Vec<usize> = (0..spec.machines)
            .filter(|x| !isolated.contains(x))
            .collect();
        let mut groups: Vec<Vec<usize>> = isolated.into_iter().map(|m| vec![m]).collect();
        groups.push(rest);
        plan.partition(groups, start, Some(SimTime(start.0 + len)))
    }

    /// Lowers the plan into a time-sorted action timeline plus a straggle
    /// lookup table.
    pub fn compile(&self) -> FaultTimeline {
        let mut actions: Vec<(SimTime, FaultAction)> = Vec::new();
        let mut straggles: Vec<(usize, usize, f64)> = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::MachineCrash { machine, at } => {
                    actions.push((at, FaultAction::Crash { machine }));
                }
                FaultEvent::DiskDegrade {
                    machine,
                    disk,
                    factor,
                    from,
                    until,
                } => {
                    actions.push((
                        from,
                        FaultAction::SetDiskScale {
                            machine,
                            disk,
                            factor,
                        },
                    ));
                    actions.push((
                        until,
                        FaultAction::SetDiskScale {
                            machine,
                            disk,
                            factor: 1.0,
                        },
                    ));
                }
                FaultEvent::LinkDegrade {
                    machine,
                    factor,
                    from,
                    until,
                } => {
                    actions.push((from, FaultAction::SetLinkScale { machine, factor }));
                    actions.push((
                        until,
                        FaultAction::SetLinkScale {
                            machine,
                            factor: 1.0,
                        },
                    ));
                }
                FaultEvent::TaskStraggle {
                    stage,
                    task,
                    factor,
                } => {
                    straggles.push((stage, task, factor));
                }
                FaultEvent::Partition {
                    ref groups,
                    start,
                    heal,
                } => {
                    // Cut every directed cross-group pair, in sorted pair
                    // order so compiled timelines are a deterministic
                    // function of the plan alone.
                    let mut pairs: Vec<(usize, usize)> = Vec::new();
                    for (gi, g) in groups.iter().enumerate() {
                        for (gj, g2) in groups.iter().enumerate() {
                            if gi == gj {
                                continue;
                            }
                            for &src in g {
                                for &dst in g2 {
                                    pairs.push((src, dst));
                                }
                            }
                        }
                    }
                    pairs.sort_unstable();
                    pairs.dedup();
                    for &(src, dst) in &pairs {
                        actions.push((start, FaultAction::CutPair { src, dst }));
                        if let Some(h) = heal {
                            actions.push((h, FaultAction::HealPair { src, dst }));
                        }
                    }
                }
                FaultEvent::LinkCut {
                    src,
                    dst,
                    start,
                    heal,
                } => {
                    actions.push((start, FaultAction::CutPair { src, dst }));
                    if let Some(h) = heal {
                        actions.push((h, FaultAction::HealPair { src, dst }));
                    }
                }
            }
        }
        // Stable sort keeps same-instant actions in plan order, so compiled
        // timelines are a deterministic function of the plan alone.
        actions.sort_by_key(|&(t, _)| t);
        straggles.sort_by_key(|a| (a.0, a.1));
        straggles.dedup_by_key(|e| (e.0, e.1));
        FaultTimeline {
            actions,
            cursor: 0,
            straggles,
        }
    }
}

/// One atomic state change an executor applies at a scheduled instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Permanently fail a machine.
    Crash {
        /// Index of the machine that fails.
        machine: usize,
    },
    /// Set the service-rate scale of one disk (`1.0` restores healthy).
    SetDiskScale {
        /// Machine owning the disk.
        machine: usize,
        /// Disk index within the machine.
        disk: usize,
        /// New scale factor.
        factor: f64,
    },
    /// Set the bandwidth scale of one machine's NIC (`1.0` restores healthy).
    SetLinkScale {
        /// Machine whose link changes.
        machine: usize,
        /// New scale factor.
        factor: f64,
    },
    /// Cut one directed fabric pair: `src` can no longer send to `dst`.
    CutPair {
        /// Sending machine of the cut direction.
        src: usize,
        /// Receiving machine of the cut direction.
        dst: usize,
    },
    /// Restore one directed fabric pair cut earlier.
    HealPair {
        /// Sending machine of the restored direction.
        src: usize,
        /// Receiving machine of the restored direction.
        dst: usize,
    },
}

/// A compiled, time-ordered fault schedule consumed by an executor main loop.
#[derive(Clone, Debug, Default)]
pub struct FaultTimeline {
    actions: Vec<(SimTime, FaultAction)>,
    cursor: usize,
    straggles: Vec<(usize, usize, f64)>,
}

impl FaultTimeline {
    /// Time of the next unapplied action, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.actions.get(self.cursor).map(|&(t, _)| t)
    }

    /// Pops the next action if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<FaultAction> {
        match self.actions.get(self.cursor) {
            Some(&(t, a)) if t <= now => {
                self.cursor += 1;
                Some(a)
            }
            _ => None,
        }
    }

    /// True when no unapplied actions remain.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.actions.len()
    }

    /// True when the timeline never had any content (empty plan): both no
    /// scheduled actions and no straggle entries.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty() && self.straggles.is_empty()
    }

    /// CPU-work multiplier for the first attempt of `(stage, task)`, if that
    /// task is a designated straggler.
    pub fn straggle_factor(&self, stage: usize, task: usize) -> Option<f64> {
        self.straggles
            .binary_search_by(|e| (e.0, e.1).cmp(&(stage, task)))
            .ok()
            .map(|i| self.straggles[i].2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{ClusterSpec, MachineSpec};

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec::new(n, MachineSpec::m2_4xlarge())
    }

    #[test]
    fn random_is_reproducible() {
        let spec = FaultSpec {
            machines: 8,
            disks_per_machine: 2,
            horizon: SimTime::from_secs(100),
            stages: 2,
            tasks_per_stage: 32,
        };
        let a = FaultPlan::random(7, &spec, 1.5);
        let b = FaultPlan::random(7, &spec, 1.5);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, &spec, 1.5);
        assert_ne!(a, c, "different seeds should give different plans");
        assert!(a.validate(&cluster(8)).is_ok());
    }

    #[test]
    fn straggler_only_plans_are_reproducible_and_pure() {
        let spec = FaultSpec {
            machines: 5,
            disks_per_machine: 2,
            horizon: SimTime::from_secs(100),
            stages: 2,
            tasks_per_stage: 10,
        };
        let a = FaultPlan::random_stragglers(42, &spec, 1.0);
        let b = FaultPlan::random_stragglers(42, &spec, 1.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a
            .events()
            .iter()
            .all(|e| matches!(e, FaultEvent::TaskStraggle { .. })));
        assert!(a.validate(&cluster(5)).is_ok());
        assert!(FaultPlan::random_stragglers(42, &spec, 0.0).is_empty());
    }

    #[test]
    fn zero_intensity_is_empty() {
        let spec = FaultSpec {
            machines: 4,
            disks_per_machine: 2,
            horizon: SimTime::from_secs(100),
            stages: 2,
            tasks_per_stage: 8,
        };
        assert!(FaultPlan::random(1, &spec, 0.0).is_empty());
    }

    #[test]
    fn validate_rejects_bad_events() {
        let c = cluster(2);
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        assert!(FaultPlan::new().crash(5, t1).validate(&c).is_err());
        assert!(FaultPlan::new()
            .crash(0, t1)
            .crash(0, t2)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .degrade_disk(0, 9, 0.5, t0, t1)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .degrade_disk(0, 0, 0.0, t0, t1)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .degrade_disk(0, 0, -1.0, t0, t1)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .degrade_disk(0, 0, 0.5, t1, t1)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .degrade_disk(0, 0, 0.5, t0, t2)
            .degrade_disk(0, 0, 0.5, t1, t2)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .degrade_link(0, f64::NAN, t0, t1)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new().straggle(0, 0, 0.5).validate(&c).is_err());
        assert!(FaultPlan::new()
            .crash(1, t1)
            .degrade_disk(0, 0, 0.5, t0, t1)
            .straggle(0, 3, 4.0)
            .validate(&c)
            .is_ok());
    }

    #[test]
    fn random_partitions_are_reproducible_and_pure() {
        let spec = FaultSpec {
            machines: 5,
            disks_per_machine: 2,
            horizon: SimTime::from_secs(100),
            stages: 2,
            tasks_per_stage: 10,
        };
        let a = FaultPlan::random_partitions(42, &spec, 1.0);
        let b = FaultPlan::random_partitions(42, &spec, 1.0);
        assert_eq!(a, b);
        assert!(a.has_partitions());
        assert!(a
            .events()
            .iter()
            .all(|e| matches!(e, FaultEvent::Partition { .. })));
        assert!(a.validate(&cluster(5)).is_ok());
        assert!(FaultPlan::random_partitions(42, &spec, 0.0).is_empty());
        // Intensity can never isolate the whole cluster.
        let heavy = FaultPlan::random_partitions(7, &spec, 100.0);
        assert!(heavy.validate(&cluster(5)).is_ok());
        // Non-partition plans do not claim to have partitions.
        assert!(!FaultPlan::new()
            .crash(0, SimTime::from_secs(1))
            .has_partitions());
    }

    #[test]
    fn validate_rejects_bad_partitions() {
        let c = cluster(3);
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        let t3 = SimTime::from_secs(3);
        // One group is not a partition.
        assert!(FaultPlan::new()
            .partition(vec![vec![0, 1, 2]], t1, Some(t2))
            .validate(&c)
            .is_err());
        // Empty groups are meaningless.
        assert!(FaultPlan::new()
            .partition(vec![vec![0], vec![]], t1, Some(t2))
            .validate(&c)
            .is_err());
        // Nonexistent machine.
        assert!(FaultPlan::new()
            .partition(vec![vec![0], vec![7]], t1, Some(t2))
            .validate(&c)
            .is_err());
        // A machine cannot sit on both sides of the cut.
        assert!(FaultPlan::new()
            .partition(vec![vec![0, 1], vec![1, 2]], t1, Some(t2))
            .validate(&c)
            .is_err());
        // Empty window.
        assert!(FaultPlan::new()
            .partition(vec![vec![0], vec![1]], t2, Some(t2))
            .validate(&c)
            .is_err());
        // Overlapping partition windows on the same machine.
        assert!(FaultPlan::new()
            .partition(vec![vec![0], vec![1]], t1, Some(t3))
            .partition(vec![vec![0], vec![2]], t2, Some(t3))
            .validate(&c)
            .is_err());
        // A permanent cut overlaps everything after its start.
        assert!(FaultPlan::new()
            .partition(vec![vec![0], vec![1]], t1, None)
            .partition(vec![vec![0], vec![2]], t2, Some(t3))
            .validate(&c)
            .is_err());
        // Crash inside a partition window of the same machine — in either
        // event order.
        assert!(FaultPlan::new()
            .partition(vec![vec![0], vec![1]], t1, Some(t3))
            .crash(0, t2)
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .crash(0, t2)
            .partition(vec![vec![0], vec![1]], t1, Some(t3))
            .validate(&c)
            .is_err());
        // Self-cut and bad endpoints for asymmetric cuts.
        assert!(FaultPlan::new()
            .cut_link(1, 1, t1, Some(t2))
            .validate(&c)
            .is_err());
        assert!(FaultPlan::new()
            .cut_link(0, 9, t1, Some(t2))
            .validate(&c)
            .is_err());
        // Overlapping cut windows touching the same machine.
        assert!(FaultPlan::new()
            .cut_link(0, 1, t1, Some(t3))
            .cut_link(1, 2, t2, Some(t3))
            .validate(&c)
            .is_err());
        // Disjoint-in-time windows on the same machine are fine, as is a
        // crash after the heal.
        assert!(FaultPlan::new()
            .partition(vec![vec![0], vec![1, 2]], t1, Some(t2))
            .cut_link(0, 1, t2, Some(t3))
            .crash(0, t3)
            .validate(&c)
            .is_ok());
    }

    #[test]
    fn compile_lowers_partitions_to_sorted_pair_cuts() {
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        let mut tl = FaultPlan::new()
            .partition(vec![vec![1], vec![0, 2]], t1, Some(t2))
            .compile();
        assert!(!tl.is_empty());
        // Cuts fire in sorted (src, dst) order: both directions of both
        // cross-group pairs.
        let mut cuts = Vec::new();
        while let Some(a) = tl.pop_due(t1) {
            cuts.push(a);
        }
        assert_eq!(
            cuts,
            vec![
                FaultAction::CutPair { src: 0, dst: 1 },
                FaultAction::CutPair { src: 1, dst: 0 },
                FaultAction::CutPair { src: 1, dst: 2 },
                FaultAction::CutPair { src: 2, dst: 1 },
            ]
        );
        let mut heals = Vec::new();
        while let Some(a) = tl.pop_due(t2) {
            heals.push(a);
        }
        assert_eq!(
            heals,
            vec![
                FaultAction::HealPair { src: 0, dst: 1 },
                FaultAction::HealPair { src: 1, dst: 0 },
                FaultAction::HealPair { src: 1, dst: 2 },
                FaultAction::HealPair { src: 2, dst: 1 },
            ]
        );
        assert!(tl.exhausted());
        // An asymmetric cut lowers to one direction only, and a permanent
        // one schedules no heal.
        let mut tl = FaultPlan::new().cut_link(2, 0, t1, None).compile();
        assert_eq!(
            tl.pop_due(t1),
            Some(FaultAction::CutPair { src: 2, dst: 0 })
        );
        assert!(tl.exhausted());
    }

    #[test]
    fn compile_orders_actions_and_restores_scale() {
        let plan = FaultPlan::new()
            .degrade_disk(0, 1, 0.25, SimTime::from_secs(2), SimTime::from_secs(5))
            .crash(1, SimTime::from_secs(3))
            .straggle(1, 4, 3.0);
        let mut tl = plan.compile();
        assert_eq!(tl.straggle_factor(1, 4), Some(3.0));
        assert_eq!(tl.straggle_factor(0, 4), None);
        assert_eq!(tl.next_time(), Some(SimTime::from_secs(2)));
        assert_eq!(
            tl.pop_due(SimTime::from_secs(2)),
            Some(FaultAction::SetDiskScale {
                machine: 0,
                disk: 1,
                factor: 0.25
            })
        );
        assert_eq!(tl.pop_due(SimTime::from_secs(2)), None);
        assert_eq!(
            tl.pop_due(SimTime::from_secs(3)),
            Some(FaultAction::Crash { machine: 1 })
        );
        assert_eq!(
            tl.pop_due(SimTime::from_secs(10)),
            Some(FaultAction::SetDiskScale {
                machine: 0,
                disk: 1,
                factor: 1.0
            })
        );
        assert!(tl.exhausted());
        assert!(!tl.is_empty());
        assert!(FaultPlan::new().compile().is_empty());
    }
}
