//! Coupled fluid allocation of machine resources among task streams.
//!
//! A **stream** is one phase of one task: a bundle of resource demands that
//! drain *in lockstep*. A fine-grained-pipelined Spark task phase that reads
//! 128 MB from disk while spending 2 CPU-seconds deserializing is a stream
//! with demand `{disk: 128 MB, cpu: 2 s}`: at every instant it consumes disk
//! bandwidth and CPU in the ratio 64 MB : 1 s, and its progress rate is set by
//! whichever resource is more contended. A monotask is simply a stream with a
//! single non-zero demand — so one allocator faithfully runs both the baseline
//! and the monotasks executor, and any modelling bias cancels out of the
//! comparison.
//!
//! Rates are assigned by progressive filling: repeatedly give every unfrozen
//! stream the fair share of each resource it uses, freeze the slowest stream
//! at its resulting rate, release what it does not use, and repeat. Each
//! stream therefore gets at least the equal share of its bottleneck resource,
//! and surplus from bottlenecked streams is redistributed — the fluid analogue
//! of OS round-robin plus work conservation.
//!
//! HDD aggregate throughput *falls* with the number of concurrent streams
//! (seeks) and SSD throughput *rises* up to the device queue depth, via
//! [`crate::hw::DiskSpec::throughput_at`]. This is how the allocator reproduces §5.4:
//! eight pipelined Spark tasks interleaving on two HDDs lose ~2× aggregate
//! disk bandwidth, while the monotasks disk scheduler (one stream per disk)
//! keeps sequential speed.

use std::collections::BTreeMap;

use simcore::time::{SimDuration, SimTime};

use crate::hw::MachineSpec;

/// Remaining progress below this fraction counts as complete.
const PROGRESS_EPSILON: f64 = 1e-9;

/// Identifies a machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MachineId(pub usize);

/// Identifies a disk within one machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DiskId(pub usize);

/// Identifies a stream within one machine's allocator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub u64);

/// Resource demands of one stream, drained proportionally.
///
/// Work units: CPU in core-seconds, disk and network in bytes. Disk demand
/// distinguishes reads from writes because HDD contention does (see
/// [`crate::hw::DiskSpec`]): parallel sequential readers degrade mildly,
/// interleaved writers harshly.
#[derive(Clone, Debug, Default)]
pub struct StreamDemand {
    /// CPU work in core-seconds. A stream is single-threaded: it can use at
    /// most one core regardless of contention (Spark tasks have one thread;
    /// a compute monotask runs on one core).
    pub cpu: f64,
    /// Bytes read from each local disk, indexed by [`DiskId`].
    pub disk_read: Vec<f64>,
    /// Bytes written to each local disk, indexed by [`DiskId`].
    pub disk_write: Vec<f64>,
    /// Bytes received over the NIC.
    pub rx: f64,
}

impl StreamDemand {
    /// An all-zero demand for a machine with `n_disks` disks.
    pub fn zero(n_disks: usize) -> StreamDemand {
        StreamDemand {
            cpu: 0.0,
            disk_read: vec![0.0; n_disks],
            disk_write: vec![0.0; n_disks],
            rx: 0.0,
        }
    }

    /// A pure-CPU demand (a compute monotask).
    pub fn cpu_only(work: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.cpu = work;
        d
    }

    /// A pure-disk-read demand (a disk read monotask).
    pub fn disk_read_only(disk: DiskId, bytes: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.disk_read[disk.0] = bytes;
        d
    }

    /// A pure-disk-write demand (a disk write monotask or a cache flush).
    pub fn disk_write_only(disk: DiskId, bytes: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.disk_write[disk.0] = bytes;
        d
    }

    /// A pure-network-receive demand (a network monotask).
    pub fn rx_only(bytes: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.rx = bytes;
        d
    }

    /// Bytes moved through disk `i` in either direction.
    pub fn disk_total(&self, i: usize) -> f64 {
        self.disk_read[i] + self.disk_write[i]
    }

    /// Total demand across all resources (used to reject empty streams).
    fn total(&self) -> f64 {
        self.cpu
            + self.disk_read.iter().sum::<f64>()
            + self.disk_write.iter().sum::<f64>()
            + self.rx
    }
}

#[derive(Clone, Debug)]
struct Stream {
    demand: StreamDemand,
    /// Fraction of the phase still to run, in `[0, 1]`.
    remaining: f64,
    /// Progress rate in fractions per second (set by `reallocate`).
    rate: f64,
}

/// One machine's fluid resource allocator. See the module docs for the model.
#[derive(Debug)]
pub struct FluidMachine {
    spec: MachineSpec,
    streams: BTreeMap<StreamId, Stream>,
    last_advance: SimTime,
    epoch: u64,
}

impl FluidMachine {
    /// Creates an idle machine with the given hardware.
    pub fn new(spec: MachineSpec) -> FluidMachine {
        FluidMachine {
            spec,
            streams: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            epoch: 0,
        }
    }

    /// The machine's hardware spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Stale-event guard; bumped on every stream-set mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of active streams.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Whether `id` is currently active.
    pub fn contains(&self, id: StreamId) -> bool {
        self.streams.contains_key(&id)
    }

    /// Drains all streams at their current rates up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt == 0.0 {
            return;
        }
        for s in self.streams.values_mut() {
            s.remaining = (s.remaining - s.rate * dt).max(0.0);
        }
    }

    /// Adds a stream; returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics on duplicate id, wrong disk-vector length, or a demand that is
    /// empty or non-finite.
    pub fn insert(&mut self, now: SimTime, id: StreamId, demand: StreamDemand) -> u64 {
        assert!(
            demand.disk_read.len() == self.spec.disks.len()
                && demand.disk_write.len() == self.spec.disks.len(),
            "disk demand vector length mismatch"
        );
        let total = demand.total();
        assert!(
            total.is_finite() && total > 0.0,
            "stream demand must be positive: {demand:?}"
        );
        assert!(
            demand.cpu >= 0.0
                && demand.rx >= 0.0
                && demand.disk_read.iter().all(|b| *b >= 0.0)
                && demand.disk_write.iter().all(|b| *b >= 0.0),
            "negative demand component: {demand:?}"
        );
        self.advance(now);
        let prev = self.streams.insert(
            id,
            Stream {
                demand,
                remaining: 1.0,
                rate: 0.0,
            },
        );
        assert!(prev.is_none(), "stream {id:?} inserted twice");
        self.reallocate();
        self.epoch += 1;
        self.epoch
    }

    /// Removes a stream regardless of progress; returns the remaining
    /// fraction if it was active.
    pub fn remove(&mut self, now: SimTime, id: StreamId) -> Option<f64> {
        self.advance(now);
        let removed = self.streams.remove(&id).map(|s| s.remaining);
        if removed.is_some() {
            self.reallocate();
            self.epoch += 1;
        }
        removed
    }

    /// Removes and returns all streams whose phase has fully drained.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<StreamId> {
        self.advance(now);
        let done: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|(_, s)| s.remaining <= PROGRESS_EPSILON)
            .map(|(id, _)| *id)
            .collect();
        for id in &done {
            self.streams.remove(id);
        }
        if !done.is_empty() {
            self.reallocate();
            self.epoch += 1;
        }
        done
    }

    /// Instant of the next stream completion if the set does not change.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        debug_assert_eq!(self.last_advance, now);
        let mut best: Option<f64> = None;
        for s in self.streams.values() {
            if s.remaining <= PROGRESS_EPSILON {
                return Some(now);
            }
            debug_assert!(s.rate > 0.0, "active stream with zero rate");
            let dt = s.remaining / s.rate;
            best = Some(match best {
                Some(b) => b.min(dt),
                None => dt,
            });
        }
        best.map(|dt| now + SimDuration::from_secs_f64(dt).max(SimDuration::NANO))
    }

    /// Current progress rate of `id` in fractions/second, if active.
    pub fn rate(&self, id: StreamId) -> Option<f64> {
        self.streams.get(&id).map(|s| s.rate)
    }

    /// Number of resource "columns": CPU, each disk, NIC receive.
    fn n_resources(&self) -> usize {
        2 + self.spec.disks.len()
    }

    /// Capacity vector given the current stream population (HDD/SSD
    /// efficiency depends on how many readers and writers touch each disk).
    fn capacities(&self) -> Vec<f64> {
        let nd = self.spec.disks.len();
        let mut caps = Vec::with_capacity(self.n_resources());
        caps.push(self.spec.cores as f64);
        for (i, d) in self.spec.disks.iter().enumerate() {
            let k_r = self
                .streams
                .values()
                .filter(|s| s.demand.disk_read[i] > 0.0)
                .count();
            let k_w = self
                .streams
                .values()
                .filter(|s| s.demand.disk_write[i] > 0.0)
                .count();
            caps.push(if k_r + k_w == 0 {
                d.throughput
            } else {
                d.throughput_at_rw(k_r, k_w)
            });
        }
        caps.push(self.spec.nic);
        debug_assert_eq!(caps.len(), 2 + nd);
        caps
    }

    /// Demand of `s` on resource column `r`.
    fn demand_at(s: &Stream, r: usize, nd: usize) -> f64 {
        if r == 0 {
            s.demand.cpu
        } else if r <= nd {
            s.demand.disk_total(r - 1)
        } else {
            s.demand.rx
        }
    }

    /// Recomputes stream rates by progressive filling (module docs).
    ///
    /// Each round computes every unfrozen stream's tentative rate from the
    /// fair shares of the capacity still unassigned, then freezes:
    ///
    /// 1. streams running at their own single-thread cap (they cannot go
    ///    faster, and freezing them releases their unused shares), else
    /// 2. streams whose rate is set by a *saturated* resource (one whose
    ///    remaining capacity the tentative rates fully consume), else
    /// 3. the single slowest stream (a deterministic fallback that guarantees
    ///    termination; its rate is already max-min feasible).
    fn reallocate(&mut self) {
        let nd = self.spec.disks.len();
        let nr = self.n_resources();
        let mut cap_left = self.capacities();
        let mut unfrozen: Vec<StreamId> = self.streams.keys().copied().collect();
        while !unfrozen.is_empty() {
            // Count unfrozen claimants per resource.
            let mut counts = vec![0usize; nr];
            for id in &unfrozen {
                let s = &self.streams[id];
                for (r, c) in counts.iter_mut().enumerate() {
                    if Self::demand_at(s, r, nd) > 0.0 {
                        *c += 1;
                    }
                }
            }
            let share = |r: usize, counts: &[usize], cap_left: &[f64]| -> f64 {
                (cap_left[r] / counts[r] as f64).max(0.0)
            };
            // Tentative rate for each unfrozen stream from fair shares.
            let mut tentative: Vec<(StreamId, f64, bool)> = Vec::with_capacity(unfrozen.len());
            for id in &unfrozen {
                let s = &self.streams[id];
                let mut rate = f64::INFINITY;
                for r in 0..nr {
                    let d = Self::demand_at(s, r, nd);
                    if d > 0.0 {
                        rate = rate.min(share(r, &counts, &cap_left) / d);
                    }
                }
                // Single-threaded cap: at most one core of CPU.
                let mut cap_bound = false;
                if s.demand.cpu > 0.0 {
                    let cap = 1.0 / s.demand.cpu;
                    if cap <= rate {
                        rate = cap;
                        cap_bound = true;
                    }
                }
                debug_assert!(rate.is_finite());
                tentative.push((*id, rate, cap_bound));
            }
            // Which resources would the tentative rates saturate?
            let mut usage = vec![0.0f64; nr];
            for (id, rate, _) in &tentative {
                let s = &self.streams[id];
                for (r, u) in usage.iter_mut().enumerate() {
                    *u += rate * Self::demand_at(s, r, nd);
                }
            }
            let saturated: Vec<bool> = (0..nr)
                .map(|r| counts[r] > 0 && usage[r] >= cap_left[r] * (1.0 - 1e-9))
                .collect();
            // Select the streams to freeze this round.
            let mut to_freeze: Vec<(StreamId, f64)> = tentative
                .iter()
                .filter(|(id, rate, cap_bound)| {
                    if *cap_bound {
                        return true;
                    }
                    let s = &self.streams[id];
                    (0..nr).any(|r| {
                        saturated[r] && {
                            let d = Self::demand_at(s, r, nd);
                            d > 0.0 && *rate >= share(r, &counts, &cap_left) / d * (1.0 - 1e-9)
                        }
                    })
                })
                .map(|(id, rate, _)| (*id, *rate))
                .collect();
            if to_freeze.is_empty() {
                // Fallback: freeze the single slowest stream.
                let slowest = tentative
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN rate").then(a.0.cmp(&b.0)))
                    .expect("unfrozen set non-empty");
                to_freeze.push((slowest.0, slowest.1));
            }
            for (id, rate) in to_freeze {
                let s = self.streams.get_mut(&id).expect("stream vanished");
                s.rate = rate;
                for (r, cap) in cap_left.iter_mut().enumerate() {
                    *cap = (*cap - rate * Self::demand_at(s, r, nd)).max(0.0);
                }
                unfrozen.retain(|u| *u != id);
            }
        }
    }

    /// Instantaneous delivered rate on resource column `r` (work units/s).
    fn usage_at(&self, r: usize) -> f64 {
        let nd = self.spec.disks.len();
        self.streams
            .values()
            .map(|s| s.rate * Self::demand_at(s, r, nd))
            .sum()
    }

    /// CPU busy fraction: delivered core-seconds per second over cores.
    pub fn cpu_busy(&self) -> f64 {
        (self.usage_at(0) / self.spec.cores as f64).min(1.0)
    }

    /// Disk busy fraction: delivered bytes/s over what the device can deliver
    /// at its current concurrency (a fully seek-bound disk reports 1.0).
    pub fn disk_busy(&self, disk: DiskId) -> f64 {
        let caps = self.capacities();
        (self.usage_at(1 + disk.0) / caps[1 + disk.0]).min(1.0)
    }

    /// NIC receive busy fraction.
    pub fn rx_busy(&self) -> f64 {
        (self.usage_at(1 + self.spec.disks.len()) / self.spec.nic).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{DiskSpec, MIB};

    fn machine(cores: u32, disks: usize) -> FluidMachine {
        FluidMachine::new(MachineSpec {
            cores,
            memory: 4.0 * 1024.0 * MIB,
            disks: vec![DiskSpec::hdd(); disks],
            nic: 125.0 * MIB,
        })
    }

    fn t(secs: f64) -> SimTime {
        SimTime(SimDuration::from_secs_f64(secs).0)
    }

    #[test]
    fn single_cpu_stream_runs_on_one_core() {
        let mut m = machine(8, 1);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(4.0, 1));
        // 4 core-seconds on one thread: 4 seconds, not 0.5.
        assert_eq!(m.next_completion(SimTime::ZERO), Some(t(4.0)));
        assert!((m.cpu_busy() - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_stream_bound_by_slowest_resource() {
        let mut m = machine(8, 1);
        let hdd = DiskSpec::hdd().throughput;
        // Read one disk-second of bytes while using 0.1 CPU-seconds:
        // disk-bound, finishes in ~1 s with disk fully busy.
        let mut d = StreamDemand::disk_read_only(DiskId(0), hdd, 1);
        d.cpu = 0.1;
        m.insert(SimTime::ZERO, StreamId(1), d);
        let done = m.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((m.disk_busy(DiskId(0)) - 1.0).abs() < 1e-9);
        // CPU used in proportion: 0.1 cores.
        assert!((m.cpu_busy() - 0.1 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn hdd_interleaving_slows_aggregate() {
        let mut m = machine(8, 1);
        let hdd = DiskSpec::hdd();
        // Two streams each reading 1 sequential-second of bytes.
        for i in 0..2 {
            m.insert(
                SimTime::ZERO,
                StreamId(i),
                StreamDemand::disk_read_only(DiskId(0), hdd.throughput, 1),
            );
        }
        // Two readers → aggregate = 1/(1+read_factor) of sequential; both
        // finish at 2·(1+read_factor) seconds.
        let factor = DiskSpec::hdd().read_seek_factor;
        let done = m.next_completion(SimTime::ZERO).unwrap();
        assert!(
            (done.as_secs_f64() - 2.0 * (1.0 + factor)).abs() < 1e-6,
            "{done:?}"
        );
        // The device is flat-out (seek-bound): busy fraction 1.
        assert!((m.disk_busy(DiskId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn surplus_from_bottlenecked_stream_is_redistributed() {
        let mut m = machine(1, 1);
        let hdd = DiskSpec::hdd();
        // Stream A: CPU-bound (1 core-second + tiny disk).
        let mut a = StreamDemand::cpu_only(1.0, 1);
        a.disk_read[0] = 0.01 * hdd.throughput_at(2);
        // Stream B: disk-only.
        let b = StreamDemand::disk_read_only(DiskId(0), hdd.throughput_at(2), 1);
        m.insert(SimTime::ZERO, StreamId(1), a);
        m.insert(SimTime::ZERO, StreamId(2), b);
        // A is frozen first (CPU cap), using 1% of disk; B should get the
        // remaining 99%, not just the 50% equal share.
        let rb = m.rate(StreamId(2)).unwrap();
        assert!(rb > 0.95, "B rate {rb} — surplus not redistributed");
    }

    #[test]
    fn cpu_shared_fairly_beyond_cores() {
        let mut m = machine(2, 1);
        for i in 0..4 {
            m.insert(SimTime::ZERO, StreamId(i), StreamDemand::cpu_only(1.0, 1));
        }
        // 4 single-threaded streams on 2 cores: each at 0.5 cores.
        for i in 0..4 {
            assert!((m.rate(StreamId(i)).unwrap() - 0.5).abs() < 1e-9);
        }
        assert!((m.cpu_busy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn completion_frees_capacity() {
        let mut m = machine(1, 1);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(1.0, 1));
        m.insert(SimTime::ZERO, StreamId(2), StreamDemand::cpu_only(2.0, 1));
        // Equal shares: stream 1 done at t=2.
        let c1 = m.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c1, t(2.0));
        m.advance(c1);
        assert_eq!(m.take_completed(c1), vec![StreamId(1)]);
        // Stream 2 has 1 core-second left at full speed: done at t=3.
        assert_eq!(m.next_completion(c1), Some(t(3.0)));
    }

    #[test]
    fn rx_is_a_first_class_resource() {
        let mut m = machine(8, 1);
        let nic = 125.0 * MIB;
        m.insert(
            SimTime::ZERO,
            StreamId(1),
            StreamDemand::rx_only(nic * 2.0, 1),
        );
        assert_eq!(m.next_completion(SimTime::ZERO), Some(t(2.0)));
        assert!((m.rx_busy() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn empty_demand_rejected() {
        let mut m = machine(1, 1);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(0.0, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_disk_vector_rejected() {
        let mut m = machine(1, 2);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(1.0, 1));
    }
}
