//! Coupled fluid allocation of machine resources among task streams.
//!
//! A **stream** is one phase of one task: a bundle of resource demands that
//! drain *in lockstep*. A fine-grained-pipelined Spark task phase that reads
//! 128 MB from disk while spending 2 CPU-seconds deserializing is a stream
//! with demand `{disk: 128 MB, cpu: 2 s}`: at every instant it consumes disk
//! bandwidth and CPU in the ratio 64 MB : 1 s, and its progress rate is set by
//! whichever resource is more contended. A monotask is simply a stream with a
//! single non-zero demand — so one allocator faithfully runs both the baseline
//! and the monotasks executor, and any modelling bias cancels out of the
//! comparison.
//!
//! Rates are assigned by progressive filling: repeatedly give every unfrozen
//! stream the fair share of each resource it uses, freeze the slowest stream
//! at its resulting rate, release what it does not use, and repeat. Each
//! stream therefore gets at least the equal share of its bottleneck resource,
//! and surplus from bottlenecked streams is redistributed — the fluid analogue
//! of OS round-robin plus work conservation.
//!
//! HDD aggregate throughput *falls* with the number of concurrent streams
//! (seeks) and SSD throughput *rises* up to the device queue depth, via
//! [`crate::hw::DiskSpec::throughput_at`]. This is how the allocator reproduces §5.4:
//! eight pipelined Spark tasks interleaving on two HDDs lose ~2× aggregate
//! disk bandwidth, while the monotasks disk scheduler (one stream per disk)
//! keeps sequential speed.
//!
//! # Incremental implementation
//!
//! Executors touch every machine at every simulation step, so the per-step
//! cost of one machine must not scale with its stream count:
//!
//! * **Sparse demands and resource counts.** Each stream keeps a sparse
//!   `(resource, demand)` list, and the allocator maintains per-disk
//!   reader/writer counts, so reallocation rounds and the concurrency-aware
//!   capacity vector cost O(non-zero demands), not O(streams × resources).
//! * **Deferred (virtual-time) drain.** [`FluidMachine::advance`] only moves
//!   the clock; progress fractions are materialised lazily at the next
//!   mutation. Between reallocations rates are constant, so the drain is
//!   exact, and a quiescent machine costs O(1) per step.
//! * **A completion-time min-heap** with generation-based lazy invalidation
//!   makes [`FluidMachine::next_completion`]/[`FluidMachine::take_completed`]
//!   O(log streams).
//! * **Batched mutations** ([`FluidMachine::begin_update`] /
//!   [`FluidMachine::commit`]) collapse a wave of stream changes at one
//!   instant into a single reallocation.
//! * **Per-resource used-rate accumulators** make [`FluidMachine::cpu_busy`],
//!   [`FluidMachine::disk_busy`] and [`FluidMachine::rx_busy`] O(1) reads.
//!
//! The original quadratic algorithm is kept verbatim as
//! [`FluidMachine::reference_reallocate`]; with the `slowcheck` cargo feature
//! every reallocation is `debug_assert!`-checked against it.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::Instant;

use simcore::stats::SimStats;
use simcore::time::{SimDuration, SimTime};

use crate::hw::MachineSpec;

/// Remaining progress below this fraction counts as complete.
const PROGRESS_EPSILON: f64 = 1e-9;

/// Identifies a machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MachineId(pub usize);

/// Identifies a disk within one machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DiskId(pub usize);

/// Identifies a stream within one machine's allocator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(pub u64);

/// Resource demands of one stream, drained proportionally.
///
/// Work units: CPU in core-seconds, disk and network in bytes. Disk demand
/// distinguishes reads from writes because HDD contention does (see
/// [`crate::hw::DiskSpec`]): parallel sequential readers degrade mildly,
/// interleaved writers harshly.
#[derive(Clone, Debug, Default)]
pub struct StreamDemand {
    /// CPU work in core-seconds. A stream is single-threaded: it can use at
    /// most one core regardless of contention (Spark tasks have one thread;
    /// a compute monotask runs on one core).
    pub cpu: f64,
    /// Bytes read from each local disk, indexed by [`DiskId`].
    pub disk_read: Vec<f64>,
    /// Bytes written to each local disk, indexed by [`DiskId`].
    pub disk_write: Vec<f64>,
    /// Bytes received over the NIC.
    pub rx: f64,
}

impl StreamDemand {
    /// An all-zero demand for a machine with `n_disks` disks.
    pub fn zero(n_disks: usize) -> StreamDemand {
        StreamDemand {
            cpu: 0.0,
            disk_read: vec![0.0; n_disks],
            disk_write: vec![0.0; n_disks],
            rx: 0.0,
        }
    }

    /// A pure-CPU demand (a compute monotask).
    pub fn cpu_only(work: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.cpu = work;
        d
    }

    /// A pure-disk-read demand (a disk read monotask).
    pub fn disk_read_only(disk: DiskId, bytes: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.disk_read[disk.0] = bytes;
        d
    }

    /// A pure-disk-write demand (a disk write monotask or a cache flush).
    pub fn disk_write_only(disk: DiskId, bytes: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.disk_write[disk.0] = bytes;
        d
    }

    /// A pure-network-receive demand (a network monotask).
    pub fn rx_only(bytes: f64, n_disks: usize) -> StreamDemand {
        let mut d = StreamDemand::zero(n_disks);
        d.rx = bytes;
        d
    }

    /// Bytes moved through disk `i` in either direction.
    pub fn disk_total(&self, i: usize) -> f64 {
        self.disk_read[i] + self.disk_write[i]
    }

    /// Total demand across all resources (used to reject empty streams).
    fn total(&self) -> f64 {
        self.cpu
            + self.disk_read.iter().sum::<f64>()
            + self.disk_write.iter().sum::<f64>()
            + self.rx
    }

    /// Sparse `(resource column, demand)` pairs in ascending column order.
    fn sparse(&self) -> Vec<(usize, f64)> {
        let nd = self.disk_read.len();
        let mut v = Vec::with_capacity(2);
        if self.cpu > 0.0 {
            v.push((0, self.cpu));
        }
        for i in 0..nd {
            let d = self.disk_total(i);
            if d > 0.0 {
                v.push((1 + i, d));
            }
        }
        if self.rx > 0.0 {
            v.push((1 + nd, self.rx));
        }
        v
    }
}

#[derive(Clone, Debug)]
struct Stream {
    demand: StreamDemand,
    /// Non-zero `(resource column, demand)` pairs of `demand`.
    sparse: Vec<(usize, f64)>,
    /// Fraction of the phase still to run as of the machine's `synced`
    /// instant, in `[0, 1]` (drain is materialised lazily).
    remaining: f64,
    /// Progress rate in fractions per second (set by `reallocate`).
    rate: f64,
    /// Generation of this stream's live heap entry; 0 means never scheduled.
    gen: u64,
    /// Completion instant of the live heap entry (valid when `gen != 0`).
    deadline: SimTime,
    /// Reallocation round stamp; equals the machine's `freeze_stamp` while
    /// this stream's rate is frozen during the current reallocation.
    frozen_at: u64,
}

/// One machine's fluid resource allocator. See the module docs for the model.
#[derive(Debug)]
pub struct FluidMachine {
    spec: MachineSpec,
    streams: BTreeMap<StreamId, Stream>,
    /// Streams currently reading / writing each disk (drives the
    /// concurrency-dependent capacity without scanning streams).
    disk_readers: Vec<usize>,
    disk_writers: Vec<usize>,
    /// Fault-injection service-rate multiplier per resource column (1.0 =
    /// healthy). Multiplying by exactly 1.0 is a bit-exact no-op, so a run
    /// without degradations is unchanged.
    scale: Vec<f64>,
    /// Capacity vector as of the last reallocation.
    caps: Vec<f64>,
    /// Delivered rate per resource column as of the last reallocation.
    res_used: Vec<f64>,
    /// Min-heap of (completion time, stream, generation); entries whose
    /// generation no longer matches the stream's are stale and skipped lazily.
    heap: BinaryHeap<Reverse<(SimTime, StreamId, u64)>>,
    gen_counter: u64,
    freeze_stamp: u64,
    /// Clock position; progress fractions are accurate as of `synced` only.
    last_advance: SimTime,
    synced: SimTime,
    epoch: u64,
    /// Open `begin_update` scopes; mutations defer reallocation while > 0.
    batch_depth: u32,
    /// A mutation happened inside the open batch.
    dirty: bool,
    reallocs: u64,
    alloc_nanos: u64,
    drain_nanos: u64,
    completion_nanos: u64,
}

impl FluidMachine {
    /// Creates an idle machine with the given hardware.
    pub fn new(spec: MachineSpec) -> FluidMachine {
        let nd = spec.disks.len();
        let nr = 2 + nd;
        let mut m = FluidMachine {
            spec,
            streams: BTreeMap::new(),
            disk_readers: vec![0; nd],
            disk_writers: vec![0; nd],
            scale: vec![1.0; nr],
            caps: vec![0.0; nr],
            res_used: vec![0.0; nr],
            heap: BinaryHeap::new(),
            gen_counter: 0,
            freeze_stamp: 0,
            last_advance: SimTime::ZERO,
            synced: SimTime::ZERO,
            epoch: 0,
            batch_depth: 0,
            dirty: false,
            reallocs: 0,
            alloc_nanos: 0,
            drain_nanos: 0,
            completion_nanos: 0,
        };
        m.caps = m.capacities();
        m
    }

    /// The machine's hardware spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Stale-event guard; bumped on every stream-set mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of active streams.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Whether `id` is currently active.
    pub fn contains(&self, id: StreamId) -> bool {
        self.streams.contains_key(&id)
    }

    /// Control-plane cost counters for this machine.
    pub fn stats(&self) -> SimStats {
        SimStats {
            reallocs: self.reallocs,
            alloc_nanos: self.alloc_nanos,
            drain_nanos: self.drain_nanos,
            completion_nanos: self.completion_nanos,
            ..SimStats::default()
        }
    }

    /// Moves the clock to `now`. Stream progress is drained lazily: rates are
    /// constant between reallocations, so the exact drain can be (and is)
    /// applied at the next mutation instead of on every call. O(1).
    pub fn advance(&mut self, now: SimTime) {
        // `since` panics if time runs backwards, preserving the old contract.
        let dt = now.since(self.last_advance);
        self.last_advance = now;
        debug_assert!(
            !(dt > SimDuration::ZERO && self.batch_depth > 0 && self.dirty),
            "time advanced inside an open batch with pending mutations"
        );
    }

    /// Applies the pending lazy drain, making every `remaining` accurate as
    /// of `last_advance`.
    fn materialize(&mut self) {
        let dt = self.last_advance.since(self.synced).as_secs_f64();
        self.synced = self.last_advance;
        if dt == 0.0 {
            return;
        }
        for s in self.streams.values_mut() {
            s.remaining = (s.remaining - s.rate * dt).max(0.0);
        }
    }

    /// `remaining` of one stream as of `last_advance`, without materialising.
    fn remaining_now(&self, s: &Stream) -> f64 {
        let dt = self.last_advance.since(self.synced).as_secs_f64();
        (s.remaining - s.rate * dt).max(0.0)
    }

    /// Opens a batched-update scope: mutations (insert / remove /
    /// take_completed) made before the matching [`FluidMachine::commit`]
    /// defer their reallocation, so a wave of changes at one instant costs a
    /// single recomputation. Scopes nest; only the outermost commit
    /// reallocates. All mutations inside a batch must happen at the same
    /// instant (time must not advance until commit).
    pub fn begin_update(&mut self) {
        self.batch_depth += 1;
    }

    /// Closes a [`FluidMachine::begin_update`] scope, reallocating once if
    /// any mutation happened inside it. Returns the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn commit(&mut self, now: SimTime) -> u64 {
        assert!(self.batch_depth > 0, "commit without begin_update");
        self.batch_depth -= 1;
        if self.batch_depth == 0 && self.dirty {
            self.advance(now);
            self.dirty = false;
            self.reallocate();
        }
        self.epoch
    }

    /// Reallocates now, or defers to the enclosing batch's commit.
    fn after_mutation(&mut self) {
        if self.batch_depth > 0 {
            self.dirty = true;
        } else {
            self.reallocate();
        }
        self.epoch += 1;
    }

    /// Adds a stream; returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics on duplicate id, wrong disk-vector length, or a demand that is
    /// empty or non-finite.
    pub fn insert(&mut self, now: SimTime, id: StreamId, demand: StreamDemand) -> u64 {
        assert!(
            demand.disk_read.len() == self.spec.disks.len()
                && demand.disk_write.len() == self.spec.disks.len(),
            "disk demand vector length mismatch"
        );
        let total = demand.total();
        assert!(
            total.is_finite() && total > 0.0,
            "stream demand must be positive: {demand:?}"
        );
        assert!(
            demand.cpu >= 0.0
                && demand.rx >= 0.0
                && demand.disk_read.iter().all(|b| *b >= 0.0)
                && demand.disk_write.iter().all(|b| *b >= 0.0),
            "negative demand component: {demand:?}"
        );
        self.advance(now);
        for i in 0..self.spec.disks.len() {
            if demand.disk_read[i] > 0.0 {
                self.disk_readers[i] += 1;
            }
            if demand.disk_write[i] > 0.0 {
                self.disk_writers[i] += 1;
            }
        }
        let sparse = demand.sparse();
        let prev = self.streams.insert(
            id,
            Stream {
                demand,
                sparse,
                remaining: 1.0,
                rate: 0.0,
                gen: 0,
                deadline: SimTime::ZERO,
                frozen_at: 0,
            },
        );
        assert!(prev.is_none(), "stream {id:?} inserted twice");
        self.after_mutation();
        self.epoch
    }

    /// Drops a (just removed) stream's contribution to the per-disk
    /// reader/writer counts.
    fn detach(&mut self, s: &Stream) {
        for i in 0..self.spec.disks.len() {
            if s.demand.disk_read[i] > 0.0 {
                self.disk_readers[i] -= 1;
            }
            if s.demand.disk_write[i] > 0.0 {
                self.disk_writers[i] -= 1;
            }
        }
    }

    /// Removes a stream regardless of progress; returns the remaining
    /// fraction if it was active.
    ///
    /// Only the removed stream's lazy drain is materialized (O(1)); the
    /// survivors are drained by the reallocation this removal triggers, at
    /// the same instant and the same rates, so the result is identical to an
    /// eager full drain.
    pub fn remove(&mut self, now: SimTime, id: StreamId) -> Option<f64> {
        self.advance(now);
        let remaining = self.streams.get(&id).map(|s| self.remaining_now(s))?;
        let s = self.streams.remove(&id).expect("stream present");
        self.detach(&s);
        self.after_mutation();
        Some(remaining)
    }

    /// Removes and returns all streams whose phase has fully drained, in
    /// ascending id order. Equivalent to
    /// [`FluidMachine::take_completed_into`] with a fresh buffer.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<StreamId> {
        let mut done = Vec::new();
        self.take_completed_into(now, &mut done);
        done
    }

    /// Removes all streams whose phase has fully drained, appending their
    /// ids to `done` (cleared first) in ascending id order. O(1) when
    /// nothing is due — the speculative-polling fast path allocates nothing.
    ///
    /// Completed streams are dropped without a full drain pass: survivors
    /// are materialized by the reallocation the wave triggers, at the same
    /// instant and rates, so the outcome matches the eager version exactly.
    pub fn take_completed_into(&mut self, now: SimTime, done: &mut Vec<StreamId>) {
        self.advance(now);
        done.clear();
        match self.heap.peek() {
            Some(&Reverse((deadline, _, _))) if deadline <= now => {}
            _ => return,
        }
        let timer = Instant::now();
        while let Some(&Reverse((deadline, id, gen))) = self.heap.peek() {
            if deadline > now {
                break;
            }
            self.heap.pop();
            let Some(s) = self.streams.get(&id) else {
                continue; // stale: stream already gone
            };
            if s.gen != gen {
                continue; // stale: rate changed since this entry was pushed
            }
            if self.remaining_now(s) <= PROGRESS_EPSILON {
                done.push(id);
            } else {
                // Floating-point drift: the deadline undershot the true
                // completion by a whisker. Reschedule from current progress.
                let next = now
                    + SimDuration::from_secs_f64(self.remaining_now(s) / s.rate)
                        .max(SimDuration::NANO);
                self.gen_counter += 1;
                let s = self.streams.get_mut(&id).expect("stream present");
                s.gen = self.gen_counter;
                s.deadline = next;
                self.heap.push(Reverse((next, id, s.gen)));
            }
        }
        self.completion_nanos += timer.elapsed().as_nanos() as u64;
        if !done.is_empty() {
            done.sort_unstable();
            for id in done.iter() {
                let s = self.streams.remove(id).expect("completed stream present");
                self.detach(&s);
            }
            self.after_mutation();
        }
    }

    /// Instant of the next stream completion if the set does not change.
    ///
    /// # Contract
    ///
    /// `now` may be at or after the last observed time: the machine first
    /// self-advances to `now`, then peeks the completion heap. Passing a
    /// `now` earlier than a previously observed instant panics with "time ran
    /// backwards". Must not be called inside an open
    /// [`FluidMachine::begin_update`] batch, where rates are stale by
    /// construction.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(
            self.batch_depth == 0,
            "next_completion inside an open batch"
        );
        self.advance(now);
        while let Some(&Reverse((deadline, id, gen))) = self.heap.peek() {
            match self.streams.get(&id) {
                Some(s) if s.gen == gen => return Some(deadline.max(now)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        debug_assert!(self.streams.is_empty(), "live stream missing a heap entry");
        None
    }

    /// Current progress rate of `id` in fractions/second, if active.
    pub fn rate(&self, id: StreamId) -> Option<f64> {
        self.streams.get(&id).map(|s| s.rate)
    }

    /// Number of resource "columns": CPU, each disk, NIC receive.
    fn n_resources(&self) -> usize {
        2 + self.spec.disks.len()
    }

    /// Capacity vector given the current stream population (HDD/SSD
    /// efficiency depends on how many readers and writers touch each disk).
    /// O(disks) via the maintained reader/writer counts.
    fn capacities(&self) -> Vec<f64> {
        let nd = self.spec.disks.len();
        let mut caps = Vec::with_capacity(self.n_resources());
        caps.push(self.spec.cores as f64);
        for (i, d) in self.spec.disks.iter().enumerate() {
            let (k_r, k_w) = (self.disk_readers[i], self.disk_writers[i]);
            let healthy = if k_r + k_w == 0 {
                d.throughput
            } else {
                d.throughput_at_rw(k_r, k_w)
            };
            caps.push(healthy * self.scale[1 + i]);
        }
        caps.push(self.spec.nic * self.scale[1 + nd]);
        debug_assert_eq!(caps.len(), 2 + nd);
        caps
    }

    /// Sets the fault-injection service-rate scale of disk `disk` (`1.0`
    /// restores the healthy rate exactly). In-flight streams are drained at
    /// their old rates up to `now`, then rates recompute under the new
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics on a nonexistent disk or a non-positive/non-finite factor.
    pub fn set_disk_scale(&mut self, now: SimTime, disk: usize, factor: f64) {
        assert!(
            disk < self.spec.disks.len(),
            "set_disk_scale: no disk {disk}"
        );
        assert!(
            factor.is_finite() && factor > 0.0,
            "set_disk_scale: bad factor {factor}"
        );
        self.advance(now);
        self.scale[1 + disk] = factor;
        self.after_mutation();
    }

    /// Sets the fault-injection bandwidth scale of the NIC (`1.0` restores
    /// the healthy rate exactly). Same drain semantics as
    /// [`FluidMachine::set_disk_scale`].
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite factor.
    pub fn set_nic_scale(&mut self, now: SimTime, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "set_nic_scale: bad factor {factor}"
        );
        self.advance(now);
        let nic = self.scale.len() - 1;
        self.scale[nic] = factor;
        self.after_mutation();
    }

    /// Demand of `s` on resource column `r` (dense; used by the reference).
    fn demand_at(s: &Stream, r: usize, nd: usize) -> f64 {
        if r == 0 {
            s.demand.cpu
        } else if r <= nd {
            s.demand.disk_total(r - 1)
        } else {
            s.demand.rx
        }
    }

    /// Recomputes stream rates, capacities, used-rate accumulators, and
    /// completion deadlines. Called on every effective mutation.
    fn reallocate(&mut self) {
        let drain_timer = Instant::now();
        self.reallocs += 1;
        self.materialize();
        let drained = drain_timer.elapsed().as_nanos() as u64;
        self.drain_nanos += drained;
        let timer = Instant::now();
        self.caps = self.capacities();
        for u in &mut self.res_used {
            *u = 0.0;
        }
        if !self.streams.is_empty() {
            self.fill_rates();
            self.refresh_res_used();
            self.refresh_deadlines();
            #[cfg(feature = "slowcheck")]
            self.assert_matches_reference();
        }
        self.alloc_nanos += timer.elapsed().as_nanos() as u64;
    }

    /// Progressive filling proper (module docs). Each round computes every
    /// unfrozen stream's tentative rate from the fair shares of the capacity
    /// still unassigned, then freezes:
    ///
    /// 1. streams running at their own single-thread cap (they cannot go
    ///    faster, and freezing them releases their unused shares), else
    /// 2. streams whose rate is set by a *saturated* resource (one whose
    ///    remaining capacity the tentative rates fully consume), else
    /// 3. the single slowest stream (a deterministic fallback that guarantees
    ///    termination; its rate is already max-min feasible).
    ///
    /// Identical round structure to [`FluidMachine::reference_reallocate`],
    /// but iterates sparse demands and maintains claimant counts across
    /// rounds instead of rescanning every stream × resource.
    fn fill_rates(&mut self) {
        let nr = self.n_resources();
        let mut cap_left = self.caps.clone();
        let mut counts = vec![0usize; nr];
        for s in self.streams.values() {
            for &(r, _) in &s.sparse {
                counts[r] += 1;
            }
        }
        let mut unfrozen: Vec<StreamId> = self.streams.keys().copied().collect();
        self.freeze_stamp += 1;
        let stamp = self.freeze_stamp;
        let mut tentative: Vec<(StreamId, f64, bool)> = Vec::with_capacity(unfrozen.len());
        let mut usage = vec![0.0f64; nr];
        let mut saturated = vec![false; nr];
        while !unfrozen.is_empty() {
            let share = |r: usize, counts: &[usize], cap_left: &[f64]| -> f64 {
                (cap_left[r] / counts[r] as f64).max(0.0)
            };
            // Tentative rate for each unfrozen stream from fair shares.
            tentative.clear();
            for id in &unfrozen {
                let s = &self.streams[id];
                let mut rate = f64::INFINITY;
                for &(r, d) in &s.sparse {
                    rate = rate.min(share(r, &counts, &cap_left) / d);
                }
                // Single-threaded cap: at most one core of CPU.
                let mut cap_bound = false;
                if s.demand.cpu > 0.0 {
                    let cap = 1.0 / s.demand.cpu;
                    if cap <= rate {
                        rate = cap;
                        cap_bound = true;
                    }
                }
                debug_assert!(rate.is_finite());
                tentative.push((*id, rate, cap_bound));
            }
            // Which resources would the tentative rates saturate?
            for u in usage.iter_mut() {
                *u = 0.0;
            }
            for (id, rate, _) in &tentative {
                for &(r, d) in &self.streams[id].sparse {
                    usage[r] += rate * d;
                }
            }
            for r in 0..nr {
                saturated[r] = counts[r] > 0 && usage[r] >= cap_left[r] * (1.0 - 1e-9);
            }
            // Select the streams to freeze this round (decided against the
            // round's snapshot of shares, applied afterwards).
            let mut to_freeze: Vec<(StreamId, f64)> = tentative
                .iter()
                .filter(|(id, rate, cap_bound)| {
                    if *cap_bound {
                        return true;
                    }
                    self.streams[id].sparse.iter().any(|&(r, d)| {
                        saturated[r] && *rate >= share(r, &counts, &cap_left) / d * (1.0 - 1e-9)
                    })
                })
                .map(|(id, rate, _)| (*id, *rate))
                .collect();
            if to_freeze.is_empty() {
                // Fallback: freeze the single slowest stream.
                let slowest = tentative
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN rate").then(a.0.cmp(&b.0)))
                    .expect("unfrozen set non-empty");
                to_freeze.push((slowest.0, slowest.1));
            }
            for (id, rate) in to_freeze {
                let s = self.streams.get_mut(&id).expect("stream vanished");
                s.rate = rate;
                s.frozen_at = stamp;
                for &(r, d) in &s.sparse {
                    cap_left[r] = (cap_left[r] - rate * d).max(0.0);
                    counts[r] -= 1;
                }
            }
            let before = unfrozen.len();
            unfrozen.retain(|id| self.streams[id].frozen_at != stamp);
            debug_assert!(unfrozen.len() < before, "filling made no progress");
            if unfrozen.len() >= before {
                break; // release-mode safety valve; unreachable in practice
            }
        }
    }

    /// Refreshes the per-resource delivered-rate accumulators from the
    /// just-assigned rates.
    fn refresh_res_used(&mut self) {
        for s in self.streams.values() {
            for &(r, d) in &s.sparse {
                self.res_used[r] += s.rate * d;
            }
        }
    }

    /// Recomputes completion deadlines after a rate change, pushing heap
    /// entries only for streams whose deadline actually moved.
    fn refresh_deadlines(&mut self) {
        let now = self.last_advance;
        let heap = &mut self.heap;
        let gen_counter = &mut self.gen_counter;
        for (&id, s) in self.streams.iter_mut() {
            let deadline = if s.remaining <= PROGRESS_EPSILON {
                now
            } else {
                debug_assert!(s.rate > 0.0, "active stream with zero rate");
                now + SimDuration::from_secs_f64(s.remaining / s.rate).max(SimDuration::NANO)
            };
            if s.gen == 0 || s.deadline != deadline {
                *gen_counter += 1;
                s.gen = *gen_counter;
                s.deadline = deadline;
                heap.push(Reverse((deadline, id, s.gen)));
            }
        }
        // Stale entries are dropped lazily; rebuild when they dominate so the
        // heap stays O(streams).
        if self.heap.len() > 2 * self.streams.len() + 64 {
            self.heap.clear();
            for (&id, s) in self.streams.iter() {
                self.heap.push(Reverse((s.deadline, id, s.gen)));
            }
        }
    }

    /// The original quadratic progressive-filling algorithm, kept verbatim as
    /// the executable specification. Returns the rate for every active stream
    /// without touching machine state. With the `slowcheck` feature, every
    /// reallocation is checked against this.
    pub fn reference_reallocate(&self) -> BTreeMap<StreamId, f64> {
        let nd = self.spec.disks.len();
        let nr = self.n_resources();
        let mut rates: BTreeMap<StreamId, f64> = BTreeMap::new();
        let mut cap_left = self.capacities();
        let mut unfrozen: Vec<StreamId> = self.streams.keys().copied().collect();
        while !unfrozen.is_empty() {
            let mut counts = vec![0usize; nr];
            for id in &unfrozen {
                let s = &self.streams[id];
                for (r, c) in counts.iter_mut().enumerate() {
                    if Self::demand_at(s, r, nd) > 0.0 {
                        *c += 1;
                    }
                }
            }
            let share = |r: usize, counts: &[usize], cap_left: &[f64]| -> f64 {
                (cap_left[r] / counts[r] as f64).max(0.0)
            };
            let mut tentative: Vec<(StreamId, f64, bool)> = Vec::with_capacity(unfrozen.len());
            for id in &unfrozen {
                let s = &self.streams[id];
                let mut rate = f64::INFINITY;
                for r in 0..nr {
                    let d = Self::demand_at(s, r, nd);
                    if d > 0.0 {
                        rate = rate.min(share(r, &counts, &cap_left) / d);
                    }
                }
                let mut cap_bound = false;
                if s.demand.cpu > 0.0 {
                    let cap = 1.0 / s.demand.cpu;
                    if cap <= rate {
                        rate = cap;
                        cap_bound = true;
                    }
                }
                debug_assert!(rate.is_finite());
                tentative.push((*id, rate, cap_bound));
            }
            let mut usage = vec![0.0f64; nr];
            for (id, rate, _) in &tentative {
                let s = &self.streams[id];
                for (r, u) in usage.iter_mut().enumerate() {
                    *u += rate * Self::demand_at(s, r, nd);
                }
            }
            let saturated: Vec<bool> = (0..nr)
                .map(|r| counts[r] > 0 && usage[r] >= cap_left[r] * (1.0 - 1e-9))
                .collect();
            let mut to_freeze: Vec<(StreamId, f64)> = tentative
                .iter()
                .filter(|(id, rate, cap_bound)| {
                    if *cap_bound {
                        return true;
                    }
                    let s = &self.streams[id];
                    (0..nr).any(|r| {
                        saturated[r] && {
                            let d = Self::demand_at(s, r, nd);
                            d > 0.0 && *rate >= share(r, &counts, &cap_left) / d * (1.0 - 1e-9)
                        }
                    })
                })
                .map(|(id, rate, _)| (*id, *rate))
                .collect();
            if to_freeze.is_empty() {
                let slowest = tentative
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN rate").then(a.0.cmp(&b.0)))
                    .expect("unfrozen set non-empty");
                to_freeze.push((slowest.0, slowest.1));
            }
            for (id, rate) in to_freeze {
                let s = &self.streams[&id];
                rates.insert(id, rate);
                for (r, cap) in cap_left.iter_mut().enumerate() {
                    *cap = (*cap - rate * Self::demand_at(s, r, nd)).max(0.0);
                }
                unfrozen.retain(|u| *u != id);
            }
        }
        rates
    }

    /// Asserts the incremental rates match the reference fixpoint.
    #[cfg(feature = "slowcheck")]
    fn assert_matches_reference(&self) {
        let reference = self.reference_reallocate();
        for (id, s) in &self.streams {
            let want = reference[id];
            let tol = want.abs() * 1e-9 + 1e-12;
            debug_assert!(
                (s.rate - want).abs() <= tol,
                "rate mismatch for {id:?}: incremental {} vs reference {want}",
                s.rate
            );
        }
    }

    /// CPU busy fraction: delivered core-seconds per second over cores. O(1).
    pub fn cpu_busy(&self) -> f64 {
        (self.res_used[0] / self.spec.cores as f64).min(1.0)
    }

    /// Disk busy fraction: delivered bytes/s over what the device can deliver
    /// at its current concurrency (a fully seek-bound disk reports 1.0). O(1).
    pub fn disk_busy(&self, disk: DiskId) -> f64 {
        (self.res_used[1 + disk.0] / self.caps[1 + disk.0]).min(1.0)
    }

    /// NIC receive busy fraction. O(1).
    pub fn rx_busy(&self) -> f64 {
        (self.res_used[1 + self.spec.disks.len()] / self.spec.nic).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{DiskSpec, MIB};

    fn machine(cores: u32, disks: usize) -> FluidMachine {
        FluidMachine::new(MachineSpec {
            cores,
            memory: 4.0 * 1024.0 * MIB,
            disks: vec![DiskSpec::hdd(); disks],
            nic: 125.0 * MIB,
        })
    }

    fn t(secs: f64) -> SimTime {
        SimTime(SimDuration::from_secs_f64(secs).0)
    }

    #[test]
    fn single_cpu_stream_runs_on_one_core() {
        let mut m = machine(8, 1);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(4.0, 1));
        // 4 core-seconds on one thread: 4 seconds, not 0.5.
        assert_eq!(m.next_completion(SimTime::ZERO), Some(t(4.0)));
        assert!((m.cpu_busy() - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_stream_bound_by_slowest_resource() {
        let mut m = machine(8, 1);
        let hdd = DiskSpec::hdd().throughput;
        // Read one disk-second of bytes while using 0.1 CPU-seconds:
        // disk-bound, finishes in ~1 s with disk fully busy.
        let mut d = StreamDemand::disk_read_only(DiskId(0), hdd, 1);
        d.cpu = 0.1;
        m.insert(SimTime::ZERO, StreamId(1), d);
        let done = m.next_completion(SimTime::ZERO).unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((m.disk_busy(DiskId(0)) - 1.0).abs() < 1e-9);
        // CPU used in proportion: 0.1 cores.
        assert!((m.cpu_busy() - 0.1 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn hdd_interleaving_slows_aggregate() {
        let mut m = machine(8, 1);
        let hdd = DiskSpec::hdd();
        // Two streams each reading 1 sequential-second of bytes.
        for i in 0..2 {
            m.insert(
                SimTime::ZERO,
                StreamId(i),
                StreamDemand::disk_read_only(DiskId(0), hdd.throughput, 1),
            );
        }
        // Two readers → aggregate = 1/(1+read_factor) of sequential; both
        // finish at 2·(1+read_factor) seconds.
        let factor = DiskSpec::hdd().read_seek_factor;
        let done = m.next_completion(SimTime::ZERO).unwrap();
        assert!(
            (done.as_secs_f64() - 2.0 * (1.0 + factor)).abs() < 1e-6,
            "{done:?}"
        );
        // The device is flat-out (seek-bound): busy fraction 1.
        assert!((m.disk_busy(DiskId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn surplus_from_bottlenecked_stream_is_redistributed() {
        let mut m = machine(1, 1);
        let hdd = DiskSpec::hdd();
        // Stream A: CPU-bound (1 core-second + tiny disk).
        let mut a = StreamDemand::cpu_only(1.0, 1);
        a.disk_read[0] = 0.01 * hdd.throughput_at(2);
        // Stream B: disk-only.
        let b = StreamDemand::disk_read_only(DiskId(0), hdd.throughput_at(2), 1);
        m.insert(SimTime::ZERO, StreamId(1), a);
        m.insert(SimTime::ZERO, StreamId(2), b);
        // A is frozen first (CPU cap), using 1% of disk; B should get the
        // remaining 99%, not just the 50% equal share.
        let rb = m.rate(StreamId(2)).unwrap();
        assert!(rb > 0.95, "B rate {rb} — surplus not redistributed");
    }

    #[test]
    fn cpu_shared_fairly_beyond_cores() {
        let mut m = machine(2, 1);
        for i in 0..4 {
            m.insert(SimTime::ZERO, StreamId(i), StreamDemand::cpu_only(1.0, 1));
        }
        // 4 single-threaded streams on 2 cores: each at 0.5 cores.
        for i in 0..4 {
            assert!((m.rate(StreamId(i)).unwrap() - 0.5).abs() < 1e-9);
        }
        assert!((m.cpu_busy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn completion_frees_capacity() {
        let mut m = machine(1, 1);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(1.0, 1));
        m.insert(SimTime::ZERO, StreamId(2), StreamDemand::cpu_only(2.0, 1));
        // Equal shares: stream 1 done at t=2.
        let c1 = m.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(c1, t(2.0));
        m.advance(c1);
        assert_eq!(m.take_completed(c1), vec![StreamId(1)]);
        // Stream 2 has 1 core-second left at full speed: done at t=3.
        assert_eq!(m.next_completion(c1), Some(t(3.0)));
    }

    #[test]
    fn rx_is_a_first_class_resource() {
        let mut m = machine(8, 1);
        let nic = 125.0 * MIB;
        m.insert(
            SimTime::ZERO,
            StreamId(1),
            StreamDemand::rx_only(nic * 2.0, 1),
        );
        assert_eq!(m.next_completion(SimTime::ZERO), Some(t(2.0)));
        assert!((m.rx_busy() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn empty_demand_rejected() {
        let mut m = machine(1, 1);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(0.0, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_disk_vector_rejected() {
        let mut m = machine(1, 2);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(1.0, 1));
    }

    #[test]
    fn rates_match_reference_fixpoint() {
        let mut m = machine(4, 2);
        let hdd = DiskSpec::hdd();
        for i in 0..12u64 {
            let mut d = StreamDemand::zero(2);
            match i % 4 {
                0 => d.cpu = 0.5 + i as f64 * 0.1,
                1 => d.disk_read[(i % 2) as usize] = 0.3 * hdd.throughput,
                2 => {
                    d.disk_write[(i % 2) as usize] = 0.2 * hdd.throughput;
                    d.cpu = 0.05;
                }
                _ => d.rx = 30.0 * MIB,
            }
            m.insert(SimTime::ZERO, StreamId(i), d);
        }
        let reference = m.reference_reallocate();
        for (id, want) in reference {
            let got = m.rate(id).unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-9 + 1e-12,
                "{id:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn batched_insert_matches_unbatched_and_reallocates_once() {
        let mut plain = machine(4, 2);
        let mut batched = machine(4, 2);
        batched.begin_update();
        for i in 0..16u64 {
            let d = StreamDemand::cpu_only(1.0 + i as f64 * 0.25, 2);
            plain.insert(SimTime::ZERO, StreamId(i), d.clone());
            batched.insert(SimTime::ZERO, StreamId(i), d);
        }
        let epoch = batched.commit(SimTime::ZERO);
        assert_eq!(epoch, plain.epoch());
        for i in 0..16u64 {
            assert_eq!(batched.rate(StreamId(i)), plain.rate(StreamId(i)));
        }
        assert_eq!(batched.stats().reallocs, 1);
        assert_eq!(plain.stats().reallocs, 16);
        assert_eq!(
            batched.next_completion(SimTime::ZERO),
            plain.next_completion(SimTime::ZERO)
        );
    }

    #[test]
    fn lazy_drain_matches_eager_observation() {
        let mut m = machine(2, 1);
        m.insert(SimTime::ZERO, StreamId(1), StreamDemand::cpu_only(2.0, 1));
        m.insert(SimTime::ZERO, StreamId(2), StreamDemand::cpu_only(4.0, 1));
        // Advance in many small steps (as executors do); nothing completes,
        // so each step is O(1) and progress stays virtual.
        for k in 1..=10 {
            m.advance(t(k as f64 * 0.1));
            assert!(m.take_completed(t(k as f64 * 0.1)).is_empty());
        }
        // Removing stream 2 at t=1 must see exactly 1 of its 4 core-seconds
        // done: remaining 3/4.
        let rem = m.remove(t(1.0), StreamId(2)).unwrap();
        assert!((rem - 0.75).abs() < 1e-12, "rem={rem}");
        // Stream 1 then finishes its remaining 1 core-second at t=2.
        assert_eq!(m.next_completion(t(1.0)), Some(t(2.0)));
    }

    #[test]
    fn take_completed_returns_ascending_ids() {
        let mut m = machine(8, 1);
        for id in (0..4u64).rev() {
            m.insert(SimTime::ZERO, StreamId(id), StreamDemand::cpu_only(1.0, 1));
        }
        let c = m.next_completion(SimTime::ZERO).unwrap();
        let done = m.take_completed(c);
        assert_eq!(
            done,
            vec![StreamId(0), StreamId(1), StreamId(2), StreamId(3)]
        );
    }
}
