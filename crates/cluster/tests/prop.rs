//! Property tests for the coupled fluid allocator: capacities hold, work is
//! conserved, progressive filling never starves a stream, and completion
//! times respect physical lower bounds.

use cluster::{DiskId, DiskSpec, FluidMachine, MachineSpec, StreamDemand, StreamId};
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};

const MIB: f64 = 1024.0 * 1024.0;

fn machine(cores: u32, n_disks: usize) -> FluidMachine {
    FluidMachine::new(MachineSpec {
        cores,
        memory: 4096.0 * MIB,
        disks: vec![DiskSpec::hdd(); n_disks],
        nic: 125.0 * MIB,
    })
}

#[derive(Clone, Debug)]
struct RandDemand {
    cpu: f64,
    disk_read: f64,
    disk_write: f64,
    rx: f64,
    disk: usize,
}

fn demand_strategy() -> impl Strategy<Value = RandDemand> {
    (
        0.0f64..4.0,
        0.0f64..(256.0 * MIB),
        0.0f64..(256.0 * MIB),
        0.0f64..(256.0 * MIB),
        0usize..2,
    )
        .prop_map(|(cpu, disk_read, disk_write, rx, disk)| RandDemand {
            cpu,
            disk_read,
            disk_write,
            rx,
            disk,
        })
        .prop_filter("demand must be positive", |d| {
            d.cpu + d.disk_read + d.disk_write + d.rx > 0.01
        })
}

fn build(d: &RandDemand, n_disks: usize) -> StreamDemand {
    let mut sd = StreamDemand::zero(n_disks);
    sd.cpu = d.cpu;
    sd.disk_read[d.disk % n_disks] = d.disk_read;
    sd.disk_write[d.disk % n_disks] = d.disk_write;
    sd.rx = d.rx;
    sd
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_streams_complete_and_busy_fractions_stay_bounded(
        demands in prop::collection::vec(demand_strategy(), 1..24),
        cores in 1u32..16,
    ) {
        let mut m = machine(cores, 2);
        for (i, d) in demands.iter().enumerate() {
            m.insert(SimTime::ZERO, StreamId(i as u64), build(d, 2));
        }
        prop_assert!(m.cpu_busy() <= 1.0 + 1e-9);
        prop_assert!(m.rx_busy() <= 1.0 + 1e-9);
        let mut now = SimTime::ZERO;
        let mut done = 0;
        let mut guard = 0;
        while done < demands.len() {
            let t = m.next_completion(now).expect("active streams progress");
            prop_assert!(t >= now);
            now = t;
            m.advance(now);
            done += m.take_completed(now).len();
            prop_assert!(m.cpu_busy() <= 1.0 + 1e-9);
            prop_assert!(m.disk_busy(DiskId(0)) <= 1.0 + 1e-9);
            prop_assert!(m.disk_busy(DiskId(1)) <= 1.0 + 1e-9);
            prop_assert!(m.rx_busy() <= 1.0 + 1e-9);
            guard += 1;
            prop_assert!(guard < 10_000, "allocator did not converge");
        }
        prop_assert_eq!(m.active_streams(), 0);
    }

    #[test]
    fn completion_respects_single_thread_and_device_bounds(
        d in demand_strategy(),
        cores in 1u32..16,
    ) {
        let mut m = machine(cores, 2);
        m.insert(SimTime::ZERO, StreamId(0), build(&d, 2));
        let t = m.next_completion(SimTime::ZERO).expect("one stream");
        let secs = t.as_secs_f64();
        // A lone stream contends with nobody — but a stream that reads *and*
        // writes the same spinning disk seeks between the regions, so the
        // device capacity is the mixed-traffic one.
        let spec = DiskSpec::hdd();
        let disk_cap = spec.throughput_at_rw(
            usize::from(d.disk_read > 0.0),
            usize::from(d.disk_write > 0.0),
        );
        let lower = d
            .cpu
            .max((d.disk_read + d.disk_write) / disk_cap)
            .max(d.rx / (125.0 * MIB));
        prop_assert!(
            secs >= lower * (1.0 - 1e-9),
            "finished in {secs}s, bound {lower}s"
        );
        // And no slower than 1.001x the bound (it is alone on the machine).
        prop_assert!(secs <= lower * 1.001 + 1e-6);
    }

    #[test]
    fn equal_streams_finish_together(
        d in demand_strategy(),
        n in 2usize..10,
    ) {
        let mut m = machine(4, 2);
        for i in 0..n {
            m.insert(SimTime::ZERO, StreamId(i as u64), build(&d, 2));
        }
        let t = m.next_completion(SimTime::ZERO).expect("streams active");
        m.advance(t);
        let done = m.take_completed(t);
        prop_assert_eq!(done.len(), n, "identical streams must tie");
    }

    #[test]
    fn no_stream_starves_under_progressive_filling(
        demands in prop::collection::vec(demand_strategy(), 2..16),
    ) {
        let mut m = machine(2, 2);
        for (i, d) in demands.iter().enumerate() {
            m.insert(SimTime::ZERO, StreamId(i as u64), build(d, 2));
        }
        for i in 0..demands.len() {
            let rate = m.rate(StreamId(i as u64)).expect("stream exists");
            prop_assert!(rate > 0.0, "stream {i} starved");
        }
    }

    #[test]
    fn lazy_drain_matches_linear_interpolation_between_events(
        demands in prop::collection::vec(demand_strategy(), 2..12),
        fracs in (0.05f64..0.45, 0.5f64..0.95),
        victim in 0usize..12,
    ) {
        // Between two mutation-free instants a stream drains at a constant
        // rate, so the remaining work reported by `remove` must interpolate
        // linearly in the removal instant — the lazy (deferred) drain can
        // neither leak nor invent progress, no matter how the advance calls
        // are interleaved (one machine advances once, the other twice).
        let build_machine = || {
            let mut m = machine(4, 2);
            for (i, d) in demands.iter().enumerate() {
                m.insert(SimTime::ZERO, StreamId(i as u64), build(d, 2));
            }
            m
        };
        let victim = StreamId((victim % demands.len()) as u64);
        let mut a = build_machine();
        let mut b = build_machine();
        let rate = a.rate(victim).expect("victim exists");
        let horizon = a.next_completion(SimTime::ZERO).expect("work pending");
        let t1 = SimTime::ZERO + SimDuration::from_secs_f64(horizon.as_secs_f64() * fracs.0);
        let t2 = SimTime::ZERO + SimDuration::from_secs_f64(horizon.as_secs_f64() * fracs.1);
        a.advance(t1);
        b.advance(t1);
        b.advance(t2);
        let rem1 = a.remove(t1, victim).expect("still active at t1");
        let rem2 = b.remove(t2, victim).expect("still active at t2");
        let dt = t2.since(t1).as_secs_f64();
        prop_assert!(
            (rem1 - rem2 - rate * dt).abs() <= rem1.abs() * 1e-9 + 1e-6,
            "lazy drain drifted: rem@t1={rem1} rem@t2={rem2} rate={rate} dt={dt}"
        );
        // Survivors' post-removal rates depend on the surviving stream set,
        // not on when the victim left.
        for i in 0..demands.len() {
            let id = StreamId(i as u64);
            if id != victim {
                prop_assert_eq!(a.rate(id), b.rate(id));
            }
        }
    }

    #[test]
    fn removing_a_monotask_never_slows_other_monotasks(
        // Single-resource streams only: for *coupled* streams the property is
        // genuinely false — removing a disk competitor can speed a coupled
        // stream up, making it compete harder on the network and slow a
        // third stream down. Monotasks (one resource each) are monotone.
        kinds in prop::collection::vec((0usize..4, 0usize..2), 2..12),
    ) {
        let mut m = machine(2, 2);
        for (i, (kind, disk)) in kinds.iter().enumerate() {
            let d = match kind {
                0 => StreamDemand::cpu_only(1.0, 2),
                1 => StreamDemand::disk_read_only(DiskId(*disk), 64.0 * MIB, 2),
                2 => StreamDemand::disk_write_only(DiskId(*disk), 64.0 * MIB, 2),
                _ => StreamDemand::rx_only(64.0 * MIB, 2),
            };
            m.insert(SimTime::ZERO, StreamId(i as u64), d);
        }
        let before: Vec<f64> = (1..kinds.len())
            .map(|i| m.rate(StreamId(i as u64)).unwrap())
            .collect();
        m.remove(SimTime::ZERO, StreamId(0));
        for (idx, i) in (1..kinds.len()).enumerate() {
            let after = m.rate(StreamId(i as u64)).unwrap();
            prop_assert!(
                after >= before[idx] * (1.0 - 1e-6),
                "monotask {i} slowed from {} to {after}",
                before[idx]
            );
        }
    }
}
