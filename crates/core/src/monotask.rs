//! Monotask types: single-resource units of work and their DAG structure.

use dataflow::{CpuWork, JobId, StageId, TaskId};
use serde::{Deserialize, Serialize};

use crate::metrics::Purpose;

/// Globally unique monotask index into the executor's arena.
pub type MonotaskGid = usize;

/// Identifies one multitask (one task of one stage of one job).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MultitaskKey {
    /// Owning job.
    pub job: JobId,
    /// Owning stage.
    pub stage: StageId,
    /// Task within the stage.
    pub task: TaskId,
}

/// The single-resource operation a monotask performs.
#[derive(Clone, Copy, Debug)]
pub enum MonoOp {
    /// Runs on one CPU core. The split is kept for the performance model
    /// (§6.3 subtracts deserialization time in what-if analyses).
    Compute {
        /// CPU-seconds, split as a compute monotask reports them.
        work: CpuWork,
    },
    /// Reads `bytes` from local disk `disk` on `machine`.
    DiskRead {
        /// Machine whose disk is read (a shuffle serve runs remotely).
        machine: usize,
        /// Which local disk.
        disk: usize,
        /// Bytes read.
        bytes: f64,
    },
    /// Writes `bytes` to local disk `disk` on `machine`, flushed through to
    /// the platters (monotasks never leave writes in the buffer cache, §3.1).
    DiskWrite {
        /// Machine whose disk is written.
        machine: usize,
        /// Which local disk.
        disk: usize,
        /// Bytes written.
        bytes: f64,
    },
    /// Fetches `bytes` of shuffle data from `from` over the network into this
    /// multitask's machine. When `via_disk`, the remote machine first runs a
    /// disk-read monotask for the requested data (Fig 4's shuffle chain);
    /// otherwise the data is served from the remote machine's memory.
    NetFetch {
        /// Sender machine.
        from: usize,
        /// Which of the sender's disks holds the data (when `via_disk`).
        remote_disk: usize,
        /// Bytes transferred.
        bytes: f64,
        /// Whether a remote disk read precedes the transfer.
        via_disk: bool,
    },
}

impl MonoOp {
    /// Bytes moved by I/O monotasks (0 for compute).
    pub fn bytes(&self) -> f64 {
        match *self {
            MonoOp::Compute { .. } => 0.0,
            MonoOp::DiskRead { bytes, .. }
            | MonoOp::DiskWrite { bytes, .. }
            | MonoOp::NetFetch { bytes, .. } => bytes,
        }
    }
}

/// A node of a multitask's monotask DAG.
#[derive(Clone, Debug)]
pub struct Monotask {
    /// The operation.
    pub op: MonoOp,
    /// Why this monotask exists (input read, shuffle write, …) — drives the
    /// disk queues' phase round-robin and the metrics records.
    pub purpose: Purpose,
    /// Number of in-DAG dependencies not yet complete.
    pub deps_remaining: usize,
    /// DAG successors, as indices *within the owning multitask*.
    pub dependents: Vec<usize>,
}

impl Monotask {
    /// A monotask with no dependencies yet.
    pub fn new(op: MonoOp, purpose: Purpose) -> Monotask {
        Monotask {
            op,
            purpose,
            deps_remaining: 0,
            dependents: Vec::new(),
        }
    }
}

/// A multitask's full DAG, produced by [`crate::decompose`] on the worker.
#[derive(Clone, Debug, Default)]
pub struct MonotaskDag {
    /// The DAG nodes; edges are [`Monotask::dependents`] +
    /// [`Monotask::deps_remaining`].
    pub nodes: Vec<Monotask>,
}

impl MonotaskDag {
    /// Empties the DAG, keeping the node allocation for reuse
    /// ([`crate::decompose_into`]'s scratch-buffer contract).
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Adds a node, returning its local index.
    pub fn push(&mut self, m: Monotask) -> usize {
        self.nodes.push(m);
        self.nodes.len() - 1
    }

    /// Adds a dependency edge `before → after`.
    pub fn edge(&mut self, before: usize, after: usize) {
        self.nodes[before].dependents.push(after);
        self.nodes[after].deps_remaining += 1;
    }

    /// Indices of nodes with no dependencies (the DAG roots).
    pub fn roots(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.deps_remaining == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks the DAG is acyclic and every node is reachable from a root.
    pub fn is_well_formed(&self) -> bool {
        let mut indeg: Vec<usize> = self.nodes.iter().map(|n| n.deps_remaining).collect();
        let mut ready: Vec<usize> = self.roots();
        let mut seen = 0;
        while let Some(i) = ready.pop() {
            seen += 1;
            for &d in &self.nodes[i].dependents {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(d);
                }
            }
        }
        seen == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(secs: f64) -> Monotask {
        Monotask::new(
            MonoOp::Compute {
                work: CpuWork {
                    deser: 0.0,
                    compute: secs,
                    ser: 0.0,
                },
            },
            Purpose::Compute,
        )
    }

    #[test]
    fn dag_edges_track_dependencies() {
        let mut dag = MonotaskDag::default();
        let a = dag.push(compute(1.0));
        let b = dag.push(compute(1.0));
        let c = dag.push(compute(1.0));
        dag.edge(a, c);
        dag.edge(b, c);
        assert_eq!(dag.roots(), vec![a, b]);
        assert_eq!(dag.nodes[c].deps_remaining, 2);
        assert!(dag.is_well_formed());
    }

    #[test]
    fn cycle_detected_as_malformed() {
        let mut dag = MonotaskDag::default();
        let a = dag.push(compute(1.0));
        let b = dag.push(compute(1.0));
        dag.edge(a, b);
        dag.edge(b, a);
        assert!(!dag.is_well_formed());
    }

    #[test]
    fn op_bytes() {
        assert_eq!(
            MonoOp::DiskRead {
                machine: 0,
                disk: 0,
                bytes: 42.0
            }
            .bytes(),
            42.0
        );
        assert_eq!(
            MonoOp::Compute {
                work: CpuWork::default()
            }
            .bytes(),
            0.0
        );
    }
}
