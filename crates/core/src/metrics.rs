//! Per-monotask timing records — the instrumentation that is "built into the
//! framework's execution model" (§6.5).
//!
//! Every monotask reports when it was queued, started, and finished, which
//! resource it used and why, and how much work it performed. The `perfmodel`
//! crate computes the paper's ideal resource times (Fig 10) directly from
//! these records; no extra logging is needed — that is the point of the
//! architecture.

use dataflow::CpuWork;
use serde::{Deserialize, Serialize};
use simcore::{ResourceKind, SimTime};

use crate::monotask::MultitaskKey;

/// Why a monotask ran — distinguishes input reads from shuffle and output
/// I/O, so what-if models can drop exactly the right components (§6.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Purpose {
    /// The multitask's computation.
    Compute,
    /// Reading job input from local disk.
    ReadInput,
    /// Reading locally-stored shuffle data for a local reduce multitask.
    ReadShuffleLocal,
    /// Reading shuffle data on behalf of a *remote* reduce multitask (runs on
    /// the sender machine).
    ReadShuffleServe,
    /// Writing shuffle output.
    WriteShuffle,
    /// Writing job output.
    WriteOutput,
    /// Receiving shuffle bytes over the network.
    NetTransfer,
}

impl Purpose {
    /// Whether this purpose is a disk write (for queue round-robin classes).
    pub fn is_write(self) -> bool {
        matches!(self, Purpose::WriteShuffle | Purpose::WriteOutput)
    }
}

/// A snapshot of one machine's scheduler queues — the architecture's
/// "visible contention" signal: "this design makes resource contention
/// 'visible' as the queue length for each resource" (§3.1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueueSnapshot {
    /// When the snapshot was taken.
    pub time: SimTime,
    /// Which machine.
    pub machine: usize,
    /// Compute monotasks waiting for a core.
    pub cpu_queued: usize,
    /// Disk monotasks waiting, per disk.
    pub disk_queued: Vec<usize>,
    /// Multitask fetch groups waiting for the network scheduler.
    pub net_queued: usize,
}

impl QueueSnapshot {
    /// Total monotasks waiting across all of this machine's resources.
    pub fn total(&self) -> usize {
        self.cpu_queued + self.disk_queued.iter().sum::<usize>() + self.net_queued
    }
}

/// One completed monotask.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonotaskRecord {
    /// Owning multitask.
    pub multitask: MultitaskKey,
    /// Machine whose resource ran the monotask (for a network fetch, the
    /// receiving machine).
    pub machine: usize,
    /// Resource class used.
    pub resource: ResourceKind,
    /// Why it ran.
    pub purpose: Purpose,
    /// When it entered its resource scheduler's queue.
    pub queued: SimTime,
    /// When the resource began serving it.
    pub started: SimTime,
    /// When it completed.
    pub ended: SimTime,
    /// Bytes moved (I/O monotasks; 0 for compute).
    pub bytes: f64,
    /// CPU split (compute monotasks only).
    pub cpu: Option<CpuWork>,
}

impl MonotaskRecord {
    /// Service time (excludes queueing).
    pub fn service_secs(&self) -> f64 {
        self.ended.since(self.started).as_secs_f64()
    }

    /// Time spent waiting in the resource queue.
    pub fn queue_secs(&self) -> f64 {
        self.started.since(self.queued).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{JobId, StageId, TaskId};

    #[test]
    fn record_timings() {
        let r = MonotaskRecord {
            multitask: MultitaskKey {
                job: JobId(0),
                stage: StageId(1),
                task: TaskId(2),
            },
            machine: 3,
            resource: ResourceKind::Disk,
            purpose: Purpose::ReadInput,
            queued: SimTime::from_secs(1),
            started: SimTime::from_secs(3),
            ended: SimTime::from_secs(7),
            bytes: 128.0,
            cpu: None,
        };
        assert_eq!(r.queue_secs(), 2.0);
        assert_eq!(r.service_secs(), 4.0);
        assert!(!r.purpose.is_write());
        assert!(Purpose::WriteShuffle.is_write());
    }
}
