//! **Monotasks**: the paper's contribution — jobs decomposed into units of
//! work that each consume exactly one resource, scheduled by dedicated
//! per-resource schedulers.
//!
//! The design principles (§3.1) and where this crate implements them:
//!
//! 1. *Each monotask uses one resource* — [`monotask`] defines compute, disk,
//!    and network monotasks; [`decompose`] turns each multitask received from
//!    the job scheduler into a DAG of them (Fig 4).
//! 2. *Monotasks execute in isolation* — a monotask is admitted to its
//!    resource only when every dependency has completed, so it never blocks
//!    mid-execution ([`scheduler`], the Local DAG Scheduler).
//! 3. *Per-resource schedulers control contention* — the CPU scheduler runs
//!    one monotask per core, the HDD scheduler one per disk, the flash
//!    scheduler four per SSD, and the network scheduler admits requests from
//!    at most four multitasks at a time ([`scheduler`]).
//! 4. *Per-resource schedulers have complete control* — disk monotasks flush
//!    writes to disk (no OS buffer cache), and queues round-robin across DAG
//!    phases so reads are not starved behind accumulated writes (§3.3).
//!
//! [`executor`] drives whole jobs on a simulated cluster and emits
//! per-monotask timing records ([`metrics`]) — the raw material of the
//! performance model in the `perfmodel` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod executor;
pub mod metrics;
pub mod monotask;
pub mod scheduler;
pub mod template;

pub use executor::{
    run, run_with_faults, try_run, DiskChoice, JobPolicy, MonoConfig, MonoRunOutput,
};
pub use metrics::{MonotaskRecord, Purpose, QueueSnapshot};
pub use monotask::{MonoOp, Monotask, MultitaskKey};
pub use template::{StageTemplate, TemplateSender};
