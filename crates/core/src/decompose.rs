//! Multitask → monotask decomposition (Fig 4).
//!
//! Decomposition happens "on worker machines rather than by the central job
//! scheduler" (§3.2): the job scheduler assigns ordinary data-parallel tasks
//! (multitasks), and this module expands each into its DAG of single-resource
//! monotasks once the task arrives at a machine:
//!
//! * a map multitask becomes *disk read → compute → disk write*;
//! * a reduce multitask becomes one network-fetch monotask per remote sender
//!   (each of which triggers a disk-read monotask on the sender when shuffle
//!   data lives on disk) plus a local shuffle-read monotask, all feeding
//!   *compute → disk write*;
//! * in-memory inputs and outputs simply omit the corresponding I/O nodes.

use dataflow::{InputSpec, OutputSpec, TaskSpec};

use crate::metrics::Purpose;
use crate::monotask::{MonoOp, Monotask, MonotaskDag};

/// One sender's share of a reduce multitask's shuffle fetch.
#[derive(Clone, Copy, Debug)]
pub struct SenderShare {
    /// Sender machine.
    pub machine: usize,
    /// Disk on the sender holding the data (meaningful when `via_disk`).
    pub disk: usize,
    /// Bytes to fetch from this sender.
    pub bytes: f64,
    /// Whether the data lives on the sender's disk (false: in memory).
    pub via_disk: bool,
}

/// Placement facts the worker needs to expand a multitask. The executor
/// keeps one around as a scratch buffer (`Default` + refill per task), so the
/// per-sender Vec stops being a fresh allocation on every launch.
#[derive(Clone, Debug, Default)]
pub struct DecomposeCtx {
    /// The machine executing the multitask.
    pub machine: usize,
    /// Disk for the input block (when the input is a disk block).
    pub input_disk: usize,
    /// Disk chosen for this multitask's output write.
    pub write_disk: usize,
    /// Per-sender shuffle shares (when the input is a shuffle fetch). The
    /// entry for `machine` itself is read locally without the network.
    pub senders: Vec<SenderShare>,
}

/// Expands one multitask into its monotask DAG.
pub fn decompose(task: &TaskSpec, ctx: &DecomposeCtx) -> MonotaskDag {
    let mut dag = MonotaskDag::default();
    decompose_into(task, ctx, &mut dag);
    dag
}

/// [`decompose`] into a caller-owned DAG, clearing it first: the executor's
/// hot path reuses one scratch DAG instead of allocating per task.
pub fn decompose_into(task: &TaskSpec, ctx: &DecomposeCtx, dag: &mut MonotaskDag) {
    dag.clear();
    let compute = dag.push(Monotask::new(
        MonoOp::Compute { work: task.cpu },
        Purpose::Compute,
    ));

    match task.input {
        InputSpec::None | InputSpec::Memory { .. } => {}
        InputSpec::DiskBlock { bytes, .. } => {
            if bytes > 0.0 {
                let read = dag.push(Monotask::new(
                    MonoOp::DiskRead {
                        machine: ctx.machine,
                        disk: ctx.input_disk,
                        bytes,
                    },
                    Purpose::ReadInput,
                ));
                dag.edge(read, compute);
            }
        }
        InputSpec::ShuffleFetch { .. } => {
            for s in &ctx.senders {
                if s.bytes <= 0.0 {
                    continue;
                }
                if s.machine == ctx.machine {
                    // The local share is read straight from local disk (or is
                    // already in memory, in which case no monotask is needed).
                    if s.via_disk {
                        let read = dag.push(Monotask::new(
                            MonoOp::DiskRead {
                                machine: ctx.machine,
                                disk: s.disk,
                                bytes: s.bytes,
                            },
                            Purpose::ReadShuffleLocal,
                        ));
                        dag.edge(read, compute);
                    }
                } else {
                    let fetch = dag.push(Monotask::new(
                        MonoOp::NetFetch {
                            from: s.machine,
                            remote_disk: s.disk,
                            bytes: s.bytes,
                            via_disk: s.via_disk,
                        },
                        Purpose::NetTransfer,
                    ));
                    dag.edge(fetch, compute);
                }
            }
        }
    }

    match task.output {
        OutputSpec::None | OutputSpec::Memory { .. } => {}
        OutputSpec::ShuffleWrite { bytes, in_memory } => {
            if !in_memory && bytes > 0.0 {
                let write = dag.push(Monotask::new(
                    MonoOp::DiskWrite {
                        machine: ctx.machine,
                        disk: ctx.write_disk,
                        bytes,
                    },
                    Purpose::WriteShuffle,
                ));
                dag.edge(compute, write);
            }
        }
        OutputSpec::DiskWrite { bytes } => {
            if bytes > 0.0 {
                let write = dag.push(Monotask::new(
                    MonoOp::DiskWrite {
                        machine: ctx.machine,
                        disk: ctx.write_disk,
                        bytes,
                    },
                    Purpose::WriteOutput,
                ));
                dag.edge(compute, write);
            }
        }
    }

    debug_assert!(dag.is_well_formed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{BlockId, CpuWork};

    fn cpu() -> CpuWork {
        CpuWork {
            deser: 1.0,
            compute: 2.0,
            ser: 0.5,
        }
    }

    fn ctx() -> DecomposeCtx {
        DecomposeCtx {
            machine: 0,
            input_disk: 1,
            write_disk: 0,
            senders: vec![],
        }
    }

    #[test]
    fn map_task_is_read_compute_write() {
        let task = TaskSpec {
            input: InputSpec::DiskBlock {
                block: BlockId(0),
                bytes: 100.0,
            },
            cpu: cpu(),
            output: OutputSpec::ShuffleWrite {
                bytes: 50.0,
                in_memory: false,
            },
        };
        let dag = decompose(&task, &ctx());
        assert_eq!(dag.nodes.len(), 3);
        // Exactly one root: the disk read.
        let roots = dag.roots();
        assert_eq!(roots.len(), 1);
        assert!(matches!(
            dag.nodes[roots[0]].op,
            MonoOp::DiskRead { bytes, disk: 1, .. } if bytes == 100.0
        ));
        assert!(dag.is_well_formed());
    }

    #[test]
    fn reduce_task_fetches_remote_and_reads_local() {
        let task = TaskSpec {
            input: InputSpec::ShuffleFetch { bytes: 100.0 },
            cpu: cpu(),
            output: OutputSpec::DiskWrite { bytes: 80.0 },
        };
        let mut c = ctx();
        c.senders = vec![
            SenderShare {
                machine: 0,
                disk: 0,
                bytes: 25.0,
                via_disk: true,
            },
            SenderShare {
                machine: 1,
                disk: 1,
                bytes: 75.0,
                via_disk: true,
            },
        ];
        let dag = decompose(&task, &c);
        // compute + local read + net fetch + output write.
        assert_eq!(dag.nodes.len(), 4);
        let fetches: Vec<_> = dag
            .nodes
            .iter()
            .filter(|n| matches!(n.op, MonoOp::NetFetch { .. }))
            .collect();
        assert_eq!(fetches.len(), 1);
        assert!(matches!(
            fetches[0].op,
            MonoOp::NetFetch { from: 1, bytes, .. } if bytes == 75.0
        ));
        let local: Vec<_> = dag
            .nodes
            .iter()
            .filter(|n| n.purpose == Purpose::ReadShuffleLocal)
            .collect();
        assert_eq!(local.len(), 1);
    }

    #[test]
    fn in_memory_job_is_compute_only() {
        let task = TaskSpec {
            input: InputSpec::Memory { bytes: 100.0 },
            cpu: cpu(),
            output: OutputSpec::Memory { bytes: 10.0 },
        };
        let dag = decompose(&task, &ctx());
        assert_eq!(dag.nodes.len(), 1);
        assert!(matches!(dag.nodes[0].op, MonoOp::Compute { .. }));
    }

    #[test]
    fn in_memory_shuffle_skips_disks() {
        let task = TaskSpec {
            input: InputSpec::ShuffleFetch { bytes: 100.0 },
            cpu: cpu(),
            output: OutputSpec::ShuffleWrite {
                bytes: 100.0,
                in_memory: true,
            },
        };
        let mut c = ctx();
        c.senders = vec![
            SenderShare {
                machine: 0,
                disk: 0,
                bytes: 50.0,
                via_disk: false,
            },
            SenderShare {
                machine: 2,
                disk: 0,
                bytes: 50.0,
                via_disk: false,
            },
        ];
        let dag = decompose(&task, &c);
        // Local in-memory share needs no monotask; remote is a fetch with no
        // remote disk read; output stays in memory.
        assert_eq!(dag.nodes.len(), 2);
        assert!(dag.nodes.iter().any(|n| matches!(
            n.op,
            MonoOp::NetFetch {
                via_disk: false,
                ..
            }
        )));
    }

    #[test]
    fn zero_byte_io_is_elided() {
        let task = TaskSpec {
            input: InputSpec::DiskBlock {
                block: BlockId(0),
                bytes: 0.0,
            },
            cpu: cpu(),
            output: OutputSpec::DiskWrite { bytes: 0.0 },
        };
        let dag = decompose(&task, &ctx());
        assert_eq!(dag.nodes.len(), 1);
    }
}
