//! The MonoSpark executor: drives jobs decomposed into monotasks on a
//! simulated cluster.
//!
//! The job scheduler "works in the same way as the Spark job scheduler, with
//! one exception: more multitasks need to be concurrently assigned to each
//! machine to fully utilize the machine's resources" (§3.4) — enough for
//! every resource scheduler to be full, plus one extra multitask so the
//! round-robin disk queues never idle while a replacement task is in flight.
//! Concurrency is therefore *derived from the hardware*, not configured: this
//! is the auto-configuration leveraged in §7.
//!
//! On each worker, the Local DAG Scheduler tracks monotask dependencies and
//! hands ready monotasks to the per-resource schedulers
//! ([`crate::scheduler`]); completed monotasks release their dependents. All
//! timing flows into [`MonotaskRecord`]s.

use std::collections::{BTreeMap, HashSet};

use cluster::{
    ClusterSpec, FaultAction, FaultPlan, FaultTimeline, FluidMachine, MachineId, ResourceSel,
    StreamDemand, StreamId, TraceSet,
};
use dataflow::{
    BlockMap, InputSpec, JobId, JobReport, JobSpec, OutputSpec, RecoveryStats, RunError,
    StageControlStats, StageId, StageReport, TaskId, TaskSpec,
};
use simcore::stats::median;
use simcore::{EventQueue, Fabric, FlowAllocator, FlowId, HierFabric, MaxMinPolicy};
use simcore::{ResourceKind, SimDuration, SimStats, SimTime};

use crate::decompose::{decompose_into, DecomposeCtx, SenderShare};
use crate::metrics::{MonotaskRecord, Purpose};
use crate::monotask::{MonoOp, MonotaskDag, MultitaskKey};
use crate::scheduler::MachineScheduler;
use crate::template::{StageTemplate, TemplateSender};

/// How the worker picks a disk for a multitask's output write.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DiskChoice {
    /// Rotate across disks independent of load (the paper's implementation;
    /// §8 notes its limitation).
    #[default]
    RoundRobin,
    /// Write to the disk with the shortest monotask queue — §8's suggested
    /// improvement ("a better strategy would consider the load on each disk
    /// … for example, writing to the disk with the shorter queue").
    ShortestQueue,
}

/// How the job scheduler orders multiple concurrent jobs (§8: the multitask
/// scheduler "could be used to implement more sophisticated policies, e.g.,
/// to share machines between different users").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JobPolicy {
    /// Interleave jobs fairly at task-assignment granularity.
    #[default]
    Fair,
    /// Serve jobs strictly in submission order.
    Fifo,
}

/// Configuration of the monotasks executor. Defaults are the paper's choices;
/// the knobs exist for the ablation benchmarks and the §8 extensions.
#[derive(Clone, Debug)]
pub struct MonoConfig {
    /// Receiver-side limit on concurrently-fetching multitasks (§3.3: 4).
    pub net_outstanding: usize,
    /// Assign one extra multitask beyond the resource slots (§3.4).
    pub extra_multitask: bool,
    /// Round-robin disk queues between reads and writes (§3.3).
    pub rr_disk_queues: bool,
    /// Override the per-machine multitask concurrency (None = auto).
    pub concurrency_override: Option<usize>,
    /// Override each SSD's scheduler slots (None = the device queue depth).
    pub ssd_slots_override: Option<usize>,
    /// Disk selection for output writes.
    pub write_disk_choice: DiskChoice,
    /// Ordering of concurrent jobs.
    pub job_policy: JobPolicy,
    /// §3.5 memory regulation: when a machine's in-flight monotask buffers
    /// exceed this fraction of its RAM, its disk queues prefer writes so
    /// buffered data drains. `None` (the paper's implementation) disables
    /// regulation.
    pub memory_limit_fraction: Option<f64>,
    /// Model the network as a full-duplex max-min fair fabric (sender *and*
    /// receiver links constrain each transfer) instead of receiver-side
    /// bandwidth only. Symmetric all-to-all shuffles behave identically
    /// either way; asymmetric traffic (hot senders) needs the fabric.
    pub full_duplex_network: bool,
    /// Relative rate tolerance ε for the fabric's approximate allocation
    /// mode (only meaningful with `full_duplex_network`). `0.0` — the
    /// default and the spec — is the exact max-min allocator, bit-identical
    /// to runs predating the knob. With ε > 0 every fabric rate is within
    /// `[exact · (1 − ε), exact]` and port capacity is never exceeded; see
    /// `simcore::MaxMinPolicy`.
    pub fabric_epsilon: f64,
    /// Completion-coalescing quantum Δ in seconds for the fabric (only
    /// meaningful with `full_duplex_network`): flow completions due within Δ
    /// of a wave fire together in one reallocation, each at most
    /// `rate · Δ` bytes early. `0.0` (the default) coalesces nothing.
    pub fabric_quantum_secs: f64,
    /// Worker threads for the hierarchical fabric's per-rack shards (only
    /// meaningful when the cluster has a [`cluster::RackTopology`] and
    /// `full_duplex_network` is on). `1` — the default — runs every rack on
    /// the simulation thread. Results are bit-identical for any shard count:
    /// cross-rack effects are exchanged at epoch boundaries in a total
    /// `(time, shard, seq)` order, so this knob trades wall-clock only.
    pub fabric_shards: usize,
    /// Safety valve on simulation iterations.
    pub max_steps: u64,
    /// Record utilization and queue-length traces (one sample per machine
    /// per event). Figure generation needs them; large-scale benchmarks turn
    /// them off — at hundreds of machines the samples dominate memory and
    /// per-event cost without affecting simulation results.
    pub collect_traces: bool,
    /// Retries allowed per task beyond its original attempt before the run
    /// fails with [`RunError::RetriesExhausted`]. Only reachable under fault
    /// injection.
    pub max_task_retries: u32,
    /// Monotask-level speculation threshold: a running monotask whose elapsed
    /// service time exceeds `multiplier ×` the median of completed monotasks
    /// of the same `(job, stage, purpose)` gets a single-resource copy — a
    /// slow disk read re-issued on another replica disk, a slow fetch
    /// re-served from a different sender disk, a slow compute duplicated —
    /// with first-finisher-wins and deterministic loser cancellation. `None`
    /// (the default) disables the machinery entirely: runs are bit-identical
    /// to builds predating the knob (proptested).
    pub mono_speculation_multiplier: Option<f64>,
    /// Minimum elapsed service seconds before a monotask may be speculated
    /// (guards against copy storms on tiny monotasks). Only meaningful with
    /// `mono_speculation_multiplier`; `None` means no floor.
    pub mono_speculation_min_runtime: Option<f64>,
    /// Cache per-stage control decisions as execution templates
    /// ([`crate::template`]) and stamp each task's monotask DAG from them,
    /// instead of re-deriving sender shares and re-expanding the DAG per
    /// task. Bit-identical to the untemplated path (proptested); `false`
    /// re-derives everything per task — the A/B baseline for
    /// `scale_sweep --templates off`.
    pub execution_templates: bool,
    /// Partition recovery: simulated seconds a fetch may sit at ~zero rate
    /// on a cut fabric pair before the timeout/retry machinery engages.
    /// `None` (the default) disables timeouts entirely — stalled fetches
    /// wait for the partition to heal, and runs without `Partition` events
    /// are bit-identical to builds predating the knob.
    pub fetch_timeout_secs: Option<f64>,
    /// Retry decisions allowed per stalled fetch before recovery escalates
    /// to re-planning (relocation, replica, or lineage resubmission).
    pub fetch_max_retries: u32,
    /// Base of the deterministic exponential backoff between fetch retries:
    /// retry `k` waits `base × 2^(k-1)` simulated seconds.
    pub fetch_backoff_base_secs: f64,
    /// Key speculation's duration populations by the machine that served the
    /// monotask, and take the straggler threshold from the median of
    /// per-machine medians — a partitioned or degraded machine then cannot
    /// poison the global median. `false` (the default) keeps the single
    /// global pool and is bit-identical to builds predating the knob.
    pub per_machine_duration_pools: bool,
    /// Arm the performance-clarity trace layer and name where its
    /// Perfetto-loadable Chrome Trace Event JSON should be written. `Some`
    /// collects one [`dataflow::RunInstant`] per fault firing and recovery
    /// decision into [`MonoRunOutput::instants`]; the `mt-trace` crate's
    /// `export_mono` (or the `trace_export` bench bin) then serializes the
    /// run to this path. Collection is observation-only: `None` — the
    /// default — collects nothing, and traced runs are `to_bits`-identical
    /// to untraced ones (proptested in `tests/trace_props.rs`).
    pub trace_path: Option<std::path::PathBuf>,
}

impl Default for MonoConfig {
    fn default() -> Self {
        MonoConfig {
            net_outstanding: 4,
            extra_multitask: true,
            rr_disk_queues: true,
            concurrency_override: None,
            ssd_slots_override: None,
            write_disk_choice: DiskChoice::RoundRobin,
            job_policy: JobPolicy::Fair,
            memory_limit_fraction: None,
            full_duplex_network: false,
            fabric_epsilon: 0.0,
            fabric_quantum_secs: 0.0,
            fabric_shards: 1,
            max_steps: 50_000_000,
            collect_traces: true,
            max_task_retries: 4,
            mono_speculation_multiplier: None,
            mono_speculation_min_runtime: None,
            execution_templates: true,
            fetch_timeout_secs: None,
            fetch_max_retries: 3,
            fetch_backoff_base_secs: 1.0,
            per_machine_duration_pools: false,
            trace_path: None,
        }
    }
}

impl MonoConfig {
    /// Rejects configurations that would deadlock or corrupt rate arithmetic
    /// downstream, with a descriptive message.
    pub fn validate(&self) -> Result<(), String> {
        if self.net_outstanding == 0 {
            return Err("net_outstanding must be >= 1".into());
        }
        if self.concurrency_override == Some(0) {
            return Err("concurrency_override of 0 would assign no work".into());
        }
        if self.ssd_slots_override == Some(0) {
            return Err("ssd_slots_override of 0 would idle every SSD".into());
        }
        if let Some(f) = self.memory_limit_fraction {
            if !(f.is_finite() && f > 0.0) {
                return Err(format!("memory_limit_fraction {f} must be finite and > 0"));
            }
        }
        if self.max_steps == 0 {
            return Err("max_steps must be >= 1".into());
        }
        if !(self.fabric_epsilon.is_finite() && (0.0..1.0).contains(&self.fabric_epsilon)) {
            return Err(format!(
                "fabric_epsilon {} must be finite and in [0, 1)",
                self.fabric_epsilon
            ));
        }
        if !(self.fabric_quantum_secs.is_finite() && self.fabric_quantum_secs >= 0.0) {
            return Err(format!(
                "fabric_quantum_secs {} must be finite and >= 0",
                self.fabric_quantum_secs
            ));
        }
        if self.fabric_shards == 0 {
            return Err("fabric_shards must be >= 1".into());
        }
        if let Some(m) = self.mono_speculation_multiplier {
            if !(m.is_finite() && m >= 1.0) {
                return Err(format!(
                    "mono_speculation_multiplier {m} must be finite and >= 1"
                ));
            }
        }
        if let Some(r) = self.mono_speculation_min_runtime {
            if !(r.is_finite() && r >= 0.0) {
                return Err(format!(
                    "mono_speculation_min_runtime {r} must be finite and >= 0"
                ));
            }
        }
        if let Some(t) = self.fetch_timeout_secs {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!("fetch_timeout_secs {t} must be finite and > 0"));
            }
        }
        if !(self.fetch_backoff_base_secs.is_finite() && self.fetch_backoff_base_secs >= 0.0) {
            return Err(format!(
                "fetch_backoff_base_secs {} must be finite and >= 0",
                self.fetch_backoff_base_secs
            ));
        }
        Ok(())
    }
}

/// Everything a monotasks run produces.
#[derive(Debug)]
pub struct MonoRunOutput {
    /// Per-job reports (same order as submitted).
    pub jobs: Vec<JobReport>,
    /// Every completed monotask.
    pub records: Vec<MonotaskRecord>,
    /// Cluster utilization traces.
    pub traces: TraceSet,
    /// Per-machine scheduler queue lengths over time (§3.1's visible
    /// contention), sampled at every simulation step.
    pub queue_trace: Vec<crate::metrics::QueueSnapshot>,
    /// Peak bytes of in-flight monotask buffers per machine (the memory
    /// cost §3.5 discusses).
    pub peak_buffered: Vec<f64>,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Control-plane cost: simulation steps plus allocator work summed over
    /// every machine and the fabric.
    pub stats: SimStats,
    /// Timestamped fault and recovery instants, in emission order. Empty
    /// unless [`MonoConfig::trace_path`] armed the trace layer.
    pub instants: Vec<cluster::RunInstant>,
}

/// Phase of a network-fetch monotask's tiny internal chain.
#[derive(Clone, Copy, PartialEq, Debug)]
enum NetPhase {
    /// Waiting for the receiver's network scheduler to admit the group.
    Waiting,
    /// The remote disk-read monotask is queued or running on the sender.
    RemoteRead,
    /// Bytes are flowing to the receiver.
    Transfer,
}

#[derive(Debug)]
struct MonoNode {
    op: MonoOp,
    purpose: Purpose,
    deps_remaining: usize,
    /// The single DAG successor, if any. Decomposition only ever produces
    /// chains into/out of the compute node (inputs → compute → write), so a
    /// full adjacency list would be a per-node allocation for nothing.
    dependent: Option<u32>,
    queued: SimTime,
    started: SimTime,
    serve_queued: SimTime,
    serve_started: SimTime,
    net_phase: NetPhase,
    done: bool,
    /// Holds a rate allocation right now (its stream/flow is in an
    /// allocator). Distinguishes queued from in-flight during cancellation.
    running: bool,
    /// Lost a speculation race (or its sender died): stale queue entries are
    /// skipped lazily at pop time, in-flight streams were torn down eagerly.
    cancelled: bool,
    /// Index of this node's speculative copy, if one was launched. At most
    /// one copy per monotask, ever.
    copy: Option<usize>,
    /// For copy nodes: the original they duplicate. `None` on originals.
    copy_of: Option<usize>,
    /// Next scheduled speculation-check wake-up for this node (dedup so the
    /// timer queue holds at most one pending entry per node).
    spec_wake_at: Option<SimTime>,
    /// When this fetch first observed its pair cut (stall-time attribution;
    /// partition runs only).
    stall_since: Option<SimTime>,
    /// Next stall-timeout / retry-backoff expiry for this fetch.
    stall_deadline: Option<SimTime>,
    /// Retry decisions already spent on this fetch.
    fetch_retries: u32,
    /// Per-machine-allocator transfers parked by a cut: remaining bytes to
    /// re-insert on heal. (Fabric transfers stay in the allocator at rate 0
    /// instead.)
    parked_bytes: Option<f64>,
}

#[derive(Debug)]
struct MtState {
    key: MultitaskKey,
    machine: usize,
    nodes: Vec<MonoNode>,
    remaining: usize,
    fetches_outstanding: usize,
    /// Abandoned by a crash; stale scheduler-queue entries are skipped lazily.
    aborted: bool,
    /// Launch time, for wasted-work / recompute attribution.
    start: SimTime,
    /// Bytes this multitask currently holds in its machine's buffer
    /// accounting (released on abort).
    buffered: f64,
    /// This attempt re-runs a completed task whose output a crash destroyed.
    recompute: bool,
    /// Input block read by this task, if any (replica lookup for disk-read
    /// speculation).
    input_block: Option<dataflow::BlockId>,
    /// Straggle factor applied to this attempt's CPU work, if any. Compute
    /// copies run clean (divide the inflated work back out), mirroring the
    /// slot-level semantics where retries and copies run at full speed.
    straggle: Option<f64>,
}

#[derive(Debug)]
struct StageRun {
    ready: bool,
    done: bool,
    total: usize,
    completed: usize,
    /// Pending tasks preferring each machine.
    by_pref: Vec<Vec<u32>>,
    /// Pending tasks with no locality preference.
    nopref: Vec<u32>,
    started: Option<SimTime>,
    ended: Option<SimTime>,
    /// Shuffle bytes produced on each machine by completed tasks.
    shuffle_by_machine: Vec<f64>,
    /// Whether this stage's shuffle output stays in memory.
    shuffle_in_memory: bool,
    /// Pending queues have been filled once; a stage re-opened after a crash
    /// resumes with its surviving queue contents instead of repopulating.
    populated: bool,
    /// Completed task ids per machine (fault runs only) — the lineage index:
    /// exactly the tasks to re-run when that machine's outputs are lost.
    completed_on: Vec<Vec<u32>>,
    /// Bumped whenever `shuffle_by_machine` changes. Consumer-stage templates
    /// record the epochs they captured and revalidate at instantiation.
    shuffle_epoch: u64,
    /// Host-wall control cost of scheduling this stage's tasks.
    control: StageControlStats,
    /// When this stage's pending tasks first had no placement satisfying the
    /// partition reachability gate (partition runs only).
    gate_blocked_since: Option<SimTime>,
    /// Next timeout expiry for the gate blockage.
    gate_deadline: Option<SimTime>,
    /// Retry decisions spent waiting out the gate blockage.
    gate_retries: u32,
}

#[derive(Debug)]
struct JobRun {
    id: JobId,
    spec: JobSpec,
    blocks: BlockMap,
    stages: Vec<StageRun>,
    done: bool,
    end: SimTime,
    recovery: RecoveryStats,
}

struct Mach {
    fluid: FluidMachine,
    sched: MachineScheduler,
    assigned: usize,
    write_cursor: usize,
    serve_cursor: usize,
    /// Bytes of monotask buffers currently in memory.
    buffered: f64,
    peak_buffered: f64,
    /// False once crashed: the machine is a zombie — its allocator is never
    /// polled again, its queues never popped, and it takes no assignments.
    alive: bool,
}

struct Exec {
    cfg: MonoConfig,
    target: usize,
    machines: Vec<Mach>,
    jobs: Vec<JobRun>,
    mts: Vec<MtState>,
    records: Vec<MonotaskRecord>,
    traces: TraceSet,
    queue_trace: Vec<crate::metrics::QueueSnapshot>,
    /// Full-duplex network fabric (when `cfg.full_duplex_network`): flat
    /// max-min over every NIC, or the rack-sharded hierarchy when the
    /// cluster declares a rack topology.
    fabric: Option<Fabric>,
    now: SimTime,
    rr_job: usize,
    stats: SimStats,
    /// Compiled fault schedule.
    faults: FaultTimeline,
    /// Whether any fault machinery is active this run. False keeps every
    /// fault hook off the hot path, so an empty plan is bit-identical to the
    /// plan-free code.
    faults_on: bool,
    /// Attempt count per `[job][stage][task]` (0 = only the original ran).
    attempts: Vec<Vec<Vec<u32>>>,
    /// Tasks whose next launch is a lineage recomputation (only ever
    /// membership-tested; iteration order never observed).
    recompute_pending: HashSet<(usize, usize, usize)>,
    /// Whether monotask-level speculation is active this run. False keeps
    /// every speculation hook off the hot path, so disabled runs are
    /// bit-identical to builds predating the feature.
    spec_on: bool,
    /// Completed service durations per `(job, stage, purpose)` — the
    /// straggler-threshold populations. BTreeMap for deterministic layout.
    durations: BTreeMap<(u32, u32, Purpose), Vec<f64>>,
    /// Deterministic wake-ups at projected threshold-crossing instants, so a
    /// straggler is caught even when no completion event lands near it.
    spec_timers: EventQueue<()>,
    /// Whether the execution-template layer is active
    /// (`cfg.execution_templates`).
    templates_on: bool,
    /// Captured control decisions per `[job][stage]` (`None` until the
    /// stage's first shuffle-input task launches).
    templates: Vec<Vec<Option<StageTemplate>>>,
    /// Total entries across every stage's pending queues. Zero lets the
    /// assignment sweep skip its per-machine × per-stage scan outright —
    /// most events during a stage's steady state assign nothing.
    pending_tasks: usize,
    /// Scratch placement context reused across launches (untemplated path).
    scratch_ctx: DecomposeCtx,
    /// Scratch DAG reused by the untemplated decompose path.
    scratch_dag: MonotaskDag,
    /// Whether the fault plan contains partition/link-cut events. False keeps
    /// every partition hook (placement gate, stall sweep, timers) off the hot
    /// path, so partition-free runs are bit-identical to builds predating the
    /// feature.
    partitions_on: bool,
    /// Directed (sender, receiver) pairs currently cut.
    cut_pairs: HashSet<(usize, usize)>,
    /// Deterministic wake-ups at stall-timeout / backoff expiries.
    fetch_timers: EventQueue<()>,
    /// Machines recovery declared unreachable from the majority: they take no
    /// assignments until a heal touches them, so lineage re-runs land on
    /// machines whose output the consumers can actually fetch.
    quarantined: Vec<bool>,
    /// Per-(job, stage, purpose, machine) duration populations, used instead
    /// of `durations` when `cfg.per_machine_duration_pools` — fetch samples
    /// key by the *sender*, everything else by the serving machine.
    durations_pm: BTreeMap<(u32, u32, Purpose, u32), Vec<f64>>,
    /// Whether `cfg.trace_path` armed the trace layer's instant collection.
    trace_on: bool,
    /// Timestamped fault and recovery instants, in emission order
    /// (observation-only; empty unless `trace_on`).
    instants: Vec<cluster::RunInstant>,
}

/// Encodes a `(multitask, node)` reference as a fluid stream id.
fn stream_id(mt: usize, node: usize) -> StreamId {
    debug_assert!(node < (1 << 16));
    StreamId(((mt as u64) << 16) | node as u64)
}

fn decode(id: StreamId) -> (usize, usize) {
    ((id.0 >> 16) as usize, (id.0 & 0xFFFF) as usize)
}

/// `RecoveryStats` array index for a monotask's resource.
fn res_index(op: &MonoOp) -> usize {
    match op {
        MonoOp::Compute { .. } => dataflow::RES_CPU,
        MonoOp::DiskRead { .. } | MonoOp::DiskWrite { .. } => dataflow::RES_DISK,
        MonoOp::NetFetch { .. } => dataflow::RES_NET,
    }
}

/// Runs `jobs` to completion on a simulated `cluster` under the monotasks
/// architecture, returning reports, monotask records, and utilization traces.
///
/// # Examples
///
/// ```
/// use cluster::{ClusterSpec, MachineSpec};
/// use dataflow::{BlockMap, CostModel, JobBuilder};
///
/// let gib = 1024.0 * 1024.0 * 1024.0;
/// let job = JobBuilder::new("sort", CostModel::spark_1_3())
///     .read_disk(gib, 1e7, gib / 16.0)
///     .map(1.0, 1.0, true)
///     .shuffle(16, false)
///     .map(1.0, 1.0, true)
///     .write_disk(1.0);
/// let blocks = BlockMap::round_robin(16, 4, 2);
/// let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
///
/// let out = monotasks_core::run(&cluster, &[(job, blocks)], &Default::default());
/// assert_eq!(out.jobs.len(), 1);
/// assert!(out.jobs[0].duration_secs() > 0.0);
/// // Every monotask used exactly one resource and reported its timing.
/// assert!(!out.records.is_empty());
/// ```
///
/// # Panics
///
/// Panics if a job spec fails validation or the simulation deadlocks (which
/// would indicate an executor bug, not a user error). Thin wrapper over
/// [`try_run`] for the figure binaries; fault-injecting callers should use
/// [`run_with_faults`] and handle the `Result`.
pub fn run(cluster: &ClusterSpec, jobs: &[(JobSpec, BlockMap)], cfg: &MonoConfig) -> MonoRunOutput {
    match try_run(cluster, jobs, cfg) {
        Ok(out) => out,
        Err(e) => panic!("monotasks run failed: {e}"),
    }
}

/// Fault-free [`run`] with structured errors instead of panics.
pub fn try_run(
    cluster: &ClusterSpec,
    jobs: &[(JobSpec, BlockMap)],
    cfg: &MonoConfig,
) -> Result<MonoRunOutput, RunError> {
    run_with_faults(cluster, jobs, cfg, &FaultPlan::new())
}

/// Runs `jobs` under the monotasks architecture while injecting the faults
/// scheduled in `plan`. With an empty plan this is exactly [`run`]: every
/// fault hook stays off the event path, so makespans and records are
/// bit-identical to the plan-free code.
pub fn run_with_faults(
    cluster: &ClusterSpec,
    jobs: &[(JobSpec, BlockMap)],
    cfg: &MonoConfig,
    plan: &FaultPlan,
) -> Result<MonoRunOutput, RunError> {
    cluster.validate().map_err(RunError::InvalidConfig)?;
    cfg.validate().map_err(RunError::InvalidConfig)?;
    for (spec, _) in jobs {
        if let Err(e) = spec.validate() {
            return Err(RunError::InvalidConfig(format!(
                "invalid job spec {:?}: {e}",
                spec.name
            )));
        }
    }
    plan.validate(cluster).map_err(RunError::InvalidConfig)?;
    let n_machines = cluster.machines;
    let disk_slots: Vec<usize> = cluster
        .machine
        .disks
        .iter()
        .map(|d| match (d.kind, cfg.ssd_slots_override) {
            (cluster::DiskKind::Ssd, Some(s)) => s.max(1),
            _ => d.scheduler_slots(),
        })
        .collect();
    let auto_target = cluster.machine.cores as usize
        + disk_slots.iter().sum::<usize>()
        + cfg.net_outstanding
        + usize::from(cfg.extra_multitask);
    let target = cfg.concurrency_override.unwrap_or(auto_target).max(1);

    let machines = (0..n_machines)
        .map(|_| Mach {
            fluid: FluidMachine::new(cluster.machine.clone()),
            sched: MachineScheduler::new(
                cluster.machine.cores as usize,
                &disk_slots,
                cfg.net_outstanding,
                cfg.rr_disk_queues,
            ),
            assigned: 0,
            write_cursor: 0,
            serve_cursor: 0,
            buffered: 0.0,
            peak_buffered: 0.0,
            alive: true,
        })
        .collect();

    let job_runs = jobs
        .iter()
        .enumerate()
        .map(|(ji, (spec, blocks))| {
            let stages = spec
                .stages
                .iter()
                .map(|st| {
                    let shuffle_in_memory = st.tasks.iter().any(|t| {
                        matches!(
                            t.output,
                            OutputSpec::ShuffleWrite {
                                in_memory: true,
                                ..
                            }
                        )
                    });
                    StageRun {
                        ready: false,
                        done: false,
                        total: st.tasks.len(),
                        completed: 0,
                        by_pref: vec![Vec::new(); n_machines],
                        nopref: Vec::new(),
                        started: None,
                        ended: None,
                        shuffle_by_machine: vec![0.0; n_machines],
                        shuffle_in_memory,
                        populated: false,
                        completed_on: vec![Vec::new(); n_machines],
                        shuffle_epoch: 0,
                        control: StageControlStats::default(),
                        gate_blocked_since: None,
                        gate_deadline: None,
                        gate_retries: 0,
                    }
                })
                .collect();
            JobRun {
                id: JobId(ji as u32),
                spec: spec.clone(),
                blocks: blocks.clone(),
                stages,
                done: false,
                end: SimTime::ZERO,
                recovery: RecoveryStats::default(),
            }
        })
        .collect();

    let mut exec = Exec {
        cfg: cfg.clone(),
        target,
        machines,
        jobs: job_runs,
        mts: Vec::new(),
        records: Vec::new(),
        traces: TraceSet::new(),
        queue_trace: Vec::new(),
        fabric: if cfg.full_duplex_network {
            let policy = MaxMinPolicy {
                epsilon: cfg.fabric_epsilon,
                quantum: SimDuration::from_secs_f64(cfg.fabric_quantum_secs),
            };
            Some(match &cluster.topology {
                Some(topo) => Fabric::Hier(Box::new(HierFabric::new(
                    topo.rack_map(n_machines).expect("validated above"),
                    cluster.machine.nic,
                    cluster.machine.nic,
                    topo.agg_tx,
                    topo.agg_rx,
                    // Within a rack the allocation is exact max-min; ε/Δ
                    // apply to the oversubscribed core where the aggregate
                    // super-classes make approximation worthwhile.
                    MaxMinPolicy::default(),
                    policy,
                    cfg.fabric_shards,
                ))),
                None => Fabric::Flat(Box::new(FlowAllocator::new_with_policy(
                    n_machines,
                    cluster.machine.nic,
                    cluster.machine.nic,
                    policy,
                ))),
            })
        } else {
            None
        },
        now: SimTime::ZERO,
        rr_job: 0,
        stats: SimStats::new(),
        faults: plan.compile(),
        faults_on: !plan.is_empty(),
        attempts: jobs
            .iter()
            .map(|(spec, _)| {
                spec.stages
                    .iter()
                    .map(|st| vec![0; st.tasks.len()])
                    .collect()
            })
            .collect(),
        recompute_pending: HashSet::new(),
        spec_on: cfg.mono_speculation_multiplier.is_some(),
        durations: BTreeMap::new(),
        spec_timers: EventQueue::new(),
        templates_on: cfg.execution_templates,
        templates: jobs
            .iter()
            .map(|(spec, _)| vec![None; spec.stages.len()])
            .collect(),
        pending_tasks: 0,
        scratch_ctx: DecomposeCtx::default(),
        scratch_dag: MonotaskDag::default(),
        partitions_on: plan.has_partitions(),
        cut_pairs: HashSet::new(),
        fetch_timers: EventQueue::new(),
        quarantined: vec![false; n_machines],
        durations_pm: BTreeMap::new(),
        trace_on: cfg.trace_path.is_some(),
        instants: Vec::new(),
    };
    exec.prime();
    exec.main_loop()?;
    Ok(exec.into_output())
}

impl Exec {
    fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Records a trace instant at the current simulated time. Pushes to a
    /// side Vec only — never touches scheduler state — so traced runs stay
    /// bit-identical to untraced ones.
    fn emit_instant(&mut self, kind: cluster::InstantKind) {
        if self.trace_on {
            self.instants.push(cluster::RunInstant {
                time: self.now,
                kind,
            });
        }
    }

    /// Marks root stages ready and populates their pending queues.
    fn prime(&mut self) {
        for ji in 0..self.jobs.len() {
            for si in 0..self.jobs[ji].spec.stages.len() {
                if self.jobs[ji].spec.stages[si].deps.is_empty() {
                    self.make_stage_ready(ji, si);
                }
            }
        }
    }

    fn make_stage_ready(&mut self, ji: usize, si: usize) {
        let n_machines = self.n_machines();
        let job = &mut self.jobs[ji];
        let stage_spec = &job.spec.stages[si];
        let run = &mut job.stages[si];
        debug_assert!(!run.ready);
        run.ready = true;
        if run.populated {
            // Re-opened after a crash un-did an upstream stage: the pending
            // queues already hold exactly the unfinished tasks (survivors of
            // the first fill plus crash re-queues) — refilling would duplicate
            // them.
            return;
        }
        run.populated = true;
        self.pending_tasks += stage_spec.tasks.len();
        for (ti, task) in stage_spec.tasks.iter().enumerate() {
            match task.input {
                InputSpec::DiskBlock { block, .. } => {
                    let m = job.blocks.machine_of(block);
                    run.by_pref[m].push(ti as u32);
                }
                InputSpec::Memory { .. } => {
                    run.by_pref[ti % n_machines].push(ti as u32);
                }
                InputSpec::None | InputSpec::ShuffleFetch { .. } => {
                    run.nopref.push(ti as u32);
                }
            }
        }
        // Queues are popped from the back; reverse so low task ids go first.
        for q in &mut run.by_pref {
            q.reverse();
        }
        run.nopref.reverse();
    }

    fn main_loop(&mut self) -> Result<(), RunError> {
        let loop_timer = std::time::Instant::now();
        let mut steps: u64 = 0;
        // Completion buffers reused across events: the speculative poll runs
        // per allocator per event and must not allocate.
        let mut done_flows: Vec<FlowId> = Vec::new();
        let mut done_streams: Vec<StreamId> = Vec::new();
        // Per-machine next-completion cache keyed on the allocator epoch.
        // Most events touch a handful of machines; the rest keep their cached
        // deadline, so the per-event sweep and the speculative completion
        // poll stop interrogating every allocator on every event.
        let n_machines = self.n_machines();
        let mut next_cache: Vec<Option<SimTime>> = vec![None; n_machines];
        let mut epoch_cache: Vec<u64> = vec![u64::MAX; n_machines];
        loop {
            // One batch per event instant: the completion wave (empty on the
            // first iteration), then dispatch to fixpoint — assignment opens
            // queues, queues fill slots, remote enqueues open other machines'
            // disks, and so on. Everything happens at one instant, so each
            // allocator reallocates once per event instead of once for the
            // completions and again for the dispatches; the intermediate
            // fixpoint between the two waves is never observed by handlers.
            self.begin_update_all();
            // Fault actions fire first within their instant: a crash at `t`
            // wins against completions at `t`, deterministically.
            if self.faults_on {
                self.apply_due_faults()?;
            }
            if self.partitions_on {
                self.check_partition_recovery()?;
            }
            if self.spec_on {
                // Drain due speculation wake-ups: they carry no payload, the
                // fixpoint's check_speculation sweep does the actual work.
                while self.spec_timers.peek_time().is_some_and(|t| t <= self.now) {
                    self.spec_timers.pop();
                }
            }
            if let Some(fabric) = &mut self.fabric {
                fabric.advance(self.now);
                fabric.take_completed_into(self.now, &mut done_flows);
                for &fid in &done_flows {
                    let (mt, node) = decode(StreamId(fid.0));
                    self.on_stream_done(mt, node);
                }
            }
            for m in 0..self.n_machines() {
                if !self.machines[m].alive {
                    continue;
                }
                // A machine whose cached deadline (still valid: same epoch)
                // lies in the future cannot have a completion due now.
                let fluid = &mut self.machines[m].fluid;
                if epoch_cache[m] == fluid.epoch() && next_cache[m].is_none_or(|t| t > self.now) {
                    continue;
                }
                fluid.advance(self.now);
                fluid.take_completed_into(self.now, &mut done_streams);
                for &sid in &done_streams {
                    let (mt, node) = decode(sid);
                    self.on_stream_done(mt, node);
                }
            }
            loop {
                let mut changed = self.assign_tasks();
                changed |= self.dispatch_all();
                if self.spec_on {
                    changed |= self.check_speculation();
                }
                if !changed {
                    break;
                }
            }
            if self.partitions_on {
                self.arm_gate_timers();
            }
            self.commit_all(self.now);
            if let Some(fabric) = &mut self.fabric {
                fabric.advance(self.now);
            }
            for m in 0..self.n_machines() {
                if !self.machines[m].alive {
                    continue;
                }
                self.machines[m].fluid.advance(self.now);
                if !self.cfg.collect_traces {
                    continue;
                }
                self.traces
                    .snapshot(self.now, MachineId(m), &self.machines[m].fluid);
                if let Some(fabric) = &self.fabric {
                    // In fabric mode the NIC utilization lives on the fabric.
                    self.traces.set(
                        self.now,
                        MachineId(m),
                        ResourceSel::Network,
                        fabric.rx_busy_fraction(m).min(1.0),
                    );
                }
                let (cpu_q, disk_q, net_q) = self.machines[m].sched.queue_lengths();
                self.queue_trace.push(crate::metrics::QueueSnapshot {
                    time: self.now,
                    machine: m,
                    cpu_queued: cpu_q,
                    disk_queued: disk_q,
                    net_queued: net_q,
                });
            }
            // Next completion anywhere. Only machines whose allocator epoch
            // moved this event re-derive their deadline; epochs only move on
            // flow-set mutations, and deadlines only move on reallocations,
            // which mutations trigger.
            // Under fault injection, stop at the last job completion instead
            // of sitting through the remaining scheduled fault actions (e.g.
            // a degrade window that outlives the workload). Speculation runs
            // stop there too: stale wake-up timers past the last completion
            // must not stretch the reported makespan.
            if (self.faults_on || self.spec_on) && self.jobs.iter().all(|j| j.done) {
                break;
            }
            let mut next: Option<SimTime> = None;
            for (m, machine) in self.machines.iter_mut().enumerate() {
                if !machine.alive {
                    next_cache[m] = None;
                    epoch_cache[m] = machine.fluid.epoch();
                    continue;
                }
                let epoch = machine.fluid.epoch();
                if epoch_cache[m] != epoch {
                    next_cache[m] = machine.fluid.next_completion(self.now);
                    epoch_cache[m] = epoch;
                }
                if let Some(t) = next_cache[m] {
                    next = Some(match next {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            }
            if let Some(fabric) = &mut self.fabric {
                if let Some(t) = fabric.next_completion(self.now) {
                    next = Some(match next {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            }
            if self.faults_on {
                if let Some(t) = self.faults.next_time() {
                    next = Some(match next {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            }
            if self.spec_on {
                if let Some(t) = self.spec_timers.peek_time() {
                    next = Some(match next {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            }
            if self.partitions_on {
                if let Some(t) = self.fetch_timers.peek_time() {
                    next = Some(match next {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
                // Flows parked by a cut pair report a FAR_FUTURE deadline:
                // "never" is not a real next event.
                if next == Some(SimTime::FAR_FUTURE) {
                    next = None;
                }
            }
            let Some(t) = next else {
                if self.jobs.iter().all(|j| j.done) {
                    break;
                }
                if self.partitions_on {
                    if let Some(e) = self.partition_starvation_error() {
                        return Err(e);
                    }
                }
                return Err(RunError::no_runnable_work(self.now));
            };
            self.now = t;
            steps += 1;
            if steps > self.cfg.max_steps {
                return Err(RunError::StepBudgetExhausted { steps });
            }
        }
        self.stats.events = steps;
        // Raw loop wall time; into_output subtracts what the allocators
        // account for, leaving pure executor-control overhead.
        self.stats.control_nanos = loop_timer.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Applies every fault action due at `now`, inside the open batch.
    fn apply_due_faults(&mut self) -> Result<(), RunError> {
        while let Some(action) = self.faults.pop_due(self.now) {
            if self.trace_on {
                self.emit_instant(cluster::InstantKind::from(&action));
            }
            match action {
                FaultAction::SetDiskScale {
                    machine,
                    disk,
                    factor,
                } => {
                    if self.machines[machine].alive {
                        self.machines[machine]
                            .fluid
                            .set_disk_scale(self.now, disk, factor);
                    }
                }
                FaultAction::SetLinkScale { machine, factor } => {
                    // The receiver-side NIC model always sees the scale; in
                    // fabric mode the machine's tx and rx port capacities
                    // degrade too, so link faults stretch shuffles whichever
                    // network model carries them.
                    if self.machines[machine].alive {
                        self.machines[machine].fluid.set_nic_scale(self.now, factor);
                        if let Some(fabric) = &mut self.fabric {
                            fabric.set_port_scale(self.now, machine, factor);
                        }
                    }
                }
                FaultAction::Crash { machine } => self.crash_machine(machine)?,
                FaultAction::CutPair { src, dst } => self.apply_cut(src, dst),
                FaultAction::HealPair { src, dst } => self.apply_heal(src, dst),
            }
        }
        Ok(())
    }

    /// Permanently fails machine `m`: aborts every multitask running on it or
    /// fetching from it, re-queues their tasks, and re-queues the completed
    /// upstream tasks whose shuffle outputs lived on it (lineage
    /// recomputation).
    fn crash_machine(&mut self, m: usize) -> Result<(), RunError> {
        if !self.machines[m].alive {
            return Ok(());
        }
        self.machines[m].alive = false;
        for mt in 0..self.mts.len() {
            if self.mts[mt].remaining == 0 || self.mts[mt].aborted {
                continue;
            }
            let on_dead = self.mts[mt].machine == m;
            if self.spec_on && !on_dead {
                // A speculative copy served by the dead machine dies alone:
                // cancel it and let the (healthy) original finish, instead of
                // aborting the whole multitask.
                for node in 0..self.mts[mt].nodes.len() {
                    let n = &self.mts[mt].nodes[node];
                    if n.copy_of.is_some()
                        && !n.done
                        && !n.cancelled
                        && matches!(n.op, MonoOp::NetFetch { from, .. } if from == m)
                    {
                        self.cancel_node(mt, node);
                    }
                }
            }
            let dead_fetch = !on_dead
                && self.mts[mt].nodes.iter().any(|n| {
                    !n.done
                        && !n.cancelled
                        && matches!(n.op, MonoOp::NetFetch { from, .. } if from == m)
                });
            if on_dead || dead_fetch {
                self.abort_multitask(mt)?;
            }
        }
        self.lose_shuffle_outputs(m)?;
        if !self.machines.iter().any(|x| x.alive) {
            return Err(RunError::all_machines_crashed(self.now));
        }
        Ok(())
    }

    /// Marks fetch `node` of `mt` stalled on a cut pair: starts the stall
    /// clock and arms the first timeout expiry (when timeouts are on).
    fn mark_stalled(&mut self, mt: usize, node: usize) {
        if self.mts[mt].nodes[node].stall_since.is_none() {
            self.mts[mt].nodes[node].stall_since = Some(self.now);
        }
        if let Some(t) = self.cfg.fetch_timeout_secs {
            if self.mts[mt].nodes[node].stall_deadline.is_none() {
                let at = self.now + SimDuration::from_secs_f64(t);
                self.mts[mt].nodes[node].stall_deadline = Some(at);
                self.fetch_timers.schedule(at, ());
            }
        }
    }

    /// A fault-plan cut of the directed pair src → dst takes effect: the
    /// fabric pins the pair's flows at rate 0 (per-machine-allocator
    /// transfers park instead), every affected in-flight fetch starts its
    /// stall clock, and speculative copies fetching across the pair are
    /// cancelled — they can never win.
    fn apply_cut(&mut self, src: usize, dst: usize) {
        if !self.cut_pairs.insert((src, dst)) {
            return;
        }
        if let Some(fabric) = &mut self.fabric {
            fabric.set_pair_cut(self.now, src, dst, true);
        }
        for mt in 0..self.mts.len() {
            if self.mts[mt].aborted || self.mts[mt].remaining == 0 || self.mts[mt].machine != dst {
                continue;
            }
            for node in 0..self.mts[mt].nodes.len() {
                let (skip, is_copy, in_transfer) = {
                    let n = &self.mts[mt].nodes[node];
                    (
                        n.done
                            || n.cancelled
                            || !matches!(n.op, MonoOp::NetFetch { from, .. } if from == src),
                        n.copy_of.is_some(),
                        n.net_phase == NetPhase::Transfer && n.running,
                    )
                };
                if skip {
                    continue;
                }
                if is_copy {
                    self.cancel_node(mt, node);
                    continue;
                }
                if in_transfer && self.fabric.is_none() {
                    // Park the in-flight receive stream: pull it out of the
                    // receiver's allocator, remembering the bytes left.
                    let sid = stream_id(mt, node);
                    if self.machines[dst].fluid.contains(sid) {
                        let rem = self.machines[dst].fluid.remove(self.now, sid);
                        self.mts[mt].nodes[node].parked_bytes = Some(rem.unwrap_or(0.0).max(1e-9));
                    }
                }
                self.mark_stalled(mt, node);
            }
        }
    }

    /// The directed pair src → dst heals: fabric flows resume at fair rates,
    /// parked receive streams re-enter the receiver's allocator with their
    /// remaining bytes, stall clocks stop (attributed to
    /// `stalled_fetch_seconds`), and machines quarantined by recovery become
    /// schedulable again.
    fn apply_heal(&mut self, src: usize, dst: usize) {
        if !self.cut_pairs.remove(&(src, dst)) {
            return;
        }
        if let Some(fabric) = &mut self.fabric {
            fabric.set_pair_cut(self.now, src, dst, false);
        }
        self.quarantined[src] = false;
        self.quarantined[dst] = false;
        for mt in 0..self.mts.len() {
            if self.mts[mt].aborted || self.mts[mt].remaining == 0 || self.mts[mt].machine != dst {
                continue;
            }
            for node in 0..self.mts[mt].nodes.len() {
                let (skip, since, parked) = {
                    let n = &self.mts[mt].nodes[node];
                    (
                        n.done
                            || n.cancelled
                            || n.copy_of.is_some()
                            || !matches!(n.op, MonoOp::NetFetch { from, .. } if from == src),
                        n.stall_since,
                        n.parked_bytes,
                    )
                };
                if skip {
                    continue;
                }
                if let Some(since) = since {
                    let ji = self.mts[mt].key.job.0 as usize;
                    self.jobs[ji].recovery.stalled_fetch_seconds +=
                        self.now.since(since).as_secs_f64();
                    self.mts[mt].nodes[node].stall_since = None;
                    self.mts[mt].nodes[node].stall_deadline = None;
                }
                if let Some(rem) = parked {
                    let n_disks = self.machines[dst].fluid.spec().disks.len();
                    self.machines[dst].fluid.insert(
                        self.now,
                        stream_id(mt, node),
                        StreamDemand::rx_only(rem, n_disks),
                    );
                    self.mts[mt].nodes[node].parked_bytes = None;
                }
            }
        }
    }

    /// Due-deadline sweep of the stall machinery: fires bounded retries with
    /// deterministic exponential backoff for fetches still cut past their
    /// deadline, escalating to re-planning when the budget is spent.
    /// Stage-level gate blockages (no machine can reach any pending task's
    /// data) walk the same timeout → retries → re-plan path.
    fn check_partition_recovery(&mut self) -> Result<(), RunError> {
        while self.fetch_timers.peek_time().is_some_and(|t| t <= self.now) {
            self.fetch_timers.pop();
        }
        if self.cfg.fetch_timeout_secs.is_none() {
            return Ok(());
        }
        for mt in 0..self.mts.len() {
            if self.mts[mt].aborted || self.mts[mt].remaining == 0 {
                continue;
            }
            let dst = self.mts[mt].machine;
            for node in 0..self.mts[mt].nodes.len() {
                let (due, from) = {
                    let n = &self.mts[mt].nodes[node];
                    let from = match n.op {
                        MonoOp::NetFetch { from, .. } => from,
                        _ => continue,
                    };
                    (
                        !n.done
                            && !n.cancelled
                            && n.copy_of.is_none()
                            && n.stall_deadline.is_some_and(|d| d <= self.now),
                        from,
                    )
                };
                if !due {
                    continue;
                }
                if !self.cut_pairs.contains(&(from, dst)) {
                    // Healed in the meantime (defensive: the heal sweep
                    // normally clears this state).
                    self.mts[mt].nodes[node].stall_deadline = None;
                    continue;
                }
                let retries = {
                    let n = &mut self.mts[mt].nodes[node];
                    n.fetch_retries += 1;
                    n.fetch_retries
                };
                let ji = self.mts[mt].key.job.0 as usize;
                let si = self.mts[mt].key.stage.0;
                self.jobs[ji].recovery.fetch_retries += 1;
                self.emit_instant(cluster::InstantKind::FetchRetry {
                    job: ji as u32,
                    stage: si,
                    attempt: retries,
                });
                if retries <= self.cfg.fetch_max_retries {
                    let backoff = self.cfg.fetch_backoff_base_secs * 2f64.powi(retries as i32 - 1);
                    self.jobs[ji].recovery.fetch_backoff_seconds += backoff;
                    let mut at = self.now + SimDuration::from_secs_f64(backoff);
                    if at <= self.now {
                        at = SimTime(self.now.0 + 1);
                    }
                    self.mts[mt].nodes[node].stall_deadline = Some(at);
                    self.fetch_timers.schedule(at, ());
                } else {
                    self.replan_multitask(mt, retries)?;
                    break;
                }
            }
        }
        for ji in 0..self.jobs.len() {
            for si in 0..self.jobs[ji].stages.len() {
                let due = self.jobs[ji].stages[si]
                    .gate_deadline
                    .is_some_and(|d| d <= self.now);
                if !due {
                    continue;
                }
                if !self.stage_gate_blocked(ji, si) {
                    let run = &mut self.jobs[ji].stages[si];
                    run.gate_blocked_since = None;
                    run.gate_deadline = None;
                    run.gate_retries = 0;
                    continue;
                }
                let retries = {
                    let run = &mut self.jobs[ji].stages[si];
                    run.gate_retries += 1;
                    run.gate_retries
                };
                self.jobs[ji].recovery.fetch_retries += 1;
                self.emit_instant(cluster::InstantKind::FetchRetry {
                    job: ji as u32,
                    stage: si as u32,
                    attempt: retries,
                });
                if retries <= self.cfg.fetch_max_retries {
                    let backoff = self.cfg.fetch_backoff_base_secs * 2f64.powi(retries as i32 - 1);
                    self.jobs[ji].recovery.fetch_backoff_seconds += backoff;
                    let mut at = self.now + SimDuration::from_secs_f64(backoff);
                    if at <= self.now {
                        at = SimTime(self.now.0 + 1);
                    }
                    self.jobs[ji].stages[si].gate_deadline = Some(at);
                    self.fetch_timers.schedule(at, ());
                } else {
                    if let Some(ti) = self.first_pending_task(ji, si) {
                        self.resolve_unreachable(ji, si, ti, retries)?;
                    }
                    let run = &mut self.jobs[ji].stages[si];
                    run.gate_blocked_since = None;
                    run.gate_deadline = None;
                    run.gate_retries = 0;
                }
            }
        }
        Ok(())
    }

    /// Retry budget spent on a stalled fetch of `mt`: count and stop the
    /// attempt's stall clocks, abort the attempt (bounded-retry re-queue of
    /// its task), and if no machine can host the task across the current
    /// cuts, escalate to sender-level resolution.
    fn replan_multitask(&mut self, mt: usize, retries: u32) -> Result<(), RunError> {
        let key = self.mts[mt].key;
        let (ji, si, ti) = (
            key.job.0 as usize,
            key.stage.0 as usize,
            key.task.0 as usize,
        );
        self.account_replanned_fetches(mt);
        self.abort_multitask(mt)?;
        let any_host = (0..self.n_machines()).any(|m| {
            self.machines[m].alive && !self.quarantined[m] && self.can_host(m, ji, si, ti)
        });
        if !any_host {
            self.resolve_unreachable(ji, si, ti, retries)?;
        }
        Ok(())
    }

    /// Stops and attributes the stall clocks of `mt`'s live fetches, counting
    /// each as re-planned. Called immediately before the attempt is aborted.
    fn account_replanned_fetches(&mut self, mt: usize) {
        let ji = self.mts[mt].key.job.0 as usize;
        let mut stalled = 0.0;
        let mut replanned = 0u64;
        for n in &mut self.mts[mt].nodes {
            if n.done || n.cancelled || n.copy_of.is_some() {
                continue;
            }
            if !matches!(n.op, MonoOp::NetFetch { .. }) {
                continue;
            }
            if let Some(since) = n.stall_since.take() {
                stalled += self.now.since(since).as_secs_f64();
            }
            n.stall_deadline = None;
            replanned += 1;
        }
        self.jobs[ji].recovery.stalled_fetch_seconds += stalled;
        self.jobs[ji].recovery.fetches_replanned += replanned;
        let si = self.mts[mt].key.stage.0;
        for _ in 0..replanned {
            self.emit_instant(cluster::InstantKind::FetchReplan {
                job: ji as u32,
                stage: si,
            });
        }
    }

    /// Sender-level degraded-mode re-planning: task `(ji, si, ti)` cannot be
    /// hosted anywhere under the current cuts. Picks the best receiver `m*`
    /// (the live machine reaching the most senders; lowest index on ties),
    /// and for every sender `m*` cannot reach either resubmits that sender's
    /// producer lineage — feasible exactly when each producer can re-run on a
    /// machine `m*` reaches, i.e. a replica of its input is reachable — or
    /// fails fast with [`RunError::Unreachable`].
    fn resolve_unreachable(
        &mut self,
        ji: usize,
        si: usize,
        ti: usize,
        retries: u32,
    ) -> Result<(), RunError> {
        let mut senders: Vec<usize> = Vec::new();
        for di in 0..self.jobs[ji].spec.stages[si].deps.len() {
            let ds = self.jobs[ji].spec.stages[si].deps[di].0 as usize;
            for (s, &b) in self.jobs[ji].stages[ds]
                .shuffle_by_machine
                .iter()
                .enumerate()
            {
                if b > 0.0 && !senders.contains(&s) {
                    senders.push(s);
                }
            }
        }
        if senders.is_empty() {
            // Disk-input task whose block home is cut off from every machine
            // with no reachable replica: there is no lineage to resubmit —
            // the input itself sits on the wrong side of the partition.
            let home = match self.jobs[ji].spec.stages[si].tasks[ti].input {
                InputSpec::DiskBlock { block, .. } => self.jobs[ji].blocks.machine_of(block),
                _ => 0,
            };
            return Err(RunError::Unreachable {
                job: JobId(ji as u32),
                stage: StageId(si as u32),
                task: TaskId(ti as u32),
                machine: home,
                retries,
            });
        }
        let mut best: Option<(usize, usize)> = None;
        for m in 0..self.n_machines() {
            if !self.machines[m].alive || self.quarantined[m] {
                continue;
            }
            let reach = senders
                .iter()
                .filter(|&&s| s == m || !self.cut_pairs.contains(&(s, m)))
                .count();
            if best.is_none_or(|(_, r)| reach > r) {
                best = Some((m, reach));
            }
        }
        let Some((mstar, _)) = best else {
            return Err(RunError::all_machines_crashed(self.now));
        };
        let offending: Vec<usize> = senders
            .iter()
            .copied()
            .filter(|&s| s != mstar && self.cut_pairs.contains(&(s, mstar)))
            .collect();
        for s in offending {
            // Feasibility: every producer whose shuffle output lives on `s`
            // must be re-runnable on a machine the receiver reaches (its
            // input block's home or a replica reachable from there).
            let dep_sis: Vec<usize> = self.jobs[ji].spec.stages[si]
                .deps
                .iter()
                .map(|d| d.0 as usize)
                .filter(|&ds| self.jobs[ji].stages[ds].shuffle_by_machine[s] > 0.0)
                .collect();
            let mut feasible = true;
            'deps: for &ds in &dep_sis {
                for pi in 0..self.jobs[ji].stages[ds].completed_on[s].len() {
                    let p = self.jobs[ji].stages[ds].completed_on[s][pi] as usize;
                    let ok = (0..self.n_machines()).any(|m| {
                        m != s
                            && self.machines[m].alive
                            && !self.quarantined[m]
                            && !self.cut_pairs.contains(&(m, mstar))
                            && self.can_host(m, ji, ds, p)
                    });
                    if !ok {
                        feasible = false;
                        break 'deps;
                    }
                }
            }
            if !feasible {
                return Err(RunError::Unreachable {
                    job: JobId(ji as u32),
                    stage: StageId(si as u32),
                    task: TaskId(ti as u32),
                    machine: s,
                    retries,
                });
            }
            // Abort every attempt still fetching from `s` (their own timers
            // would walk into this same resolution), resubmit s's producer
            // lineage, and take `s` out of the assignment rotation until a
            // heal reconnects it — re-runs must land where consumers can
            // fetch from.
            for mt in 0..self.mts.len() {
                if self.mts[mt].aborted || self.mts[mt].remaining == 0 {
                    continue;
                }
                let has = self.mts[mt].nodes.iter().any(|n| {
                    !n.done
                        && !n.cancelled
                        && n.copy_of.is_none()
                        && matches!(n.op, MonoOp::NetFetch { from, .. } if from == s)
                });
                if has {
                    self.account_replanned_fetches(mt);
                    self.abort_multitask(mt)?;
                }
            }
            self.lose_shuffle_outputs(s)?;
            self.quarantined[s] = true;
        }
        Ok(())
    }

    /// A ready stage with pending tasks is gate-blocked when no live,
    /// unquarantined machine passes the reachability gate for any of them.
    fn stage_gate_blocked(&self, ji: usize, si: usize) -> bool {
        let run = &self.jobs[ji].stages[si];
        if !run.ready || run.done {
            return false;
        }
        let any_pending = !run.nopref.is_empty() || run.by_pref.iter().any(|q| !q.is_empty());
        if !any_pending {
            return false;
        }
        !(0..self.n_machines()).any(|m| {
            self.machines[m].alive
                && !self.quarantined[m]
                && self.jobs[ji].stages[si]
                    .nopref
                    .iter()
                    .chain(self.jobs[ji].stages[si].by_pref.iter().flatten())
                    .any(|&ti| self.can_host(m, ji, si, ti as usize))
        })
    }

    /// Lowest-position pending task of a stage (assignment order), if any.
    fn first_pending_task(&self, ji: usize, si: usize) -> Option<usize> {
        let run = &self.jobs[ji].stages[si];
        if let Some(&ti) = run.nopref.last() {
            return Some(ti as usize);
        }
        run.by_pref
            .iter()
            .find_map(|q| q.last().map(|&ti| ti as usize))
    }

    /// Once per event: start (or clear) the gate-blockage clocks of ready
    /// stages whose pending tasks no machine can reach. Without a configured
    /// timeout the clock still starts — the starvation error names the stage
    /// — but no timer ever fires.
    fn arm_gate_timers(&mut self) {
        for ji in 0..self.jobs.len() {
            if self.jobs[ji].done {
                continue;
            }
            for si in 0..self.jobs[ji].stages.len() {
                let blocked = self.stage_gate_blocked(ji, si);
                if !blocked {
                    let run = &mut self.jobs[ji].stages[si];
                    if run.gate_blocked_since.is_some() {
                        run.gate_blocked_since = None;
                        run.gate_deadline = None;
                        run.gate_retries = 0;
                    }
                } else if self.jobs[ji].stages[si].gate_blocked_since.is_none() {
                    self.jobs[ji].stages[si].gate_blocked_since = Some(self.now);
                    if let Some(t) = self.cfg.fetch_timeout_secs {
                        let at = self.now + SimDuration::from_secs_f64(t);
                        self.jobs[ji].stages[si].gate_deadline = Some(at);
                        self.fetch_timers.schedule(at, ());
                    }
                }
            }
        }
    }

    /// When the event loop has nothing left to fire but jobs remain and
    /// partitions are active, name the starved work: a stalled fetch (no
    /// timeout configured, partition never heals) or a gate-blocked stage.
    fn partition_starvation_error(&self) -> Option<RunError> {
        for mt in &self.mts {
            if mt.aborted || mt.remaining == 0 {
                continue;
            }
            for n in &mt.nodes {
                if n.done || n.cancelled || n.copy_of.is_some() {
                    continue;
                }
                if n.stall_since.is_none() && n.parked_bytes.is_none() {
                    continue;
                }
                if let MonoOp::NetFetch { from, .. } = n.op {
                    return Some(RunError::Unreachable {
                        job: mt.key.job,
                        stage: mt.key.stage,
                        task: mt.key.task,
                        machine: from,
                        retries: n.fetch_retries,
                    });
                }
            }
        }
        for (ji, job) in self.jobs.iter().enumerate() {
            if job.done {
                continue;
            }
            for (si, run) in job.stages.iter().enumerate() {
                if run.gate_blocked_since.is_none() {
                    continue;
                }
                let Some(ti) = self.first_pending_task(ji, si) else {
                    continue;
                };
                return Some(RunError::Unreachable {
                    job: job.id,
                    stage: StageId(si as u32),
                    task: TaskId(ti as u32),
                    machine: self.first_unreachable_source(ji, si, ti),
                    retries: run.gate_retries,
                });
            }
        }
        None
    }

    /// First data source of `(ji, si, ti)` some live machine cannot reach —
    /// best-effort attribution for the starvation error.
    fn first_unreachable_source(&self, ji: usize, si: usize, ti: usize) -> usize {
        let job = &self.jobs[ji];
        match job.spec.stages[si].tasks[ti].input {
            InputSpec::DiskBlock { block, .. } => job.blocks.machine_of(block),
            InputSpec::ShuffleFetch { .. } => {
                for d in &job.spec.stages[si].deps {
                    let dep = &job.stages[d.0 as usize];
                    for (s, &b) in dep.shuffle_by_machine.iter().enumerate() {
                        if b > 0.0
                            && (0..self.n_machines())
                                .any(|m| self.machines[m].alive && self.cut_pairs.contains(&(s, m)))
                        {
                            return s;
                        }
                    }
                }
                0
            }
            _ => 0,
        }
    }

    /// Tears down an in-flight multitask: removes its active streams from
    /// every *surviving* allocator (a dead machine's allocator is a zombie
    /// and is never polled again), frees the scheduler slots those streams
    /// held, releases its buffer accounting, and re-queues the task. Queued
    /// but not-yet-started scheduler entries are skipped lazily at pop time.
    fn abort_multitask(&mut self, mt: usize) -> Result<(), RunError> {
        self.mts[mt].aborted = true;
        let machine = self.mts[mt].machine;
        let home_alive = self.machines[machine].alive;
        let ji = self.mts[mt].key.job.0 as usize;
        let mut group_admitted = false;
        for node in 0..self.mts[mt].nodes.len() {
            let (op, phase, done, running, cancelled) = {
                let n = &self.mts[mt].nodes[node];
                (n.op, n.net_phase, n.done, n.running, n.cancelled)
            };
            let sid = stream_id(mt, node);
            if let MonoOp::NetFetch { .. } = op {
                if done || phase != NetPhase::Waiting {
                    group_admitted = true;
                }
            }
            // Discarded I/O: every byte-moving monotask this attempt started
            // (finished or in flight) is thrown away. Cancelled speculation
            // losers already charged theirs.
            if self.faults_on
                && !cancelled
                && (done || running)
                && !matches!(op, MonoOp::Compute { .. })
            {
                self.jobs[ji].recovery.wasted_bytes += op.bytes();
            }
            if done {
                continue;
            }
            match op {
                MonoOp::Compute { .. } => {
                    if home_alive && self.machines[machine].fluid.contains(sid) {
                        self.machines[machine].fluid.remove(self.now, sid);
                        self.machines[machine].sched.finish_cpu();
                    }
                }
                MonoOp::DiskRead { disk, .. } => {
                    if home_alive && self.machines[machine].fluid.contains(sid) {
                        self.machines[machine].fluid.remove(self.now, sid);
                        self.machines[machine].sched.finish_disk(disk, false);
                    }
                }
                MonoOp::DiskWrite { disk, .. } => {
                    if home_alive && self.machines[machine].fluid.contains(sid) {
                        self.machines[machine].fluid.remove(self.now, sid);
                        self.machines[machine].sched.finish_disk(disk, true);
                    }
                }
                MonoOp::NetFetch {
                    from, remote_disk, ..
                } => match phase {
                    NetPhase::Waiting => {}
                    NetPhase::RemoteRead => {
                        // The serve read runs on the *sender's* disk.
                        if self.machines[from].alive && self.machines[from].fluid.contains(sid) {
                            self.machines[from].fluid.remove(self.now, sid);
                            self.machines[from].sched.finish_disk(remote_disk, false);
                        }
                    }
                    NetPhase::Transfer => {
                        if let Some(fabric) = &mut self.fabric {
                            fabric.remove(self.now, FlowId(sid.0));
                        } else if home_alive && self.machines[machine].fluid.contains(sid) {
                            self.machines[machine].fluid.remove(self.now, sid);
                        }
                    }
                },
            }
        }
        if home_alive {
            if group_admitted && self.mts[mt].fetches_outstanding > 0 {
                self.machines[machine].sched.finish_net_group();
            }
            let held = self.mts[mt].buffered;
            if held != 0.0 {
                self.adjust_buffered(machine, -held);
            }
            self.machines[machine].assigned -= 1;
        }
        self.mts[mt].buffered = 0.0;
        let key = self.mts[mt].key;
        let ji = key.job.0 as usize;
        self.jobs[ji].recovery.wasted_work_seconds +=
            self.now.since(self.mts[mt].start).as_secs_f64();
        self.requeue_task(
            ji,
            key.stage.0 as usize,
            key.task.0 as usize,
            self.mts[mt].recompute,
        )
    }

    /// Bounded-retry re-queue of one task attempt.
    fn requeue_task(
        &mut self,
        ji: usize,
        si: usize,
        ti: usize,
        recompute: bool,
    ) -> Result<(), RunError> {
        let a = &mut self.attempts[ji][si][ti];
        *a += 1;
        if *a > self.cfg.max_task_retries {
            return Err(RunError::RetriesExhausted {
                job: JobId(ji as u32),
                stage: StageId(si as u32),
                task: TaskId(ti as u32),
                attempts: *a,
            });
        }
        self.jobs[ji].recovery.tasks_retried += 1;
        self.emit_instant(cluster::InstantKind::TaskRetry {
            job: ji as u32,
            stage: si as u32,
            task: ti as u32,
            recompute,
        });
        if recompute {
            self.recompute_pending.insert((ji, si, ti));
        }
        self.jobs[ji].stages[si].nopref.push(ti as u32);
        self.pending_tasks += 1;
        Ok(())
    }

    /// Spark-style stage resubmission: for every stage with completed shuffle
    /// output stored on the dead machine `m` that an unfinished stage still
    /// needs, re-queue exactly the tasks that produced those bytes (the
    /// lineage index `completed_on[m]`) and close downstream stages until the
    /// data exists again.
    fn lose_shuffle_outputs(&mut self, m: usize) -> Result<(), RunError> {
        for ji in 0..self.jobs.len() {
            let n_stages = self.jobs[ji].stages.len();
            for si in 0..n_stages {
                if self.jobs[ji].stages[si].shuffle_by_machine[m] <= 0.0 {
                    continue;
                }
                let needed = (0..n_stages).any(|sj| {
                    !self.jobs[ji].stages[sj].done
                        && self.jobs[ji].spec.stages[sj]
                            .deps
                            .iter()
                            .any(|d| d.0 as usize == si)
                });
                if !needed {
                    // Every consumer already finished; the lost bytes will
                    // never be fetched again.
                    continue;
                }
                let lost = std::mem::take(&mut self.jobs[ji].stages[si].completed_on[m]);
                if lost.is_empty() {
                    continue;
                }
                let was_done = {
                    let run = &mut self.jobs[ji].stages[si];
                    run.shuffle_by_machine[m] = 0.0;
                    run.shuffle_epoch += 1;
                    run.completed -= lost.len();
                    let was_done = run.done;
                    run.done = false;
                    run.ended = None;
                    was_done
                };
                if self.templates_on {
                    // Placement changed: consumers must not stamp from the
                    // stale layout. Dropped eagerly (and counted); the epoch
                    // check at instantiation is the backstop.
                    for sj in 0..n_stages {
                        let consumes = self.jobs[ji].spec.stages[sj]
                            .deps
                            .iter()
                            .any(|d| d.0 as usize == si);
                        if consumes && self.templates[ji][sj].take().is_some() {
                            self.jobs[ji].stages[sj].control.template_invalidations += 1;
                            self.emit_instant(cluster::InstantKind::TemplateInvalidate {
                                job: ji as u32,
                                stage: sj as u32,
                            });
                        }
                    }
                }
                for ti in lost {
                    self.requeue_task(ji, si, ti as usize, true)?;
                }
                if was_done {
                    for sj in 0..n_stages {
                        let depends = self.jobs[ji].spec.stages[sj]
                            .deps
                            .iter()
                            .any(|d| d.0 as usize == si);
                        if depends
                            && self.jobs[ji].stages[sj].ready
                            && !self.jobs[ji].stages[sj].done
                        {
                            // Pending consumers wait for the recomputation;
                            // in-flight consumers fetching from `m` were
                            // already aborted above.
                            self.jobs[ji].stages[sj].ready = false;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Opens a batched-update scope on every allocator (machines + fabric).
    fn begin_update_all(&mut self) {
        for m in self.machines.iter_mut() {
            m.fluid.begin_update();
        }
        if let Some(fabric) = &mut self.fabric {
            fabric.begin_update();
        }
    }

    /// Commits every allocator's batch, reallocating the dirty ones once.
    fn commit_all(&mut self, now: SimTime) {
        for m in self.machines.iter_mut() {
            m.fluid.commit(now);
        }
        if let Some(fabric) = &mut self.fabric {
            fabric.commit(now);
        }
    }

    /// Assigns pending multitasks to machines below the concurrency target.
    fn assign_tasks(&mut self) -> bool {
        // One task per machine per sweep, so load spreads evenly and a
        // machine exhausts its *local* tasks before any machine steals them.
        let mut changed = false;
        loop {
            // Nothing pending anywhere: every pick below would scan all
            // stages and return None. The counter is exact (queue pushes and
            // pops mirror it), so this short-circuit is behavior-identical.
            if self.pending_tasks == 0 {
                break;
            }
            let mut assigned_any = false;
            for m in 0..self.n_machines() {
                if !self.machines[m].alive {
                    continue;
                }
                // A machine under memory pressure takes no new multitasks
                // (§3.5: schedulers prioritize by remaining memory); it has
                // work in flight by construction, so this cannot stall it.
                if self.partitions_on && self.quarantined[m] {
                    continue;
                }
                if self.machines[m].assigned < self.target
                    && !(self.machines[m].sched.prefer_writes() && self.machines[m].assigned > 0)
                {
                    if let Some((ji, si, ti)) = self.pick_task(m) {
                        self.start_multitask(m, ji, si, ti);
                        assigned_any = true;
                        changed = true;
                    }
                }
            }
            if !assigned_any {
                break;
            }
        }
        changed
    }

    /// Partition reachability gate: whether machine `m` could actually get
    /// the input data of task `(ji, si, ti)` across the current cuts. A disk
    /// task needs its block's home (or a live replica holder) reachable; a
    /// shuffle task needs every producing machine reachable. Crash recovery
    /// deliberately stays out of this gate — dead senders are handled by the
    /// existing lineage path, and partition-free runs never call it.
    fn can_host(&self, m: usize, ji: usize, si: usize, ti: usize) -> bool {
        let job = &self.jobs[ji];
        match job.spec.stages[si].tasks[ti].input {
            InputSpec::DiskBlock { block, .. } => {
                let home = job.blocks.machine_of(block);
                m == home
                    || !self.cut_pairs.contains(&(home, m))
                    || job.blocks.extra_replicas(block).iter().any(|&(rm, _)| {
                        rm == m || (self.machines[rm].alive && !self.cut_pairs.contains(&(rm, m)))
                    })
            }
            InputSpec::ShuffleFetch { .. } => job.spec.stages[si].deps.iter().all(|d| {
                let dep = &job.stages[d.0 as usize];
                dep.shuffle_by_machine
                    .iter()
                    .enumerate()
                    .all(|(s, &b)| b <= 0.0 || s == m || !self.cut_pairs.contains(&(s, m)))
            }),
            InputSpec::Memory { .. } | InputSpec::None => true,
        }
    }

    /// `pick_task` for partition runs: same two-pass scan, but each queue is
    /// searched back-to-front for the first entry passing the reachability
    /// gate instead of blindly popping the tail. Gated entries stay queued
    /// for a machine that can reach their data (or for the heal).
    fn pick_task_partitioned(&mut self, m: usize) -> Option<(usize, usize, usize)> {
        let n_jobs = self.jobs.len();
        let offset = match self.cfg.job_policy {
            JobPolicy::Fair => self.rr_job,
            JobPolicy::Fifo => 0,
        };
        // Pass 1: locality.
        for jo in 0..n_jobs {
            let ji = (offset + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                if !self.jobs[ji].stages[si].ready || self.jobs[ji].stages[si].done {
                    continue;
                }
                let len = self.jobs[ji].stages[si].by_pref[m].len();
                for k in (0..len).rev() {
                    let ti = self.jobs[ji].stages[si].by_pref[m][k] as usize;
                    if self.can_host(m, ji, si, ti) {
                        self.jobs[ji].stages[si].by_pref[m].remove(k);
                        self.pending_tasks -= 1;
                        self.rr_job = ji + 1;
                        return Some((ji, si, ti));
                    }
                }
            }
        }
        // Pass 2: anything pending (no-pref first, then steal remote-local).
        for jo in 0..n_jobs {
            let ji = (offset + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                if !self.jobs[ji].stages[si].ready || self.jobs[ji].stages[si].done {
                    continue;
                }
                let len = self.jobs[ji].stages[si].nopref.len();
                for k in (0..len).rev() {
                    let ti = self.jobs[ji].stages[si].nopref[k] as usize;
                    if self.can_host(m, ji, si, ti) {
                        self.jobs[ji].stages[si].nopref.remove(k);
                        self.pending_tasks -= 1;
                        self.rr_job = ji + 1;
                        return Some((ji, si, ti));
                    }
                }
                for q in 0..self.jobs[ji].stages[si].by_pref.len() {
                    let len = self.jobs[ji].stages[si].by_pref[q].len();
                    for k in (0..len).rev() {
                        let ti = self.jobs[ji].stages[si].by_pref[q][k] as usize;
                        if self.can_host(m, ji, si, ti) {
                            self.jobs[ji].stages[si].by_pref[q].remove(k);
                            self.pending_tasks -= 1;
                            self.rr_job = ji + 1;
                            return Some((ji, si, ti));
                        }
                    }
                }
            }
        }
        None
    }

    /// Chooses the next task for machine `m`: a local task from any ready
    /// stage (jobs ordered per [`JobPolicy`]), else any pending task.
    fn pick_task(&mut self, m: usize) -> Option<(usize, usize, usize)> {
        if self.partitions_on {
            return self.pick_task_partitioned(m);
        }
        let n_jobs = self.jobs.len();
        let offset = match self.cfg.job_policy {
            JobPolicy::Fair => self.rr_job,
            JobPolicy::Fifo => 0,
        };
        // Pass 1: locality.
        for jo in 0..n_jobs {
            let ji = (offset + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                let run = &mut self.jobs[ji].stages[si];
                if !run.ready || run.done {
                    continue;
                }
                if let Some(ti) = run.by_pref[m].pop() {
                    self.pending_tasks -= 1;
                    self.rr_job = ji + 1;
                    return Some((ji, si, ti as usize));
                }
            }
        }
        // Pass 2: anything pending (no-pref first, then steal remote-local).
        for jo in 0..n_jobs {
            let ji = (offset + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                let run = &mut self.jobs[ji].stages[si];
                if !run.ready || run.done {
                    continue;
                }
                if let Some(ti) = run.nopref.pop() {
                    self.pending_tasks -= 1;
                    self.rr_job = ji + 1;
                    return Some((ji, si, ti as usize));
                }
                for q in &mut run.by_pref {
                    if let Some(ti) = q.pop() {
                        self.pending_tasks -= 1;
                        self.rr_job = ji + 1;
                        return Some((ji, si, ti as usize));
                    }
                }
            }
        }
        None
    }

    /// Builds the monotask DAG for one task and enqueues its roots.
    ///
    /// With execution templates on, shuffle-input tasks stamp their nodes
    /// from the stage's captured [`StageTemplate`] (building it on first use
    /// or after invalidation); everything that varies per task — straggle
    /// factors, disk cursors, enqueue order, stream ids — is derived exactly
    /// as the untemplated path derives it, which `tests/template_props.rs`
    /// pins bit-exactly.
    fn start_multitask(&mut self, m: usize, ji: usize, si: usize, ti: usize) {
        let t_start = std::time::Instant::now();
        let n_disks = self.machines[m].fluid.spec().disks.len();
        let mut task = self.jobs[ji].spec.stages[si].tasks[ti];
        let mut recompute = false;
        let mut straggle = None;
        if self.faults_on {
            recompute = self.recompute_pending.remove(&(ji, si, ti));
            // A straggler's *first* attempt drags its compute monotask out by
            // `factor`; because the slowdown is pinned to one monotask, the
            // per-resource records attribute it directly (§6.6's clarity win).
            if self.attempts[ji][si][ti] == 0 {
                if let Some(f) = self.faults.straggle_factor(si, ti) {
                    task.cpu.deser *= f;
                    task.cpu.compute *= f;
                    task.cpu.ser *= f;
                    straggle = Some(f);
                }
            }
        }
        let input_disk = match task.input {
            InputSpec::DiskBlock { block, .. } => self.jobs[ji].blocks.disk_of(block),
            _ => 0,
        };
        let write_disk = if n_disks > 0 {
            match self.cfg.write_disk_choice {
                DiskChoice::RoundRobin => {
                    let c = self.machines[m].write_cursor;
                    self.machines[m].write_cursor = c + 1;
                    c % n_disks
                }
                DiskChoice::ShortestQueue => {
                    let (_, disk_qs, _) = self.machines[m].sched.queue_lengths();
                    disk_qs
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, q)| **q)
                        .map(|(d, _)| d)
                        .unwrap_or(0)
                }
            }
        } else {
            0
        };
        let is_shuffle = matches!(task.input, InputSpec::ShuffleFetch { .. });
        let t_built;
        let nodes = if self.templates_on {
            if is_shuffle {
                if self.template_valid(ji, si) {
                    self.jobs[ji].stages[si].control.template_hits += 1;
                } else {
                    self.build_template(ji, si);
                }
            }
            t_built = std::time::Instant::now();
            self.stamp_nodes(m, ji, si, &task, input_disk, write_disk)
        } else {
            // Untemplated baseline: re-derive sender shares and re-expand the
            // DAG for every task, through reusable scratch buffers.
            let mut ctx = std::mem::take(&mut self.scratch_ctx);
            ctx.machine = m;
            ctx.input_disk = input_disk;
            ctx.write_disk = write_disk;
            ctx.senders.clear();
            if is_shuffle {
                self.sender_shares_into(ji, si, &mut ctx.senders);
            }
            let mut dag = std::mem::take(&mut self.scratch_dag);
            decompose_into(&task, &ctx, &mut dag);
            t_built = std::time::Instant::now();
            let nodes: Vec<MonoNode> = dag
                .nodes
                .drain(..)
                .map(|n| {
                    debug_assert!(
                        n.dependents.len() <= 1,
                        "decomposition produces at most one dependent per node"
                    );
                    MonoNode {
                        op: n.op,
                        purpose: n.purpose,
                        deps_remaining: n.deps_remaining,
                        dependent: n.dependents.first().map(|&d| d as u32),
                        queued: self.now,
                        started: self.now,
                        serve_queued: self.now,
                        serve_started: self.now,
                        net_phase: NetPhase::Waiting,
                        done: false,
                        running: false,
                        cancelled: false,
                        copy: None,
                        copy_of: None,
                        spec_wake_at: None,
                        stall_since: None,
                        stall_deadline: None,
                        fetch_retries: 0,
                        parked_bytes: None,
                    }
                })
                .collect();
            self.scratch_ctx = ctx;
            self.scratch_dag = dag;
            nodes
        };
        let mt_idx = self.mts.len();
        let remaining = nodes.len();
        let input_block = match task.input {
            InputSpec::DiskBlock { block, .. } => Some(block),
            _ => None,
        };
        self.mts.push(MtState {
            key: MultitaskKey {
                job: JobId(ji as u32),
                stage: StageId(si as u32),
                task: TaskId(ti as u32),
            },
            machine: m,
            nodes,
            remaining,
            fetches_outstanding: 0,
            aborted: false,
            start: self.now,
            buffered: 0.0,
            recompute,
            input_block,
            straggle,
        });
        self.machines[m].assigned += 1;
        // Enqueue DAG roots, in node-index order.
        let mut has_fetches = false;
        for node in 0..self.mts[mt_idx].nodes.len() {
            if self.mts[mt_idx].nodes[node].deps_remaining != 0 {
                continue;
            }
            match self.mts[mt_idx].nodes[node].op {
                MonoOp::NetFetch { .. } => {
                    has_fetches = true;
                    self.mts[mt_idx].fetches_outstanding += 1;
                }
                _ => self.enqueue_node(mt_idx, node),
            }
        }
        if has_fetches {
            self.machines[m].sched.enqueue_net_group(mt_idx);
        }
        let run = &mut self.jobs[ji].stages[si];
        if run.started.is_none() {
            run.started = Some(self.now);
        }
        run.control.tasks_started += 1;
        run.control.template_build_nanos += (t_built - t_start).as_nanos() as u64;
        run.control.instantiate_nanos += t_built.elapsed().as_nanos() as u64;
    }

    /// Is the captured template for `(job, stage)` still valid — present,
    /// and derived from every producer's current shuffle epoch?
    fn template_valid(&self, ji: usize, si: usize) -> bool {
        let Some(tpl) = &self.templates[ji][si] else {
            return false;
        };
        let deps = &self.jobs[ji].spec.stages[si].deps;
        debug_assert_eq!(tpl.dep_epochs.len(), deps.len());
        deps.iter()
            .zip(&tpl.dep_epochs)
            .all(|(d, &e)| self.jobs[ji].stages[d.0 as usize].shuffle_epoch == e)
    }

    /// Captures (or recaptures) the `(job, stage)` sender layout: the control
    /// decision every task of the stage shares. Counts a template miss, plus
    /// an invalidation when a stale capture is replaced.
    fn build_template(&mut self, ji: usize, si: usize) {
        let n_tasks = self.jobs[ji].spec.stages[si].tasks.len() as f64;
        let n_deps = self.jobs[ji].spec.stages[si].deps.len();
        let stale = self.templates[ji][si].take().is_some();
        let mut tpl = StageTemplate::default();
        for di in 0..n_deps {
            let dep = self.jobs[ji].spec.stages[si].deps[di].0 as usize;
            let drun = &self.jobs[ji].stages[dep];
            debug_assert!(drun.done, "fetching from unfinished stage");
            tpl.dep_epochs.push(drun.shuffle_epoch);
            let total: f64 = drun.shuffle_by_machine.iter().sum();
            if total <= 0.0 {
                continue;
            }
            let per_task = total / n_tasks;
            let via_disk = !drun.shuffle_in_memory;
            for s in 0..drun.shuffle_by_machine.len() {
                // Same arithmetic as the untemplated sweep, so the per-task
                // byte shares are bit-equal f64s.
                let frac = drun.shuffle_by_machine[s] / total;
                let b = per_task * frac;
                if b <= 0.0 {
                    continue;
                }
                tpl.senders.push(TemplateSender {
                    machine: s,
                    bytes: b,
                    via_disk,
                });
            }
        }
        let run = &mut self.jobs[ji].stages[si];
        run.control.template_misses += 1;
        run.control.template_invalidations += u64::from(stale);
        if stale {
            self.emit_instant(cluster::InstantKind::TemplateInvalidate {
                job: ji as u32,
                stage: si as u32,
            });
        }
        self.templates[ji][si] = Some(tpl);
    }

    /// Stamps one task's monotask nodes: compute at index 0, input nodes in
    /// template/sender order, the output write last — the exact node layout
    /// and dependency wiring [`crate::decompose::decompose`] produces, done
    /// arithmetically instead of via DAG construction.
    fn stamp_nodes(
        &mut self,
        m: usize,
        ji: usize,
        si: usize,
        task: &TaskSpec,
        input_disk: usize,
        write_disk: usize,
    ) -> Vec<MonoNode> {
        let now = self.now;
        let blank = |op: MonoOp, purpose: Purpose| MonoNode {
            op,
            purpose,
            deps_remaining: 0,
            dependent: None,
            queued: now,
            started: now,
            serve_queued: now,
            serve_started: now,
            net_phase: NetPhase::Waiting,
            done: false,
            running: false,
            cancelled: false,
            copy: None,
            copy_of: None,
            spec_wake_at: None,
            stall_since: None,
            stall_deadline: None,
            fetch_retries: 0,
            parked_bytes: None,
        };
        let cap = 2 + match task.input {
            InputSpec::ShuffleFetch { .. } => self.templates[ji][si]
                .as_ref()
                .map_or(0, |t| t.senders.len()),
            _ => 1,
        };
        let mut nodes: Vec<MonoNode> = Vec::with_capacity(cap);
        nodes.push(blank(MonoOp::Compute { work: task.cpu }, Purpose::Compute));
        match task.input {
            InputSpec::None | InputSpec::Memory { .. } => {}
            InputSpec::DiskBlock { bytes, .. } => {
                if bytes > 0.0 {
                    nodes.push(blank(
                        MonoOp::DiskRead {
                            machine: m,
                            disk: input_disk,
                            bytes,
                        },
                        Purpose::ReadInput,
                    ));
                }
            }
            InputSpec::ShuffleFetch { .. } => {
                let tpl = self.templates[ji][si]
                    .as_ref()
                    .expect("template ensured before stamping");
                for e in &tpl.senders {
                    // The serve-disk cursor advances exactly as the
                    // untemplated sweep advances it: once per positive
                    // share, local and in-memory shares included.
                    let nd = self.machines[e.machine].fluid.spec().disks.len().max(1);
                    let c = self.machines[e.machine].serve_cursor;
                    self.machines[e.machine].serve_cursor = c + 1;
                    let disk = c % nd;
                    if e.machine == m {
                        // The local share is read straight from local disk
                        // (or is already in memory: no monotask at all).
                        if e.via_disk {
                            nodes.push(blank(
                                MonoOp::DiskRead {
                                    machine: m,
                                    disk,
                                    bytes: e.bytes,
                                },
                                Purpose::ReadShuffleLocal,
                            ));
                        }
                    } else {
                        nodes.push(blank(
                            MonoOp::NetFetch {
                                from: e.machine,
                                remote_disk: disk,
                                bytes: e.bytes,
                                via_disk: e.via_disk,
                            },
                            Purpose::NetTransfer,
                        ));
                    }
                }
            }
        }
        let n_inputs = nodes.len() - 1;
        let write = match task.output {
            OutputSpec::ShuffleWrite { bytes, in_memory } if !in_memory && bytes > 0.0 => Some((
                MonoOp::DiskWrite {
                    machine: m,
                    disk: write_disk,
                    bytes,
                },
                Purpose::WriteShuffle,
            )),
            OutputSpec::DiskWrite { bytes } if bytes > 0.0 => Some((
                MonoOp::DiskWrite {
                    machine: m,
                    disk: write_disk,
                    bytes,
                },
                Purpose::WriteOutput,
            )),
            _ => None,
        };
        if let Some((op, purpose)) = write {
            let w = nodes.len();
            nodes.push(blank(op, purpose));
            nodes[w].deps_remaining = 1;
            nodes[0].dependent = Some(w as u32);
        }
        nodes[0].deps_remaining = n_inputs;
        for node in nodes.iter_mut().take(n_inputs + 1).skip(1) {
            node.dependent = Some(0);
        }
        nodes
    }

    /// Per-sender shuffle shares for one task of `(job, stage)`, appended to
    /// `shares` — the untemplated baseline [`Self::build_template`] caches.
    fn sender_shares_into(&mut self, ji: usize, si: usize, shares: &mut Vec<SenderShare>) {
        let n_machines = self.n_machines();
        let n_tasks = self.jobs[ji].spec.stages[si].tasks.len() as f64;
        let n_deps = self.jobs[ji].spec.stages[si].deps.len();
        for di in 0..n_deps {
            let dep = self.jobs[ji].spec.stages[si].deps[di].0 as usize;
            let drun = &self.jobs[ji].stages[dep];
            debug_assert!(drun.done, "fetching from unfinished stage");
            let total: f64 = drun.shuffle_by_machine.iter().sum();
            if total <= 0.0 {
                continue;
            }
            let per_task = total / n_tasks;
            let via_disk = !drun.shuffle_in_memory;
            for s in 0..n_machines {
                let frac = drun.shuffle_by_machine[s] / total;
                let b = per_task * frac;
                if b <= 0.0 {
                    continue;
                }
                let disk = {
                    let nd = self.machines[s].fluid.spec().disks.len().max(1);
                    let c = self.machines[s].serve_cursor;
                    self.machines[s].serve_cursor = c + 1;
                    c % nd
                };
                shares.push(SenderShare {
                    machine: s,
                    disk,
                    bytes: b,
                    via_disk,
                });
            }
        }
    }

    /// Queues a ready non-fetch monotask on its resource scheduler.
    fn enqueue_node(&mut self, mt: usize, node: usize) {
        self.mts[mt].nodes[node].queued = self.now;
        let machine = self.mts[mt].machine;
        match self.mts[mt].nodes[node].op {
            MonoOp::Compute { .. } => self.machines[machine].sched.enqueue_cpu((mt, node)),
            MonoOp::DiskRead { disk, .. } => {
                self.machines[machine]
                    .sched
                    .enqueue_disk(disk, (mt, node), false)
            }
            MonoOp::DiskWrite { disk, .. } => {
                self.machines[machine]
                    .sched
                    .enqueue_disk(disk, (mt, node), true)
            }
            MonoOp::NetFetch { .. } => unreachable!("fetches are admitted as groups"),
        }
    }

    /// Admits queued monotasks wherever slots are free. Returns whether any
    /// state changed.
    fn dispatch_all(&mut self) -> bool {
        let mut changed = false;
        for m in 0..self.n_machines() {
            if !self.machines[m].alive {
                // Every entry a dead machine's queues hold belongs to an
                // aborted multitask (its own, or a serve read for a fetch
                // from it); nothing may be admitted.
                continue;
            }
            while let Some((mt, node)) = self.machines[m].sched.pop_cpu() {
                if self.mts[mt].aborted || self.mts[mt].nodes[node].cancelled {
                    // Stale entry of a crash-aborted multitask or a cancelled
                    // speculation loser: drop it and give back the slot the
                    // pop took.
                    self.machines[m].sched.finish_cpu();
                    changed = true;
                    continue;
                }
                self.start_cpu(m, mt, node);
                changed = true;
            }
            for d in 0..self.machines[m].sched.n_disks() {
                loop {
                    let popped = if self.machines[m].sched.prefer_writes() {
                        // Under §3.5 memory pressure, admit reads only when
                        // the machine is otherwise idle (progress guarantee).
                        let idle = self.machines[m].fluid.active_streams() == 0;
                        self.machines[m].sched.pop_disk_pressured(d, idle)
                    } else {
                        self.machines[m].sched.pop_disk(d)
                    };
                    let Some((mt, node)) = popped else { break };
                    if self.mts[mt].aborted || self.mts[mt].nodes[node].cancelled {
                        let was_write =
                            matches!(self.mts[mt].nodes[node].op, MonoOp::DiskWrite { .. });
                        self.machines[m].sched.finish_disk(d, was_write);
                        changed = true;
                        continue;
                    }
                    self.start_disk(m, d, mt, node);
                    changed = true;
                }
            }
            while let Some(mt) = self.machines[m].sched.pop_net_group() {
                if self.mts[mt].aborted {
                    self.machines[m].sched.finish_net_group();
                    changed = true;
                    continue;
                }
                self.start_fetch_group(mt);
                changed = true;
            }
        }
        changed
    }

    fn start_cpu(&mut self, machine: usize, mt: usize, node: usize) {
        let work = match self.mts[mt].nodes[node].op {
            MonoOp::Compute { work } => work,
            ref op => panic!("CPU scheduler admitted non-compute monotask {op:?}"),
        };
        self.mts[mt].nodes[node].started = self.now;
        self.mts[mt].nodes[node].running = true;
        let n_disks = self.machines[machine].fluid.spec().disks.len();
        self.machines[machine].fluid.insert(
            self.now,
            stream_id(mt, node),
            StreamDemand::cpu_only(work.total().max(1e-9), n_disks),
        );
    }

    fn start_disk(&mut self, machine: usize, disk: usize, mt: usize, node: usize) {
        let n_disks = self.machines[machine].fluid.spec().disks.len();
        let (bytes, is_write) = match self.mts[mt].nodes[node].op {
            MonoOp::DiskRead { bytes, .. } => {
                self.mts[mt].nodes[node].started = self.now;
                // Reserve the read buffer up front: the memory is committed
                // the moment the monotask is admitted (§3.5 accounting).
                // Speculative copies skip the reservation — their original
                // already holds the buffer, and only one result is kept.
                if self.mts[mt].nodes[node].copy_of.is_none() {
                    self.adjust_buffered(machine, bytes);
                    self.mts[mt].buffered += bytes;
                }
                (bytes, false)
            }
            MonoOp::DiskWrite { bytes, .. } => {
                self.mts[mt].nodes[node].started = self.now;
                (bytes, true)
            }
            MonoOp::NetFetch { bytes, .. } => {
                // The remote serve read on the sender's disk.
                debug_assert_eq!(self.mts[mt].nodes[node].net_phase, NetPhase::RemoteRead);
                self.mts[mt].nodes[node].serve_started = self.now;
                (bytes, false)
            }
            MonoOp::Compute { .. } => panic!("disk scheduler admitted a compute monotask"),
        };
        self.mts[mt].nodes[node].running = true;
        let demand = if is_write {
            StreamDemand::disk_write_only(cluster::DiskId(disk), bytes.max(1e-9), n_disks)
        } else {
            StreamDemand::disk_read_only(cluster::DiskId(disk), bytes.max(1e-9), n_disks)
        };
        self.machines[machine]
            .fluid
            .insert(self.now, stream_id(mt, node), demand);
    }

    /// The receiver's network scheduler admitted multitask `mt`'s fetches.
    fn start_fetch_group(&mut self, mt: usize) {
        let fetch_nodes: Vec<usize> = self.mts[mt]
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, MonoOp::NetFetch { .. }))
            .map(|(i, _)| i)
            .collect();
        debug_assert!(!fetch_nodes.is_empty());
        // Reserve the whole group's receive buffers at admission (§3.5).
        let group_bytes: f64 = fetch_nodes
            .iter()
            .map(|n| self.mts[mt].nodes[*n].op.bytes())
            .sum();
        let machine = self.mts[mt].machine;
        self.adjust_buffered(machine, group_bytes);
        self.mts[mt].buffered += group_bytes;
        for node in fetch_nodes {
            match self.mts[mt].nodes[node].op {
                MonoOp::NetFetch {
                    from,
                    remote_disk,
                    via_disk,
                    ..
                } => {
                    if via_disk {
                        self.mts[mt].nodes[node].net_phase = NetPhase::RemoteRead;
                        self.mts[mt].nodes[node].serve_queued = self.now;
                        self.machines[from]
                            .sched
                            .enqueue_disk(remote_disk, (mt, node), false);
                    } else {
                        self.start_transfer(mt, node);
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Begins the receive stream of a fetch (after any remote read): an
    /// rx-only fluid stream on the receiver, or a sender+receiver flow on
    /// the max-min fabric in full-duplex mode.
    fn start_transfer(&mut self, mt: usize, node: usize) {
        let bytes = self.mts[mt].nodes[node].op.bytes();
        self.mts[mt].nodes[node].net_phase = NetPhase::Transfer;
        self.mts[mt].nodes[node].started = self.now;
        self.mts[mt].nodes[node].running = true;
        let machine = self.mts[mt].machine;
        let from = match self.mts[mt].nodes[node].op {
            MonoOp::NetFetch { from, .. } => from,
            _ => unreachable!("transfer on non-fetch node"),
        };
        if self.partitions_on && self.cut_pairs.contains(&(from, machine)) {
            // Starting straight into a cut pair: begin the stall clock now.
            // Fabric transfers still enter the allocator (their class runs at
            // rate 0 until heal); per-machine transfers park outright.
            self.mark_stalled(mt, node);
            if self.fabric.is_none() {
                self.mts[mt].nodes[node].parked_bytes = Some(bytes.max(1e-9));
                return;
            }
        }
        if let Some(fabric) = &mut self.fabric {
            fabric.insert(
                self.now,
                FlowId(stream_id(mt, node).0),
                from,
                machine,
                bytes.max(1e-9),
            );
            return;
        }
        let n_disks = self.machines[machine].fluid.spec().disks.len();
        self.machines[machine].fluid.insert(
            self.now,
            stream_id(mt, node),
            StreamDemand::rx_only(bytes.max(1e-9), n_disks),
        );
    }

    /// A fluid stream finished: route by monotask kind and phase.
    fn on_stream_done(&mut self, mt: usize, node: usize) {
        if self.mts[mt].nodes[node].cancelled {
            // Lost a speculation race but drained in the same event batch:
            // the winner's teardown saw it still in the allocator's completed
            // list and left its scheduler slot for this handler to release.
            self.release_drained_loser(mt, node);
            return;
        }
        if self.mts[mt].nodes[node].copy_of.is_some() {
            self.copy_finished(mt, node);
            return;
        }
        let op = self.mts[mt].nodes[node].op;
        self.mts[mt].nodes[node].running = false;
        match op {
            MonoOp::Compute { work } => {
                let machine = self.mts[mt].machine;
                self.machines[machine].sched.finish_cpu();
                // The compute consumed its input buffers and produced its
                // serialized output buffer. (Speculative copy nodes are
                // excluded: only one of each racing pair's buffers is real.)
                let consumed: f64 = self.mts[mt]
                    .nodes
                    .iter()
                    .filter(|n| n.copy_of.is_none())
                    .filter(|n| matches!(n.op, MonoOp::DiskRead { .. } | MonoOp::NetFetch { .. }))
                    .map(|n| n.op.bytes())
                    .sum();
                let produced: f64 = self.mts[mt]
                    .nodes
                    .iter()
                    .filter(|n| n.copy_of.is_none())
                    .filter(|n| matches!(n.op, MonoOp::DiskWrite { .. }))
                    .map(|n| n.op.bytes())
                    .sum();
                self.adjust_buffered(machine, produced - consumed);
                self.mts[mt].buffered += produced - consumed;
                self.emit(mt, node, machine, ResourceKind::Cpu, 0.0, Some(work));
                if self.spec_on {
                    self.push_sample(mt, node);
                }
                self.complete_node(mt, node);
            }
            MonoOp::DiskRead {
                machine,
                disk,
                bytes,
            } => {
                self.machines[machine].sched.finish_disk(disk, false);
                self.emit(mt, node, machine, ResourceKind::Disk, bytes, None);
                if self.spec_on {
                    self.push_sample(mt, node);
                }
                self.complete_node(mt, node);
            }
            MonoOp::DiskWrite {
                machine,
                disk,
                bytes,
            } => {
                self.machines[machine].sched.finish_disk(disk, true);
                self.adjust_buffered(machine, -bytes);
                self.mts[mt].buffered -= bytes;
                self.emit(mt, node, machine, ResourceKind::Disk, bytes, None);
                self.complete_node(mt, node);
            }
            MonoOp::NetFetch {
                from,
                remote_disk,
                bytes,
                ..
            } => match self.mts[mt].nodes[node].net_phase {
                NetPhase::RemoteRead => {
                    self.machines[from].sched.finish_disk(remote_disk, false);
                    // Emit the serve read as its own record on the sender.
                    let n = &self.mts[mt].nodes[node];
                    self.records.push(MonotaskRecord {
                        multitask: self.mts[mt].key,
                        machine: from,
                        resource: ResourceKind::Disk,
                        purpose: Purpose::ReadShuffleServe,
                        queued: n.serve_queued,
                        started: n.serve_started,
                        ended: self.now,
                        bytes,
                        cpu: None,
                    });
                    self.start_transfer(mt, node);
                }
                NetPhase::Transfer => {
                    let machine = self.mts[mt].machine;
                    self.emit(mt, node, machine, ResourceKind::Network, bytes, None);
                    self.mts[mt].fetches_outstanding -= 1;
                    if self.mts[mt].fetches_outstanding == 0 {
                        self.machines[machine].sched.finish_net_group();
                    }
                    if self.spec_on {
                        self.push_sample(mt, node);
                    }
                    self.complete_node(mt, node);
                }
                NetPhase::Waiting => panic!("fetch completed while waiting"),
            },
        }
    }

    /// Records one completed monotask's service duration into its
    /// `(job, stage, purpose)` population — the data the straggler threshold
    /// is derived from.
    fn push_sample(&mut self, mt: usize, node: usize) {
        let n = &self.mts[mt].nodes[node];
        let anchor = match n.op {
            // A via-disk fetch's service spans the sender-side serve chain
            // plus the transfer; anchoring at the serve enqueue matches the
            // elapsed-time anchor eligibility uses.
            MonoOp::NetFetch { via_disk: true, .. } => n.serve_queued,
            _ => n.started,
        };
        let d = self.now.since(anchor).as_secs_f64();
        let key = (self.mts[mt].key.job.0, self.mts[mt].key.stage.0, n.purpose);
        if self.cfg.per_machine_duration_pools {
            // Fetch samples are attributed to the *sender* (the serve chain is
            // where a degraded machine shows up); everything else to the
            // machine that served the monotask.
            let pm = match n.op {
                MonoOp::NetFetch { from, .. } => from,
                _ => self.mts[mt].machine,
            } as u32;
            self.durations_pm
                .entry((key.0, key.1, key.2, pm))
                .or_default()
                .push(d);
        } else {
            self.durations.entry(key).or_default().push(d);
        }
    }

    /// One sweep of the monotask-level speculation policy (§6.6 applied to
    /// mitigation): for every in-flight original whose service time has
    /// dragged past `multiplier × median` of its stage/purpose population,
    /// re-dispatch *only that monotask* against an alternate resource.
    /// Returns whether any copy was launched (so the dispatch fixpoint runs
    /// another pass to admit it).
    fn check_speculation(&mut self) -> bool {
        let mult = self
            .cfg
            .mono_speculation_multiplier
            .expect("check_speculation called with speculation off");
        let min_rt = self.cfg.mono_speculation_min_runtime.unwrap_or(0.0);
        let mut changed = false;
        for mt in 0..self.mts.len() {
            if self.mts[mt].aborted || self.mts[mt].remaining == 0 {
                continue;
            }
            for node in 0..self.mts[mt].nodes.len() {
                let n = &self.mts[mt].nodes[node];
                if n.done || n.cancelled || n.copy.is_some() || n.copy_of.is_some() {
                    continue;
                }
                let anchor = match n.op {
                    // CPU and disk originals must be in service: queueing
                    // delay is contention, which the per-resource schedulers
                    // already make visible, not a straggler.
                    MonoOp::Compute { .. } | MonoOp::DiskRead { .. } => {
                        if !n.running {
                            continue;
                        }
                        n.started
                    }
                    // Writes are never speculated: there is no second copy of
                    // the data to write *from*, and write placement is
                    // already load-balanced across disks.
                    MonoOp::DiskWrite { .. } => continue,
                    MonoOp::NetFetch { via_disk, .. } => {
                        if n.net_phase == NetPhase::Waiting {
                            continue;
                        }
                        // An in-memory-shuffle fetch has exactly one source
                        // and an identical re-request would share the same
                        // ports; nothing to re-dispatch against.
                        if !via_disk {
                            continue;
                        }
                        // Anchored at the serve enqueue: a pile-up on a
                        // degraded serve disk is exactly the straggle a
                        // replica serve disk beats.
                        n.serve_queued
                    }
                };
                let key = (self.mts[mt].key.job.0, self.mts[mt].key.stage.0, n.purpose);
                let (med, enough) = if self.cfg.per_machine_duration_pools {
                    // Median of per-machine medians: a single partitioned or
                    // degraded machine contributes one vote, not a tail that
                    // drags the whole population's median.
                    let total = self.jobs[key.0 as usize].stages[key.1 as usize].total;
                    let lo = (key.0, key.1, key.2, 0u32);
                    let hi = (key.0, key.1, key.2, u32::MAX);
                    let mut meds: Vec<f64> = Vec::new();
                    let mut count = 0usize;
                    for (_, samples) in self.durations_pm.range(lo..=hi) {
                        meds.push(median(samples));
                        count += samples.len();
                    }
                    (median(&meds), count >= 2 && count * 2 >= total)
                } else {
                    match self.durations.get(&key) {
                        Some(samples) => {
                            let total = self.jobs[key.0 as usize].stages[key.1 as usize].total;
                            (
                                median(samples),
                                samples.len() >= 2 && samples.len() * 2 >= total,
                            )
                        }
                        None => (0.0, false),
                    }
                };
                if !enough || med <= 0.0 {
                    continue;
                }
                let threshold = (mult * med).max(min_rt);
                let elapsed = self.now.since(anchor).as_secs_f64();
                if elapsed > threshold {
                    changed |= self.launch_copy(mt, node);
                } else {
                    // Not over the line yet: schedule a deterministic wake-up
                    // at the projected crossing so the straggler is caught
                    // even if no completion event lands near it.
                    let mut at = anchor + SimDuration::from_secs_f64(threshold);
                    if at <= self.now {
                        at = SimTime(self.now.0 + 1);
                    }
                    if self.mts[mt].nodes[node].spec_wake_at != Some(at) {
                        self.mts[mt].nodes[node].spec_wake_at = Some(at);
                        self.spec_timers.schedule(at, ());
                    }
                }
            }
        }
        changed
    }

    /// Launches the single-resource speculative copy for `node`, if an
    /// alternate placement exists. The copy shares the multitask's DAG slot
    /// (`copy_of` back-pointer) but has no dependents and never touches
    /// `remaining`: whichever of the pair finishes first completes the
    /// original's DAG node.
    fn launch_copy(&mut self, mt: usize, node: usize) -> bool {
        if self.mts[mt].nodes.len() >= (1 << 16) {
            return false; // stream-id encoding limit; never hit in practice
        }
        let home = self.mts[mt].machine;
        let orig_op = self.mts[mt].nodes[node].op;
        let purpose = self.mts[mt].nodes[node].purpose;
        // Where the copy runs: its op, its net phase, and the disk queue (on
        // `enqueue_on.0`) or CPU queue it enters.
        let (copy_op, is_fetch_copy, enqueue_on) = match orig_op {
            MonoOp::Compute { work } => {
                // Duplicate the compute on this machine's CPU scheduler. The
                // copy runs clean: the straggle factor models a degraded
                // *attempt* (JIT pause, bad core), not degraded data.
                let mut clean = work;
                if let Some(f) = self.mts[mt].straggle {
                    clean.deser /= f;
                    clean.compute /= f;
                    clean.ser /= f;
                }
                (MonoOp::Compute { work: clean }, false, None)
            }
            MonoOp::DiskRead { disk, bytes, .. } => match purpose {
                Purpose::ReadInput => {
                    // HDFS replica lookup: prefer another local disk, else
                    // fetch the block from an alive replica machine's disk.
                    let Some(block) = self.mts[mt].input_block else {
                        return false;
                    };
                    let replicas: Vec<(usize, usize)> = self.jobs[self.mts[mt].key.job.0 as usize]
                        .blocks
                        .extra_replicas(block)
                        .to_vec();
                    let local = replicas
                        .iter()
                        .find(|(m, d)| *m == home && *d != disk)
                        .copied();
                    if let Some((_, alt)) = local {
                        (
                            MonoOp::DiskRead {
                                machine: home,
                                disk: alt,
                                bytes,
                            },
                            false,
                            Some((home, alt)),
                        )
                    } else if let Some((rm, rd)) = replicas
                        .iter()
                        .find(|(m, _)| *m != home && self.machines[*m].alive)
                        .copied()
                    {
                        (
                            MonoOp::NetFetch {
                                from: rm,
                                remote_disk: rd,
                                bytes,
                                via_disk: true,
                            },
                            true,
                            Some((rm, rd)),
                        )
                    } else {
                        return false;
                    }
                }
                Purpose::ReadShuffleLocal => {
                    // The local shuffle share was written round-robin across
                    // disks; a re-read from the next disk models reading the
                    // co-located duplicate spill.
                    let nd = self.machines[home].sched.n_disks();
                    if nd < 2 {
                        return false;
                    }
                    let alt = (disk + 1) % nd;
                    (
                        MonoOp::DiskRead {
                            machine: home,
                            disk: alt,
                            bytes,
                        },
                        false,
                        Some((home, alt)),
                    )
                }
                _ => return false,
            },
            MonoOp::NetFetch {
                from,
                remote_disk,
                bytes,
                via_disk: true,
            } => {
                // Re-request the share from the same sender via its next
                // serve disk (the serve-disk cursor is round-robin, so any
                // disk can serve any share).
                if !self.machines[from].alive {
                    return false;
                }
                let nd = self.machines[from].sched.n_disks();
                if nd < 2 {
                    return false;
                }
                let alt = (remote_disk + 1) % nd;
                (
                    MonoOp::NetFetch {
                        from,
                        remote_disk: alt,
                        bytes,
                        via_disk: true,
                    },
                    true,
                    Some((from, alt)),
                )
            }
            _ => return false,
        };
        if self.partitions_on {
            // Never speculate across a cut pair: the copy would stall too.
            if let MonoOp::NetFetch { from, .. } = copy_op {
                if self.cut_pairs.contains(&(from, home)) {
                    return false;
                }
            }
        }
        let idx = self.mts[mt].nodes.len();
        self.mts[mt].nodes.push(MonoNode {
            op: copy_op,
            purpose,
            deps_remaining: 0,
            dependent: None,
            queued: self.now,
            started: self.now,
            serve_queued: self.now,
            serve_started: self.now,
            net_phase: if is_fetch_copy {
                NetPhase::RemoteRead
            } else {
                NetPhase::Waiting
            },
            done: false,
            running: false,
            cancelled: false,
            copy: None,
            copy_of: Some(node),
            spec_wake_at: None,
            stall_since: None,
            stall_deadline: None,
            fetch_retries: 0,
            parked_bytes: None,
        });
        self.mts[mt].nodes[node].copy = Some(idx);
        let key = self.mts[mt].key;
        let ji = key.job.0 as usize;
        self.jobs[ji].recovery.mono_copies[res_index(&orig_op)] += 1;
        self.emit_instant(cluster::InstantKind::MonoCopy {
            job: key.job.0,
            stage: key.stage.0,
            task: key.task.0,
            resource: res_index(&orig_op),
        });
        match copy_op {
            MonoOp::Compute { .. } => self.machines[home].sched.enqueue_cpu((mt, idx)),
            _ => {
                let (m, d) = enqueue_on.expect("non-compute copies carry a disk target");
                self.machines[m].sched.enqueue_disk(d, (mt, idx), false);
            }
        }
        true
    }

    /// A speculative copy's stream finished. Either its internal serve-read
    /// segment (chain to the transfer) or the copy itself — in which case it
    /// wins: it completes the original's DAG node and the original is torn
    /// down.
    fn copy_finished(&mut self, mt: usize, copy: usize) {
        let orig = self.mts[mt].nodes[copy]
            .copy_of
            .expect("copy_finished on an original");
        let copy_op = self.mts[mt].nodes[copy].op;
        if let MonoOp::NetFetch {
            from, remote_disk, ..
        } = copy_op
        {
            if self.mts[mt].nodes[copy].net_phase == NetPhase::RemoteRead {
                // Serve read done on the replica/alternate disk; no serve
                // record is emitted for copies (the winner pair emits one
                // record, below).
                self.machines[from].sched.finish_disk(remote_disk, false);
                self.start_transfer(mt, copy);
                return;
            }
        }
        // The copy beat its original (had the original finished first, this
        // node would have been cancelled). Release the copy's slot …
        let home = self.mts[mt].machine;
        match copy_op {
            MonoOp::Compute { .. } => self.machines[home].sched.finish_cpu(),
            MonoOp::DiskRead { disk, .. } => self.machines[home].sched.finish_disk(disk, false),
            // A fetch copy's transfer holds no slot of its own; the fetch
            // *group* slot is settled against the original below.
            MonoOp::NetFetch { .. } => {}
            MonoOp::DiskWrite { .. } => unreachable!("writes are never speculated"),
        }
        self.mts[mt].nodes[copy].done = true;
        self.mts[mt].nodes[copy].running = false;
        let key = self.mts[mt].key;
        let ji = key.job.0 as usize;
        let win_res = res_index(&self.mts[mt].nodes[orig].op);
        self.jobs[ji].recovery.mono_copy_wins[win_res] += 1;
        self.emit_instant(cluster::InstantKind::MonoCopyWin {
            job: key.job.0,
            stage: key.stage.0,
            task: key.task.0,
            resource: win_res,
        });
        self.push_sample(mt, copy);
        // … then perform, exactly once for the pair, the completion
        // bookkeeping the original would have done.
        match self.mts[mt].nodes[orig].op {
            MonoOp::Compute { work } => {
                let consumed: f64 = self.mts[mt]
                    .nodes
                    .iter()
                    .filter(|n| n.copy_of.is_none())
                    .filter(|n| matches!(n.op, MonoOp::DiskRead { .. } | MonoOp::NetFetch { .. }))
                    .map(|n| n.op.bytes())
                    .sum();
                let produced: f64 = self.mts[mt]
                    .nodes
                    .iter()
                    .filter(|n| n.copy_of.is_none())
                    .filter(|n| matches!(n.op, MonoOp::DiskWrite { .. }))
                    .map(|n| n.op.bytes())
                    .sum();
                self.adjust_buffered(home, produced - consumed);
                self.mts[mt].buffered += produced - consumed;
                self.emit(mt, copy, home, ResourceKind::Cpu, 0.0, Some(work));
            }
            MonoOp::DiskRead { bytes, .. } => {
                let (res, m) = match copy_op {
                    // Replica fetched over the network: record it as such.
                    MonoOp::NetFetch { .. } => (ResourceKind::Network, home),
                    _ => (ResourceKind::Disk, home),
                };
                self.emit(mt, copy, m, res, bytes, None);
            }
            MonoOp::NetFetch { bytes, .. } => {
                self.emit(mt, copy, home, ResourceKind::Network, bytes, None);
                self.mts[mt].fetches_outstanding -= 1;
                if self.mts[mt].fetches_outstanding == 0 {
                    self.machines[home].sched.finish_net_group();
                }
            }
            MonoOp::DiskWrite { .. } => unreachable!("writes are never speculated"),
        }
        // Tear down the losing original and complete its DAG node.
        self.cancel_node(mt, orig);
        self.complete_node(mt, orig);
    }

    /// Deterministically cancels a racing monotask (the loser of a
    /// first-finisher-wins pair, or a copy whose replica source died). Queued
    /// losers cost nothing — their stale queue entry is skipped at pop time.
    /// In-flight losers have their stream torn down, their scheduler slot
    /// returned, and their elapsed service plus full requested I/O bytes
    /// charged as waste.
    fn cancel_node(&mut self, mt: usize, node: usize) {
        let n = &self.mts[mt].nodes[node];
        if n.done || n.cancelled {
            return;
        }
        let op = n.op;
        let phase = n.net_phase;
        let running = n.running;
        let anchor = match (op, phase) {
            (MonoOp::NetFetch { .. }, NetPhase::RemoteRead) => n.serve_started,
            _ => n.started,
        };
        self.mts[mt].nodes[node].cancelled = true;
        if !running {
            // Never started: nothing to tear down, nothing wasted.
            return;
        }
        let home = self.mts[mt].machine;
        let sid = stream_id(mt, node);
        // Tear the stream down and return the slot. A `contains`/`remove`
        // miss means the loser drained into the allocator's completed list
        // this same instant — its pending on_stream_done releases the slot
        // via the cancelled branch instead.
        match op {
            MonoOp::Compute { .. } => {
                if self.machines[home].fluid.contains(sid) {
                    self.machines[home].fluid.remove(self.now, sid);
                    self.machines[home].sched.finish_cpu();
                }
            }
            MonoOp::DiskRead { disk, .. } => {
                if self.machines[home].fluid.contains(sid) {
                    self.machines[home].fluid.remove(self.now, sid);
                    self.machines[home].sched.finish_disk(disk, false);
                }
            }
            MonoOp::DiskWrite { .. } => unreachable!("writes are never speculated"),
            MonoOp::NetFetch {
                from, remote_disk, ..
            } => match phase {
                NetPhase::RemoteRead => {
                    if self.machines[from].alive && self.machines[from].fluid.contains(sid) {
                        self.machines[from].fluid.remove(self.now, sid);
                        self.machines[from].sched.finish_disk(remote_disk, false);
                    }
                }
                NetPhase::Transfer => {
                    if let Some(fabric) = &mut self.fabric {
                        fabric.remove(self.now, FlowId(sid.0));
                    } else if self.machines[home].fluid.contains(sid) {
                        self.machines[home].fluid.remove(self.now, sid);
                    }
                }
                NetPhase::Waiting => {}
            },
        }
        // Waste: full requested I/O bytes once service started (the same
        // rule the slot-level engine charges), plus the elapsed service time.
        let ji = self.mts[mt].key.job.0 as usize;
        self.jobs[ji].recovery.wasted_work_seconds += self.now.since(anchor).as_secs_f64();
        if !matches!(op, MonoOp::Compute { .. }) {
            self.jobs[ji].recovery.wasted_bytes += op.bytes();
        }
    }

    /// A cancelled loser whose stream had already drained into the completed
    /// list when the winner tore things down: release its scheduler slot
    /// here. Waste was charged at cancellation.
    fn release_drained_loser(&mut self, mt: usize, node: usize) {
        let op = self.mts[mt].nodes[node].op;
        let phase = self.mts[mt].nodes[node].net_phase;
        let home = self.mts[mt].machine;
        self.mts[mt].nodes[node].running = false;
        match op {
            MonoOp::Compute { .. } => self.machines[home].sched.finish_cpu(),
            MonoOp::DiskRead { disk, .. } => self.machines[home].sched.finish_disk(disk, false),
            MonoOp::DiskWrite { disk, .. } => self.machines[home].sched.finish_disk(disk, true),
            MonoOp::NetFetch {
                from, remote_disk, ..
            } => match phase {
                NetPhase::RemoteRead => {
                    if self.machines[from].alive {
                        self.machines[from].sched.finish_disk(remote_disk, false);
                    }
                }
                // Transfers hold no per-stream slot.
                NetPhase::Transfer | NetPhase::Waiting => {}
            },
        }
    }

    /// Adjusts a machine's in-flight buffer accounting and flips the §3.5
    /// memory-pressure mode across its disk queues.
    fn adjust_buffered(&mut self, machine: usize, delta: f64) {
        let Some(limit_frac) = self.cfg.memory_limit_fraction else {
            let mach = &mut self.machines[machine];
            mach.buffered = (mach.buffered + delta).max(0.0);
            mach.peak_buffered = mach.peak_buffered.max(mach.buffered);
            return;
        };
        let limit = limit_frac * self.machines[machine].fluid.spec().memory;
        let mach = &mut self.machines[machine];
        mach.buffered = (mach.buffered + delta).max(0.0);
        mach.peak_buffered = mach.peak_buffered.max(mach.buffered);
        let pressured = mach.buffered > limit;
        mach.sched.set_prefer_writes(pressured);
    }

    fn emit(
        &mut self,
        mt: usize,
        node: usize,
        machine: usize,
        resource: ResourceKind,
        bytes: f64,
        cpu: Option<dataflow::CpuWork>,
    ) {
        let n = &self.mts[mt].nodes[node];
        self.records.push(MonotaskRecord {
            multitask: self.mts[mt].key,
            machine,
            resource,
            purpose: n.purpose,
            queued: n.queued,
            started: n.started,
            ended: self.now,
            bytes,
            cpu,
        });
    }

    /// Marks a monotask done, releases dependents, and finishes the
    /// multitask / stage / job when complete.
    fn complete_node(&mut self, mt: usize, node: usize) {
        debug_assert!(!self.mts[mt].nodes[node].done);
        self.mts[mt].nodes[node].done = true;
        if self.spec_on {
            // The original finished first: tear down its still-racing copy.
            if let Some(c) = self.mts[mt].nodes[node].copy {
                if !self.mts[mt].nodes[c].done && !self.mts[mt].nodes[c].cancelled {
                    self.cancel_node(mt, c);
                }
            }
        }
        if let Some(d) = self.mts[mt].nodes[node].dependent {
            let d = d as usize;
            self.mts[mt].nodes[d].deps_remaining -= 1;
            if self.mts[mt].nodes[d].deps_remaining == 0 {
                debug_assert!(
                    !matches!(self.mts[mt].nodes[d].op, MonoOp::NetFetch { .. }),
                    "fetches must be DAG roots"
                );
                self.enqueue_node(mt, d);
            }
        }
        self.mts[mt].remaining -= 1;
        if self.mts[mt].remaining == 0 {
            self.finish_multitask(mt);
        }
    }

    fn finish_multitask(&mut self, mt: usize) {
        let key = self.mts[mt].key;
        let machine = self.mts[mt].machine;
        self.machines[machine].assigned -= 1;
        let ji = key.job.0 as usize;
        let si = key.stage.0 as usize;
        let task = self.jobs[ji].spec.stages[si].tasks[key.task.0 as usize];
        if self.faults_on {
            if self.mts[mt].recompute {
                self.jobs[ji].recovery.recompute_seconds +=
                    self.now.since(self.mts[mt].start).as_secs_f64();
            }
            // Lineage index: which completed tasks' outputs live on `machine`.
            self.jobs[ji].stages[si].completed_on[machine].push(key.task.0);
        }
        {
            let run = &mut self.jobs[ji].stages[si];
            if let OutputSpec::ShuffleWrite { bytes, .. } = task.output {
                run.shuffle_by_machine[machine] += bytes;
                run.shuffle_epoch += 1;
            }
            run.completed += 1;
            if run.completed == run.total {
                run.done = true;
                run.ended = Some(self.now);
            }
        }
        if self.jobs[ji].stages[si].done {
            self.unlock_dependents(ji, si);
            if self.jobs[ji].stages.iter().all(|s| s.done) {
                self.jobs[ji].done = true;
                self.jobs[ji].end = self.now;
            }
        }
    }

    /// Readies stages whose dependencies are now all complete.
    fn unlock_dependents(&mut self, ji: usize, completed: usize) {
        for si in 0..self.jobs[ji].spec.stages.len() {
            let deps = &self.jobs[ji].spec.stages[si].deps;
            if self.jobs[ji].stages[si].ready || !deps.iter().any(|d| d.0 as usize == completed) {
                continue;
            }
            let all_done = deps.iter().all(|d| self.jobs[ji].stages[d.0 as usize].done);
            if all_done {
                self.make_stage_ready(ji, si);
            }
        }
    }

    fn into_output(self) -> MonoRunOutput {
        let makespan = self.now;
        let mut stats = self.stats;
        for m in &self.machines {
            // Machine-local allocation is attributed to its own phase so the
            // fabric's share of the wall stands out at scale.
            stats.merge(&m.fluid.stats().as_machine_alloc());
        }
        if let Some(fabric) = &self.fabric {
            stats.merge(&fabric.stats());
        }
        for j in &self.jobs {
            for s in &j.stages {
                stats.template_build_nanos += s.control.template_build_nanos;
                stats.instantiate_nanos += s.control.instantiate_nanos;
                stats.template_hits += s.control.template_hits;
                stats.template_misses += s.control.template_misses;
                stats.template_invalidations += s.control.template_invalidations;
            }
        }
        // main_loop stored raw loop wall time; what the allocators account
        // for is attributed to them, and task-launch time is split into the
        // template build/instantiate buckets — the rest is executor control.
        stats.control_nanos = stats.control_nanos.saturating_sub(
            stats.allocator_nanos() + stats.template_build_nanos + stats.instantiate_nanos,
        );
        let mut total_recovery = RecoveryStats::default();
        for j in &self.jobs {
            total_recovery.merge(&j.recovery);
        }
        stats.tasks_retried = total_recovery.tasks_retried;
        stats.tasks_speculated = total_recovery.tasks_speculated;
        stats.wasted_work_nanos = (total_recovery.wasted_work_seconds * 1e9).round() as u64;
        stats.recompute_nanos = (total_recovery.recompute_seconds * 1e9).round() as u64;
        stats.mono_copies = total_recovery.mono_copies_total();
        stats.mono_copy_wins = total_recovery.mono_copy_wins_total();
        stats.wasted_bytes = total_recovery.wasted_bytes.round() as u64;
        stats.fetch_retries = total_recovery.fetch_retries;
        stats.stalled_fetch_nanos = (total_recovery.stalled_fetch_seconds * 1e9).round() as u64;
        stats.fetch_backoff_nanos = (total_recovery.fetch_backoff_seconds * 1e9).round() as u64;
        stats.fetches_replanned = total_recovery.fetches_replanned;
        let peak_buffered = self.machines.iter().map(|m| m.peak_buffered).collect();
        let jobs = self
            .jobs
            .into_iter()
            .map(|j| JobReport {
                job: j.id,
                name: j.spec.name.clone(),
                start: SimTime::ZERO,
                end: j.end,
                stages: j
                    .stages
                    .iter()
                    .enumerate()
                    .map(|(si, s)| StageReport {
                        stage: StageId(si as u32),
                        start: s.started.expect("stage never started"),
                        end: s.ended.expect("stage never ended"),
                        control: s.control,
                    })
                    .collect(),
                recovery: j.recovery,
            })
            .collect();
        MonoRunOutput {
            jobs,
            records: self.records,
            traces: self.traces,
            queue_trace: self.queue_trace,
            peak_buffered,
            makespan,
            stats,
            instants: self.instants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MachineSpec;
    use dataflow::CostModel;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn small_cluster() -> ClusterSpec {
        ClusterSpec::new(4, MachineSpec::m2_4xlarge())
    }

    fn sort_job(total_gib: f64, tasks: usize) -> (JobSpec, BlockMap) {
        let total = total_gib * GIB;
        let job = dataflow::JobBuilder::new("sort", CostModel::spark_1_3())
            .read_disk(total, total / 100.0, total / tasks as f64)
            .map(1.0, 1.0, true)
            .shuffle(tasks, false)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        let blocks = BlockMap::round_robin(tasks, 4, 2);
        (job, blocks)
    }

    #[test]
    fn sort_job_runs_to_completion() {
        let (job, blocks) = sort_job(4.0, 32);
        let out = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        assert_eq!(out.jobs.len(), 1);
        let report = &out.jobs[0];
        assert_eq!(report.stages.len(), 2);
        assert!(report.duration_secs() > 1.0, "{}", report.duration_secs());
        // The reduce stage starts only after the map stage ends (barrier).
        assert!(report.stages[1].start >= report.stages[0].end);
        assert_eq!(out.makespan, report.end);
    }

    #[test]
    fn every_monotask_kind_is_recorded() {
        let (job, blocks) = sort_job(4.0, 32);
        let out = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        let has = |p: Purpose| out.records.iter().any(|r| r.purpose == p);
        assert!(has(Purpose::Compute));
        assert!(has(Purpose::ReadInput));
        assert!(has(Purpose::WriteShuffle));
        assert!(has(Purpose::ReadShuffleLocal));
        assert!(has(Purpose::ReadShuffleServe));
        assert!(has(Purpose::NetTransfer));
        assert!(has(Purpose::WriteOutput));
    }

    #[test]
    fn byte_accounting_is_conserved() {
        let (job, blocks) = sort_job(2.0, 16);
        let spec = job.clone();
        let out = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        let sum = |p: Purpose| -> f64 {
            out.records
                .iter()
                .filter(|r| r.purpose == p)
                .map(|r| r.bytes)
                .sum()
        };
        let input: f64 = spec.stages[0].tasks.iter().map(|t| t.input.bytes()).sum();
        assert!((sum(Purpose::ReadInput) - input).abs() / input < 1e-9);
        let shuffle = spec.stages[0].total_shuffle_write();
        assert!((sum(Purpose::WriteShuffle) - shuffle).abs() / shuffle < 1e-9);
        // Local reads + remote transfers = all shuffle data.
        let read_back = sum(Purpose::ReadShuffleLocal) + sum(Purpose::NetTransfer);
        assert!(
            (read_back - shuffle).abs() / shuffle < 1e-6,
            "{read_back} vs {shuffle}"
        );
        // Serve reads equal remote transfers.
        let served = sum(Purpose::ReadShuffleServe);
        let net = sum(Purpose::NetTransfer);
        assert!((served - net).abs() / shuffle < 1e-9);
    }

    #[test]
    fn records_have_sane_timings() {
        let (job, blocks) = sort_job(2.0, 16);
        let out = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        for r in &out.records {
            assert!(r.queued <= r.started, "{r:?}");
            assert!(r.started < r.ended, "{r:?}");
        }
    }

    #[test]
    fn in_memory_job_uses_no_disk() {
        let total = 2.0 * GIB;
        let job = dataflow::JobBuilder::new("mem", CostModel::spark_1_3())
            .read_memory(total, 1e7, 32, true)
            .map(1.0, 1.0, true)
            .shuffle(32, true)
            .map(1.0, 1.0, true)
            .write_memory();
        let blocks = BlockMap::round_robin(1, 4, 2);
        let out = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        assert!(out.records.iter().all(|r| r.resource != ResourceKind::Disk));
        assert!(out
            .records
            .iter()
            .any(|r| r.resource == ResourceKind::Network));
        // No deserialization CPU in the map stage: input was stored
        // deserialized. (The reduce stage still deserializes shuffle bytes.)
        let map_deser: f64 = out
            .records
            .iter()
            .filter(|r| r.multitask.stage == StageId(0))
            .filter_map(|r| r.cpu)
            .map(|c| c.deser)
            .sum();
        assert_eq!(map_deser, 0.0);
    }

    #[test]
    fn concurrent_jobs_share_the_cluster_and_both_finish() {
        let (a, ba) = sort_job(2.0, 16);
        let (b, bb) = sort_job(2.0, 16);
        let solo = run(
            &small_cluster(),
            &[(a.clone(), ba.clone())],
            &MonoConfig::default(),
        );
        let both = run(
            &small_cluster(),
            &[(a, ba), (b, bb)],
            &MonoConfig::default(),
        );
        assert_eq!(both.jobs.len(), 2);
        // Sharing slows each job down relative to running alone.
        assert!(both.jobs[0].duration_secs() > solo.jobs[0].duration_secs());
        // But the pair finishes in less than 2.5x the solo time (they overlap).
        assert!(both.makespan.as_secs_f64() < 2.5 * solo.makespan.as_secs_f64());
    }

    #[test]
    fn concurrency_override_throttles_parallelism() {
        let (job, blocks) = sort_job(2.0, 32);
        let cfg = MonoConfig {
            concurrency_override: Some(1),
            ..MonoConfig::default()
        };
        let slow = run(&small_cluster(), &[(job.clone(), blocks.clone())], &cfg);
        let fast = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        assert!(
            slow.makespan.as_secs_f64() > 1.5 * fast.makespan.as_secs_f64(),
            "slow={} fast={}",
            slow.makespan.as_secs_f64(),
            fast.makespan.as_secs_f64()
        );
    }

    #[test]
    fn memory_regulation_caps_in_flight_buffers() {
        // A fetch-heavy workload: few large reduce tasks each buffer their
        // whole shuffle fetch before computing, so throttling concurrent
        // fetch groups (§3.5) must lower the peak visibly.
        let total = 6.0 * GIB;
        let job = dataflow::JobBuilder::new("fetchy", CostModel::spark_1_3())
            .read_disk(total, total / 100.0, total / 48.0)
            .map(1.0, 1.0, true)
            .shuffle(16, false)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        let blocks = BlockMap::round_robin(48, 4, 2);
        let base = run(
            &small_cluster(),
            &[(job.clone(), blocks.clone())],
            &MonoConfig::default(),
        );
        let cfg = MonoConfig {
            memory_limit_fraction: Some(0.005), // ~320 MB watermark
            ..MonoConfig::default()
        };
        let regulated = run(&small_cluster(), &[(job, blocks)], &cfg);
        let peak = |o: &MonoRunOutput| o.peak_buffered.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak(&base) > 0.0);
        // Regulation trims the peak (fetch groups throttled, reads deferred)
        // but cannot eliminate produced-output backlog: computes outpace the
        // disks. The ablation binary shows the full peak to runtime tradeoff.
        assert!(
            peak(&regulated) < 0.85 * peak(&base),
            "regulated {} vs base {}",
            peak(&regulated),
            peak(&base)
        );
        // Both still complete correctly.
        assert_eq!(regulated.jobs[0].stages.len(), 2);
    }

    #[test]
    fn shortest_queue_writes_avoid_the_hot_disk() {
        // All input blocks on disk 0 of each machine: round-robin writes
        // keep hammering the hot disk half the time; shortest-queue writes
        // drain to the idle disk 1.
        let total = 4.0 * GIB;
        let job = dataflow::JobBuilder::new("skew", CostModel::spark_1_3())
            .read_disk(total, total / 10_000.0, total / 64.0)
            .map(1.0, 1.0, false)
            .write_disk(1.0);
        // disks_per_machine = 1 in the placement → every block on disk 0.
        let blocks = BlockMap::round_robin(64, 4, 1);
        let rr = run(
            &small_cluster(),
            &[(job.clone(), blocks.clone())],
            &MonoConfig::default(),
        );
        let cfg = MonoConfig {
            write_disk_choice: DiskChoice::ShortestQueue,
            ..MonoConfig::default()
        };
        let sq = run(&small_cluster(), &[(job, blocks)], &cfg);
        assert!(
            sq.jobs[0].duration_secs() <= rr.jobs[0].duration_secs() * 1.001,
            "shortest-queue {} vs round-robin {}",
            sq.jobs[0].duration_secs(),
            rr.jobs[0].duration_secs()
        );
    }

    #[test]
    fn fifo_job_policy_prioritizes_the_first_job() {
        let (a, ba) = sort_job(2.0, 16);
        let (b, bb) = sort_job(2.0, 16);
        let fair = run(
            &small_cluster(),
            &[(a.clone(), ba.clone()), (b.clone(), bb.clone())],
            &MonoConfig::default(),
        );
        let cfg = MonoConfig {
            job_policy: JobPolicy::Fifo,
            ..MonoConfig::default()
        };
        let fifo = run(&small_cluster(), &[(a, ba), (b, bb)], &cfg);
        assert!(
            fifo.jobs[0].duration_secs() <= fair.jobs[0].duration_secs(),
            "fifo job0 {} vs fair job0 {}",
            fifo.jobs[0].duration_secs(),
            fair.jobs[0].duration_secs()
        );
        // Total work is the same either way (within scheduling noise).
        assert!(
            (fifo.makespan.as_secs_f64() - fair.makespan.as_secs_f64()).abs()
                / fair.makespan.as_secs_f64()
                < 0.25
        );
    }

    #[test]
    fn full_duplex_fabric_matches_rx_model_on_symmetric_shuffles() {
        let (job, blocks) = sort_job(4.0, 32);
        let rx_only = run(
            &small_cluster(),
            &[(job.clone(), blocks.clone())],
            &MonoConfig::default(),
        );
        let cfg = MonoConfig {
            full_duplex_network: true,
            ..MonoConfig::default()
        };
        let duplex = run(&small_cluster(), &[(job, blocks)], &cfg);
        let (a, b) = (
            rx_only.jobs[0].duration_secs(),
            duplex.jobs[0].duration_secs(),
        );
        assert!(
            (a - b).abs() / a < 0.10,
            "symmetric shuffle should not care: rx {a}, duplex {b}"
        );
    }

    #[test]
    fn full_duplex_fabric_sees_the_hot_sender() {
        // One map task (a single cached partition, so it cannot be stolen
        // apart): all shuffle data ends up in one machine's memory, and
        // reducers everywhere fetch from that lone sender, whose transmit
        // link binds. The receiver-only model misses this; the fabric does
        // not.
        let total = 4.0 * GIB;
        let job = dataflow::JobBuilder::new("hot", CostModel::spark_1_3())
            .read_memory(total, total / 10_000.0, 1, true)
            .map(1.0, 1.0, false)
            .shuffle(32, true)
            .map(1.0, 1.0, false)
            .write_memory();
        let blocks = BlockMap::round_robin(1, 1, 2);
        let rx_only = run(
            &small_cluster(),
            &[(job.clone(), blocks.clone())],
            &MonoConfig::default(),
        );
        let cfg = MonoConfig {
            full_duplex_network: true,
            ..MonoConfig::default()
        };
        let duplex = run(&small_cluster(), &[(job, blocks)], &cfg);
        assert!(
            duplex.jobs[0].duration_secs() > 1.2 * rx_only.jobs[0].duration_secs(),
            "hot sender invisible: rx {}, duplex {}",
            rx_only.jobs[0].duration_secs(),
            duplex.jobs[0].duration_secs()
        );
    }

    #[test]
    fn queue_trace_makes_contention_visible() {
        // A disk-bound job must show disk queues building up (§3.1: the
        // design "makes resource contention visible as the queue length").
        let (job, blocks) = sort_job(4.0, 32);
        let out = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        assert!(!out.queue_trace.is_empty());
        let max_disk_q = out
            .queue_trace
            .iter()
            .flat_map(|s| s.disk_queued.iter())
            .cloned()
            .max()
            .unwrap_or(0);
        assert!(max_disk_q >= 1, "no disk queueing observed");
        // Snapshots are time-ordered within each machine.
        for m in 0..4 {
            let times: Vec<_> = out
                .queue_trace
                .iter()
                .filter(|s| s.machine == m)
                .map(|s| s.time)
                .collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
        let busiest = out.queue_trace.iter().map(|s| s.total()).max().unwrap();
        assert!(busiest >= 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let (job, blocks) = sort_job(2.0, 16);
        let a = run(
            &small_cluster(),
            &[(job.clone(), blocks.clone())],
            &MonoConfig::default(),
        );
        let b = run(&small_cluster(), &[(job, blocks)], &MonoConfig::default());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.records.len(), b.records.len());
    }
}
