//! Execution templates: plan-once/stamp-many caching of per-stage control
//! decisions (after *Execution Templates*, Mashayekhi et al. — see
//! PAPERS.md).
//!
//! The expensive part of launching a reduce multitask is re-deriving its
//! sender-share layout: a sweep over every machine's completed shuffle bytes
//! for every dependency, with a division per sender. That layout is
//! *identical for every task of the stage* — each task fetches
//! `total / n_tasks` bytes split across senders in proportion to where the
//! bytes landed — so the executor captures it once as a [`StageTemplate`] and
//! stamps per-task monotask DAGs from it arithmetically: compute at node 0,
//! one input node per positive sender share in capture order, the output
//! write last. Everything that genuinely varies per task (the executing
//! machine, serve-disk and write-disk cursors, straggle factors, stream ids)
//! is stamped at instantiation time, which is what keeps templated runs
//! bit-identical to the untemplated path.
//!
//! Validity is epoch-based: every producing stage carries a counter bumped
//! whenever its shuffle-byte table changes (a task completes, or a crash's
//! lineage recomputation zeroes a machine's bytes). A template records the
//! epochs it captured; a mismatch at instantiation forces a rebuild. Losing
//! shuffle outputs additionally drops consumer templates eagerly, so the
//! epoch check is a backstop rather than the only guard.

/// One sender entry of a captured shuffle layout: a machine holding a
/// positive share of every task's fetch.
#[derive(Clone, Copy, Debug)]
pub struct TemplateSender {
    /// Sender machine.
    pub machine: usize,
    /// Bytes each task of the stage fetches from this sender.
    pub bytes: f64,
    /// Whether the share lives on the sender's disk (false: in memory).
    pub via_disk: bool,
}

/// The captured control decision for one `(job, stage)`: the per-task sender
/// layout plus the producer epochs it was derived from. Immutable once
/// captured — invalidation replaces the whole template.
///
/// The serve *disk* for each sender is deliberately not cached: the
/// untemplated path assigns it from a per-machine round-robin cursor at
/// launch time, and replaying that cursor per instantiation (one advance per
/// positive share, in capture order) is required for bit-identity.
#[derive(Clone, Debug, Default)]
pub struct StageTemplate {
    /// Positive per-task sender shares, dependency-major and machine-minor —
    /// the exact order the untemplated sweep visits them.
    pub senders: Vec<TemplateSender>,
    /// `shuffle_epoch` of each dependency (in spec order) at capture time;
    /// the template is valid while every producer's epoch still matches.
    pub dep_epochs: Vec<u64>,
}
