//! Per-machine resource schedulers and their queues (§3.3).
//!
//! Each worker runs one scheduler per resource, each admitting only as many
//! monotasks as the resource can serve efficiently:
//!
//! * **CPU** — one monotask per core.
//! * **HDD** — one monotask per disk ("running multiple concurrent monotasks
//!   reduces throughput due to seek time").
//! * **SSD** — a configurable number of outstanding monotasks; four "achieved
//!   nearly the maximum throughput".
//! * **Network** — receiver-side scheduling: outstanding requests limited to
//!   those coming from four multitasks, balancing link utilization against
//!   coarse-grained pipelining.
//!
//! Disk queues **round-robin between reads and writes**: when a queue of
//! writes accumulates, strict FIFO would stall every new multitask's read —
//! and with it all downstream CPU work — until the writes drain, starving the
//! CPU in alternating bursts (§3.3's queueing discussion). The round-robin
//! keeps a pipeline of monotasks flowing to every resource.

use std::collections::VecDeque;

/// A queued monotask reference: `(multitask index, node index)` in the
/// executor's arena.
pub type QueuedRef = (usize, usize);

/// One disk's admission queues.
#[derive(Debug)]
struct DiskQueues {
    slots: usize,
    running: usize,
    /// How many of `running` are writes (memory-pressure bookkeeping).
    running_writes: usize,
    reads: VecDeque<(u64, QueuedRef)>,
    writes: VecDeque<(u64, QueuedRef)>,
    /// Round-robin state: serve a read next when true.
    serve_read_next: bool,
}

impl DiskQueues {
    fn pop(&mut self, round_robin: bool, pressure: Option<bool>) -> Option<QueuedRef> {
        if self.running >= self.slots {
            return None;
        }
        // `(entry, is_write)` so the class of the admitted monotask is known.
        let item: Option<((u64, QueuedRef), bool)> = if let Some(allow_read) = pressure {
            // Memory pressure (§3.5): drain buffered output to disk; new
            // reads would only buffer more data, so they are admitted only
            // when the caller vouches progress needs one (`allow_read`:
            // the machine is otherwise idle).
            match self.writes.pop_front() {
                Some(w) => Some((w, true)),
                None if !allow_read => None,
                None => self.reads.pop_front().map(|r| (r, false)),
            }
        } else if round_robin {
            // Alternate classes; fall back to whichever is non-empty.
            let first_reads = self.serve_read_next;
            self.serve_read_next = !self.serve_read_next;
            if first_reads {
                self.reads
                    .pop_front()
                    .map(|r| (r, false))
                    .or_else(|| self.writes.pop_front().map(|w| (w, true)))
            } else {
                self.writes
                    .pop_front()
                    .map(|w| (w, true))
                    .or_else(|| self.reads.pop_front().map(|r| (r, false)))
            }
        } else {
            // Strict FIFO across both classes, by enqueue sequence.
            match (self.reads.front(), self.writes.front()) {
                (Some((ra, _)), Some((wa, _))) => {
                    if ra <= wa {
                        self.reads.pop_front().map(|r| (r, false))
                    } else {
                        self.writes.pop_front().map(|w| (w, true))
                    }
                }
                (Some(_), None) => self.reads.pop_front().map(|r| (r, false)),
                (None, Some(_)) => self.writes.pop_front().map(|w| (w, true)),
                (None, None) => None,
            }
        };
        item.map(|((_, r), is_write)| {
            self.running += 1;
            if is_write {
                self.running_writes += 1;
            }
            r
        })
    }
}

/// All resource schedulers of one worker machine.
#[derive(Debug)]
pub struct MachineScheduler {
    cores: usize,
    cpu_running: usize,
    cpu_queue: VecDeque<QueuedRef>,
    disks: Vec<DiskQueues>,
    net_limit: usize,
    net_active: usize,
    /// Multitasks (by arena index) whose fetch groups await admission.
    net_queue: VecDeque<usize>,
    round_robin: bool,
    /// Memory-pressure mode (§3.5): serve writes first so buffered data
    /// drains to disk instead of accumulating.
    prefer_writes: bool,
    seq: u64,
}

impl MachineScheduler {
    /// Creates schedulers for a machine with `cores` cores, per-disk slot
    /// counts `disk_slots`, and a receiver-side limit of `net_limit`
    /// concurrently-fetching multitasks.
    pub fn new(
        cores: usize,
        disk_slots: &[usize],
        net_limit: usize,
        round_robin: bool,
    ) -> MachineScheduler {
        assert!(cores > 0 && net_limit > 0);
        MachineScheduler {
            cores,
            cpu_running: 0,
            cpu_queue: VecDeque::new(),
            disks: disk_slots
                .iter()
                .map(|&slots| DiskQueues {
                    slots,
                    running: 0,
                    running_writes: 0,
                    reads: VecDeque::new(),
                    writes: VecDeque::new(),
                    serve_read_next: true,
                })
                .collect(),
            net_limit,
            net_active: 0,
            net_queue: VecDeque::new(),
            round_robin,
            prefer_writes: false,
            seq: 0,
        }
    }

    /// Enables or disables memory-pressure mode (§3.5's suggested policy,
    /// implemented as an opt-in extension): while enabled, disk queues serve
    /// writes and defer reads (use [`pop_disk_pressured`](Self::pop_disk_pressured)),
    /// and fetch-group admission is throttled to one outstanding group.
    pub fn set_prefer_writes(&mut self, prefer: bool) {
        self.prefer_writes = prefer;
    }

    /// Whether memory-pressure mode is enabled.
    pub fn prefer_writes(&self) -> bool {
        self.prefer_writes
    }

    /// Queues a compute monotask.
    pub fn enqueue_cpu(&mut self, r: QueuedRef) {
        self.cpu_queue.push_back(r);
    }

    /// Queues a disk monotask on `disk`, classed as read or write.
    pub fn enqueue_disk(&mut self, disk: usize, r: QueuedRef, is_write: bool) {
        let seq = self.seq;
        self.seq += 1;
        let q = &mut self.disks[disk];
        if is_write {
            q.writes.push_back((seq, r));
        } else {
            q.reads.push_back((seq, r));
        }
    }

    /// Queues a multitask's network-fetch group.
    pub fn enqueue_net_group(&mut self, multitask: usize) {
        self.net_queue.push_back(multitask);
    }

    /// Admits the next compute monotask if a core is free.
    pub fn pop_cpu(&mut self) -> Option<QueuedRef> {
        if self.cpu_running >= self.cores {
            return None;
        }
        let r = self.cpu_queue.pop_front();
        if r.is_some() {
            self.cpu_running += 1;
        }
        r
    }

    /// Releases a core.
    pub fn finish_cpu(&mut self) {
        debug_assert!(self.cpu_running > 0);
        self.cpu_running -= 1;
    }

    /// Admits the next monotask on `disk` if a slot is free.
    pub fn pop_disk(&mut self, disk: usize) -> Option<QueuedRef> {
        let rr = self.round_robin;
        self.disks[disk].pop(rr, None)
    }

    /// Memory-pressure admission (§3.5): writes only, unless `allow_read`
    /// (the caller's guarantee that a read is needed for progress).
    pub fn pop_disk_pressured(&mut self, disk: usize, allow_read: bool) -> Option<QueuedRef> {
        let rr = self.round_robin;
        self.disks[disk].pop(rr, Some(allow_read))
    }

    /// Releases a slot on `disk`; `was_write` must match the class of the
    /// completed monotask.
    pub fn finish_disk(&mut self, disk: usize, was_write: bool) {
        let d = &mut self.disks[disk];
        debug_assert!(d.running > 0);
        d.running -= 1;
        if was_write {
            debug_assert!(d.running_writes > 0);
            d.running_writes -= 1;
        }
    }

    /// Admits the next multitask's fetch group if under the receiver limit.
    /// Under memory pressure (§3.5) the limit drops to one outstanding
    /// group: every fetch buffers its bytes in memory, but one group must
    /// always be admissible or multitasks whose computes wait on fetches
    /// could never drain the pressure.
    pub fn pop_net_group(&mut self) -> Option<usize> {
        let limit = if self.prefer_writes {
            1
        } else {
            self.net_limit
        };
        if self.net_active >= limit {
            return None;
        }
        let g = self.net_queue.pop_front();
        if g.is_some() {
            self.net_active += 1;
        }
        g
    }

    /// Releases a fetch-group slot (all of a multitask's fetches finished).
    pub fn finish_net_group(&mut self) {
        debug_assert!(self.net_active > 0);
        self.net_active -= 1;
    }

    /// Number of disks managed.
    pub fn n_disks(&self) -> usize {
        self.disks.len()
    }

    /// Monotasks queued but not yet admitted, per resource class — the
    /// "visible contention" signal the architecture provides (§3.1).
    pub fn queue_lengths(&self) -> (usize, Vec<usize>, usize) {
        (
            self.cpu_queue.len(),
            self.disks
                .iter()
                .map(|d| d.reads.len() + d.writes.len())
                .collect(),
            self.net_queue.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_respects_core_count() {
        let mut s = MachineScheduler::new(2, &[1], 4, true);
        s.enqueue_cpu((0, 0));
        s.enqueue_cpu((1, 0));
        s.enqueue_cpu((2, 0));
        assert!(s.pop_cpu().is_some());
        assert!(s.pop_cpu().is_some());
        assert!(s.pop_cpu().is_none(), "third must wait for a core");
        s.finish_cpu();
        assert_eq!(s.pop_cpu(), Some((2, 0)));
    }

    #[test]
    fn hdd_runs_one_at_a_time() {
        let mut s = MachineScheduler::new(1, &[1], 4, true);
        s.enqueue_disk(0, (0, 0), false);
        s.enqueue_disk(0, (1, 0), false);
        assert!(s.pop_disk(0).is_some());
        assert!(s.pop_disk(0).is_none());
        s.finish_disk(0, false);
        assert!(s.pop_disk(0).is_some());
    }

    #[test]
    fn round_robin_alternates_reads_and_writes() {
        let mut s = MachineScheduler::new(1, &[1], 4, true);
        // A backlog of writes and one read (the §3.3 scenario).
        for i in 0..3 {
            s.enqueue_disk(0, (100 + i, 0), true);
        }
        s.enqueue_disk(0, (7, 0), false);
        let first = s.pop_disk(0).unwrap();
        assert_eq!(first, (7, 0), "read served despite older writes");
        s.finish_disk(0, false);
        let second = s.pop_disk(0).unwrap();
        assert_eq!(second, (100, 0));
    }

    #[test]
    fn fifo_mode_serves_in_arrival_order() {
        let mut s = MachineScheduler::new(1, &[1], 4, false);
        for i in 0..3 {
            s.enqueue_disk(0, (100 + i, 0), true);
        }
        s.enqueue_disk(0, (7, 0), false);
        assert_eq!(s.pop_disk(0), Some((100, 0)), "FIFO starves the read");
    }

    #[test]
    fn net_groups_limited_to_four_multitasks() {
        let mut s = MachineScheduler::new(1, &[1], 4, true);
        for mt in 0..6 {
            s.enqueue_net_group(mt);
        }
        let admitted: Vec<usize> = std::iter::from_fn(|| s.pop_net_group()).collect();
        assert_eq!(admitted, vec![0, 1, 2, 3]);
        s.finish_net_group();
        assert_eq!(s.pop_net_group(), Some(4));
    }

    #[test]
    fn queue_lengths_expose_contention() {
        let mut s = MachineScheduler::new(1, &[1, 1], 4, true);
        s.enqueue_cpu((0, 0));
        s.enqueue_disk(1, (1, 0), true);
        s.enqueue_net_group(2);
        assert_eq!(s.queue_lengths(), (1, vec![0, 1], 1));
    }

    #[test]
    fn memory_pressure_prefers_writes_and_defers_reads() {
        let mut s = MachineScheduler::new(1, &[1], 4, true);
        s.enqueue_disk(0, (1, 0), false);
        s.enqueue_disk(0, (2, 0), true);
        assert_eq!(
            s.pop_disk_pressured(0, false),
            Some((2, 0)),
            "write must drain first"
        );
        s.finish_disk(0, true);
        // No writes left: reads stay deferred unless the caller vouches.
        assert_eq!(s.pop_disk_pressured(0, false), None);
        assert_eq!(s.pop_disk_pressured(0, true), Some((1, 0)));
        s.finish_disk(0, false);
        // Normal round-robin once pressure clears.
        s.enqueue_disk(0, (3, 0), true);
        s.enqueue_disk(0, (4, 0), false);
        assert_eq!(
            s.pop_disk(0),
            Some((4, 0)),
            "round-robin resumes with a read"
        );
    }

    #[test]
    fn memory_pressure_throttles_fetch_admission_to_one() {
        let mut s = MachineScheduler::new(1, &[1], 4, true);
        for g in 0..3 {
            s.enqueue_net_group(g);
        }
        s.set_prefer_writes(true);
        assert_eq!(s.pop_net_group(), Some(0), "one group always admissible");
        assert_eq!(s.pop_net_group(), None, "second group deferred");
        s.finish_net_group();
        assert_eq!(s.pop_net_group(), Some(1));
        s.set_prefer_writes(false);
        s.finish_net_group();
        assert_eq!(s.pop_net_group(), Some(2));
    }

    #[test]
    fn ssd_slots_allow_parallel_monotasks() {
        let mut s = MachineScheduler::new(1, &[4], 4, true);
        for i in 0..5 {
            s.enqueue_disk(0, (i, 0), false);
        }
        let n = std::iter::from_fn(|| s.pop_disk(0)).count();
        assert_eq!(n, 4);
    }
}
