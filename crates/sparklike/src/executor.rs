//! The slot-scheduled, fine-grained-pipelined executor.

use std::collections::{HashMap, HashSet};

use cluster::{
    BufferCache, CachePolicy, ClusterSpec, DiskId, FaultAction, FaultPlan, FaultTimeline,
    FluidMachine, MachineId, StreamDemand, StreamId, TraceSet, WriteOutcome,
};
use dataflow::{
    BlockMap, InputSpec, JobId, JobReport, JobSpec, OutputSpec, RecoveryStats, RunError, StageId,
    StageReport, TaskId,
};
use simcore::stats::median;
use simcore::{EventQueue, SimDuration, SimStats, SimTime};

/// Configuration of the baseline executor.
#[derive(Clone, Debug)]
pub struct SparkConfig {
    /// Concurrent tasks per machine; `None` = one per core (Spark's default,
    /// §3.4). Fig 18 sweeps this.
    pub slots_per_machine: Option<usize>,
    /// Force writes through to disk instead of the buffer cache (the second
    /// Spark configuration in Fig 5).
    pub write_through: bool,
    /// Safety valve on simulation iterations.
    pub max_steps: u64,
    /// Retries allowed per task beyond its original attempt before the run
    /// fails with [`RunError::RetriesExhausted`]. `0` = fail fast.
    pub max_task_retries: u32,
    /// Speculative execution: when a slot is otherwise idle and a running
    /// task has exceeded this multiple of its stage's median completed
    /// duration (with at least half the stage complete), launch a copy on
    /// another machine; first finisher wins. `None` disables speculation and
    /// keeps the executor bit-identical to the pre-fault code.
    pub speculation_multiplier: Option<f64>,
    /// How long a shuffle fetch may sit stalled on a cut pair before the
    /// first retry fires. `None` disables the timeout machinery entirely: a
    /// partitioned fetch waits for the heal (or starves into
    /// [`RunError::Unreachable`] once nothing else can run).
    pub fetch_timeout_secs: Option<f64>,
    /// Fetch retries allowed per attempt after the stall timeout, each
    /// separated by exponential backoff, before partition recovery gives up
    /// waiting and re-plans around the unreachable sender.
    pub fetch_max_retries: u32,
    /// Base of the deterministic exponential backoff between fetch retries:
    /// retry `k` waits `base × 2^(k-1)` seconds.
    pub fetch_backoff_base_secs: f64,
    /// Compute the speculation threshold as the median of per-machine
    /// duration medians instead of the global attempt median, so one
    /// degraded machine cannot drag the threshold up. Off by default to
    /// preserve the historic estimator bit-for-bit.
    pub per_machine_duration_pools: bool,
    /// Arms the trace layer: when set, the run collects instant events
    /// ([`cluster::RunInstant`]) for trace export. Observation-only — the
    /// schedule is bit-identical whether or not a path is set. The executor
    /// never writes the file itself; `mt-trace` export helpers honor it.
    pub trace_path: Option<std::path::PathBuf>,
}

impl Default for SparkConfig {
    fn default() -> Self {
        SparkConfig {
            slots_per_machine: None,
            write_through: false,
            max_steps: 50_000_000,
            max_task_retries: 4,
            speculation_multiplier: None,
            fetch_timeout_secs: None,
            fetch_max_retries: 3,
            fetch_backoff_base_secs: 1.0,
            per_machine_duration_pools: false,
            trace_path: None,
        }
    }
}

impl SparkConfig {
    /// Rejects configurations that cannot drive a run.
    pub fn validate(&self) -> Result<(), String> {
        if self.slots_per_machine == Some(0) {
            return Err("slots_per_machine must be at least 1".into());
        }
        if self.max_steps == 0 {
            return Err("max_steps must be at least 1".into());
        }
        if let Some(f) = self.speculation_multiplier {
            if !f.is_finite() || f < 1.0 {
                return Err(format!(
                    "speculation_multiplier must be finite and >= 1, got {f}"
                ));
            }
        }
        if let Some(t) = self.fetch_timeout_secs {
            if !t.is_finite() || t <= 0.0 {
                return Err(format!(
                    "fetch_timeout_secs must be finite and > 0, got {t}"
                ));
            }
        }
        if !self.fetch_backoff_base_secs.is_finite() || self.fetch_backoff_base_secs < 0.0 {
            return Err(format!(
                "fetch_backoff_base_secs must be finite and >= 0, got {}",
                self.fetch_backoff_base_secs
            ));
        }
        Ok(())
    }
}

/// One completed task (multitask-level timing only: the baseline cannot
/// attribute time to individual resources — that is §6.6's point).
#[derive(Clone, Copy, Debug)]
pub struct TaskRecord {
    /// Owning job.
    pub job: JobId,
    /// Owning stage.
    pub stage: StageId,
    /// Task index.
    pub task: TaskId,
    /// Machine that ran it.
    pub machine: usize,
    /// Launch time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
}

/// Everything a baseline run produces.
#[derive(Debug)]
pub struct SparkRunOutput {
    /// Per-job reports (submission order).
    pub jobs: Vec<JobReport>,
    /// Per-task records.
    pub tasks: Vec<TaskRecord>,
    /// Cluster utilization traces.
    pub traces: TraceSet,
    /// Time of the last *job* completion (background flushes may continue).
    pub makespan: SimTime,
    /// Control-plane cost: simulation steps plus allocator work summed over
    /// every machine.
    pub stats: SimStats,
    /// Instant events (faults, retries, speculation) collected when
    /// [`SparkConfig::trace_path`] is set; empty otherwise.
    pub instants: Vec<cluster::RunInstant>,
}

#[derive(Debug)]
struct StageRun {
    ready: bool,
    done: bool,
    total: usize,
    completed: usize,
    by_pref: Vec<Vec<u32>>,
    nopref: Vec<u32>,
    started: Option<SimTime>,
    ended: Option<SimTime>,
    shuffle_by_machine: Vec<f64>,
    shuffle_in_memory: bool,
    /// Queues already filled once; a stage resumed after lineage loss must
    /// not re-enqueue every task.
    populated: bool,
    /// Lineage index (fault runs only): task indices whose completed output
    /// lives on each machine.
    completed_on: Vec<Vec<u32>>,
    /// Logical completion per task index: guards double-counting when a
    /// speculative copy and its original race to the finish.
    task_done: Vec<bool>,
    /// Completed attempt durations in seconds, for the speculation median.
    durations: Vec<f64>,
    /// Completed attempt durations split by executing machine (filled only
    /// with `per_machine_duration_pools` on).
    durations_pm: Vec<Vec<f64>>,
    /// When a partition left this ready stage with pending tasks that no
    /// reachable machine can host (gate-blocked), the instant that started.
    gate_blocked_since: Option<SimTime>,
    /// Retry deadline for the gate-blocked state, when a timeout is set.
    gate_deadline: Option<SimTime>,
    /// Retry budget consumed while gate-blocked.
    gate_retries: u32,
}

#[derive(Debug)]
struct JobRun {
    id: JobId,
    spec: JobSpec,
    blocks: BlockMap,
    stages: Vec<StageRun>,
    done: bool,
    end: SimTime,
    recovery: RecoveryStats,
}

/// A pending disk write at the end of a task.
#[derive(Clone, Copy, Debug)]
struct OutWrite {
    disk: usize,
    bytes: f64,
}

/// One unit of write-back work for a disk's flusher: the bytes, the task (if
/// any) blocked on the write reaching the platters, and whether the bytes
/// were charged to the buffer cache.
#[derive(Clone, Copy, Debug)]
struct FlushEntry {
    bytes: f64,
    waiter: Option<usize>,
    charged: bool,
}

#[derive(Debug)]
struct TaskRun {
    job: usize,
    stage: usize,
    task: usize,
    machine: usize,
    start: SimTime,
    /// Remaining phases, in execution order (front = next).
    phases: Vec<StreamDemand>,
    /// Output write to resolve through the cache policy after the last phase.
    out_write: Option<OutWrite>,
    done: bool,
    /// Aborted by a crash or lost a speculation race; its streams are gone
    /// and any late completion for it must be ignored.
    killed: bool,
    /// A speculative copy of a straggling attempt.
    speculative: bool,
    /// Re-running a previously completed task whose output a crash destroyed.
    recompute: bool,
    /// Still in its first phase with remote shuffle bytes in flight; a crash
    /// of any sender fails the whole fetch.
    fetch_live: bool,
    /// I/O bytes of every phase this attempt has started (plus its issued
    /// output write): the amount charged as `wasted_bytes` if it is killed
    /// or finishes late — the same full-requested-bytes-once-started rule
    /// the monotasks executor charges, so the two engines' waste compares.
    io_started: f64,
    /// Instant the attempt's merged fetch stalled on a cut pair.
    stall_since: Option<SimTime>,
    /// Next stall-timeout / backoff deadline, when a timeout is configured.
    stall_deadline: Option<SimTime>,
    /// Fetch retries this attempt has burned.
    fetch_retries: u32,
    /// The in-flight phase, removed from the allocator while every byte of
    /// it is unreachable: the demand scaled to the remaining fraction, ready
    /// to re-insert on heal.
    parked: Option<StreamDemand>,
    /// Copy of the running phase's demand (kept only on partition runs) so
    /// parking can scale it by the allocator's remaining fraction.
    cur_demand: Option<StreamDemand>,
}

struct Mach {
    fluid: FluidMachine,
    cache: BufferCache,
    running: usize,
    write_cursor: usize,
    read_cursor: usize,
    /// Write-back work per disk awaiting the (single) kernel flusher. Each
    /// entry is `(bytes, waiting task, charged to the cache)`.
    flush_pending: Vec<Vec<FlushEntry>>,
    flush_active: Vec<bool>,
    /// False once the machine has crashed: its allocator becomes a zombie
    /// that is never polled again and its slots never refill.
    alive: bool,
}

/// Timer events: background cache flushes reaching their start time.
#[derive(Clone, Copy, Debug)]
struct FlushStart {
    machine: usize,
    disk: usize,
    bytes: f64,
}

const TAG_TASK: u64 = 0;
const TAG_FLUSH: u64 = 2;

/// Write-back of task output is scattered across many files' dirty pages,
/// not one sequential extent: the flusher pays this factor over sequential
/// write time. (The monotasks executor writes each monotask's buffer as one
/// sequential extent and pays no such penalty — part of §5.4's disk win.)
const WRITEBACK_SCATTER: f64 = 1.4;

fn task_stream(task: usize, phase: usize) -> StreamId {
    debug_assert!(phase < 256);
    StreamId((TAG_TASK << 56) | ((task as u64) << 8) | phase as u64)
}

fn aux_stream(tag: u64, n: u64) -> StreamId {
    StreamId((tag << 56) | n)
}

fn decode(id: StreamId) -> (u64, u64) {
    (id.0 >> 56, id.0 & ((1 << 56) - 1))
}

/// `d` scaled to fraction `f`: the remaining work of a parked phase. The
/// fraction is floored away from zero so the resumed stream always has
/// demand left to complete on.
fn scale_demand(d: &StreamDemand, f: f64) -> StreamDemand {
    let f = f.max(1e-9);
    let mut s = d.clone();
    s.cpu *= f;
    for x in &mut s.disk_read {
        *x *= f;
    }
    for x in &mut s.disk_write {
        *x *= f;
    }
    s.rx *= f;
    s
}

struct Exec {
    cfg: SparkConfig,
    slots: usize,
    machines: Vec<Mach>,
    jobs: Vec<JobRun>,
    tasks: Vec<TaskRun>,
    records: Vec<TaskRecord>,
    traces: TraceSet,
    timers: EventQueue<FlushStart>,
    /// In-flight flush streams: aux id → (machine, disk, merged entries).
    flushes: HashMap<u64, (usize, usize, Vec<FlushEntry>)>,
    aux_seq: u64,
    now: SimTime,
    rr_job: usize,
    stats: SimStats,
    faults: FaultTimeline,
    faults_on: bool,
    /// Failure count per `[job][stage][task]`; bounds retries.
    attempts: Vec<Vec<Vec<u32>>>,
    recompute_pending: HashSet<(usize, usize, usize)>,
    /// Logical tasks with a speculative copy outstanding.
    spec_copies: HashSet<(usize, usize, usize)>,
    /// Wake-up timers at the instant a running task crosses the speculation
    /// threshold, so the idle-slot check observes it without waiting for an
    /// unrelated stream completion.
    spec_timers: EventQueue<()>,
    /// True when the fault plan contains partition events; every partition
    /// hook below is gated on this so partition-free runs stay bit-identical.
    partitions_on: bool,
    /// Directed cut pairs currently in force: `(src, dst)` means traffic
    /// from `src` cannot reach `dst`.
    cut_pairs: HashSet<(usize, usize)>,
    /// Stall-timeout and backoff deadlines for stalled fetches and
    /// gate-blocked stages.
    fetch_timers: EventQueue<()>,
    /// Machines partition recovery re-planned around: excluded from
    /// placement until a heal touches them, so lineage re-runs land on
    /// reachable machines.
    quarantined: Vec<bool>,
    /// True when `cfg.trace_path` is set; gates instant collection so
    /// trace-off runs never touch the vector.
    trace_on: bool,
    /// Instant events collected for trace export (trace runs only).
    instants: Vec<cluster::RunInstant>,
}

/// Runs `jobs` on a simulated `cluster` under the Spark-like architecture.
///
/// # Examples
///
/// ```
/// use cluster::{ClusterSpec, MachineSpec};
/// use dataflow::{BlockMap, CostModel, JobBuilder};
///
/// let gib = 1024.0 * 1024.0 * 1024.0;
/// let job = JobBuilder::new("scan", CostModel::spark_1_3())
///     .read_disk(gib, 1e7, gib / 16.0)
///     .map(1.0, 0.1, false)
///     .write_disk(1.0);
/// let blocks = BlockMap::round_robin(16, 4, 2);
/// let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
///
/// let out = sparklike::run(&cluster, &[(job, blocks)], &Default::default());
/// assert_eq!(out.tasks.len(), 16);
/// ```
///
/// # Panics
///
/// Panics if a job spec fails validation or the simulation deadlocks.
pub fn run(
    cluster: &ClusterSpec,
    jobs: &[(JobSpec, BlockMap)],
    cfg: &SparkConfig,
) -> SparkRunOutput {
    match try_run(cluster, jobs, cfg) {
        Ok(out) => out,
        Err(e) => panic!("spark-like run failed: {e}"),
    }
}

/// Fault-free [`run`] with structured errors instead of panics.
pub fn try_run(
    cluster: &ClusterSpec,
    jobs: &[(JobSpec, BlockMap)],
    cfg: &SparkConfig,
) -> Result<SparkRunOutput, RunError> {
    run_with_faults(cluster, jobs, cfg, &FaultPlan::new())
}

/// Runs `jobs` under the Spark-like architecture while injecting the faults
/// scheduled in `plan`. With an empty plan (and `speculation_multiplier:
/// None`) this is exactly [`run`]: every fault hook stays off the event path,
/// so makespans and records are bit-identical to the plan-free code.
pub fn run_with_faults(
    cluster: &ClusterSpec,
    jobs: &[(JobSpec, BlockMap)],
    cfg: &SparkConfig,
    plan: &FaultPlan,
) -> Result<SparkRunOutput, RunError> {
    cluster.validate().map_err(RunError::InvalidConfig)?;
    cfg.validate().map_err(RunError::InvalidConfig)?;
    for (spec, _) in jobs {
        if let Err(e) = spec.validate() {
            return Err(RunError::InvalidConfig(format!(
                "invalid job spec {:?}: {e}",
                spec.name
            )));
        }
    }
    plan.validate(cluster).map_err(RunError::InvalidConfig)?;
    let n_machines = cluster.machines;
    let slots = cfg
        .slots_per_machine
        .unwrap_or(cluster.machine.cores as usize)
        .max(1);
    let n_disks = cluster.machine.disks.len();
    let machines = (0..n_machines)
        .map(|_| Mach {
            fluid: FluidMachine::new(cluster.machine.clone()),
            cache: BufferCache::new(CachePolicy::for_memory(cluster.machine.memory)),
            running: 0,
            write_cursor: 0,
            read_cursor: 0,
            flush_pending: vec![Vec::new(); n_disks],
            flush_active: vec![false; n_disks],
            alive: true,
        })
        .collect();
    let job_runs = jobs
        .iter()
        .enumerate()
        .map(|(ji, (spec, blocks))| JobRun {
            id: JobId(ji as u32),
            spec: spec.clone(),
            blocks: blocks.clone(),
            stages: spec
                .stages
                .iter()
                .map(|st| StageRun {
                    ready: false,
                    done: false,
                    total: st.tasks.len(),
                    completed: 0,
                    by_pref: vec![Vec::new(); n_machines],
                    nopref: Vec::new(),
                    started: None,
                    ended: None,
                    shuffle_by_machine: vec![0.0; n_machines],
                    shuffle_in_memory: st.tasks.iter().any(|t| {
                        matches!(
                            t.output,
                            OutputSpec::ShuffleWrite {
                                in_memory: true,
                                ..
                            }
                        )
                    }),
                    populated: false,
                    completed_on: vec![Vec::new(); n_machines],
                    task_done: vec![false; st.tasks.len()],
                    durations: Vec::new(),
                    durations_pm: vec![Vec::new(); n_machines],
                    gate_blocked_since: None,
                    gate_deadline: None,
                    gate_retries: 0,
                })
                .collect(),
            done: false,
            end: SimTime::ZERO,
            recovery: RecoveryStats::default(),
        })
        .collect();
    let mut exec = Exec {
        cfg: cfg.clone(),
        slots,
        machines,
        jobs: job_runs,
        tasks: Vec::new(),
        records: Vec::new(),
        traces: TraceSet::new(),
        timers: EventQueue::new(),
        flushes: HashMap::new(),
        aux_seq: 0,
        now: SimTime::ZERO,
        rr_job: 0,
        stats: SimStats::new(),
        faults: plan.compile(),
        faults_on: !plan.is_empty(),
        attempts: jobs
            .iter()
            .map(|(spec, _)| {
                spec.stages
                    .iter()
                    .map(|st| vec![0; st.tasks.len()])
                    .collect()
            })
            .collect(),
        recompute_pending: HashSet::new(),
        spec_copies: HashSet::new(),
        spec_timers: EventQueue::new(),
        partitions_on: plan.has_partitions(),
        cut_pairs: HashSet::new(),
        fetch_timers: EventQueue::new(),
        quarantined: vec![false; n_machines],
        trace_on: cfg.trace_path.is_some(),
        instants: Vec::new(),
    };
    exec.prime();
    exec.main_loop()?;
    Ok(exec.into_output())
}

impl Exec {
    fn n_machines(&self) -> usize {
        self.machines.len()
    }

    fn emit_instant(&mut self, kind: cluster::InstantKind) {
        if self.trace_on {
            self.instants.push(cluster::RunInstant {
                time: self.now,
                kind,
            });
        }
    }

    fn prime(&mut self) {
        for ji in 0..self.jobs.len() {
            for si in 0..self.jobs[ji].spec.stages.len() {
                if self.jobs[ji].spec.stages[si].deps.is_empty() {
                    self.make_stage_ready(ji, si);
                }
            }
        }
    }

    fn make_stage_ready(&mut self, ji: usize, si: usize) {
        let n_machines = self.n_machines();
        let job = &mut self.jobs[ji];
        let stage_spec = &job.spec.stages[si];
        let run = &mut job.stages[si];
        run.ready = true;
        if run.populated {
            // Resumed after lineage loss: the re-queued tasks are already in
            // `nopref`, everything else completed or is still queued.
            return;
        }
        run.populated = true;
        for (ti, task) in stage_spec.tasks.iter().enumerate() {
            match task.input {
                InputSpec::DiskBlock { block, .. } => {
                    run.by_pref[job.blocks.machine_of(block)].push(ti as u32)
                }
                InputSpec::Memory { .. } => run.by_pref[ti % n_machines].push(ti as u32),
                InputSpec::None | InputSpec::ShuffleFetch { .. } => run.nopref.push(ti as u32),
            }
        }
        for q in &mut run.by_pref {
            q.reverse();
        }
        run.nopref.reverse();
    }

    fn main_loop(&mut self) -> Result<(), RunError> {
        let loop_timer = std::time::Instant::now();
        let mut steps: u64 = 0;
        // Completion buffer reused across events: the speculative poll runs
        // per machine per event and must not allocate.
        let mut done_streams: Vec<StreamId> = Vec::new();
        // Per-machine next-completion cache keyed by allocation epoch (the
        // same scheme the monotasks executor uses): a machine whose rates
        // did not change since the last sweep keeps its cached deadline, so
        // the per-event cost scales with the machines that changed, not the
        // cluster size. Bit-identical — the cache only skips recomputing a
        // value the allocator would return unchanged.
        let n_machines = self.n_machines();
        let mut next_cache: Vec<Option<SimTime>> = vec![None; n_machines];
        let mut epoch_cache: Vec<u64> = vec![u64::MAX; n_machines];
        loop {
            // One batch per event instant: flush timers and finished streams
            // first (their handlers cascade into follow-up inserts — next task
            // phases, write-back flush streams), then the assignment sweep.
            // Each machine reallocates once per event at commit; the
            // intermediate fixpoint between the waves is never observed.
            self.begin_update_all();
            // Fault actions fire first within their instant: a crash at `t`
            // wins against completions at `t`, deterministically.
            if self.faults_on {
                self.apply_due_faults()?;
            }
            if self.partitions_on {
                self.check_partition_recovery()?;
            }
            while self.timers.peek_time() == Some(self.now) {
                let (_, f) = self.timers.pop().expect("peeked");
                self.start_flush(f);
            }
            // Speculation wake-ups carry no payload; draining them is enough —
            // the assignment sweep below re-checks every straggler.
            while self.spec_timers.peek_time() == Some(self.now) {
                self.spec_timers.pop();
            }
            for m in 0..self.n_machines() {
                if !self.machines[m].alive {
                    continue;
                }
                // A machine whose cached deadline (still valid: same epoch)
                // lies in the future cannot have a completion due now.
                let fluid = &mut self.machines[m].fluid;
                if epoch_cache[m] == fluid.epoch() && next_cache[m].is_none_or(|t| t > self.now) {
                    continue;
                }
                fluid.advance(self.now);
                fluid.take_completed_into(self.now, &mut done_streams);
                for &sid in &done_streams {
                    self.on_stream_done(m, sid);
                }
            }
            while self.assign_tasks() {}
            if self.partitions_on {
                self.arm_gate_timers();
            }
            self.commit_all(self.now);
            for m in 0..self.n_machines() {
                if !self.machines[m].alive {
                    continue;
                }
                self.machines[m].fluid.advance(self.now);
                self.traces
                    .snapshot(self.now, MachineId(m), &self.machines[m].fluid);
            }
            if self.jobs.iter().all(|j| j.done) {
                break;
            }
            // Next event: stream completion, flush timer, speculation
            // wake-up, or scheduled fault action.
            let mut next: Option<SimTime> = None;
            for (m, machine) in self.machines.iter_mut().enumerate() {
                if !machine.alive {
                    next_cache[m] = None;
                    epoch_cache[m] = machine.fluid.epoch();
                    continue;
                }
                let epoch = machine.fluid.epoch();
                if epoch_cache[m] != epoch {
                    next_cache[m] = machine.fluid.next_completion(self.now);
                    epoch_cache[m] = epoch;
                }
                if let Some(t) = next_cache[m] {
                    next = Some(next.map_or(t, |b: SimTime| b.min(t)));
                }
            }
            if let Some(t) = self.timers.peek_time() {
                next = Some(next.map_or(t, |b: SimTime| b.min(t)));
            }
            if let Some(t) = self.spec_timers.peek_time() {
                next = Some(next.map_or(t, |b: SimTime| b.min(t)));
            }
            if self.faults_on {
                if let Some(t) = self.faults.next_time() {
                    next = Some(next.map_or(t, |b: SimTime| b.min(t)));
                }
            }
            if self.partitions_on {
                if let Some(t) = self.fetch_timers.peek_time() {
                    next = Some(next.map_or(t, |b: SimTime| b.min(t)));
                }
            }
            let Some(t) = next else {
                if self.partitions_on {
                    if let Some(e) = self.partition_starvation_error() {
                        return Err(e);
                    }
                }
                return Err(RunError::no_runnable_work(self.now));
            };
            self.now = t;
            steps += 1;
            if steps > self.cfg.max_steps {
                return Err(RunError::StepBudgetExhausted { steps });
            }
        }
        self.stats.events = steps;
        // Raw loop wall time; into_output subtracts what the allocators
        // account for, leaving pure executor-control overhead.
        self.stats.control_nanos = loop_timer.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Applies every fault action due at `now`, inside the open batch.
    fn apply_due_faults(&mut self) -> Result<(), RunError> {
        while let Some(action) = self.faults.pop_due(self.now) {
            if self.trace_on {
                self.emit_instant(cluster::InstantKind::from(&action));
            }
            match action {
                FaultAction::SetDiskScale {
                    machine,
                    disk,
                    factor,
                } => {
                    if self.machines[machine].alive {
                        self.machines[machine]
                            .fluid
                            .set_disk_scale(self.now, disk, factor);
                    }
                }
                FaultAction::SetLinkScale { machine, factor } => {
                    if self.machines[machine].alive {
                        self.machines[machine].fluid.set_nic_scale(self.now, factor);
                    }
                }
                FaultAction::Crash { machine } => self.crash_machine(machine)?,
                FaultAction::CutPair { src, dst } => self.apply_cut(src, dst),
                FaultAction::HealPair { src, dst } => self.apply_heal(src, dst),
            }
        }
        Ok(())
    }

    /// Permanently fails machine `m`: kills every task running on it, fails
    /// in-flight shuffle fetches sourced from it, drops its pending
    /// write-back work, and re-queues the completed upstream tasks whose
    /// shuffle outputs lived on it (lineage recomputation).
    fn crash_machine(&mut self, m: usize) -> Result<(), RunError> {
        if !self.machines[m].alive {
            return Ok(());
        }
        self.machines[m].alive = false;
        for t_idx in 0..self.tasks.len() {
            let t = &self.tasks[t_idx];
            if t.done || t.killed {
                continue;
            }
            let on_dead = t.machine == m;
            // A fetch is one merged stream over all senders; losing any
            // sender fails the whole attempt (Spark's FetchFailed).
            let dead_fetch = !on_dead
                && t.fetch_live
                && self.jobs[t.job].spec.stages[t.stage]
                    .deps
                    .iter()
                    .any(|d| self.jobs[t.job].stages[d.0 as usize].shuffle_by_machine[m] > 0.0);
            if on_dead || dead_fetch {
                self.abort_task(t_idx)?;
            }
        }
        // Pending and in-flight write-back on the dead machine is lost; its
        // waiters were tasks on `m`, all killed above.
        for q in &mut self.machines[m].flush_pending {
            q.clear();
        }
        self.flushes.retain(|_, (machine, _, _)| *machine != m);
        self.lose_shuffle_outputs(m)?;
        if !self.machines.iter().any(|x| x.alive) {
            return Err(RunError::all_machines_crashed(self.now));
        }
        Ok(())
    }

    /// Severs `src → dst`: parks every in-flight merged fetch on `dst` that
    /// still needs bytes from `src` and starts its stall clock. The whole
    /// attempt blocks — a Spark reduce task cannot finish with one sender
    /// missing — so the phase leaves the allocator with its remaining
    /// fraction saved for the heal.
    fn apply_cut(&mut self, src: usize, dst: usize) {
        if !self.cut_pairs.insert((src, dst)) {
            return;
        }
        for t_idx in 0..self.tasks.len() {
            let t = &self.tasks[t_idx];
            if t.done || t.killed || t.machine != dst || !t.fetch_live {
                continue;
            }
            if !self.task_fetches_from(t_idx, src) {
                continue;
            }
            if self.tasks[t_idx].parked.is_none() {
                let sid = task_stream(t_idx, self.tasks[t_idx].phases.len());
                if let Some(frac) = self.machines[dst].fluid.remove(self.now, sid) {
                    let demand = self.tasks[t_idx]
                        .cur_demand
                        .as_ref()
                        .map(|d| scale_demand(d, frac))
                        .expect("phase demand recorded on partition runs");
                    self.tasks[t_idx].parked = Some(demand);
                }
            }
            self.mark_stalled(t_idx);
        }
    }

    /// Restores `src → dst` and resumes every parked fetch on `dst` whose
    /// senders are all reachable again. Heals also lift quarantine from both
    /// endpoints: connectivity changed, so placement may try them again.
    fn apply_heal(&mut self, src: usize, dst: usize) {
        if !self.cut_pairs.remove(&(src, dst)) {
            return;
        }
        self.quarantined[src] = false;
        self.quarantined[dst] = false;
        for t_idx in 0..self.tasks.len() {
            let t = &self.tasks[t_idx];
            if t.done || t.killed || t.machine != dst {
                continue;
            }
            if t.stall_since.is_none() && t.parked.is_none() {
                continue;
            }
            let still_cut = (0..self.n_machines())
                .any(|s| self.cut_pairs.contains(&(s, dst)) && self.task_fetches_from(t_idx, s));
            if still_cut {
                continue;
            }
            let ji = self.tasks[t_idx].job;
            if let Some(since) = self.tasks[t_idx].stall_since.take() {
                self.jobs[ji].recovery.stalled_fetch_seconds += self.now.since(since).as_secs_f64();
            }
            self.tasks[t_idx].stall_deadline = None;
            if let Some(demand) = self.tasks[t_idx].parked.take() {
                let sid = task_stream(t_idx, self.tasks[t_idx].phases.len());
                self.machines[dst].fluid.insert(self.now, sid, demand);
            }
        }
    }

    /// Whether attempt `t_idx`'s stage still expects shuffle bytes from `src`.
    fn task_fetches_from(&self, t_idx: usize, src: usize) -> bool {
        let t = &self.tasks[t_idx];
        self.jobs[t.job].spec.stages[t.stage]
            .deps
            .iter()
            .any(|d| self.jobs[t.job].stages[d.0 as usize].shuffle_by_machine[src] > 0.0)
    }

    /// Starts the stall clock on a freshly parked attempt and, when a
    /// timeout is configured, arms its first retry deadline.
    fn mark_stalled(&mut self, t_idx: usize) {
        if self.tasks[t_idx].stall_since.is_none() {
            self.tasks[t_idx].stall_since = Some(self.now);
        }
        if let Some(secs) = self.cfg.fetch_timeout_secs {
            if self.tasks[t_idx].stall_deadline.is_none() {
                let at = self.now + SimDuration::from_secs_f64(secs);
                self.tasks[t_idx].stall_deadline = Some(at);
                self.fetch_timers.schedule(at, ());
            }
        }
    }

    /// Charges a stalled fetch that is being given up on: accumulates its
    /// stall time, drops its parked stream, and counts the re-plan.
    fn account_stalled_fetch(&mut self, t_idx: usize) {
        let ji = self.tasks[t_idx].job;
        if let Some(since) = self.tasks[t_idx].stall_since.take() {
            self.jobs[ji].recovery.stalled_fetch_seconds += self.now.since(since).as_secs_f64();
        }
        self.tasks[t_idx].stall_deadline = None;
        self.tasks[t_idx].parked = None;
        self.jobs[ji].recovery.fetches_replanned += 1;
        let si = self.tasks[t_idx].stage;
        self.emit_instant(cluster::InstantKind::FetchReplan {
            job: ji as u32,
            stage: si as u32,
        });
    }

    /// Drives stall timeouts: burns retries with exponential backoff, and
    /// once a fetch (or a gate-blocked stage) exhausts its budget, re-plans
    /// around the unreachable sender or fails fast.
    fn check_partition_recovery(&mut self) -> Result<(), RunError> {
        while self.fetch_timers.peek_time().is_some_and(|t| t <= self.now) {
            self.fetch_timers.pop();
        }
        if self.cfg.fetch_timeout_secs.is_none() {
            return Ok(());
        }
        let max = self.cfg.fetch_max_retries;
        let base = self.cfg.fetch_backoff_base_secs;
        for t_idx in 0..self.tasks.len() {
            let due = {
                let t = &self.tasks[t_idx];
                !t.done && !t.killed && t.stall_deadline.is_some_and(|d| d <= self.now)
            };
            if !due {
                continue;
            }
            let ji = self.tasks[t_idx].job;
            self.tasks[t_idx].fetch_retries += 1;
            let retries = self.tasks[t_idx].fetch_retries;
            self.jobs[ji].recovery.fetch_retries += 1;
            let si = self.tasks[t_idx].stage;
            self.emit_instant(cluster::InstantKind::FetchRetry {
                job: ji as u32,
                stage: si as u32,
                attempt: retries,
            });
            if retries <= max {
                let backoff = base * 2f64.powi(retries as i32 - 1);
                self.jobs[ji].recovery.fetch_backoff_seconds += backoff;
                let mut at = self.now + SimDuration::from_secs_f64(backoff);
                if at <= self.now {
                    at = SimTime(self.now.0 + 1);
                }
                self.tasks[t_idx].stall_deadline = Some(at);
                self.fetch_timers.schedule(at, ());
            } else {
                self.replan_stalled_attempt(t_idx, retries)?;
            }
        }
        for ji in 0..self.jobs.len() {
            for si in 0..self.jobs[ji].stages.len() {
                let due = self.jobs[ji].stages[si]
                    .gate_deadline
                    .is_some_and(|d| d <= self.now);
                if !due {
                    continue;
                }
                if !self.stage_gate_blocked(ji, si) {
                    let run = &mut self.jobs[ji].stages[si];
                    run.gate_blocked_since = None;
                    run.gate_deadline = None;
                    run.gate_retries = 0;
                    continue;
                }
                self.jobs[ji].stages[si].gate_retries += 1;
                let retries = self.jobs[ji].stages[si].gate_retries;
                self.jobs[ji].recovery.fetch_retries += 1;
                self.emit_instant(cluster::InstantKind::FetchRetry {
                    job: ji as u32,
                    stage: si as u32,
                    attempt: retries,
                });
                if retries <= max {
                    let backoff = base * 2f64.powi(retries as i32 - 1);
                    self.jobs[ji].recovery.fetch_backoff_seconds += backoff;
                    let mut at = self.now + SimDuration::from_secs_f64(backoff);
                    if at <= self.now {
                        at = SimTime(self.now.0 + 1);
                    }
                    self.jobs[ji].stages[si].gate_deadline = Some(at);
                    self.fetch_timers.schedule(at, ());
                } else {
                    let ti = self.first_pending_task(ji, si);
                    {
                        let run = &mut self.jobs[ji].stages[si];
                        run.gate_blocked_since = None;
                        run.gate_deadline = None;
                    }
                    self.resolve_unreachable(ji, si, ti, retries)?;
                }
            }
        }
        Ok(())
    }

    /// A stalled fetch exhausted its retries: charge and abort the attempt,
    /// re-queue the logical task, and if no reachable machine can host it,
    /// escalate to sender-level re-planning.
    fn replan_stalled_attempt(&mut self, t_idx: usize, retries: u32) -> Result<(), RunError> {
        let (ji, si, ti) = {
            let t = &self.tasks[t_idx];
            (t.job, t.stage, t.task)
        };
        self.account_stalled_fetch(t_idx);
        self.abort_task(t_idx)?;
        let any_host = (0..self.n_machines())
            .any(|m| self.machines[m].alive && !self.quarantined[m] && self.can_host(m, ji, si));
        if any_host {
            return Ok(());
        }
        self.resolve_unreachable(ji, si, ti, retries)
    }

    /// Whether machine `m` can host a task of stage `(ji, si)` under the
    /// current cuts. Only shuffle fetches traverse the network in this model
    /// (disk-block and memory inputs are charged locally wherever the task
    /// runs), so the gate is: every machine still owed shuffle bytes must
    /// reach `m`.
    fn can_host(&self, m: usize, ji: usize, si: usize) -> bool {
        if self.cut_pairs.is_empty() {
            return true;
        }
        for d in &self.jobs[ji].spec.stages[si].deps {
            let sbm = &self.jobs[ji].stages[d.0 as usize].shuffle_by_machine;
            for (s, &b) in sbm.iter().enumerate() {
                if b > 0.0 && s != m && self.cut_pairs.contains(&(s, m)) {
                    return false;
                }
            }
        }
        true
    }

    /// Sender-level re-planning for a task no reachable machine can host:
    /// pick the live machine `m*` reaching the most senders, and for every
    /// sender cut from it, re-run the producers elsewhere (lineage
    /// resubmission) — or fail fast with [`RunError::Unreachable`] if some
    /// producer has nowhere reachable to go.
    fn resolve_unreachable(
        &mut self,
        ji: usize,
        si: usize,
        ti: usize,
        retries: u32,
    ) -> Result<(), RunError> {
        let deps: Vec<usize> = self.jobs[ji].spec.stages[si]
            .deps
            .iter()
            .map(|d| d.0 as usize)
            .collect();
        let n = self.n_machines();
        let senders: Vec<usize> = (0..n)
            .filter(|&s| {
                deps.iter()
                    .any(|&d| self.jobs[ji].stages[d].shuffle_by_machine[s] > 0.0)
            })
            .collect();
        let unreachable = |machine: usize| RunError::Unreachable {
            job: JobId(ji as u32),
            stage: StageId(si as u32),
            task: TaskId(ti as u32),
            machine,
            retries,
        };
        if senders.is_empty() {
            // No shuffle lineage to resubmit: nothing recovery can move.
            return Err(unreachable(self.first_unreachable_source(ji, si)));
        }
        let mut best: Option<(usize, usize)> = None;
        for m in 0..n {
            if !self.machines[m].alive || self.quarantined[m] {
                continue;
            }
            let reach = senders
                .iter()
                .filter(|&&s| s == m || !self.cut_pairs.contains(&(s, m)))
                .count();
            if best.is_none_or(|(_, r)| reach > r) {
                best = Some((m, reach));
            }
        }
        let Some((mstar, _)) = best else {
            return Err(RunError::all_machines_crashed(self.now));
        };
        let offending: Vec<usize> = senders
            .iter()
            .copied()
            .filter(|&s| s != mstar && self.cut_pairs.contains(&(s, mstar)))
            .collect();
        // Feasibility first: every offending sender's producers must have a
        // live, unquarantined machine that reaches `m*` to re-run on —
        // otherwise resubmission just moves the starvation.
        for &s in &offending {
            for &d in &deps {
                if self.jobs[ji].stages[d].completed_on[s].is_empty() {
                    continue;
                }
                let feasible = (0..n).any(|m| {
                    m != s
                        && self.machines[m].alive
                        && !self.quarantined[m]
                        && !self.cut_pairs.contains(&(m, mstar))
                        && self.can_host(m, ji, d)
                });
                if !feasible {
                    return Err(unreachable(s));
                }
            }
        }
        for &s in &offending {
            // Abort every attempt still fetching from the unreachable sender.
            for t_idx in 0..self.tasks.len() {
                let live = {
                    let t = &self.tasks[t_idx];
                    !t.done && !t.killed && t.fetch_live
                };
                if live && self.task_fetches_from(t_idx, s) {
                    self.account_stalled_fetch(t_idx);
                    self.abort_task(t_idx)?;
                }
            }
            // Lineage resubmission: re-run the producers whose outputs sit
            // on the unreachable machine, and keep new work off it until a
            // heal changes connectivity.
            self.lose_shuffle_outputs(s)?;
            self.quarantined[s] = true;
        }
        Ok(())
    }

    /// A ready stage with pending tasks none of the live, unquarantined
    /// machines can host: the whole stage is starved by cuts.
    fn stage_gate_blocked(&self, ji: usize, si: usize) -> bool {
        let run = &self.jobs[ji].stages[si];
        if !run.ready || run.done {
            return false;
        }
        let pending = !run.nopref.is_empty() || run.by_pref.iter().any(|q| !q.is_empty());
        if !pending {
            return false;
        }
        !(0..self.n_machines())
            .any(|m| self.machines[m].alive && !self.quarantined[m] && self.can_host(m, ji, si))
    }

    /// An exemplar pending task of a gate-blocked stage (the next one the
    /// scheduler would have popped), for error attribution.
    fn first_pending_task(&self, ji: usize, si: usize) -> usize {
        let run = &self.jobs[ji].stages[si];
        if let Some(&ti) = run.nopref.last() {
            return ti as usize;
        }
        for q in &run.by_pref {
            if let Some(&ti) = q.last() {
                return ti as usize;
            }
        }
        0
    }

    /// After assignment: start (or clear) the gate-blocked clock on stages
    /// no reachable machine can host, so the retry/backoff machinery covers
    /// pending tasks as well as in-flight fetches.
    fn arm_gate_timers(&mut self) {
        let timeout = self.cfg.fetch_timeout_secs;
        for ji in 0..self.jobs.len() {
            for si in 0..self.jobs[ji].stages.len() {
                let blocked = self.stage_gate_blocked(ji, si);
                let now = self.now;
                let run = &mut self.jobs[ji].stages[si];
                if !blocked {
                    if run.gate_blocked_since.is_some() {
                        run.gate_blocked_since = None;
                        run.gate_deadline = None;
                        run.gate_retries = 0;
                    }
                    continue;
                }
                if run.gate_blocked_since.is_none() {
                    run.gate_blocked_since = Some(now);
                    if let Some(secs) = timeout {
                        let at = now + SimDuration::from_secs_f64(secs);
                        run.gate_deadline = Some(at);
                        self.fetch_timers.schedule(at, ());
                    }
                }
            }
        }
    }

    /// Nothing can ever run again but jobs remain: attribute the starvation.
    /// A parked fetch or a gate-blocked stage names the machine holding the
    /// unreachable bytes; `None` means the partitions are not the cause.
    fn partition_starvation_error(&self) -> Option<RunError> {
        for t in &self.tasks {
            if t.done || t.killed || (t.stall_since.is_none() && t.parked.is_none()) {
                continue;
            }
            let src = (0..self.n_machines())
                .find(|&s| {
                    self.cut_pairs.contains(&(s, t.machine))
                        && self.jobs[t.job].spec.stages[t.stage].deps.iter().any(|d| {
                            self.jobs[t.job].stages[d.0 as usize].shuffle_by_machine[s] > 0.0
                        })
                })
                .unwrap_or(t.machine);
            return Some(RunError::Unreachable {
                job: JobId(t.job as u32),
                stage: StageId(t.stage as u32),
                task: TaskId(t.task as u32),
                machine: src,
                retries: t.fetch_retries,
            });
        }
        for ji in 0..self.jobs.len() {
            for si in 0..self.jobs[ji].stages.len() {
                if !self.stage_gate_blocked(ji, si) {
                    continue;
                }
                let ti = self.first_pending_task(ji, si);
                return Some(RunError::Unreachable {
                    job: JobId(ji as u32),
                    stage: StageId(si as u32),
                    task: TaskId(ti as u32),
                    machine: self.first_unreachable_source(ji, si),
                    retries: self.jobs[ji].stages[si].gate_retries,
                });
            }
        }
        None
    }

    /// First machine owed shuffle bytes for `(ji, si)` that some live
    /// machine cannot reach — the exemplar source named in starvation
    /// errors.
    fn first_unreachable_source(&self, ji: usize, si: usize) -> usize {
        for d in &self.jobs[ji].spec.stages[si].deps {
            let sbm = &self.jobs[ji].stages[d.0 as usize].shuffle_by_machine;
            for (s, &b) in sbm.iter().enumerate() {
                if b > 0.0
                    && (0..self.n_machines())
                        .any(|m| self.machines[m].alive && self.cut_pairs.contains(&(s, m)))
                {
                    return s;
                }
            }
        }
        0
    }

    /// Tears down one in-flight attempt: removes its active stream from its
    /// machine's allocator (if that machine survives), scrubs any flush
    /// waiter reference, frees the slot, and re-queues the logical task
    /// unless another live attempt of it still runs.
    fn abort_task(&mut self, t_idx: usize) -> Result<(), RunError> {
        let (ji, si, ti, machine, start, speculative, io_started) = {
            let t = &self.tasks[t_idx];
            (
                t.job,
                t.stage,
                t.task,
                t.machine,
                t.start,
                t.speculative,
                t.io_started,
            )
        };
        self.tasks[t_idx].killed = true;
        if self.machines[machine].alive {
            let sid = task_stream(t_idx, self.tasks[t_idx].phases.len());
            if self.machines[machine].fluid.contains(sid) {
                self.machines[machine].fluid.remove(self.now, sid);
            }
            self.scrub_flush_waiter(machine, t_idx);
            self.machines[machine].running -= 1;
        }
        self.jobs[ji].recovery.wasted_work_seconds += self.now.since(start).as_secs_f64();
        self.jobs[ji].recovery.wasted_bytes += io_started;
        if speculative {
            self.spec_copies.remove(&(ji, si, ti));
        }
        let other_attempt_live = self.tasks.iter().enumerate().any(|(i, t)| {
            i != t_idx && t.job == ji && t.stage == si && t.task == ti && !t.done && !t.killed
        });
        if other_attempt_live || self.jobs[ji].stages[si].task_done[ti] {
            return Ok(());
        }
        let recompute = self.tasks[t_idx].recompute;
        self.requeue_task(ji, si, ti, recompute)
    }

    /// Drops any flush-entry reference to `t_idx` so a later write-back
    /// completion cannot finish a killed task. The bytes still flush.
    fn scrub_flush_waiter(&mut self, machine: usize, t_idx: usize) {
        for q in &mut self.machines[machine].flush_pending {
            for e in q.iter_mut() {
                if e.waiter == Some(t_idx) {
                    e.waiter = None;
                }
            }
        }
        for (m, _, entries) in self.flushes.values_mut() {
            if *m != machine {
                continue;
            }
            for e in entries.iter_mut() {
                if e.waiter == Some(t_idx) {
                    e.waiter = None;
                }
            }
        }
    }

    /// Bounded-retry re-queue of one logical task.
    fn requeue_task(
        &mut self,
        ji: usize,
        si: usize,
        ti: usize,
        recompute: bool,
    ) -> Result<(), RunError> {
        let a = &mut self.attempts[ji][si][ti];
        *a += 1;
        if *a > self.cfg.max_task_retries {
            return Err(RunError::RetriesExhausted {
                job: JobId(ji as u32),
                stage: StageId(si as u32),
                task: TaskId(ti as u32),
                attempts: *a,
            });
        }
        self.jobs[ji].recovery.tasks_retried += 1;
        self.emit_instant(cluster::InstantKind::TaskRetry {
            job: ji as u32,
            stage: si as u32,
            task: ti as u32,
            recompute,
        });
        if recompute {
            self.recompute_pending.insert((ji, si, ti));
        }
        self.jobs[ji].stages[si].nopref.push(ti as u32);
        Ok(())
    }

    /// Spark-style stage resubmission: for every stage with completed shuffle
    /// output stored on the dead machine `m` that an unfinished stage still
    /// needs, re-queue exactly the tasks that produced those bytes (the
    /// lineage index `completed_on[m]`) and close downstream stages until the
    /// data exists again.
    fn lose_shuffle_outputs(&mut self, m: usize) -> Result<(), RunError> {
        for ji in 0..self.jobs.len() {
            let n_stages = self.jobs[ji].stages.len();
            for si in 0..n_stages {
                if self.jobs[ji].stages[si].shuffle_by_machine[m] <= 0.0 {
                    continue;
                }
                let needed = (0..n_stages).any(|sj| {
                    !self.jobs[ji].stages[sj].done
                        && self.jobs[ji].spec.stages[sj]
                            .deps
                            .iter()
                            .any(|d| d.0 as usize == si)
                });
                if !needed {
                    // Every consumer already finished; the lost bytes will
                    // never be fetched again.
                    continue;
                }
                let lost = std::mem::take(&mut self.jobs[ji].stages[si].completed_on[m]);
                if lost.is_empty() {
                    continue;
                }
                let was_done = {
                    let run = &mut self.jobs[ji].stages[si];
                    run.shuffle_by_machine[m] = 0.0;
                    run.completed -= lost.len();
                    for &ti in &lost {
                        run.task_done[ti as usize] = false;
                    }
                    let was_done = run.done;
                    run.done = false;
                    run.ended = None;
                    was_done
                };
                for ti in lost {
                    self.requeue_task(ji, si, ti as usize, true)?;
                }
                if was_done {
                    for sj in 0..n_stages {
                        let depends = self.jobs[ji].spec.stages[sj]
                            .deps
                            .iter()
                            .any(|d| d.0 as usize == si);
                        if depends
                            && self.jobs[ji].stages[sj].ready
                            && !self.jobs[ji].stages[sj].done
                        {
                            // Pending consumers wait for the recomputation;
                            // in-flight consumers fetching from `m` were
                            // already aborted above.
                            self.jobs[ji].stages[sj].ready = false;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn begin_update_all(&mut self) {
        for m in &mut self.machines {
            m.fluid.begin_update();
        }
    }

    fn commit_all(&mut self, now: SimTime) {
        for m in &mut self.machines {
            m.fluid.commit(now);
        }
    }

    fn assign_tasks(&mut self) -> bool {
        // One task per machine per sweep, so load spreads evenly and a
        // machine exhausts its *local* tasks before any machine steals them.
        let mut changed = false;
        loop {
            let mut assigned_any = false;
            for m in 0..self.n_machines() {
                if !self.machines[m].alive {
                    continue;
                }
                if self.partitions_on && self.quarantined[m] {
                    continue;
                }
                if self.machines[m].running < self.slots {
                    if let Some((ji, si, ti)) = self.pick_task(m) {
                        self.launch_task(m, ji, si, ti, false);
                        assigned_any = true;
                        changed = true;
                    } else if self.cfg.speculation_multiplier.is_some() {
                        if let Some((ji, si, ti)) = self.pick_speculative(m) {
                            self.launch_task(m, ji, si, ti, true);
                            assigned_any = true;
                            changed = true;
                        }
                    }
                }
            }
            if !assigned_any {
                break;
            }
        }
        changed
    }

    /// An idle slot with no regular work: find the straggler most worth
    /// duplicating. A candidate's stage must be at least half complete, the
    /// attempt must have run longer than `speculation_multiplier ×` the
    /// stage's median completed duration, no copy may be outstanding, and
    /// the copy must land on a different machine than the original.
    fn pick_speculative(&self, m: usize) -> Option<(usize, usize, usize)> {
        let mult = self.cfg.speculation_multiplier?;
        for t in &self.tasks {
            if t.done || t.killed || t.speculative || t.machine == m {
                continue;
            }
            if self.partitions_on && !self.can_host(m, t.job, t.stage) {
                continue;
            }
            let key = (t.job, t.stage, t.task);
            let run = &self.jobs[t.job].stages[t.stage];
            if run.task_done[t.task] || self.spec_copies.contains(&key) {
                continue;
            }
            if !self.stage_has_enough_samples(t.job, t.stage) {
                continue;
            }
            let med = self.stage_median(t.job, t.stage);
            if med > 0.0 && self.now.since(t.start).as_secs_f64() > mult * med {
                return Some(key);
            }
        }
        None
    }

    /// Straggler threshold median for a stage: the global attempt median,
    /// or — with per-machine pools on — the median of per-machine medians,
    /// so one degraded machine cannot drag the threshold up.
    fn stage_median(&self, ji: usize, si: usize) -> f64 {
        let run = &self.jobs[ji].stages[si];
        if !self.cfg.per_machine_duration_pools {
            return median(&run.durations);
        }
        let meds: Vec<f64> = run
            .durations_pm
            .iter()
            .filter(|v| !v.is_empty())
            .map(|v| median(v))
            .collect();
        median(&meds)
    }

    /// Enough samples to trust the speculation median: half the stage
    /// complete, and with per-machine pools on, at least two machines
    /// represented (a single machine's pool carries no comparison signal).
    fn stage_has_enough_samples(&self, ji: usize, si: usize) -> bool {
        let run = &self.jobs[ji].stages[si];
        if run.durations.len() * 2 < run.total {
            return false;
        }
        !self.cfg.per_machine_duration_pools
            || run.durations_pm.iter().filter(|v| !v.is_empty()).count() >= 2
    }

    fn pick_task(&mut self, m: usize) -> Option<(usize, usize, usize)> {
        let n_jobs = self.jobs.len();
        for jo in 0..n_jobs {
            let ji = (self.rr_job + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                {
                    let run = &self.jobs[ji].stages[si];
                    if !run.ready || run.done {
                        continue;
                    }
                }
                // Partition gate: a stage whose shuffle senders cannot all
                // reach `m` must not land here (its fetch would stall on
                // arrival).
                if self.partitions_on && !self.can_host(m, ji, si) {
                    continue;
                }
                if let Some(ti) = self.jobs[ji].stages[si].by_pref[m].pop() {
                    self.rr_job = ji + 1;
                    return Some((ji, si, ti as usize));
                }
            }
        }
        for jo in 0..n_jobs {
            let ji = (self.rr_job + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                {
                    let run = &self.jobs[ji].stages[si];
                    if !run.ready || run.done {
                        continue;
                    }
                }
                if self.partitions_on && !self.can_host(m, ji, si) {
                    continue;
                }
                let run = &mut self.jobs[ji].stages[si];
                if let Some(ti) = run.nopref.pop() {
                    self.rr_job = ji + 1;
                    return Some((ji, si, ti as usize));
                }
                for q in &mut run.by_pref {
                    if let Some(ti) = q.pop() {
                        self.rr_job = ji + 1;
                        return Some((ji, si, ti as usize));
                    }
                }
            }
        }
        None
    }

    /// Builds the task's pipelined phases and starts the first one.
    fn launch_task(&mut self, m: usize, ji: usize, si: usize, ti: usize, speculative: bool) {
        let n_disks = self.machines[m].fluid.spec().disks.len();
        let mut spec = self.jobs[ji].spec.stages[si].tasks[ti];
        let mut recompute = false;
        if speculative {
            // The copy inherits the original's recompute attribution and
            // runs clean — the straggle factor applies to first attempts
            // only, which is exactly what speculation exists to beat.
            recompute = self.tasks.iter().any(|t| {
                t.job == ji && t.stage == si && t.task == ti && !t.done && !t.killed && t.recompute
            });
            self.spec_copies.insert((ji, si, ti));
            self.jobs[ji].recovery.tasks_speculated += 1;
            self.emit_instant(cluster::InstantKind::TaskSpeculate {
                job: ji as u32,
                stage: si as u32,
                task: ti as u32,
                machine: m,
            });
        } else if self.faults_on {
            recompute = self.recompute_pending.remove(&(ji, si, ti));
            if self.attempts[ji][si][ti] == 0 {
                if let Some(f) = self.faults.straggle_factor(si, ti) {
                    spec.cpu.deser *= f;
                    spec.cpu.compute *= f;
                    spec.cpu.ser *= f;
                }
            }
        }
        // Phase 1: input + deserialize + compute, fully pipelined.
        let mut p1 = StreamDemand::zero(n_disks);
        p1.cpu = spec.cpu.deser + spec.cpu.compute;
        match spec.input {
            InputSpec::None | InputSpec::Memory { .. } => {}
            InputSpec::DiskBlock { block, bytes } => {
                let d = self.jobs[ji].blocks.disk_of(block);
                p1.disk_read[d] += bytes;
            }
            InputSpec::ShuffleFetch { .. } => {
                // Shuffle data is read from disk once somewhere in the
                // cluster. In an all-to-all shuffle every machine reads as
                // many shuffle bytes for others as others read for it, so we
                // charge the task's *whole* fetch to its local disks (the
                // symmetric proxy for the sender-side reads) — coupling the
                // task to the disk work its data costs — and put the remote
                // fraction on the network as well.
                let shares = self.fetch_shares(ji, si, m);
                for (sender, bytes, via_disk) in shares {
                    if via_disk && n_disks > 0 {
                        let d = self.machines[m].read_cursor;
                        self.machines[m].read_cursor += 1;
                        p1.disk_read[d % n_disks] += bytes;
                    }
                    if sender != m {
                        p1.rx += bytes;
                    }
                }
            }
        }
        // Phase 2: serialize the output (+ synchronous write if configured).
        let mut p2 = StreamDemand::zero(n_disks);
        p2.cpu = spec.cpu.ser;
        let mut out_write = None;
        let write_bytes = spec.output.disk_bytes();
        if write_bytes > 0.0 && n_disks > 0 {
            let d = {
                let c = self.machines[m].write_cursor;
                self.machines[m].write_cursor += 1;
                c % n_disks
            };
            out_write = Some(OutWrite {
                disk: d,
                bytes: write_bytes,
            });
        }
        let mut phases: Vec<StreamDemand> = [p1, p2]
            .into_iter()
            .filter(|p| {
                p.cpu + p.disk_read.iter().sum::<f64>() + p.disk_write.iter().sum::<f64>() + p.rx
                    > 0.0
            })
            .collect();
        if phases.is_empty() {
            // Degenerate task: give it a vanishing CPU phase so it schedules.
            phases.push(StreamDemand::cpu_only(1e-9, n_disks));
        }
        phases.reverse(); // Pop from the back.
        let t_idx = self.tasks.len();
        self.tasks.push(TaskRun {
            job: ji,
            stage: si,
            task: ti,
            machine: m,
            start: self.now,
            phases,
            out_write,
            done: false,
            killed: false,
            speculative,
            recompute,
            fetch_live: matches!(spec.input, InputSpec::ShuffleFetch { .. }),
            io_started: 0.0,
            stall_since: None,
            stall_deadline: None,
            fetch_retries: 0,
            parked: None,
            cur_demand: None,
        });
        self.machines[m].running += 1;
        if self.jobs[ji].stages[si].started.is_none() {
            self.jobs[ji].stages[si].started = Some(self.now);
        }
        self.start_next_phase(t_idx);
    }

    /// `(sender, bytes, via_disk)` for a reduce task on machine `m`.
    fn fetch_shares(&mut self, ji: usize, si: usize, _m: usize) -> Vec<(usize, f64, bool)> {
        let n_machines = self.n_machines();
        let n_tasks = self.jobs[ji].spec.stages[si].tasks.len() as f64;
        let deps = self.jobs[ji].spec.stages[si].deps.clone();
        let mut out = Vec::new();
        for dep in deps {
            let drun = &self.jobs[ji].stages[dep.0 as usize];
            let total: f64 = drun.shuffle_by_machine.iter().sum();
            if total <= 0.0 {
                continue;
            }
            let per_task = total / n_tasks;
            let via_disk = !drun.shuffle_in_memory;
            for s in 0..n_machines {
                let b = per_task * drun.shuffle_by_machine[s] / total;
                if b > 0.0 {
                    out.push((s, b, via_disk));
                }
            }
        }
        out
    }

    /// A flush timer fired: hand the dirty bytes to the per-disk kernel
    /// flusher, which writes back one coalesced stream at a time.
    fn start_flush(&mut self, f: FlushStart) {
        if !self.machines[f.machine].alive {
            // The dirty bytes died with the machine.
            return;
        }
        self.enqueue_flush(
            f.machine,
            f.disk,
            FlushEntry {
                bytes: f.bytes,
                waiter: None,
                charged: true,
            },
        );
    }

    fn enqueue_flush(&mut self, machine: usize, disk: usize, entry: FlushEntry) {
        self.machines[machine].flush_pending[disk].push(entry);
        self.pump_flush(machine, disk);
    }

    fn pump_flush(&mut self, machine: usize, disk: usize) {
        let m = &mut self.machines[machine];
        if m.flush_active[disk] || m.flush_pending[disk].is_empty() {
            return;
        }
        let entries = std::mem::take(&mut m.flush_pending[disk]);
        let bytes: f64 = entries.iter().map(|e| e.bytes).sum::<f64>() * WRITEBACK_SCATTER;
        m.flush_active[disk] = true;
        let n_disks = m.fluid.spec().disks.len();
        let id = self.aux_seq;
        self.aux_seq += 1;
        self.flushes.insert(id, (machine, disk, entries));
        m.fluid.insert(
            self.now,
            aux_stream(TAG_FLUSH, id),
            StreamDemand::disk_write_only(DiskId(disk), bytes, n_disks),
        );
    }

    fn start_next_phase(&mut self, t_idx: usize) {
        let machine = self.tasks[t_idx].machine;
        match self.tasks[t_idx].phases.pop() {
            Some(demand) => {
                self.tasks[t_idx].io_started += demand.disk_read.iter().sum::<f64>()
                    + demand.disk_write.iter().sum::<f64>()
                    + demand.rx;
                if self.partitions_on {
                    self.tasks[t_idx].cur_demand = Some(demand.clone());
                }
                let phase = self.tasks[t_idx].phases.len();
                self.machines[machine]
                    .fluid
                    .insert(self.now, task_stream(t_idx, phase), demand);
            }
            None => self.resolve_output(t_idx),
        }
    }

    /// After the last pipelined phase: route the output write through the
    /// buffer cache (or straight to the flusher in write-through mode), then
    /// finish the task — immediately if the cache absorbed the write, or
    /// when the write-back reaches the disk if the task must wait.
    fn resolve_output(&mut self, t_idx: usize) {
        let machine = self.tasks[t_idx].machine;
        if let Some(w) = self.tasks[t_idx].out_write.take() {
            self.tasks[t_idx].io_started += w.bytes;
            if self.cfg.write_through {
                // Forced flush (§5.3's second Spark configuration): the bytes
                // go through the per-disk flusher — which still batches like
                // the kernel's — and the task waits for them to land.
                self.enqueue_flush(
                    machine,
                    w.disk,
                    FlushEntry {
                        bytes: w.bytes,
                        waiter: Some(t_idx),
                        charged: false,
                    },
                );
                return;
            }
            match self.machines[machine].cache.write(self.now, w.bytes) {
                WriteOutcome::Absorbed { flush_at } => {
                    self.timers.schedule(
                        flush_at,
                        FlushStart {
                            machine,
                            disk: w.disk,
                            bytes: w.bytes,
                        },
                    );
                }
                WriteOutcome::Synchronous => {
                    // Cache full: the task blocks until the flusher writes
                    // its bytes back.
                    self.enqueue_flush(
                        machine,
                        w.disk,
                        FlushEntry {
                            bytes: w.bytes,
                            waiter: Some(t_idx),
                            charged: false,
                        },
                    );
                    return;
                }
            }
        }
        self.finish_task(t_idx);
    }

    fn on_stream_done(&mut self, machine: usize, sid: StreamId) {
        let (tag, rest) = decode(sid);
        match tag {
            TAG_TASK => {
                let t_idx = (rest >> 8) as usize;
                if self.tasks[t_idx].killed {
                    // Same-instant race: the attempt was killed in this batch
                    // after its stream already drained as completed.
                    return;
                }
                // Any phase completion means the (first-phase) fetch is over.
                self.tasks[t_idx].fetch_live = false;
                self.start_next_phase(t_idx);
            }
            TAG_FLUSH => {
                let (m, disk, entries) = self.flushes.remove(&rest).expect("unknown flush");
                debug_assert_eq!(m, machine);
                self.machines[m].flush_active[disk] = false;
                for e in entries {
                    if e.charged {
                        self.machines[m].cache.flushed(e.bytes);
                    }
                    if let Some(t_idx) = e.waiter {
                        if !self.tasks[t_idx].killed {
                            self.finish_task(t_idx);
                        }
                    }
                }
                self.pump_flush(m, disk);
            }
            other => panic!("unknown stream tag {other}"),
        }
    }

    fn finish_task(&mut self, t_idx: usize) {
        let t = &mut self.tasks[t_idx];
        debug_assert!(!t.done && !t.killed);
        t.done = true;
        let (ji, si, ti, machine, start, recompute, io_started) = (
            t.job,
            t.stage,
            t.task,
            t.machine,
            t.start,
            t.recompute,
            t.io_started,
        );
        self.machines[machine].running -= 1;
        let elapsed = self.now.since(start).as_secs_f64();
        if self.jobs[ji].stages[si].task_done[ti] {
            // A slower attempt crossed the line after the winner already
            // counted: pure wasted work, no record, no stage progress.
            self.jobs[ji].recovery.wasted_work_seconds += elapsed;
            self.jobs[ji].recovery.wasted_bytes += io_started;
            return;
        }
        self.jobs[ji].stages[si].task_done[ti] = true;
        // First finisher wins: a still-running twin (original or copy) is
        // killed and its time charged as waste.
        if self.spec_copies.remove(&(ji, si, ti)) || self.tasks[t_idx].speculative {
            for loser in 0..self.tasks.len() {
                let l = &self.tasks[loser];
                if loser != t_idx
                    && l.job == ji
                    && l.stage == si
                    && l.task == ti
                    && !l.done
                    && !l.killed
                {
                    self.kill_task(loser);
                }
            }
        }
        self.records.push(TaskRecord {
            job: JobId(ji as u32),
            stage: StageId(si as u32),
            task: TaskId(ti as u32),
            machine,
            start,
            end: self.now,
        });
        if self.faults_on {
            if recompute {
                self.jobs[ji].recovery.recompute_seconds += elapsed;
            }
            // Lineage index: which completed tasks' outputs live on `machine`.
            self.jobs[ji].stages[si].completed_on[machine].push(ti as u32);
        }
        let spec = self.jobs[ji].spec.stages[si].tasks[ti];
        {
            let run = &mut self.jobs[ji].stages[si];
            if let OutputSpec::ShuffleWrite { bytes, .. } = spec.output {
                run.shuffle_by_machine[machine] += bytes;
            }
            run.completed += 1;
            if run.completed == run.total {
                run.done = true;
                run.ended = Some(self.now);
            }
        }
        if let Some(mult) = self.cfg.speculation_multiplier {
            self.jobs[ji].stages[si].durations.push(elapsed);
            if self.cfg.per_machine_duration_pools {
                self.jobs[ji].stages[si].durations_pm[machine].push(elapsed);
            }
            self.schedule_speculation_wakeups(ji, si, mult);
        }
        if self.jobs[ji].stages[si].done {
            self.unlock_dependents(ji, si);
            if self.jobs[ji].stages.iter().all(|s| s.done) {
                self.jobs[ji].done = true;
                self.jobs[ji].end = self.now;
            }
        }
    }

    /// Kills a losing attempt in a speculation race: removes its active
    /// stream (or flush waiter), frees its slot, and charges its runtime as
    /// wasted work. The logical task is already complete, so nothing
    /// re-queues.
    fn kill_task(&mut self, t_idx: usize) {
        let (ji, machine, start, speculative, io_started) = {
            let t = &self.tasks[t_idx];
            (t.job, t.machine, t.start, t.speculative, t.io_started)
        };
        self.tasks[t_idx].killed = true;
        if self.machines[machine].alive {
            let sid = task_stream(t_idx, self.tasks[t_idx].phases.len());
            if self.machines[machine].fluid.contains(sid) {
                self.machines[machine].fluid.remove(self.now, sid);
            }
            self.scrub_flush_waiter(machine, t_idx);
            self.machines[machine].running -= 1;
        }
        if speculative {
            let t = &self.tasks[t_idx];
            self.spec_copies.remove(&(t.job, t.stage, t.task));
        }
        self.jobs[ji].recovery.wasted_work_seconds += self.now.since(start).as_secs_f64();
        self.jobs[ji].recovery.wasted_bytes += io_started;
    }

    /// Once a stage's median is known, the instant each still-running
    /// attempt crosses the speculation threshold is known too — schedule a
    /// wake-up there so the idle-slot sweep observes it even if no other
    /// event falls in between (e.g. the straggler is the last stream alive).
    fn schedule_speculation_wakeups(&mut self, ji: usize, si: usize, mult: f64) {
        if self.jobs[ji].stages[si].done || !self.stage_has_enough_samples(ji, si) {
            return;
        }
        let med = self.stage_median(ji, si);
        if med <= 0.0 {
            return;
        }
        let threshold = SimDuration::from_secs_f64(mult * med);
        let mut wake: Vec<SimTime> = Vec::new();
        for t in &self.tasks {
            if t.done || t.killed || t.speculative || t.job != ji || t.stage != si {
                continue;
            }
            if self.spec_copies.contains(&(t.job, t.stage, t.task)) {
                continue;
            }
            let at = t.start.saturating_add(threshold);
            if at > self.now {
                wake.push(at);
            }
        }
        for at in wake {
            self.spec_timers.schedule(at, ());
        }
    }

    fn unlock_dependents(&mut self, ji: usize, completed: usize) {
        for si in 0..self.jobs[ji].spec.stages.len() {
            let deps = &self.jobs[ji].spec.stages[si].deps;
            if self.jobs[ji].stages[si].ready || !deps.iter().any(|d| d.0 as usize == completed) {
                continue;
            }
            if deps.iter().all(|d| self.jobs[ji].stages[d.0 as usize].done) {
                self.make_stage_ready(ji, si);
            }
        }
    }

    fn into_output(self) -> SparkRunOutput {
        let makespan = self.now;
        let mut stats = self.stats;
        for m in &self.machines {
            // Machine-local allocation gets its own attribution bucket (the
            // sparklike executor has no fabric, so all allocation is here).
            stats.merge(&m.fluid.stats().as_machine_alloc());
        }
        // main_loop stored raw loop wall time; what the allocators account
        // for is attributed to them, the rest is executor control.
        stats.control_nanos = stats.control_nanos.saturating_sub(stats.allocator_nanos());
        let mut total_recovery = RecoveryStats::default();
        for j in &self.jobs {
            total_recovery.merge(&j.recovery);
        }
        stats.tasks_retried = total_recovery.tasks_retried;
        stats.tasks_speculated = total_recovery.tasks_speculated;
        stats.wasted_work_nanos = (total_recovery.wasted_work_seconds * 1e9).round() as u64;
        stats.recompute_nanos = (total_recovery.recompute_seconds * 1e9).round() as u64;
        stats.wasted_bytes = total_recovery.wasted_bytes.round() as u64;
        stats.fetch_retries = total_recovery.fetch_retries;
        stats.stalled_fetch_nanos = (total_recovery.stalled_fetch_seconds * 1e9).round() as u64;
        stats.fetch_backoff_nanos = (total_recovery.fetch_backoff_seconds * 1e9).round() as u64;
        stats.fetches_replanned = total_recovery.fetches_replanned;
        let jobs = self
            .jobs
            .into_iter()
            .map(|j| JobReport {
                job: j.id,
                name: j.spec.name.clone(),
                start: SimTime::ZERO,
                end: j.end,
                stages: j
                    .stages
                    .iter()
                    .enumerate()
                    .map(|(si, s)| StageReport {
                        stage: StageId(si as u32),
                        start: s.started.expect("stage never started"),
                        end: s.ended.expect("stage never ended"),
                        control: Default::default(),
                    })
                    .collect(),
                recovery: j.recovery,
            })
            .collect();
        SparkRunOutput {
            jobs,
            tasks: self.records,
            traces: self.traces,
            makespan,
            stats,
            instants: self.instants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MachineSpec;
    use dataflow::{CostModel, JobBuilder};

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn small_cluster() -> ClusterSpec {
        ClusterSpec::new(4, MachineSpec::m2_4xlarge())
    }

    fn sort_job(total_gib: f64, tasks: usize) -> (JobSpec, BlockMap) {
        let total = total_gib * GIB;
        let job = JobBuilder::new("sort", CostModel::spark_1_3())
            .read_disk(total, total / 100.0, total / tasks as f64)
            .map(1.0, 1.0, true)
            .shuffle(tasks, false)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        (job, BlockMap::round_robin(tasks, 4, 2))
    }

    #[test]
    fn sort_job_completes_with_barriered_stages() {
        let (job, blocks) = sort_job(4.0, 32);
        let out = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        let r = &out.jobs[0];
        assert_eq!(r.stages.len(), 2);
        assert!(r.stages[1].start >= r.stages[0].end);
        assert!(r.duration_secs() > 1.0);
        assert_eq!(out.tasks.len(), 64);
    }

    #[test]
    fn slots_limit_concurrency_on_cpu_bound_work() {
        // A CPU-bound job: one slot per machine leaves 7 cores idle.
        let job = JobBuilder::new("cpu", CostModel::spark_1_3())
            .read_memory(GIB, 1e6, 64, true)
            .add_compute(400.0)
            .collect();
        let blocks = BlockMap::round_robin(1, 4, 2);
        let cfg = SparkConfig {
            slots_per_machine: Some(1),
            ..SparkConfig::default()
        };
        let narrow = run(&small_cluster(), &[(job.clone(), blocks.clone())], &cfg);
        let wide = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        assert!(
            narrow.jobs[0].duration_secs() > 4.0 * wide.jobs[0].duration_secs(),
            "narrow={} wide={}",
            narrow.jobs[0].duration_secs(),
            wide.jobs[0].duration_secs()
        );
    }

    #[test]
    fn mixed_read_write_traffic_pays_seek_contention() {
        // A job that reads and writes equal bytes on HDDs cannot hit the
        // sequential lower bound under the baseline: readers interleave with
        // write-back and lose throughput to seeks (§5.4). The monotasks
        // executor's per-disk scheduler is what removes this penalty.
        let total = 4.0 * GIB;
        let job = JobBuilder::new("io", CostModel::spark_1_3())
            .read_disk(total, total / 10_000.0, total / 64.0)
            .map(1.0, 1.0, false)
            .write_disk(1.0);
        let blocks = BlockMap::round_robin(64, 1, 2);
        let cluster = ClusterSpec::new(1, MachineSpec::m2_4xlarge());
        let cfg = SparkConfig {
            write_through: true,
            ..SparkConfig::default()
        };
        let out = run(&cluster, &[(job, blocks)], &cfg);
        let hdd = 110.0 * 1024.0 * 1024.0;
        let sequential_bound = 2.0 * total / (2.0 * hdd);
        let got = out.jobs[0].duration_secs();
        assert!(
            got > 1.25 * sequential_bound,
            "no contention visible: {got} vs bound {sequential_bound}"
        );
        assert!(got < 3.0 * sequential_bound, "implausible collapse: {got}");
    }

    #[test]
    fn write_through_is_slower_than_buffer_cache() {
        // Small output: with the cache, writes vanish from the critical path.
        let total = 2.0 * GIB;
        let mk = || {
            JobBuilder::new("scan", CostModel::spark_1_3())
                .read_disk(total, 1e7, total / 32.0)
                .map(1.0, 1.0, false)
                .write_disk(1.0)
        };
        let blocks = BlockMap::round_robin(32, 4, 2);
        let cached = run(
            &small_cluster(),
            &[(mk(), blocks.clone())],
            &SparkConfig::default(),
        );
        let cfg = SparkConfig {
            write_through: true,
            ..SparkConfig::default()
        };
        let sync = run(&small_cluster(), &[(mk(), blocks)], &cfg);
        assert!(
            sync.jobs[0].duration_secs() > cached.jobs[0].duration_secs(),
            "sync={} cached={}",
            sync.jobs[0].duration_secs(),
            cached.jobs[0].duration_secs()
        );
    }

    #[test]
    fn tasks_pipeline_read_and_compute() {
        // A disk-and-CPU-balanced task should take ~max(read, compute), not
        // their sum, because the baseline pipelines at fine grain.
        let hdd = 110.0 * 1024.0 * 1024.0;
        let total = 8.0 * hdd; // 8 sequential disk-seconds across the job.
        let job = JobBuilder::new("j", CostModel::spark_1_3())
            .read_disk(total, 1.0, total) // one task, negligible records
            .collect();
        let blocks = BlockMap::round_robin(1, 1, 1);
        let cluster = ClusterSpec::new(1, MachineSpec::m2_4xlarge());
        let out = run(&cluster, &[(job.clone(), blocks)], &SparkConfig::default());
        let deser_cpu = job.stages[0].tasks[0].cpu.deser;
        let read_secs: f64 = 8.0;
        let expected = read_secs.max(deser_cpu);
        let got = out.jobs[0].duration_secs();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "got {got}, expected ≈{expected}"
        );
    }

    #[test]
    fn in_memory_shuffle_touches_no_disk() {
        let total = 2.0 * GIB;
        let job = JobBuilder::new("mem", CostModel::spark_1_3())
            .read_memory(total, 1e7, 32, true)
            .map(1.0, 1.0, true)
            .shuffle(32, true)
            .map(1.0, 1.0, true)
            .write_memory();
        let blocks = BlockMap::round_robin(1, 4, 2);
        let out = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        // No disk utilization was ever recorded above zero.
        for m in 0..4 {
            for d in 0..2 {
                let rec = out
                    .traces
                    .recorder(MachineId(m), cluster::ResourceSel::Disk(d));
                if let Some(r) = rec {
                    assert_eq!(
                        r.mean_over(SimTime::ZERO, out.makespan.max(SimTime::from_secs(1))),
                        0.0
                    );
                }
            }
        }
        assert!(out.jobs[0].duration_secs() > 0.0);
    }

    #[test]
    fn concurrent_tasks_per_machine_never_exceed_slots() {
        let (job, blocks) = sort_job(4.0, 64);
        let cfg = SparkConfig {
            slots_per_machine: Some(3),
            ..SparkConfig::default()
        };
        let out = run(&small_cluster(), &[(job, blocks)], &cfg);
        // Sweep each task's [start, end) and count the maximum overlap per
        // machine at task boundaries (overlap only changes there).
        for m in 0..4 {
            let tasks: Vec<_> = out.tasks.iter().filter(|t| t.machine == m).collect();
            for probe in tasks.iter().map(|t| t.start) {
                let live = tasks
                    .iter()
                    .filter(|t| t.start <= probe && probe < t.end)
                    .count();
                assert!(live <= 3, "machine {m} ran {live} tasks at {probe:?}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (job, blocks) = sort_job(2.0, 16);
        let a = run(
            &small_cluster(),
            &[(job.clone(), blocks.clone())],
            &SparkConfig::default(),
        );
        let b = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn concurrent_jobs_interleave() {
        let (a, ba) = sort_job(2.0, 16);
        let (b, bb) = sort_job(2.0, 16);
        let solo = run(
            &small_cluster(),
            &[(a.clone(), ba.clone())],
            &SparkConfig::default(),
        );
        let both = run(
            &small_cluster(),
            &[(a, ba), (b, bb)],
            &SparkConfig::default(),
        );
        assert!(both.jobs[0].duration_secs() > solo.jobs[0].duration_secs());
        assert!(both.makespan.as_secs_f64() < 2.5 * solo.makespan.as_secs_f64());
    }
}
