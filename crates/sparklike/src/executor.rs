//! The slot-scheduled, fine-grained-pipelined executor.

use std::collections::HashMap;

use cluster::{
    BufferCache, CachePolicy, ClusterSpec, DiskId, FluidMachine, MachineId, StreamDemand, StreamId,
    TraceSet, WriteOutcome,
};
use dataflow::{
    BlockMap, InputSpec, JobId, JobReport, JobSpec, OutputSpec, StageId, StageReport, TaskId,
};
use simcore::{EventQueue, SimStats, SimTime};

/// Configuration of the baseline executor.
#[derive(Clone, Debug)]
pub struct SparkConfig {
    /// Concurrent tasks per machine; `None` = one per core (Spark's default,
    /// §3.4). Fig 18 sweeps this.
    pub slots_per_machine: Option<usize>,
    /// Force writes through to disk instead of the buffer cache (the second
    /// Spark configuration in Fig 5).
    pub write_through: bool,
    /// Safety valve on simulation iterations.
    pub max_steps: u64,
}

impl Default for SparkConfig {
    fn default() -> Self {
        SparkConfig {
            slots_per_machine: None,
            write_through: false,
            max_steps: 50_000_000,
        }
    }
}

/// One completed task (multitask-level timing only: the baseline cannot
/// attribute time to individual resources — that is §6.6's point).
#[derive(Clone, Copy, Debug)]
pub struct TaskRecord {
    /// Owning job.
    pub job: JobId,
    /// Owning stage.
    pub stage: StageId,
    /// Task index.
    pub task: TaskId,
    /// Machine that ran it.
    pub machine: usize,
    /// Launch time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
}

/// Everything a baseline run produces.
#[derive(Debug)]
pub struct SparkRunOutput {
    /// Per-job reports (submission order).
    pub jobs: Vec<JobReport>,
    /// Per-task records.
    pub tasks: Vec<TaskRecord>,
    /// Cluster utilization traces.
    pub traces: TraceSet,
    /// Time of the last *job* completion (background flushes may continue).
    pub makespan: SimTime,
    /// Control-plane cost: simulation steps plus allocator work summed over
    /// every machine.
    pub stats: SimStats,
}

#[derive(Debug)]
struct StageRun {
    ready: bool,
    done: bool,
    total: usize,
    completed: usize,
    by_pref: Vec<Vec<u32>>,
    nopref: Vec<u32>,
    started: Option<SimTime>,
    ended: Option<SimTime>,
    shuffle_by_machine: Vec<f64>,
    shuffle_in_memory: bool,
}

#[derive(Debug)]
struct JobRun {
    id: JobId,
    spec: JobSpec,
    blocks: BlockMap,
    stages: Vec<StageRun>,
    done: bool,
    end: SimTime,
}

/// A pending disk write at the end of a task.
#[derive(Clone, Copy, Debug)]
struct OutWrite {
    disk: usize,
    bytes: f64,
}

/// One unit of write-back work for a disk's flusher: the bytes, the task (if
/// any) blocked on the write reaching the platters, and whether the bytes
/// were charged to the buffer cache.
#[derive(Clone, Copy, Debug)]
struct FlushEntry {
    bytes: f64,
    waiter: Option<usize>,
    charged: bool,
}

#[derive(Debug)]
struct TaskRun {
    job: usize,
    stage: usize,
    task: usize,
    machine: usize,
    start: SimTime,
    /// Remaining phases, in execution order (front = next).
    phases: Vec<StreamDemand>,
    /// Output write to resolve through the cache policy after the last phase.
    out_write: Option<OutWrite>,
    done: bool,
}

struct Mach {
    fluid: FluidMachine,
    cache: BufferCache,
    running: usize,
    write_cursor: usize,
    read_cursor: usize,
    /// Write-back work per disk awaiting the (single) kernel flusher. Each
    /// entry is `(bytes, waiting task, charged to the cache)`.
    flush_pending: Vec<Vec<FlushEntry>>,
    flush_active: Vec<bool>,
}

/// Timer events: background cache flushes reaching their start time.
#[derive(Clone, Copy, Debug)]
struct FlushStart {
    machine: usize,
    disk: usize,
    bytes: f64,
}

const TAG_TASK: u64 = 0;
const TAG_FLUSH: u64 = 2;

/// Write-back of task output is scattered across many files' dirty pages,
/// not one sequential extent: the flusher pays this factor over sequential
/// write time. (The monotasks executor writes each monotask's buffer as one
/// sequential extent and pays no such penalty — part of §5.4's disk win.)
const WRITEBACK_SCATTER: f64 = 1.4;

fn task_stream(task: usize, phase: usize) -> StreamId {
    debug_assert!(phase < 256);
    StreamId((TAG_TASK << 56) | ((task as u64) << 8) | phase as u64)
}

fn aux_stream(tag: u64, n: u64) -> StreamId {
    StreamId((tag << 56) | n)
}

fn decode(id: StreamId) -> (u64, u64) {
    (id.0 >> 56, id.0 & ((1 << 56) - 1))
}

struct Exec {
    cfg: SparkConfig,
    slots: usize,
    machines: Vec<Mach>,
    jobs: Vec<JobRun>,
    tasks: Vec<TaskRun>,
    records: Vec<TaskRecord>,
    traces: TraceSet,
    timers: EventQueue<FlushStart>,
    /// In-flight flush streams: aux id → (machine, disk, merged entries).
    flushes: HashMap<u64, (usize, usize, Vec<FlushEntry>)>,
    aux_seq: u64,
    now: SimTime,
    rr_job: usize,
    stats: SimStats,
}

/// Runs `jobs` on a simulated `cluster` under the Spark-like architecture.
///
/// # Examples
///
/// ```
/// use cluster::{ClusterSpec, MachineSpec};
/// use dataflow::{BlockMap, CostModel, JobBuilder};
///
/// let gib = 1024.0 * 1024.0 * 1024.0;
/// let job = JobBuilder::new("scan", CostModel::spark_1_3())
///     .read_disk(gib, 1e7, gib / 16.0)
///     .map(1.0, 0.1, false)
///     .write_disk(1.0);
/// let blocks = BlockMap::round_robin(16, 4, 2);
/// let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
///
/// let out = sparklike::run(&cluster, &[(job, blocks)], &Default::default());
/// assert_eq!(out.tasks.len(), 16);
/// ```
///
/// # Panics
///
/// Panics if a job spec fails validation or the simulation deadlocks.
pub fn run(
    cluster: &ClusterSpec,
    jobs: &[(JobSpec, BlockMap)],
    cfg: &SparkConfig,
) -> SparkRunOutput {
    for (spec, _) in jobs {
        if let Err(e) = spec.validate() {
            panic!("invalid job spec {:?}: {e}", spec.name);
        }
    }
    let n_machines = cluster.machines;
    let slots = cfg
        .slots_per_machine
        .unwrap_or(cluster.machine.cores as usize)
        .max(1);
    let n_disks = cluster.machine.disks.len();
    let machines = (0..n_machines)
        .map(|_| Mach {
            fluid: FluidMachine::new(cluster.machine.clone()),
            cache: BufferCache::new(CachePolicy::for_memory(cluster.machine.memory)),
            running: 0,
            write_cursor: 0,
            read_cursor: 0,
            flush_pending: vec![Vec::new(); n_disks],
            flush_active: vec![false; n_disks],
        })
        .collect();
    let job_runs = jobs
        .iter()
        .enumerate()
        .map(|(ji, (spec, blocks))| JobRun {
            id: JobId(ji as u32),
            spec: spec.clone(),
            blocks: blocks.clone(),
            stages: spec
                .stages
                .iter()
                .map(|st| StageRun {
                    ready: false,
                    done: false,
                    total: st.tasks.len(),
                    completed: 0,
                    by_pref: vec![Vec::new(); n_machines],
                    nopref: Vec::new(),
                    started: None,
                    ended: None,
                    shuffle_by_machine: vec![0.0; n_machines],
                    shuffle_in_memory: st.tasks.iter().any(|t| {
                        matches!(
                            t.output,
                            OutputSpec::ShuffleWrite {
                                in_memory: true,
                                ..
                            }
                        )
                    }),
                })
                .collect(),
            done: false,
            end: SimTime::ZERO,
        })
        .collect();
    let mut exec = Exec {
        cfg: cfg.clone(),
        slots,
        machines,
        jobs: job_runs,
        tasks: Vec::new(),
        records: Vec::new(),
        traces: TraceSet::new(),
        timers: EventQueue::new(),
        flushes: HashMap::new(),
        aux_seq: 0,
        now: SimTime::ZERO,
        rr_job: 0,
        stats: SimStats::new(),
    };
    exec.prime();
    exec.main_loop();
    exec.into_output()
}

impl Exec {
    fn n_machines(&self) -> usize {
        self.machines.len()
    }

    fn prime(&mut self) {
        for ji in 0..self.jobs.len() {
            for si in 0..self.jobs[ji].spec.stages.len() {
                if self.jobs[ji].spec.stages[si].deps.is_empty() {
                    self.make_stage_ready(ji, si);
                }
            }
        }
    }

    fn make_stage_ready(&mut self, ji: usize, si: usize) {
        let n_machines = self.n_machines();
        let job = &mut self.jobs[ji];
        let stage_spec = &job.spec.stages[si];
        let run = &mut job.stages[si];
        run.ready = true;
        for (ti, task) in stage_spec.tasks.iter().enumerate() {
            match task.input {
                InputSpec::DiskBlock { block, .. } => {
                    run.by_pref[job.blocks.machine_of(block)].push(ti as u32)
                }
                InputSpec::Memory { .. } => run.by_pref[ti % n_machines].push(ti as u32),
                InputSpec::None | InputSpec::ShuffleFetch { .. } => run.nopref.push(ti as u32),
            }
        }
        for q in &mut run.by_pref {
            q.reverse();
        }
        run.nopref.reverse();
    }

    fn main_loop(&mut self) {
        let loop_timer = std::time::Instant::now();
        let mut steps: u64 = 0;
        // Completion buffer reused across events: the speculative poll runs
        // per machine per event and must not allocate.
        let mut done_streams: Vec<StreamId> = Vec::new();
        loop {
            // One batch per event instant: flush timers and finished streams
            // first (their handlers cascade into follow-up inserts — next task
            // phases, write-back flush streams), then the assignment sweep.
            // Each machine reallocates once per event at commit; the
            // intermediate fixpoint between the waves is never observed.
            self.begin_update_all();
            while self.timers.peek_time() == Some(self.now) {
                let (_, f) = self.timers.pop().expect("peeked");
                self.start_flush(f);
            }
            for m in 0..self.n_machines() {
                self.machines[m].fluid.advance(self.now);
                self.machines[m]
                    .fluid
                    .take_completed_into(self.now, &mut done_streams);
                for &sid in &done_streams {
                    self.on_stream_done(m, sid);
                }
            }
            while self.assign_tasks() {}
            self.commit_all(self.now);
            for m in 0..self.n_machines() {
                self.machines[m].fluid.advance(self.now);
                self.traces
                    .snapshot(self.now, MachineId(m), &self.machines[m].fluid);
            }
            if self.jobs.iter().all(|j| j.done) {
                break;
            }
            // Next event: stream completion or flush timer.
            let mut next: Option<SimTime> = None;
            for m in self.machines.iter_mut() {
                if let Some(t) = m.fluid.next_completion(self.now) {
                    next = Some(next.map_or(t, |b: SimTime| b.min(t)));
                }
            }
            if let Some(t) = self.timers.peek_time() {
                next = Some(next.map_or(t, |b: SimTime| b.min(t)));
            }
            let Some(t) = next else {
                panic!(
                    "spark-like executor deadlocked at {:?}: jobs unfinished with no events",
                    self.now
                );
            };
            self.now = t;
            steps += 1;
            assert!(
                steps <= self.cfg.max_steps,
                "spark-like executor exceeded {} steps",
                self.cfg.max_steps
            );
        }
        self.stats.events = steps;
        // Raw loop wall time; into_output subtracts what the allocators
        // account for, leaving pure executor-control overhead.
        self.stats.control_nanos = loop_timer.elapsed().as_nanos() as u64;
    }

    fn begin_update_all(&mut self) {
        for m in &mut self.machines {
            m.fluid.begin_update();
        }
    }

    fn commit_all(&mut self, now: SimTime) {
        for m in &mut self.machines {
            m.fluid.commit(now);
        }
    }

    fn assign_tasks(&mut self) -> bool {
        // One task per machine per sweep, so load spreads evenly and a
        // machine exhausts its *local* tasks before any machine steals them.
        let mut changed = false;
        loop {
            let mut assigned_any = false;
            for m in 0..self.n_machines() {
                if self.machines[m].running < self.slots {
                    if let Some((ji, si, ti)) = self.pick_task(m) {
                        self.launch_task(m, ji, si, ti);
                        assigned_any = true;
                        changed = true;
                    }
                }
            }
            if !assigned_any {
                break;
            }
        }
        changed
    }

    fn pick_task(&mut self, m: usize) -> Option<(usize, usize, usize)> {
        let n_jobs = self.jobs.len();
        for jo in 0..n_jobs {
            let ji = (self.rr_job + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                let run = &mut self.jobs[ji].stages[si];
                if !run.ready || run.done {
                    continue;
                }
                if let Some(ti) = run.by_pref[m].pop() {
                    self.rr_job = ji + 1;
                    return Some((ji, si, ti as usize));
                }
            }
        }
        for jo in 0..n_jobs {
            let ji = (self.rr_job + jo) % n_jobs;
            for si in 0..self.jobs[ji].stages.len() {
                let run = &mut self.jobs[ji].stages[si];
                if !run.ready || run.done {
                    continue;
                }
                if let Some(ti) = run.nopref.pop() {
                    self.rr_job = ji + 1;
                    return Some((ji, si, ti as usize));
                }
                for q in &mut run.by_pref {
                    if let Some(ti) = q.pop() {
                        self.rr_job = ji + 1;
                        return Some((ji, si, ti as usize));
                    }
                }
            }
        }
        None
    }

    /// Builds the task's pipelined phases and starts the first one.
    fn launch_task(&mut self, m: usize, ji: usize, si: usize, ti: usize) {
        let n_disks = self.machines[m].fluid.spec().disks.len();
        let spec = self.jobs[ji].spec.stages[si].tasks[ti];
        // Phase 1: input + deserialize + compute, fully pipelined.
        let mut p1 = StreamDemand::zero(n_disks);
        p1.cpu = spec.cpu.deser + spec.cpu.compute;
        match spec.input {
            InputSpec::None | InputSpec::Memory { .. } => {}
            InputSpec::DiskBlock { block, bytes } => {
                let d = self.jobs[ji].blocks.disk_of(block);
                p1.disk_read[d] += bytes;
            }
            InputSpec::ShuffleFetch { .. } => {
                // Shuffle data is read from disk once somewhere in the
                // cluster. In an all-to-all shuffle every machine reads as
                // many shuffle bytes for others as others read for it, so we
                // charge the task's *whole* fetch to its local disks (the
                // symmetric proxy for the sender-side reads) — coupling the
                // task to the disk work its data costs — and put the remote
                // fraction on the network as well.
                let shares = self.fetch_shares(ji, si, m);
                for (sender, bytes, via_disk) in shares {
                    if via_disk && n_disks > 0 {
                        let d = self.machines[m].read_cursor;
                        self.machines[m].read_cursor += 1;
                        p1.disk_read[d % n_disks] += bytes;
                    }
                    if sender != m {
                        p1.rx += bytes;
                    }
                }
            }
        }
        // Phase 2: serialize the output (+ synchronous write if configured).
        let mut p2 = StreamDemand::zero(n_disks);
        p2.cpu = spec.cpu.ser;
        let mut out_write = None;
        let write_bytes = spec.output.disk_bytes();
        if write_bytes > 0.0 && n_disks > 0 {
            let d = {
                let c = self.machines[m].write_cursor;
                self.machines[m].write_cursor += 1;
                c % n_disks
            };
            out_write = Some(OutWrite {
                disk: d,
                bytes: write_bytes,
            });
        }
        let mut phases: Vec<StreamDemand> = [p1, p2]
            .into_iter()
            .filter(|p| {
                p.cpu + p.disk_read.iter().sum::<f64>() + p.disk_write.iter().sum::<f64>() + p.rx
                    > 0.0
            })
            .collect();
        if phases.is_empty() {
            // Degenerate task: give it a vanishing CPU phase so it schedules.
            phases.push(StreamDemand::cpu_only(1e-9, n_disks));
        }
        phases.reverse(); // Pop from the back.
        let t_idx = self.tasks.len();
        self.tasks.push(TaskRun {
            job: ji,
            stage: si,
            task: ti,
            machine: m,
            start: self.now,
            phases,
            out_write,
            done: false,
        });
        self.machines[m].running += 1;
        if self.jobs[ji].stages[si].started.is_none() {
            self.jobs[ji].stages[si].started = Some(self.now);
        }
        self.start_next_phase(t_idx);
    }

    /// `(sender, bytes, via_disk)` for a reduce task on machine `m`.
    fn fetch_shares(&mut self, ji: usize, si: usize, _m: usize) -> Vec<(usize, f64, bool)> {
        let n_machines = self.n_machines();
        let n_tasks = self.jobs[ji].spec.stages[si].tasks.len() as f64;
        let deps = self.jobs[ji].spec.stages[si].deps.clone();
        let mut out = Vec::new();
        for dep in deps {
            let drun = &self.jobs[ji].stages[dep.0 as usize];
            let total: f64 = drun.shuffle_by_machine.iter().sum();
            if total <= 0.0 {
                continue;
            }
            let per_task = total / n_tasks;
            let via_disk = !drun.shuffle_in_memory;
            for s in 0..n_machines {
                let b = per_task * drun.shuffle_by_machine[s] / total;
                if b > 0.0 {
                    out.push((s, b, via_disk));
                }
            }
        }
        out
    }

    /// A flush timer fired: hand the dirty bytes to the per-disk kernel
    /// flusher, which writes back one coalesced stream at a time.
    fn start_flush(&mut self, f: FlushStart) {
        self.enqueue_flush(
            f.machine,
            f.disk,
            FlushEntry {
                bytes: f.bytes,
                waiter: None,
                charged: true,
            },
        );
    }

    fn enqueue_flush(&mut self, machine: usize, disk: usize, entry: FlushEntry) {
        self.machines[machine].flush_pending[disk].push(entry);
        self.pump_flush(machine, disk);
    }

    fn pump_flush(&mut self, machine: usize, disk: usize) {
        let m = &mut self.machines[machine];
        if m.flush_active[disk] || m.flush_pending[disk].is_empty() {
            return;
        }
        let entries = std::mem::take(&mut m.flush_pending[disk]);
        let bytes: f64 = entries.iter().map(|e| e.bytes).sum::<f64>() * WRITEBACK_SCATTER;
        m.flush_active[disk] = true;
        let n_disks = m.fluid.spec().disks.len();
        let id = self.aux_seq;
        self.aux_seq += 1;
        self.flushes.insert(id, (machine, disk, entries));
        m.fluid.insert(
            self.now,
            aux_stream(TAG_FLUSH, id),
            StreamDemand::disk_write_only(DiskId(disk), bytes, n_disks),
        );
    }

    fn start_next_phase(&mut self, t_idx: usize) {
        let machine = self.tasks[t_idx].machine;
        match self.tasks[t_idx].phases.pop() {
            Some(demand) => {
                let phase = self.tasks[t_idx].phases.len();
                self.machines[machine]
                    .fluid
                    .insert(self.now, task_stream(t_idx, phase), demand);
            }
            None => self.resolve_output(t_idx),
        }
    }

    /// After the last pipelined phase: route the output write through the
    /// buffer cache (or straight to the flusher in write-through mode), then
    /// finish the task — immediately if the cache absorbed the write, or
    /// when the write-back reaches the disk if the task must wait.
    fn resolve_output(&mut self, t_idx: usize) {
        let machine = self.tasks[t_idx].machine;
        if let Some(w) = self.tasks[t_idx].out_write.take() {
            if self.cfg.write_through {
                // Forced flush (§5.3's second Spark configuration): the bytes
                // go through the per-disk flusher — which still batches like
                // the kernel's — and the task waits for them to land.
                self.enqueue_flush(
                    machine,
                    w.disk,
                    FlushEntry {
                        bytes: w.bytes,
                        waiter: Some(t_idx),
                        charged: false,
                    },
                );
                return;
            }
            match self.machines[machine].cache.write(self.now, w.bytes) {
                WriteOutcome::Absorbed { flush_at } => {
                    self.timers.schedule(
                        flush_at,
                        FlushStart {
                            machine,
                            disk: w.disk,
                            bytes: w.bytes,
                        },
                    );
                }
                WriteOutcome::Synchronous => {
                    // Cache full: the task blocks until the flusher writes
                    // its bytes back.
                    self.enqueue_flush(
                        machine,
                        w.disk,
                        FlushEntry {
                            bytes: w.bytes,
                            waiter: Some(t_idx),
                            charged: false,
                        },
                    );
                    return;
                }
            }
        }
        self.finish_task(t_idx);
    }

    fn on_stream_done(&mut self, machine: usize, sid: StreamId) {
        let (tag, rest) = decode(sid);
        match tag {
            TAG_TASK => {
                let t_idx = (rest >> 8) as usize;
                self.start_next_phase(t_idx);
            }
            TAG_FLUSH => {
                let (m, disk, entries) = self.flushes.remove(&rest).expect("unknown flush");
                debug_assert_eq!(m, machine);
                self.machines[m].flush_active[disk] = false;
                for e in entries {
                    if e.charged {
                        self.machines[m].cache.flushed(e.bytes);
                    }
                    if let Some(t_idx) = e.waiter {
                        self.finish_task(t_idx);
                    }
                }
                self.pump_flush(m, disk);
            }
            other => panic!("unknown stream tag {other}"),
        }
    }

    fn finish_task(&mut self, t_idx: usize) {
        let t = &mut self.tasks[t_idx];
        debug_assert!(!t.done);
        t.done = true;
        let (ji, si, ti, machine, start) = (t.job, t.stage, t.task, t.machine, t.start);
        self.machines[machine].running -= 1;
        self.records.push(TaskRecord {
            job: JobId(ji as u32),
            stage: StageId(si as u32),
            task: TaskId(ti as u32),
            machine,
            start,
            end: self.now,
        });
        let spec = self.jobs[ji].spec.stages[si].tasks[ti];
        {
            let run = &mut self.jobs[ji].stages[si];
            if let OutputSpec::ShuffleWrite { bytes, .. } = spec.output {
                run.shuffle_by_machine[machine] += bytes;
            }
            run.completed += 1;
            if run.completed == run.total {
                run.done = true;
                run.ended = Some(self.now);
            }
        }
        if self.jobs[ji].stages[si].done {
            self.unlock_dependents(ji, si);
            if self.jobs[ji].stages.iter().all(|s| s.done) {
                self.jobs[ji].done = true;
                self.jobs[ji].end = self.now;
            }
        }
    }

    fn unlock_dependents(&mut self, ji: usize, completed: usize) {
        for si in 0..self.jobs[ji].spec.stages.len() {
            let deps = &self.jobs[ji].spec.stages[si].deps;
            if self.jobs[ji].stages[si].ready || !deps.iter().any(|d| d.0 as usize == completed) {
                continue;
            }
            if deps.iter().all(|d| self.jobs[ji].stages[d.0 as usize].done) {
                self.make_stage_ready(ji, si);
            }
        }
    }

    fn into_output(self) -> SparkRunOutput {
        let makespan = self.now;
        let mut stats = self.stats;
        for m in &self.machines {
            stats.merge(&m.fluid.stats());
        }
        // main_loop stored raw loop wall time; what the allocators account
        // for is attributed to them, the rest is executor control.
        stats.control_nanos = stats.control_nanos.saturating_sub(stats.allocator_nanos());
        let jobs = self
            .jobs
            .into_iter()
            .map(|j| JobReport {
                job: j.id,
                name: j.spec.name.clone(),
                start: SimTime::ZERO,
                end: j.end,
                stages: j
                    .stages
                    .iter()
                    .enumerate()
                    .map(|(si, s)| StageReport {
                        stage: StageId(si as u32),
                        start: s.started.expect("stage never started"),
                        end: s.ended.expect("stage never ended"),
                    })
                    .collect(),
            })
            .collect();
        SparkRunOutput {
            jobs,
            tasks: self.records,
            traces: self.traces,
            makespan,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::MachineSpec;
    use dataflow::{CostModel, JobBuilder};

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn small_cluster() -> ClusterSpec {
        ClusterSpec::new(4, MachineSpec::m2_4xlarge())
    }

    fn sort_job(total_gib: f64, tasks: usize) -> (JobSpec, BlockMap) {
        let total = total_gib * GIB;
        let job = JobBuilder::new("sort", CostModel::spark_1_3())
            .read_disk(total, total / 100.0, total / tasks as f64)
            .map(1.0, 1.0, true)
            .shuffle(tasks, false)
            .map(1.0, 1.0, true)
            .write_disk(1.0);
        (job, BlockMap::round_robin(tasks, 4, 2))
    }

    #[test]
    fn sort_job_completes_with_barriered_stages() {
        let (job, blocks) = sort_job(4.0, 32);
        let out = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        let r = &out.jobs[0];
        assert_eq!(r.stages.len(), 2);
        assert!(r.stages[1].start >= r.stages[0].end);
        assert!(r.duration_secs() > 1.0);
        assert_eq!(out.tasks.len(), 64);
    }

    #[test]
    fn slots_limit_concurrency_on_cpu_bound_work() {
        // A CPU-bound job: one slot per machine leaves 7 cores idle.
        let job = JobBuilder::new("cpu", CostModel::spark_1_3())
            .read_memory(GIB, 1e6, 64, true)
            .add_compute(400.0)
            .collect();
        let blocks = BlockMap::round_robin(1, 4, 2);
        let cfg = SparkConfig {
            slots_per_machine: Some(1),
            ..SparkConfig::default()
        };
        let narrow = run(&small_cluster(), &[(job.clone(), blocks.clone())], &cfg);
        let wide = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        assert!(
            narrow.jobs[0].duration_secs() > 4.0 * wide.jobs[0].duration_secs(),
            "narrow={} wide={}",
            narrow.jobs[0].duration_secs(),
            wide.jobs[0].duration_secs()
        );
    }

    #[test]
    fn mixed_read_write_traffic_pays_seek_contention() {
        // A job that reads and writes equal bytes on HDDs cannot hit the
        // sequential lower bound under the baseline: readers interleave with
        // write-back and lose throughput to seeks (§5.4). The monotasks
        // executor's per-disk scheduler is what removes this penalty.
        let total = 4.0 * GIB;
        let job = JobBuilder::new("io", CostModel::spark_1_3())
            .read_disk(total, total / 10_000.0, total / 64.0)
            .map(1.0, 1.0, false)
            .write_disk(1.0);
        let blocks = BlockMap::round_robin(64, 1, 2);
        let cluster = ClusterSpec::new(1, MachineSpec::m2_4xlarge());
        let cfg = SparkConfig {
            write_through: true,
            ..SparkConfig::default()
        };
        let out = run(&cluster, &[(job, blocks)], &cfg);
        let hdd = 110.0 * 1024.0 * 1024.0;
        let sequential_bound = 2.0 * total / (2.0 * hdd);
        let got = out.jobs[0].duration_secs();
        assert!(
            got > 1.25 * sequential_bound,
            "no contention visible: {got} vs bound {sequential_bound}"
        );
        assert!(got < 3.0 * sequential_bound, "implausible collapse: {got}");
    }

    #[test]
    fn write_through_is_slower_than_buffer_cache() {
        // Small output: with the cache, writes vanish from the critical path.
        let total = 2.0 * GIB;
        let mk = || {
            JobBuilder::new("scan", CostModel::spark_1_3())
                .read_disk(total, 1e7, total / 32.0)
                .map(1.0, 1.0, false)
                .write_disk(1.0)
        };
        let blocks = BlockMap::round_robin(32, 4, 2);
        let cached = run(
            &small_cluster(),
            &[(mk(), blocks.clone())],
            &SparkConfig::default(),
        );
        let cfg = SparkConfig {
            write_through: true,
            ..SparkConfig::default()
        };
        let sync = run(&small_cluster(), &[(mk(), blocks)], &cfg);
        assert!(
            sync.jobs[0].duration_secs() > cached.jobs[0].duration_secs(),
            "sync={} cached={}",
            sync.jobs[0].duration_secs(),
            cached.jobs[0].duration_secs()
        );
    }

    #[test]
    fn tasks_pipeline_read_and_compute() {
        // A disk-and-CPU-balanced task should take ~max(read, compute), not
        // their sum, because the baseline pipelines at fine grain.
        let hdd = 110.0 * 1024.0 * 1024.0;
        let total = 8.0 * hdd; // 8 sequential disk-seconds across the job.
        let job = JobBuilder::new("j", CostModel::spark_1_3())
            .read_disk(total, 1.0, total) // one task, negligible records
            .collect();
        let blocks = BlockMap::round_robin(1, 1, 1);
        let cluster = ClusterSpec::new(1, MachineSpec::m2_4xlarge());
        let out = run(&cluster, &[(job.clone(), blocks)], &SparkConfig::default());
        let deser_cpu = job.stages[0].tasks[0].cpu.deser;
        let read_secs: f64 = 8.0;
        let expected = read_secs.max(deser_cpu);
        let got = out.jobs[0].duration_secs();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "got {got}, expected ≈{expected}"
        );
    }

    #[test]
    fn in_memory_shuffle_touches_no_disk() {
        let total = 2.0 * GIB;
        let job = JobBuilder::new("mem", CostModel::spark_1_3())
            .read_memory(total, 1e7, 32, true)
            .map(1.0, 1.0, true)
            .shuffle(32, true)
            .map(1.0, 1.0, true)
            .write_memory();
        let blocks = BlockMap::round_robin(1, 4, 2);
        let out = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        // No disk utilization was ever recorded above zero.
        for m in 0..4 {
            for d in 0..2 {
                let rec = out
                    .traces
                    .recorder(MachineId(m), cluster::ResourceSel::Disk(d));
                if let Some(r) = rec {
                    assert_eq!(
                        r.mean_over(SimTime::ZERO, out.makespan.max(SimTime::from_secs(1))),
                        0.0
                    );
                }
            }
        }
        assert!(out.jobs[0].duration_secs() > 0.0);
    }

    #[test]
    fn concurrent_tasks_per_machine_never_exceed_slots() {
        let (job, blocks) = sort_job(4.0, 64);
        let cfg = SparkConfig {
            slots_per_machine: Some(3),
            ..SparkConfig::default()
        };
        let out = run(&small_cluster(), &[(job, blocks)], &cfg);
        // Sweep each task's [start, end) and count the maximum overlap per
        // machine at task boundaries (overlap only changes there).
        for m in 0..4 {
            let tasks: Vec<_> = out.tasks.iter().filter(|t| t.machine == m).collect();
            for probe in tasks.iter().map(|t| t.start) {
                let live = tasks
                    .iter()
                    .filter(|t| t.start <= probe && probe < t.end)
                    .count();
                assert!(live <= 3, "machine {m} ran {live} tasks at {probe:?}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (job, blocks) = sort_job(2.0, 16);
        let a = run(
            &small_cluster(),
            &[(job.clone(), blocks.clone())],
            &SparkConfig::default(),
        );
        let b = run(&small_cluster(), &[(job, blocks)], &SparkConfig::default());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn concurrent_jobs_interleave() {
        let (a, ba) = sort_job(2.0, 16);
        let (b, bb) = sort_job(2.0, 16);
        let solo = run(
            &small_cluster(),
            &[(a.clone(), ba.clone())],
            &SparkConfig::default(),
        );
        let both = run(
            &small_cluster(),
            &[(a, ba), (b, bb)],
            &SparkConfig::default(),
        );
        assert!(both.jobs[0].duration_secs() > solo.jobs[0].duration_secs());
        assert!(both.makespan.as_secs_f64() < 2.5 * solo.makespan.as_secs_f64());
    }
}
