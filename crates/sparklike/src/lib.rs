//! The baseline: a Spark-1.3-like executor with slot scheduling and
//! fine-grained multi-resource pipelining.
//!
//! This is the architecture §2 describes and the evaluation compares against:
//!
//! * The job scheduler assigns tasks to a **fixed number of slots** per
//!   machine (by default one per core) — "controlling this number of slots is
//!   the only mechanism the scheduler has for regulating resource use" (§6.6).
//! * Each task **pipelines** its resource use at fine granularity: while it
//!   reads its input block it simultaneously deserializes and computes, so a
//!   task phase is a coupled fluid stream over disk + CPU (+ network for
//!   shuffle fetches) that progresses at the rate of its most contended
//!   resource.
//! * Tasks on a machine **contend in the OS**: concurrent streams on an HDD
//!   lose aggregate throughput to seeks, and disk writes land in the **buffer
//!   cache**, flushed later by the OS where they contend with subsequent
//!   reads (§2.2's third challenge). `write_through` forces synchronous
//!   writes instead — the second Spark configuration of Fig 5.
//!
//! The executor consumes exactly the same [`dataflow::JobSpec`]s as the
//! monotasks executor, so measured differences are architectural.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;

pub use executor::{run, run_with_faults, try_run, SparkConfig, SparkRunOutput, TaskRecord};
