//! Builds [`TraceDoc`]s from executor outputs and writes them to the path
//! the run's config armed.
//!
//! Both builders walk their run output in a fixed order (records in emission
//! order, utilization recorders in `BTreeMap` key order, instants in
//! collection order), so the same run output always yields the same document
//! and therefore — via [`TraceDoc::to_json`] — the same bytes.

use std::io;
use std::path::{Path, PathBuf};

use cluster::{InstantKind, ResourceSel, RunInstant, TraceSet};
use monotasks_core::{MonoConfig, MonoRunOutput, Purpose};
use simcore::ResourceKind;
use sparklike::{SparkConfig, SparkRunOutput, TaskRecord};

use crate::chrome::{assign_lanes, Arg, Event, TraceDoc};

/// Machine processes get pids `100 + machine`; the sort index keeps them in
/// machine order above the job processes.
const MACHINE_PID_BASE: u64 = 100;
/// Job processes get pids `100_000 + job`.
const JOB_PID_BASE: u64 = 100_000;
/// Per-machine `events` track (fault instants).
const EVENTS_TID: u64 = 1;
/// Lane tid bases per resource class within a machine process.
const CPU_TID_BASE: u64 = 100;
const DISK_TID_BASE: u64 = 300;
const NET_TID_BASE: u64 = 600;
/// Spark task-span lanes within a machine process.
const TASK_TID_BASE: u64 = 100;
/// Stage track tids within a job process: `STAGE_TID_BASE * (stage+1) + lane`.
const STAGE_TID_BASE: u64 = 1_000;

/// `(job, stage, task)` identifying one multitask.
type TaskKey = (u32, u32, u32);
/// `(first monotask start, last monotask end, monotask count)` for one task.
type TaskWindow = (u64, u64, usize);

/// What a built trace contains — the conservation quantities the proptests
/// check against run statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// `ph:"X"` spans.
    pub spans: usize,
    /// `ph:"i"` instants.
    pub instants: usize,
    /// Counter samples.
    pub counter_points: usize,
    /// Total bytes carried by spans of each resource class, indexed by
    /// [`dataflow::RES_CPU`]/[`dataflow::RES_DISK`]/[`dataflow::RES_NET`].
    pub bytes_by_resource: [f64; 3],
}

impl TraceSummary {
    /// Tallies a document's events.
    pub fn of(doc: &TraceDoc) -> TraceSummary {
        let mut s = TraceSummary::default();
        for e in &doc.events {
            match e {
                Event::Span { cat, args, .. } => {
                    s.spans += 1;
                    let res = match *cat {
                        "cpu" => Some(dataflow::RES_CPU),
                        "disk" => Some(dataflow::RES_DISK),
                        "net" => Some(dataflow::RES_NET),
                        _ => None,
                    };
                    if let Some(r) = res {
                        for (k, v) in args {
                            if let ("bytes", Arg::F64(b)) = (*k, v) {
                                s.bytes_by_resource[r] += *b;
                            }
                        }
                    }
                }
                Event::Instant { .. } => s.instants += 1,
                Event::Counter { .. } => s.counter_points += 1,
                _ => {}
            }
        }
        s
    }
}

fn purpose_label(p: Purpose) -> &'static str {
    match p {
        Purpose::Compute => "compute",
        Purpose::ReadInput => "read input",
        Purpose::ReadShuffleLocal => "read shuffle",
        Purpose::ReadShuffleServe => "serve shuffle",
        Purpose::WriteShuffle => "write shuffle",
        Purpose::WriteOutput => "write output",
        Purpose::NetTransfer => "net transfer",
    }
}

fn class_of(r: ResourceKind) -> (&'static str, u64) {
    match r {
        ResourceKind::Cpu => ("cpu", CPU_TID_BASE),
        ResourceKind::Disk => ("disk", DISK_TID_BASE),
        ResourceKind::Network => ("net", NET_TID_BASE),
    }
}

fn sel_counter_name(sel: ResourceSel) -> String {
    match sel {
        ResourceSel::Cpu => "cpu util".into(),
        ResourceSel::Disk(d) => format!("disk{d} util"),
        ResourceSel::Network => "net util".into(),
    }
}

/// Emits process/thread metadata and utilization counter tracks shared by
/// both engines, returning the set of machine pids named.
fn push_utilization(doc: &mut TraceDoc, traces: &TraceSet) {
    for (&(machine, sel), rec) in traces.iter() {
        let pid = MACHINE_PID_BASE + machine.0 as u64;
        let name = sel_counter_name(sel);
        for &(t, v) in rec.points() {
            doc.events.push(Event::Counter {
                pid,
                name: name.clone(),
                ts_ns: t.0,
                key: "util",
                value: v,
            });
        }
    }
}

fn push_machine_meta(doc: &mut TraceDoc, machines: &[u64]) {
    for &m in machines {
        let pid = MACHINE_PID_BASE + m;
        doc.events.push(Event::ProcessName {
            pid,
            name: format!("machine {m}"),
        });
        doc.events.push(Event::ProcessSortIndex {
            pid,
            index: m as i64,
        });
        doc.events.push(Event::ThreadName {
            pid,
            tid: EVENTS_TID,
            name: "events".into(),
        });
    }
}

fn push_job_meta(doc: &mut TraceDoc, jobs: &[(u64, String)]) {
    for (j, name) in jobs {
        let pid = JOB_PID_BASE + j;
        doc.events.push(Event::ProcessName {
            pid,
            name: format!("job {j}: {name}"),
        });
        doc.events.push(Event::ProcessSortIndex {
            pid,
            index: 1_000_000 + *j as i64,
        });
        doc.events.push(Event::ThreadName {
            pid,
            tid: EVENTS_TID,
            name: "recovery".into(),
        });
    }
}

fn instant_args(kind: &InstantKind) -> Vec<(&'static str, Arg)> {
    match *kind {
        InstantKind::MachineCrash { machine } => vec![("machine", Arg::U64(machine as u64))],
        InstantKind::DiskScale {
            machine,
            disk,
            factor,
        } => vec![
            ("machine", Arg::U64(machine as u64)),
            ("disk", Arg::U64(disk as u64)),
            ("factor", Arg::F64(factor)),
        ],
        InstantKind::LinkScale { machine, factor } => vec![
            ("machine", Arg::U64(machine as u64)),
            ("factor", Arg::F64(factor)),
        ],
        InstantKind::PairCut { src, dst } | InstantKind::PairHeal { src, dst } => {
            vec![("src", Arg::U64(src as u64)), ("dst", Arg::U64(dst as u64))]
        }
        InstantKind::TaskRetry {
            job,
            stage,
            task,
            recompute,
        } => vec![
            ("job", Arg::U64(job as u64)),
            ("stage", Arg::U64(stage as u64)),
            ("task", Arg::U64(task as u64)),
            ("recompute", Arg::Bool(recompute)),
        ],
        InstantKind::TaskSpeculate {
            job,
            stage,
            task,
            machine,
        } => vec![
            ("job", Arg::U64(job as u64)),
            ("stage", Arg::U64(stage as u64)),
            ("task", Arg::U64(task as u64)),
            ("machine", Arg::U64(machine as u64)),
        ],
        InstantKind::MonoCopy {
            job,
            stage,
            task,
            resource,
        }
        | InstantKind::MonoCopyWin {
            job,
            stage,
            task,
            resource,
        } => vec![
            ("job", Arg::U64(job as u64)),
            ("stage", Arg::U64(stage as u64)),
            ("task", Arg::U64(task as u64)),
            ("resource", Arg::U64(resource as u64)),
        ],
        InstantKind::TemplateInvalidate { job, stage }
        | InstantKind::FetchReplan { job, stage } => {
            vec![
                ("job", Arg::U64(job as u64)),
                ("stage", Arg::U64(stage as u64)),
            ]
        }
        InstantKind::FetchRetry {
            job,
            stage,
            attempt,
        } => vec![
            ("job", Arg::U64(job as u64)),
            ("stage", Arg::U64(stage as u64)),
            ("attempt", Arg::U64(attempt as u64)),
        ],
    }
}

/// Routes each instant to its track: fault instants render on the affected
/// machine's `events` track, recovery instants on the owning job's
/// `recovery` track.
fn push_instants(doc: &mut TraceDoc, instants: &[RunInstant]) {
    for inst in instants {
        let pid = match (inst.kind.job(), inst.kind.machine()) {
            (Some(j), _) => JOB_PID_BASE + j as u64,
            (None, Some(m)) => MACHINE_PID_BASE + m as u64,
            (None, None) => MACHINE_PID_BASE,
        };
        doc.events.push(Event::Instant {
            pid,
            tid: EVENTS_TID,
            name: inst.kind.label().to_string(),
            ts_ns: inst.time.0,
            args: instant_args(&inst.kind),
        });
    }
}

/// Builds the trace document for a monotasks run.
///
/// Machine processes carry per-resource monotask span lanes (the
/// architecture attributes every span to exactly one resource — the paper's
/// clarity claim), utilization counters, and fault instants; job processes
/// carry per-stage task lanes and recovery instants.
pub fn mono_doc(out: &MonoRunOutput) -> TraceDoc {
    use std::collections::BTreeMap;
    let mut doc = TraceDoc::default();

    // Group monotask records by (machine, resource class).
    let mut by_track: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
    for (i, r) in out.records.iter().enumerate() {
        let (_, base) = class_of(r.resource);
        by_track.entry((r.machine, base)).or_default().push(i);
    }
    // Group records by multitask for the job/stage task lanes.
    let mut by_task: BTreeMap<TaskKey, TaskWindow> = BTreeMap::new();
    for r in &out.records {
        let k = (r.multitask.job.0, r.multitask.stage.0, r.multitask.task.0);
        let e = by_task.entry(k).or_insert((u64::MAX, 0, 0));
        e.0 = e.0.min(r.started.0);
        e.1 = e.1.max(r.ended.0);
        e.2 += 1;
    }

    // Metadata.
    let machines: Vec<u64> = by_track
        .keys()
        .map(|&(m, _)| m as u64)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    push_machine_meta(&mut doc, &machines);
    let jobs: Vec<(u64, String)> = out
        .jobs
        .iter()
        .enumerate()
        .map(|(j, rep)| (j as u64, rep.name.clone()))
        .collect();
    push_job_meta(&mut doc, &jobs);

    // Per-resource span lanes.
    let mut lane_names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    for (&(machine, base), idxs) in &by_track {
        let windows: Vec<(u64, u64)> = idxs
            .iter()
            .map(|&i| (out.records[i].started.0, out.records[i].ended.0))
            .collect();
        let lanes = assign_lanes(&windows);
        let pid = MACHINE_PID_BASE + machine as u64;
        for (&i, &lane) in idxs.iter().zip(&lanes) {
            let r = &out.records[i];
            let (cat, _) = class_of(r.resource);
            let tid = base + lane as u64;
            lane_names
                .entry((pid, tid))
                .or_insert_with(|| format!("{cat} lane {lane}"));
            doc.events.push(Event::Span {
                pid,
                tid,
                name: format!(
                    "{} j{}s{}t{}",
                    purpose_label(r.purpose),
                    r.multitask.job.0,
                    r.multitask.stage.0,
                    r.multitask.task.0
                ),
                cat,
                ts_ns: r.started.0,
                dur_ns: r.ended.0 - r.started.0,
                args: vec![
                    ("bytes", Arg::F64(r.bytes)),
                    ("queue_s", Arg::F64(r.queue_secs())),
                ],
            });
        }
    }

    // Job/stage task lanes: one span per multitask from first monotask start
    // to last monotask end.
    let mut by_stage: BTreeMap<(u32, u32), Vec<(TaskKey, TaskWindow)>> = BTreeMap::new();
    for (&k, &v) in &by_task {
        by_stage.entry((k.0, k.1)).or_default().push((k, v));
    }
    for (&(job, stage), tasks) in &by_stage {
        let windows: Vec<(u64, u64)> = tasks.iter().map(|&(_, (s, e, _))| (s, e)).collect();
        let lanes = assign_lanes(&windows);
        let pid = JOB_PID_BASE + job as u64;
        for (&((_, _, task), (s, e, n)), &lane) in tasks.iter().zip(&lanes) {
            let tid = STAGE_TID_BASE * (stage as u64 + 1) + lane as u64;
            lane_names
                .entry((pid, tid))
                .or_insert_with(|| format!("stage {stage} lane {lane}"));
            doc.events.push(Event::Span {
                pid,
                tid,
                name: format!("task {task}"),
                cat: "task",
                ts_ns: s,
                dur_ns: e - s,
                args: vec![("monotasks", Arg::U64(n as u64))],
            });
        }
    }
    for ((pid, tid), name) in lane_names {
        doc.events.push(Event::ThreadName { pid, tid, name });
    }

    push_utilization(&mut doc, &out.traces);
    push_instants(&mut doc, &out.instants);
    doc
}

/// Builds the trace document for a Spark-like run.
///
/// The pipelined executor cannot attribute time to a single resource — each
/// task uses CPU, disk, and network concurrently (§2.1) — so machine
/// processes carry undifferentiated `task` span lanes plus the same
/// utilization counters and instants. The contrast with [`mono_doc`]'s
/// per-resource lanes *is* the paper's figure 1.
pub fn spark_doc(out: &SparkRunOutput) -> TraceDoc {
    use std::collections::BTreeMap;
    let mut doc = TraceDoc::default();

    let mut by_machine: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, t) in out.tasks.iter().enumerate() {
        by_machine.entry(t.machine).or_default().push(i);
    }
    let machines: Vec<u64> = by_machine.keys().map(|&m| m as u64).collect();
    push_machine_meta(&mut doc, &machines);
    let jobs: Vec<(u64, String)> = out
        .jobs
        .iter()
        .enumerate()
        .map(|(j, rep)| (j as u64, rep.name.clone()))
        .collect();
    push_job_meta(&mut doc, &jobs);

    let span_of = |t: &TaskRecord| (t.start.0, t.end.0);
    let mut lane_names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    for (&machine, idxs) in &by_machine {
        let windows: Vec<(u64, u64)> = idxs.iter().map(|&i| span_of(&out.tasks[i])).collect();
        let lanes = assign_lanes(&windows);
        let pid = MACHINE_PID_BASE + machine as u64;
        for (&i, &lane) in idxs.iter().zip(&lanes) {
            let t = &out.tasks[i];
            let tid = TASK_TID_BASE + lane as u64;
            lane_names
                .entry((pid, tid))
                .or_insert_with(|| format!("slot lane {lane}"));
            doc.events.push(Event::Span {
                pid,
                tid,
                name: format!("task j{}s{}t{}", t.job.0, t.stage.0, t.task.0),
                cat: "task",
                ts_ns: t.start.0,
                dur_ns: t.end.0 - t.start.0,
                args: vec![],
            });
        }
    }

    // Job/stage lanes.
    let mut by_stage: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
    for (i, t) in out.tasks.iter().enumerate() {
        by_stage.entry((t.job.0, t.stage.0)).or_default().push(i);
    }
    for (&(job, stage), idxs) in &by_stage {
        let windows: Vec<(u64, u64)> = idxs.iter().map(|&i| span_of(&out.tasks[i])).collect();
        let lanes = assign_lanes(&windows);
        let pid = JOB_PID_BASE + job as u64;
        for (&i, &lane) in idxs.iter().zip(&lanes) {
            let t = &out.tasks[i];
            let tid = STAGE_TID_BASE * (stage as u64 + 1) + lane as u64;
            lane_names
                .entry((pid, tid))
                .or_insert_with(|| format!("stage {stage} lane {lane}"));
            doc.events.push(Event::Span {
                pid,
                tid,
                name: format!("task {}", t.task.0),
                cat: "task",
                ts_ns: t.start.0,
                dur_ns: t.end.0 - t.start.0,
                args: vec![],
            });
        }
    }
    for ((pid, tid), name) in lane_names {
        doc.events.push(Event::ThreadName { pid, tid, name });
    }

    push_utilization(&mut doc, &out.traces);
    push_instants(&mut doc, &out.instants);
    doc
}

fn write_doc(doc: &TraceDoc, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_json())
}

/// Writes the mono run's trace to [`MonoConfig::trace_path`], if armed.
///
/// Returns the path written, or `None` when tracing is off. The separation —
/// executors collect, this helper writes — keeps all file I/O out of the
/// simulation loop.
pub fn export_mono(cfg: &MonoConfig, out: &MonoRunOutput) -> io::Result<Option<PathBuf>> {
    match &cfg.trace_path {
        None => Ok(None),
        Some(p) => {
            write_doc(&mono_doc(out), p)?;
            Ok(Some(p.clone()))
        }
    }
}

/// Writes the spark run's trace to [`SparkConfig::trace_path`], if armed.
pub fn export_spark(cfg: &SparkConfig, out: &SparkRunOutput) -> io::Result<Option<PathBuf>> {
    match &cfg.trace_path {
        None => Ok(None),
        Some(p) => {
            write_doc(&spark_doc(out), p)?;
            Ok(Some(p.clone()))
        }
    }
}
