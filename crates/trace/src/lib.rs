//! Performance-clarity trace layer (DESIGN.md §10).
//!
//! The paper's thesis is that the monotasks architecture makes performance
//! *visible*: per-resource monotask timings are "built into the framework's
//! execution model" (§6.5) rather than bolted on. This crate turns one run's
//! instrumentation — utilization traces, monotask records, and the instant
//! events both executors collect when [`trace_path`] is armed — into a
//! deterministic [Chrome Trace Event] JSON file that loads directly in
//! [Perfetto] (`ui.perfetto.dev` → *Open trace file*).
//!
//! The export is **observation-only**: executors collect instants into a side
//! vector gated on `trace_path.is_some()` and never write the file
//! themselves, so a trace-off run is bit-identical to the pre-trace code and
//! a trace-on run differs only in what it remembers, not in what it does.
//!
//! Track layout:
//!
//! * one *process* per machine, holding per-resource utilization **counter**
//!   tracks (`cpu util`, `disk0 util`, `net util`), per-resource monotask
//!   **span** lanes (monotasks on one resource overlap — eight cores serve
//!   eight compute monotasks — so spans are greedily packed into
//!   non-overlapping lanes), and an `events` track of fault instants;
//! * one *process* per job, holding per-stage task-span lanes and a
//!   `recovery` track of retry/speculation/invalidation instants.
//!
//! Everything is serialized with a fixed field order, nanosecond-exact
//! timestamps (`µs.nnn` strings built from integer arithmetic), and `f64`
//! values printed by Rust's deterministic shortest-round-trip formatter, so
//! identical runs produce byte-identical files — which the golden-trace
//! snapshot tests assert.
//!
//! [Chrome Trace Event]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev
//! [`trace_path`]: monotasks_core::MonoConfig

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod collect;

pub use chrome::{validate_chrome_json, Arg, Event, TraceDoc, ValidateStats};
pub use collect::{export_mono, export_spark, mono_doc, spark_doc, TraceSummary};
