//! Chrome Trace Event JSON: typed event model, deterministic serializer,
//! lane packing, and a dependency-free validator.
//!
//! Only the event phases Perfetto needs are modelled: `M` metadata (process
//! and thread names, sort indices), `X` complete spans, `i` instants, and `C`
//! counters. Serialization is hand-rolled (the workspace vendors no JSON
//! library) with a fixed field order per phase; timestamps are microsecond
//! strings with exactly three fractional digits built from integer nanosecond
//! arithmetic, so no float rounding can perturb the bytes.

use std::fmt::Write as _;

/// One argument value in an event's `args` object.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// A float, printed with Rust's shortest-round-trip formatter.
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

/// One trace event, in the subset of the Chrome Trace Event format the
/// exporter emits.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// `process_name` metadata.
    ProcessName {
        /// Process id.
        pid: u64,
        /// Display name.
        name: String,
    },
    /// `process_sort_index` metadata: orders processes in the UI.
    ProcessSortIndex {
        /// Process id.
        pid: u64,
        /// Sort key (ascending).
        index: i64,
    },
    /// `thread_name` metadata.
    ThreadName {
        /// Owning process.
        pid: u64,
        /// Thread id.
        tid: u64,
        /// Display name.
        name: String,
    },
    /// A complete span (`ph:"X"`).
    Span {
        /// Owning process.
        pid: u64,
        /// Track (lane) within the process.
        tid: u64,
        /// Span name.
        name: String,
        /// Category — the resource class (`"cpu"`/`"disk"`/`"net"`) for
        /// monotask spans, `"task"` for pipelined task spans.
        cat: &'static str,
        /// Start, nanoseconds.
        ts_ns: u64,
        /// Duration, nanoseconds.
        dur_ns: u64,
        /// Arguments, serialized in the given order.
        args: Vec<(&'static str, Arg)>,
    },
    /// An instant marker (`ph:"i"`, process scope).
    Instant {
        /// Owning process.
        pid: u64,
        /// Track within the process.
        tid: u64,
        /// Marker name (a stable [`cluster::InstantKind::label`] string).
        name: String,
        /// Time, nanoseconds.
        ts_ns: u64,
        /// Arguments, serialized in the given order.
        args: Vec<(&'static str, Arg)>,
    },
    /// One sample of a counter track (`ph:"C"`).
    Counter {
        /// Owning process.
        pid: u64,
        /// Counter track name (e.g. `"cpu util"`).
        name: String,
        /// Time, nanoseconds.
        ts_ns: u64,
        /// Series key within the counter (constant per track here).
        key: &'static str,
        /// Sample value.
        value: f64,
    },
}

/// A whole trace: an ordered list of events, serializable to a
/// Perfetto-loadable JSON object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDoc {
    /// Events, in emission order (metadata first by convention).
    pub events: Vec<Event>,
}

/// Escapes a string for a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes a nanosecond time as a microsecond JSON number with exactly three
/// fractional digits (`1234.567`). Integer arithmetic only: byte-stable.
fn ts_into(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Writes an f64 as a JSON number. Rust's `Display` for `f64` is the
/// deterministic shortest round-trip representation; JSON cannot represent
/// non-finite values, which the simulator never produces (debug-asserted at
/// recording time).
fn f64_into(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "non-finite value in trace");
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral floats print as `12` in Rust but JSON readers are happier
        // (and the bytes stabler across formatter versions) with `12.0`.
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{}", v);
    }
}

fn args_into(out: &mut String, args: &[(&'static str, Arg)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(k);
        out.push_str("\":");
        match v {
            Arg::F64(x) => f64_into(out, *x),
            Arg::U64(x) => {
                let _ = write!(out, "{}", x);
            }
            Arg::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Arg::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

impl Event {
    fn write_into(&self, out: &mut String) {
        match self {
            Event::ProcessName { pid, name } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\""
                );
                escape_into(out, name);
                out.push_str("\"}}");
            }
            Event::ProcessSortIndex { pid, index } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{index}}}}}"
                );
            }
            Event::ThreadName { pid, tid, name } => {
                let _ = write!(out, "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"");
                escape_into(out, name);
                out.push_str("\"}}");
            }
            Event::Span {
                pid,
                tid,
                name,
                cat,
                ts_ns,
                dur_ns,
                args,
            } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\""
                );
                escape_into(out, name);
                out.push_str("\",\"cat\":\"");
                out.push_str(cat);
                out.push_str("\",\"ts\":");
                ts_into(out, *ts_ns);
                out.push_str(",\"dur\":");
                ts_into(out, *dur_ns);
                out.push_str(",\"args\":");
                args_into(out, args);
                out.push('}');
            }
            Event::Instant {
                pid,
                tid,
                name,
                ts_ns,
                args,
            } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"p\",\"pid\":{pid},\"tid\":{tid},\"name\":\""
                );
                escape_into(out, name);
                out.push_str("\",\"ts\":");
                ts_into(out, *ts_ns);
                out.push_str(",\"args\":");
                args_into(out, args);
                out.push('}');
            }
            Event::Counter {
                pid,
                name,
                ts_ns,
                key,
                value,
            } => {
                let _ = write!(out, "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"");
                escape_into(out, name);
                out.push_str("\",\"ts\":");
                ts_into(out, *ts_ns);
                out.push_str(",\"args\":{\"");
                out.push_str(key);
                out.push_str("\":");
                f64_into(out, *value);
                out.push_str("}}");
            }
        }
    }
}

impl TraceDoc {
    /// Serializes to a Chrome Trace Event JSON object, one event per line.
    ///
    /// Byte-deterministic: identical docs produce identical strings.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 32);
        out.push_str("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            e.write_into(&mut out);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Greedily packs half-open spans `[start, end)` into the fewest lanes such
/// that no lane holds two overlapping spans; returns each span's lane.
///
/// Spans are placed in `(start, end, index)` order into the first lane whose
/// previous occupant has ended — the classic interval-partitioning greedy,
/// which is optimal and, being fully ordered, deterministic. Zero-length
/// spans never conflict.
pub fn assign_lanes(spans: &[(u64, u64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].0, spans[i].1, i));
    let mut lane_free_at: Vec<u64> = Vec::new();
    let mut lanes = vec![0usize; spans.len()];
    for &i in &order {
        let (s, e) = spans[i];
        debug_assert!(s <= e, "span ends before it starts");
        match lane_free_at.iter().position(|&free| free <= s) {
            Some(l) => {
                lane_free_at[l] = e;
                lanes[i] = l;
            }
            None => {
                lanes[i] = lane_free_at.len();
                lane_free_at.push(e);
            }
        }
    }
    lanes
}

/// Counts of each event phase found by [`validate_chrome_json`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidateStats {
    /// `ph:"M"` metadata events.
    pub metas: usize,
    /// `ph:"X"` complete spans.
    pub spans: usize,
    /// `ph:"i"` instants.
    pub instants: usize,
    /// `ph:"C"` counter samples.
    pub counters: usize,
}

/// Validates that `s` is a syntactically well-formed JSON document of the
/// shape `{"traceEvents": [ ... ]}` and tallies event phases.
///
/// This is a full JSON syntax check (strings, escapes, numbers, nesting) via
/// a small recursive-descent parser — no third-party dependency — so CI can
/// assert a generated trace will load before anyone opens it in Perfetto.
pub fn validate_chrome_json(s: &str) -> Result<ValidateStats, String> {
    let b = s.as_bytes();
    let mut p = Parser {
        b,
        i: 0,
        depth: 0,
        stats: ValidateStats::default(),
    };
    p.skip_ws();
    if !s.trim_start().starts_with("{\"traceEvents\"") {
        return Err("document must start with {\"traceEvents\"".into());
    }
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(p.stats)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
    stats: ValidateStats,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|x| x as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > 64 {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        let r = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|x| x as char),
                self.i
            )),
        };
        self.depth -= 1;
        r
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            // Tally the phase of each event object on its "ph" key.
            if key == "ph" {
                match self.string()?.as_str() {
                    "M" => self.stats.metas += 1,
                    "X" => self.stats.spans += 1,
                    "i" => self.stats.instants += 1,
                    "C" => self.stats.counters += 1,
                    other => return Err(format!("unknown phase {:?}", other)),
                }
            } else {
                self.value()?;
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.i,
                        other.map(|x| x as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.i,
                        other.map(|x| x as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            out.push(c as char);
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err("bad \\u escape".into()),
                                }
                            }
                            out.push('?');
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|x| x as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err("raw control char in string".into()),
                Some(_) => {
                    // Advance one UTF-8 scalar; the input is a &str so
                    // boundaries are valid.
                    let mut j = self.i + 1;
                    while j < self.b.len() && (self.b[j] & 0xC0) == 0x80 {
                        j += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[self.i..j]).expect("valid utf8"));
                    self.i = j;
                }
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut saw_digit = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            saw_digit = true;
            self.i += 1;
        }
        if !saw_digit {
            return Err(format!("bad number at offset {}", start));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = false;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                frac = true;
                self.i += 1;
            }
            if !frac {
                return Err(format!("bad fraction at offset {}", start));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = false;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                exp = true;
                self.i += 1;
            }
            if !exp {
                return Err(format!("bad exponent at offset {}", start));
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_and_validates_round_trip() {
        let doc = TraceDoc {
            events: vec![
                Event::ProcessName {
                    pid: 100,
                    name: "machine 0".into(),
                },
                Event::ThreadName {
                    pid: 100,
                    tid: 1,
                    name: "cpu lane 0".into(),
                },
                Event::Span {
                    pid: 100,
                    tid: 1,
                    name: "Compute j0s0t0".into(),
                    cat: "cpu",
                    ts_ns: 1_500,
                    dur_ns: 2_000_000,
                    args: vec![("bytes", Arg::F64(0.0)), ("queue_s", Arg::F64(0.25))],
                },
                Event::Instant {
                    pid: 100,
                    tid: 0,
                    name: "crash".into(),
                    ts_ns: 3_000_000_000,
                    args: vec![("machine", Arg::U64(0))],
                },
                Event::Counter {
                    pid: 100,
                    name: "cpu util".into(),
                    ts_ns: 0,
                    key: "util",
                    value: 0.5,
                },
            ],
        };
        let json = doc.to_json();
        let stats = validate_chrome_json(&json).expect("valid trace json");
        assert_eq!(
            stats,
            ValidateStats {
                metas: 2,
                spans: 1,
                instants: 1,
                counters: 1,
            }
        );
        // Nanosecond-exact microsecond timestamps.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2000.000"), "{json}");
    }

    #[test]
    fn serialization_is_byte_deterministic() {
        let mk = || TraceDoc {
            events: vec![Event::Counter {
                pid: 7,
                name: "net util".into(),
                ts_ns: 123_456_789,
                key: "util",
                value: 1.0 / 3.0,
            }],
        };
        assert_eq!(mk().to_json(), mk().to_json());
    }

    #[test]
    fn lanes_pack_without_overlap() {
        // Three overlapping spans need three lanes; a fourth starting after
        // the first ends reuses lane 0.
        let spans = [(0, 10), (1, 5), (2, 6), (10, 12)];
        let lanes = assign_lanes(&spans);
        assert_eq!(lanes, vec![0, 1, 2, 0]);
        // No two spans in one lane overlap (positive measure).
        for i in 0..spans.len() {
            for j in (i + 1)..spans.len() {
                if lanes[i] == lanes[j] {
                    let (s1, e1) = spans[i];
                    let (s2, e2) = spans[j];
                    assert!(e1 <= s2 || e2 <= s1);
                }
            }
        }
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_json("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[{\"ph\":\"Z\"}]}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[{\"ph\":\"X\"},]}").is_err());
    }
}
