//! Shared harness utilities for the figure/table benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §3 for the index) and prints the same series the
//! paper plots, plus the paper's reported values for side-by-side comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;

use cluster::ClusterSpec;
use dataflow::{BlockMap, JobSpec};

/// Runs a job under the monotasks executor with default config.
pub fn run_mono(
    cluster: &ClusterSpec,
    job: JobSpec,
    blocks: BlockMap,
) -> monotasks_core::MonoRunOutput {
    monotasks_core::run(
        cluster,
        &[(job, blocks)],
        &monotasks_core::MonoConfig::default(),
    )
}

/// Runs a job under the Spark-like executor with default config.
pub fn run_spark(
    cluster: &ClusterSpec,
    job: JobSpec,
    blocks: BlockMap,
) -> sparklike::SparkRunOutput {
    sparklike::run(
        cluster,
        &[(job, blocks)],
        &sparklike::SparkConfig::default(),
    )
}

/// Relative difference `(b - a) / a` in percent.
pub fn pct_diff(a: f64, b: f64) -> f64 {
    100.0 * (b - a) / a
}

/// Relative error of `predicted` against `actual`, in percent (absolute).
pub fn pct_err(actual: f64, predicted: f64) -> f64 {
    (100.0 * (predicted - actual) / actual).abs()
}

/// Prints a standard figure header.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_helpers() {
        assert_eq!(pct_diff(100.0, 91.0), -9.0);
        assert_eq!(pct_err(100.0, 128.0), 28.0);
        assert_eq!(pct_err(100.0, 72.0), 28.0);
    }
}
