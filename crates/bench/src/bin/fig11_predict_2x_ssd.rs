//! Figure 11: predicting runtime on a cluster with twice as many SSDs.
//!
//! Paper: monotask runtimes from a 20-machine, 1-SSD-per-worker cluster
//! predict the runtime with 2 SSDs per worker within 9% (the CPU-bound
//! 10-value sort shows the largest error because the model predicts no
//! change; the other variants' predictions land within 5%).

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, pct_err, run_mono};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Figure 11",
        "predict 1 SSD -> 2 SSDs per worker (sort, value-size sweep)",
        "errors <= 9% (largest for the CPU-bound 10-value variant)",
    );
    let one = ClusterSpec::new(20, MachineSpec::i2_2xlarge(1));
    let two = ClusterSpec::new(20, MachineSpec::i2_2xlarge(2));
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>8}",
        "values", "1 SSD (s)", "predicted 2", "actual 2 (s)", "err"
    );
    for longs in [10usize, 20, 50] {
        let mk = |disks: usize| {
            let cfg = SortConfig::new(150.0, longs, 20, disks);
            sort_job(&cfg)
        };
        let (job1, blocks1) = mk(1);
        let base = run_mono(&one, job1, blocks1);
        let profiles = profile_stages(&base.records, &base.jobs);
        let predicted = predict_job(
            &profiles,
            base.jobs[0].duration_secs(),
            &Scenario::of_cluster(&one),
            &Scenario::of_cluster(&two),
        );
        let (job2, blocks2) = mk(2);
        let actual = run_mono(&two, job2, blocks2);
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>12.1} {:>7.1}%",
            longs,
            base.jobs[0].duration_secs(),
            predicted,
            actual.jobs[0].duration_secs(),
            pct_err(actual.jobs[0].duration_secs(), predicted)
        );
    }
}
