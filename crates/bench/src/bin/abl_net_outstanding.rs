//! Ablation: the network scheduler's outstanding-multitask limit (§3.3).
//!
//! The receiver-side scheduler balances two failure modes: one multitask at
//! a time leaves the link idle whenever that multitask waits on one slow
//! sender, while too many multitasks at once destroy the coarse-grained
//! pipelining (no multitask's data completes early enough to start its
//! compute monotask). The paper picked four "based on an experimental
//! parameter sweep" — this binary is that sweep.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::header;
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Ablation: §3.3 network scheduler",
        "sweep of the outstanding-fetching-multitasks limit",
        "paper picked 4: small limits underutilize, large limits unpipeline",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let mut cfg = SortConfig::new(150.0, 4, 20, 2);
    cfg.map_tasks = Some(1600);
    cfg.reduce_tasks = Some(1600);
    let (job, blocks) = sort_job(&cfg);
    println!("{:<14} {:>12}", "outstanding", "total (s)");
    for n in [1usize, 2, 4, 8, 16, 32] {
        let mc = monotasks_core::MonoConfig {
            net_outstanding: n,
            ..monotasks_core::MonoConfig::default()
        };
        let out = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &mc);
        println!("{:<14} {:>12.1}", n, out.jobs[0].duration_secs());
    }
}
