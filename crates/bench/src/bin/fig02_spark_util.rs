//! Figure 2: resource utilization during a Spark job is non-uniform.
//!
//! The paper plots a 30-second window of one machine running 8 concurrent
//! Spark tasks, with utilization oscillating between CPU-bound and
//! disk-bound. We run a sort-shaped job on one 8-core, 2-HDD worker under
//! the baseline executor and print the per-second CPU and per-disk
//! utilization series.

use cluster::{ClusterSpec, MachineId, MachineSpec, ResourceSel};
use mt_bench::header;
use simcore::{SimDuration, SimTime};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Figure 2",
        "Spark utilization oscillates between CPU and disk",
        "utilization alternates between CPU-bound and disk-bound phases; \
         at times all tasks block on the two disks",
    );
    let cluster = ClusterSpec::new(1, MachineSpec::m2_4xlarge());
    // A disk-heavy sort (large values): tasks alternate between read+compute
    // and serialize+write phases, so the machine swings between disk-bound
    // and CPU-bound as the 8 concurrent tasks drift through their phases.
    let mut cfg = SortConfig::new(8.0, 60, 1, 2);
    cfg.map_tasks = Some(64);
    cfg.reduce_tasks = Some(64);
    let (job, blocks) = sort_job(&cfg);
    let out = sparklike::run(
        &cluster,
        &[(job, blocks)],
        &sparklike::SparkConfig::default(),
    );
    let end = out.makespan;
    let window = SimTime::from_secs(30).min(end);
    let sec = SimDuration::from_secs(1);
    let cpu = out
        .traces
        .series(MachineId(0), ResourceSel::Cpu, SimTime::ZERO, window, sec);
    let d0 = out.traces.series(
        MachineId(0),
        ResourceSel::Disk(0),
        SimTime::ZERO,
        window,
        sec,
    );
    let d1 = out.traces.series(
        MachineId(0),
        ResourceSel::Disk(1),
        SimTime::ZERO,
        window,
        sec,
    );
    println!("{:>4} {:>6} {:>6} {:>6}", "sec", "cpu", "disk1", "disk2");
    for i in 0..cpu.len() {
        println!("{:>4} {:>6.2} {:>6.2} {:>6.2}", i, cpu[i], d0[i], d1[i]);
    }
    // Oscillation summary: how often the bottleneck flips.
    let mut flips = 0;
    let mut prev_cpu_bound = None;
    for i in 0..cpu.len() {
        let cpu_bound = cpu[i] >= d0[i].max(d1[i]);
        if let Some(p) = prev_cpu_bound {
            if p != cpu_bound {
                flips += 1;
            }
        }
        prev_cpu_bound = Some(cpu_bound);
    }
    println!("\nbottleneck flips between CPU and disk in the window: {flips}");
    println!("\ncpu   {}", mt_bench::ascii::sparkline(&cpu));
    println!("disk1 {}", mt_bench::ascii::sparkline(&d0));
    println!("disk2 {}", mt_bench::ascii::sparkline(&d1));
    println!("\njob completed at {:.1}s", end.as_secs_f64());
}
