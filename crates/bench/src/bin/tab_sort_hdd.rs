//! §5.2 sort table: Spark vs MonoSpark on the HDD sort.
//!
//! Paper: sorting 600 GB on 20 two-HDD workers takes Spark 88 minutes
//! (36 map + 52 reduce) and MonoSpark 57 minutes (22 map + 35 reduce) —
//! MonoSpark ~1.5× faster because its disk scheduler avoids seek contention.
//! We run a 4×-scaled-down 150 GB sort with the same CPU:disk balance (the
//! shape, not the absolute minutes, is the claim under test).

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, pct_diff, run_mono, run_spark};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "§5.2 sort",
        "600 GB HDD sort (scaled 4x down), 20 workers x 2 HDDs",
        "Spark 88 min (36+52), MonoSpark 57 min (22+35): mono ~1.5x faster",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    // longs_per_value=2 gives the paper's "CPU and disk roughly equally" mix.
    let cfg = SortConfig::new(150.0, 2, 20, 2);
    let (job, blocks) = sort_job(&cfg);
    let mono = run_mono(&cluster, job.clone(), blocks.clone());
    let spark = run_spark(&cluster, job, blocks);
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "", "map (s)", "reduce (s)", "total (s)"
    );
    let stage = |r: &dataflow::JobReport, i: usize| r.stages[i].duration().as_secs_f64();
    println!(
        "{:<10} {:>10.1} {:>10.1} {:>10.1}",
        "spark",
        stage(&spark.jobs[0], 0),
        stage(&spark.jobs[0], 1),
        spark.jobs[0].duration_secs()
    );
    println!(
        "{:<10} {:>10.1} {:>10.1} {:>10.1}",
        "monospark",
        stage(&mono.jobs[0], 0),
        stage(&mono.jobs[0], 1),
        mono.jobs[0].duration_secs()
    );
    println!(
        "\nmono vs spark: {:+.1}%  (paper: -35%, i.e. 57 vs 88 min)",
        pct_diff(spark.jobs[0].duration_secs(), mono.jobs[0].duration_secs())
    );
}
