//! Figure 18: auto-configuration of per-machine concurrency.
//!
//! Paper: for sorts whose values hold 1, 25, and 100 longs, the best Spark
//! slot count differs per workload (2–32 swept), while "MonoSpark
//! automatically uses the ideal amount of concurrency for each resource,
//! and as a result, performs at least as well as the best Spark
//! configuration for all workloads — in some cases as much as 30% better."

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, pct_diff, run_mono};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Figure 18",
        "sort runtimes under Spark slot configs vs MonoSpark auto-concurrency",
        "mono >= best Spark config for every workload; up to 30% better",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let slots = [2usize, 4, 8, 16, 32];
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "workload", "spark2", "spark4", "spark8", "spark16", "spark32", "mono", "vs best"
    );
    for longs in [1usize, 25, 100] {
        let mut cfg = SortConfig::new(150.0, longs, 20, 2);
        // Plenty of waves per core, per the paper's guidance that default
        // configurations break jobs into enough tasks (§5.3).
        cfg.map_tasks = Some(1600);
        cfg.reduce_tasks = Some(1600);
        let (job, blocks) = sort_job(&cfg);
        let mut times = Vec::new();
        for s in slots {
            let sc = sparklike::SparkConfig {
                slots_per_machine: Some(s),
                ..sparklike::SparkConfig::default()
            };
            let out = sparklike::run(&cluster, &[(job.clone(), blocks.clone())], &sc);
            times.push(out.jobs[0].duration_secs());
        }
        let mono = run_mono(&cluster, job, blocks).jobs[0].duration_secs();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{:<12} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>+11.1}%",
            format!("{longs} long(s)"),
            times[0],
            times[1],
            times[2],
            times[3],
            times[4],
            mono,
            pct_diff(best, mono)
        );
    }
}
