//! §6.3 table: predicting runtime with deserialized in-memory input.
//!
//! Paper: for a job sorting random on-disk data, the model predicted the
//! runtime with input stored deserialized in memory as 38.0 s (down from
//! 48.5 s measured); the actual in-memory runtime was 36.7 s — a 4% error.
//! The prediction subtracts input-read disk monotask time and the
//! deserialization component of compute monotasks, "only possible because of
//! the use of monotasks".

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, pct_err, run_mono};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "§6.3",
        "predict on-disk sort -> deserialized in-memory input",
        "paper: measured 48.5 s, predicted 38.0 s, actual 36.7 s (4% err)",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::i2_2xlarge(2));
    let cfg = SortConfig::new(150.0, 8, 20, 2);
    let (job, blocks) = sort_job(&cfg);
    let base = run_mono(&cluster, job, blocks);
    let profiles = profile_stages(&base.records, &base.jobs);
    let old = Scenario::of_cluster(&cluster);
    let mut new = old.clone();
    new.input_deserialized_in_memory = true;
    let predicted = predict_job(&profiles, base.jobs[0].duration_secs(), &old, &new);
    let mut mem_cfg = cfg.clone();
    mem_cfg.input_in_memory = true;
    let (mem_job, mem_blocks) = sort_job(&mem_cfg);
    let actual = run_mono(&cluster, mem_job, mem_blocks);
    println!(
        "measured on-disk:      {:>8.1} s",
        base.jobs[0].duration_secs()
    );
    println!("predicted in-memory:   {:>8.1} s", predicted);
    println!(
        "actual in-memory:      {:>8.1} s",
        actual.jobs[0].duration_secs()
    );
    println!(
        "prediction error:      {:>8.1} %  (paper: 4%)",
        pct_err(actual.jobs[0].duration_secs(), predicted)
    );
}
