//! Figure 17: even a measured-aggregate Spark model errs 20–30%.
//!
//! Paper: granting Spark the aggregate resource measurements of an isolated
//! run (no per-task attribution, no deserialization split) and applying the
//! same ideal-times model still mispredicts the 2→1 HDD change by 20–30%
//! for most queries and over 50% for 1c: contention is invisible to the
//! model, and it systematically underestimates the slowdown.

use cluster::{ClusterSpec, DiskSpec, MachineSpec};
use mt_bench::{header, pct_err, run_spark};
use perfmodel::spec_profile;
use perfmodel::{predict_job, Scenario};
use workloads::{bdb_job, BdbQuery};

fn main() {
    header(
        "Figure 17",
        "Spark measured-aggregate model predicting BDB with 1 HDD",
        "errors 20-30% for most queries (vs <=9% with monotasks, Fig 12)",
    );
    let two = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let mut m1 = MachineSpec::m2_4xlarge();
    m1.disks = vec![DiskSpec::hdd()];
    let one = ClusterSpec::new(5, m1);
    println!(
        "{:<6} {:>11} {:>12} {:>12} {:>8}",
        "query", "2 HDD (s)", "predicted 1", "actual 1(s)", "err"
    );
    for q in BdbQuery::all() {
        let (job2, blocks2) = bdb_job(q, 5, 2);
        let base = run_spark(&two, job2.clone(), blocks2);
        let profiles = spec_profile(&job2, &base.jobs[0]);
        let predicted = predict_job(
            &profiles,
            base.jobs[0].duration_secs(),
            &Scenario::of_cluster(&two),
            &Scenario::of_cluster(&one),
        );
        let (job1, blocks1) = bdb_job(q, 5, 1);
        let actual = run_spark(&one, job1, blocks1).jobs[0].duration_secs();
        println!(
            "{:<6} {:>11.1} {:>12.1} {:>12.1} {:>7.1}%",
            q.label(),
            base.jobs[0].duration_secs(),
            predicted,
            actual,
            pct_err(actual, predicted)
        );
    }
}
