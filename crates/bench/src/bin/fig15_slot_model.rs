//! Figure 15: the slot-based model cannot predict hardware changes.
//!
//! Paper: applying the monotasks-style scaling to Spark's only resource
//! knob — slots — fails for the 2→1 HDD question: slots track cores, so the
//! model predicts *no change*, missing every disk-bound slowdown; scaling
//! slots by disks instead predicts a uniform 2× slowdown, wrong for every
//! CPU-bound query. "Spark uses one dimension, slots, to control resource
//! use that is multi-dimensional."

use cluster::{ClusterSpec, DiskSpec, MachineSpec};
use mt_bench::{header, pct_err, run_mono};
use perfmodel::slot_model_predict;
use workloads::{bdb_job, BdbQuery};

fn main() {
    header(
        "Figure 15",
        "slot-based model predicting BDB with 1 HDD instead of 2",
        "slots don't change with disks -> predicts no change; wrong when disk-bound",
    );
    let two = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let mut m1 = MachineSpec::m2_4xlarge();
    m1.disks = vec![DiskSpec::hdd()];
    let one = ClusterSpec::new(5, m1);
    println!(
        "{:<6} {:>11} {:>12} {:>8} {:>14} {:>8}",
        "query", "actual (s)", "slots-fixed", "err", "slots-by-disk", "err"
    );
    for q in BdbQuery::all() {
        let (job2, blocks2) = bdb_job(q, 5, 2);
        let base = run_mono(&two, job2, blocks2);
        let (job1, blocks1) = bdb_job(q, 5, 1);
        let actual = run_mono(&one, job1, blocks1).jobs[0].duration_secs();
        let measured = base.jobs[0].duration_secs();
        // Slots follow cores: 8 -> 8, i.e. no predicted change.
        let fixed = slot_model_predict(measured, 8, 8);
        // Or scale slots with the disk count: 8 -> 4, i.e. uniform 2x.
        let scaled = slot_model_predict(measured, 8, 4);
        println!(
            "{:<6} {:>11.1} {:>12.1} {:>7.1}% {:>14.1} {:>7.1}%",
            q.label(),
            actual,
            fixed,
            pct_err(actual, fixed),
            scaled,
            pct_err(actual, scaled),
        );
    }
}
