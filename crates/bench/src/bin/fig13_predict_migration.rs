//! Figure 13: predicting a combined hardware + software migration.
//!
//! Paper: three 100 GB sort variants move from a 5-machine HDD cluster with
//! on-disk input to a 20-machine SSD cluster with input stored deserialized
//! in memory — a ~10× runtime improvement that the model predicts within
//! 23% (the largest errors come from the locality shift: with 20 machines
//! only ~5% of input is local vs ~20% with 5, so more bytes cross the
//! network than the model assumes — the paper reports the same error
//! source).

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, pct_err, run_mono};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Figure 13",
        "predict 5xHDD/on-disk -> 20xSSD/in-memory-deserialized (100 GB sorts)",
        "~10x improvement predicted within 23%",
    );
    let hdd = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let ssd = ClusterSpec::new(20, MachineSpec::i2_2xlarge(2));
    println!(
        "{:<8} {:>12} {:>13} {:>12} {:>9} {:>8}",
        "values", "5xHDD (s)", "predicted 20", "actual (s)", "speedup", "err"
    );
    for longs in [10usize, 20, 50] {
        let src_cfg = SortConfig::new(100.0, longs, 5, 2);
        let (job, blocks) = sort_job(&src_cfg);
        let base = run_mono(&hdd, job, blocks);
        let profiles = profile_stages(&base.records, &base.jobs);
        let old = Scenario::of_cluster(&hdd);
        let mut new = Scenario::of_cluster(&ssd);
        new.input_deserialized_in_memory = true;
        let predicted = predict_job(&profiles, base.jobs[0].duration_secs(), &old, &new);
        let mut dst_cfg = SortConfig::new(100.0, longs, 20, 2);
        dst_cfg.input_in_memory = true;
        let (mem_job, mem_blocks) = sort_job(&dst_cfg);
        let actual = run_mono(&ssd, mem_job, mem_blocks);
        let a = actual.jobs[0].duration_secs();
        let b = base.jobs[0].duration_secs();
        println!(
            "{:<8} {:>12.1} {:>13.1} {:>12.1} {:>8.1}x {:>7.1}%",
            longs,
            b,
            predicted,
            a,
            b / a,
            pct_err(a, predicted)
        );
    }
}
