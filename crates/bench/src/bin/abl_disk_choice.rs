//! Ablation: load-aware disk selection (§8 "Disk scheduling").
//!
//! The paper's disk monotask scheduler "balances requests across available
//! disks, independent of load. A better strategy would consider the load on
//! each disk … for example, writing to the disk with the shorter queue."
//! With skewed input placement (all blocks on disk 0), round-robin writes
//! keep feeding the hot disk; shortest-queue writes drain to the idle one.

use cluster::{ClusterSpec, MachineSpec};
use dataflow::{BlockMap, CostModel, JobBuilder};
use monotasks_core::DiskChoice;
use mt_bench::{header, pct_diff};
use workloads::GIB;

fn main() {
    header(
        "Ablation: §8 disk choice",
        "round-robin vs shortest-queue output-disk selection, skewed inputs",
        "load-aware choice should help when one disk is hot",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::m2_4xlarge());
    let total = 75.0 * GIB;
    let job = JobBuilder::new("skewed-io", CostModel::spark_1_3())
        .read_disk(total, total / 5_000.0, total / 1200.0)
        .map(1.0, 1.0, false)
        .write_disk(1.0);
    // Place every input block on disk 0 of its machine.
    let blocks = BlockMap::round_robin(1200, 20, 1);
    println!("{:<16} {:>12}", "policy", "total (s)");
    let mut results = Vec::new();
    for (name, choice) in [
        ("round-robin", DiskChoice::RoundRobin),
        ("shortest-queue", DiskChoice::ShortestQueue),
    ] {
        let cfg = monotasks_core::MonoConfig {
            write_disk_choice: choice,
            ..monotasks_core::MonoConfig::default()
        };
        let out = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &cfg);
        println!("{:<16} {:>12.1}", name, out.jobs[0].duration_secs());
        results.push(out.jobs[0].duration_secs());
    }
    println!(
        "\nshortest-queue vs round-robin: {:+.1}% runtime",
        pct_diff(results[0], results[1])
    );
}
