//! Figure 10: the model, worked end-to-end on a real run.
//!
//! The paper's diagram: monotask runtimes → ideal CPU/network/disk times →
//! job runtime = max → and the same arithmetic under "2× disk throughput".
//! This binary performs exactly that walk on a measured sort stage, then
//! validates the 2×-disk prediction against an actual re-run.

use cluster::{ClusterSpec, DiskSpec, MachineSpec};
use mt_bench::{header, pct_err, run_mono};
use perfmodel::{predict_job, profile_stages, Scenario};
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Figure 10",
        "monotask times -> ideal resource times -> job runtime, then 2x disk",
        "job runtime = max of per-resource ideal times; scaling disk moves it",
    );
    let cluster = ClusterSpec::new(4, MachineSpec::m2_4xlarge());
    let cfg = SortConfig::new(20.0, 25, 4, 2);
    let (job, blocks) = sort_job(&cfg);
    let out = run_mono(&cluster, job, blocks);
    let profiles = profile_stages(&out.records, &out.jobs);
    let base = Scenario::of_cluster(&cluster);

    println!("per-stage ideal resource times (seconds):");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "stage", "cpu", "disk", "net", "max(model)", "measured"
    );
    for p in &profiles {
        let t = perfmodel::model::ideal_times(p, &base);
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} {:>10.1} {:>10.1}",
            p.stage.0,
            t.cpu,
            t.disk,
            t.network,
            t.stage_time(),
            p.measured_secs
        );
    }

    // The right-hand side of Fig 10: double the disk throughput.
    let mut fast_disk = base.clone();
    for d in &mut fast_disk.machine.disks {
        d.throughput *= 2.0;
    }
    let measured = out.jobs[0].duration_secs();
    let predicted = predict_job(&profiles, measured, &base, &fast_disk);
    println!("\nmeasured job runtime:          {measured:>7.1} s");
    println!("predicted with 2x disk speed:  {predicted:>7.1} s");

    // Validate against an actual run on 4 disks per machine (same aggregate
    // bandwidth as 2x-fast disks, modulo scheduler slots).
    let mut machine = MachineSpec::m2_4xlarge();
    machine.disks = vec![DiskSpec::hdd(); 4];
    let four = ClusterSpec::new(4, machine);
    let cfg4 = SortConfig::new(20.0, 25, 4, 4);
    let (job4, blocks4) = sort_job(&cfg4);
    let actual = run_mono(&four, job4, blocks4).jobs[0].duration_secs();
    println!(
        "actual with 2x aggregate disk: {actual:>7.1} s  ({:.1}% err)",
        pct_err(actual, predicted)
    );
}
