//! Figure 5: big data benchmark runtimes — Spark, Spark with forced flushes,
//! and MonoSpark.
//!
//! Paper: "for all queries except 1c, MonoSpark is at most 5% slower and as
//! much as 21% faster than Spark. Query 1c takes 55% longer with MonoSpark"
//! because Spark leaves its large result in the buffer cache; when Spark is
//! forced to flush, 1c is "only 9% slower with MonoSpark".

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::{header, pct_diff, run_mono, run_spark};
use workloads::{bdb_job, BdbQuery};

fn main() {
    header(
        "Figure 5",
        "big data benchmark, scale factor 5, 5 workers x 2 HDDs",
        "mono within -21%..+5% of Spark except 1c (+55%; +9% vs forced-flush Spark)",
    );
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "query", "spark (s)", "spark-sync", "mono (s)", "vs spark", "vs sync"
    );
    for q in BdbQuery::all() {
        let (job, blocks) = bdb_job(q, 5, 2);
        let spark = run_spark(&cluster, job.clone(), blocks.clone());
        let wt_cfg = sparklike::SparkConfig {
            write_through: true,
            ..sparklike::SparkConfig::default()
        };
        let spark_wt = sparklike::run(&cluster, &[(job.clone(), blocks.clone())], &wt_cfg);
        let mono = run_mono(&cluster, job, blocks);
        let s = spark.jobs[0].duration_secs();
        let w = spark_wt.jobs[0].duration_secs();
        let m = mono.jobs[0].duration_secs();
        println!(
            "{:<6} {:>10.1} {:>12.1} {:>10.1} {:>+11.1}% {:>+11.1}%",
            q.label(),
            s,
            w,
            m,
            pct_diff(s, m),
            pct_diff(w, m)
        );
    }
}
