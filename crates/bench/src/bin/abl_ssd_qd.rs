//! Ablation: the flash scheduler's concurrency (§3.3).
//!
//! "Flash drives can provide higher throughput when multiple operations are
//! outstanding… for the flash drives we used, we found that using four
//! outstanding monotasks achieved nearly the maximum throughput." Sweeping
//! the per-SSD monotask slots on a disk-bound SSD sort shows the same knee.

use cluster::{ClusterSpec, MachineSpec};
use mt_bench::header;
use workloads::{sort_job, SortConfig};

fn main() {
    header(
        "Ablation: §3.3 flash scheduler",
        "sweep of concurrent monotasks per SSD (disk-bound sort)",
        "throughput rises to the device queue depth (4), then plateaus",
    );
    let cluster = ClusterSpec::new(20, MachineSpec::i2_2xlarge(1));
    let cfg = SortConfig::new(150.0, 50, 20, 1);
    let (job, blocks) = sort_job(&cfg);
    println!("{:<12} {:>12}", "ssd slots", "total (s)");
    for slots in [1usize, 2, 4, 8, 16] {
        let mc = monotasks_core::MonoConfig {
            ssd_slots_override: Some(slots),
            ..monotasks_core::MonoConfig::default()
        };
        let out = monotasks_core::run(&cluster, &[(job.clone(), blocks.clone())], &mc);
        println!("{:<12} {:>12.1}", slots, out.jobs[0].duration_secs());
    }
}
