//! Figure 6: utilization of the most- and second-most-utilized resource
//! during big data benchmark stages.
//!
//! Paper: boxes (25/50/75th percentiles, whiskers 5/95) over stages and
//! machines show that "multiple resources were well-utilized during most
//! stages" and "MonoSpark utilized resources as well as or better than
//! Spark".

use cluster::{trace::percentile, ClusterSpec, MachineSpec};
use mt_bench::{header, run_mono, run_spark};
use workloads::{bdb_job, BdbQuery};

fn print_box(label: &str, samples: &[f64]) {
    println!(
        "{:<22} p5={:>5.2} p25={:>5.2} p50={:>5.2} p75={:>5.2} p95={:>5.2}  (n={})",
        label,
        percentile(samples, 5.0),
        percentile(samples, 25.0),
        percentile(samples, 50.0),
        percentile(samples, 75.0),
        percentile(samples, 95.0),
        samples.len()
    );
}

fn main() {
    header(
        "Figure 6",
        "most/second-most utilized resource across BDB stages",
        "multiple resources well-utilized; MonoSpark >= Spark utilization",
    );
    let cluster = ClusterSpec::new(5, MachineSpec::m2_4xlarge());
    let mut spark_most = Vec::new();
    let mut spark_second = Vec::new();
    let mut mono_most = Vec::new();
    let mut mono_second = Vec::new();
    for q in BdbQuery::all() {
        let (job, blocks) = bdb_job(q, 5, 2);
        let spark = run_spark(&cluster, job.clone(), blocks.clone());
        let mono = run_mono(&cluster, job, blocks);
        for st in &spark.jobs[0].stages {
            for (most, second) in spark.traces.top_two_samples(st.start, st.end) {
                spark_most.push(most);
                spark_second.push(second);
            }
        }
        for st in &mono.jobs[0].stages {
            for (most, second) in mono.traces.top_two_samples(st.start, st.end) {
                mono_most.push(most);
                mono_second.push(second);
            }
        }
    }
    print_box("spark: most utilized", &spark_most);
    print_box("spark: second", &spark_second);
    print_box("mono:  most utilized", &mono_most);
    print_box("mono:  second", &mono_second);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean bottleneck utilization: spark {:.2}, mono {:.2} (paper: mono >= spark)",
        mean(&spark_most),
        mean(&mono_most)
    );
}
